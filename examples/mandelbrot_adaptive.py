#!/usr/bin/env python
"""Adaptive Mandelbrot rendering with dynamic parallelism.

Renders the same image with the escape-time algorithm (every pixel) and
the Mariani-Silver algorithm (border-probing + recursive subdivision
via device-side launches), prints the work statistics, an ASCII
rendering of the dwell image, and the speedup — the paper's Fig. 5
experiment at laptop scale.

Run:  python examples/mandelbrot_adaptive.py [size]
"""

import sys

import numpy as np

from repro import CudaLite, RTX3080_SYSTEM
from repro.core.dynparallel import MandelView, mariani_silver
from repro.kernels import mandel_escape


def ascii_render(img: np.ndarray, width: int = 72) -> str:
    """Downsample the dwell image to characters by escape speed."""
    h, w = img.shape
    step = max(w // width, 1)
    small = img[:: 2 * step, ::step]
    ramp = " .:-=+*#%@"
    lo, hi = small.min(), small.max()
    scaled = ((small - lo) / max(hi - lo, 1) * (len(ramp) - 1)).astype(int)
    return "\n".join("".join(ramp[v] for v in row) for row in scaled)


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    max_dwell = 512
    view = MandelView()
    w = h = size
    dx, dy = view.steps(w, h)

    rt1 = CudaLite(RTX3080_SYSTEM)
    out1 = rt1.malloc(w * h, np.int64)
    with rt1.timer() as t_escape:
        rt1.launch(
            mandel_escape,
            ((w + 15) // 16, (h + 15) // 16),
            (16, 16),
            out1, w, h, view.x0, view.y0, dx, dy, max_dwell,
        )
    img = out1.to_host().reshape(h, w)

    rt2 = CudaLite(RTX3080_SYSTEM)
    out2 = rt2.malloc(w * h, np.int64)
    with rt2.timer() as t_ms:
        info = mariani_silver(rt2, out2, w, h, view=view, max_dwell=max_dwell)
    img_ms = out2.to_host().reshape(h, w)

    print(ascii_render(img))
    print(f"\nimage {size}x{size}, max dwell {max_dwell}")
    print(f"escape time     : {t_escape.elapsed * 1e3:.2f} ms (all {w * h:,} pixels)")
    print(
        f"Mariani-Silver  : {t_ms.elapsed * 1e3:.2f} ms "
        f"({info['pixels_computed']:,.0f} pixels computed, "
        f"{info['pixels_filled']:,.0f} filled, "
        f"{info['device_launches']:.0f} device launches)"
    )
    print(f"speedup         : {t_escape.elapsed / t_ms.elapsed:.2f}x "
          f"(grows with image size; paper reports 3.26x at 16000^2)")
    print(f"images identical: {(img == img_ms).mean():.2%} of pixels")


if __name__ == "__main__":
    main()
