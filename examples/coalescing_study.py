#!/usr/bin/env python
"""Coalescing study: how loop distribution shapes memory transactions.

Reproduces the reasoning of paper §IV-B interactively: the same AXPY is
run with one-per-thread, block-distributed, and cyclic-distributed
loops, plus an aligned/misaligned pair, and the per-warp transaction
counts, DRAM traffic, and simulated times are tabulated side by side.

Run:  python examples/coalescing_study.py
"""

import numpy as np

from repro import CARINA, CudaLite, estimate_kernel_time
from repro.common.tables import render_table
from repro.kernels import (
    axpy_1per_thread,
    axpy_aligned,
    axpy_block,
    axpy_cyclic,
    axpy_misaligned,
)


def main() -> None:
    rt = CudaLite(CARINA)
    n = 1 << 22
    rng = np.random.default_rng(7)
    hx = rng.random(n, dtype=np.float32)
    hy = rng.random(n, dtype=np.float32)
    x = rt.to_device(hx)

    rows = []
    cases = [
        ("1-per-thread", axpy_1per_thread, (n + 255) // 256, 0),
        ("block dist <<<1024,256>>>", axpy_block, 1024, 0),
        ("cyclic dist <<<1024,256>>>", axpy_cyclic, 1024, 0),
        ("aligned", axpy_aligned, (n + 255) // 256, 0),
        ("misaligned", axpy_misaligned, (n + 255) // 256, 4),
    ]
    for name, kdef, grid, offset in cases:
        xv = rt.to_device(hx, offset=offset) if offset else x
        y = rt.to_device(hy, offset=offset)
        stats = rt.launch(kdef, grid, 256, xv, y, n, 2.0)
        timing = estimate_kernel_time(stats, rt.gpu)
        rows.append(
            [
                name,
                f"{stats.transactions / stats.global_requests:.2f}",
                f"{stats.gld_efficiency:.0%}",
                f"{timing.traffic.dram_bytes / 2**20:.1f}",
                timing.limiter,
                f"{timing.exec_s * 1e6:.1f}",
            ]
        )
    rt.synchronize()
    print(
        render_table(
            ["kernel", "txn/request", "load eff", "DRAM MiB", "bound", "time (us)"],
            rows,
            title=f"AXPY coalescing study, n={n:,} on {rt.gpu.name}",
        )
    )
    print(
        "\nThe block distribution touches one 128B segment per lane per "
        "request\n(32 transactions/warp) and wastes most of each DRAM "
        "sector; the cyclic\ndistribution is the fix (paper Fig. 9)."
    )


if __name__ == "__main__":
    main()
