#!/usr/bin/env python
"""Cross-architecture study: the same kernels on V100, K80, RTX 3080.

The paper's motivation for a *microbenchmark* suite is that optimization
advice is architecture-dependent (its Fig. 15 is the canonical case).
This example runs three representative kernels on every preset GPU and
tabulates the simulated times and the relevant ratios, showing e.g.
that texture placement matters enormously on Kepler and not at all on
Volta.

Run:  python examples/gpu_comparison.py
"""

import numpy as np

from repro import CudaLite, estimate_kernel_time, get_system
from repro.arch import A100, PCIE4_X16, SystemSpec
from repro.common.tables import render_table
from repro.kernels import (
    axpy_block,
    axpy_cyclic,
    matadd_global,
    matadd_tex2d,
    reduce_interleaved_bc,
    reduce_sequential,
)

SYSTEMS = [
    get_system("carina"),
    get_system("fornax"),
    get_system("rtx3080"),
    SystemSpec(name="A100 box", gpu=A100, link=PCIE4_X16),
]


def comem_ratio(system, n=1 << 20):
    rt = CudaLite(system)
    rng = np.random.default_rng(0)
    x = rt.to_device(rng.random(n, dtype=np.float32))
    y = rt.to_device(rng.random(n, dtype=np.float32))
    sb = rt.launch(axpy_block, 1024, 256, x, y, n, 2.0)
    sc = rt.launch(axpy_cyclic, 1024, 256, x, y, n, 2.0)
    rt.synchronize()
    g = system.gpu
    return (
        estimate_kernel_time(sb, g).exec_s / estimate_kernel_time(sc, g).exec_s
    )


def texture_ratio(system, n=512):
    rt = CudaLite(system)
    rng = np.random.default_rng(1)
    ha = rng.random((n, n), dtype=np.float32)
    hb = rng.random((n, n), dtype=np.float32)
    a = rt.to_device(ha.ravel())
    b = rt.to_device(hb.ravel())
    c = rt.malloc(n * n)
    grid = (n // 16, n // 16)
    sg = rt.launch(matadd_global, grid, (16, 16), a, b, c, n)
    ta, tb = rt.texture_2d(ha), rt.texture_2d(hb)
    st = rt.launch(matadd_tex2d, grid, (16, 16), ta, tb, c, n)
    rt.synchronize()
    g = system.gpu
    return estimate_kernel_time(sg, g).exec_s / estimate_kernel_time(st, g).exec_s


def bank_ratio(system, n=1 << 18):
    rt = CudaLite(system)
    x = rt.to_device(np.random.default_rng(2).random(n, dtype=np.float32))
    r = rt.malloc(n // 256)
    sb = rt.launch(reduce_interleaved_bc, n // 256, 256, x, r)
    ss = rt.launch(reduce_sequential, n // 256, 256, x, r)
    rt.synchronize()
    g = system.gpu
    return estimate_kernel_time(sb, g).exec_s / estimate_kernel_time(ss, g).exec_s


def main() -> None:
    rows = []
    for system in SYSTEMS:
        rows.append(
            [
                system.gpu.name,
                f"{comem_ratio(system):.1f}x",
                f"{texture_ratio(system):.2f}x",
                f"{bank_ratio(system):.2f}x",
            ]
        )
    print(
        render_table(
            ["GPU", "coalescing win", "texture win", "bank-conflict win"],
            rows,
            title="Optimization impact by architecture (simulated)",
        )
    )
    print(
        "\nTexture placement pays only where global loads bypass the L1 "
        "(Kepler);\ncoalescing and bank conflicts matter everywhere — the "
        "paper's point that\nperformance advice must be re-validated per "
        "architecture."
    )


if __name__ == "__main__":
    main()
