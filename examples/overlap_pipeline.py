#!/usr/bin/env python
"""Copy/compute overlap with streams, events and a task graph.

Walks through the paper's data-movement toolbox on one workload:

1. synchronous offload (copy -> kernel -> copy, one stream),
2. a chunked multi-stream pipeline with ``cudaMemcpyAsync`` semantics
   (paper §V-A), rendering the nvvp-style timeline of both,
3. events timing a stream region (``cudaEventElapsedTime``),
4. the same chain captured into a task graph and re-launched with
   per-node overheads (paper §III-D).

Run:  python examples/overlap_pipeline.py
"""

import numpy as np

from repro import CARINA, CudaLite, kernel


@kernel
def heavy_axpy(ctx, x, y, n, a):
    """AXPY with extra flops so overlap has something to hide."""
    i = ctx.global_thread_id()

    def body():
        v = ctx.load(x, i)
        acc = ctx.load(y, i)
        for _ in ctx.range_uniform(16):
            acc = ctx.fma(v, a, acc)
        ctx.store(y, i, acc)

    ctx.if_active(i < n, body)


def main() -> None:
    n = 1 << 21
    block = 256
    rng = np.random.default_rng(3)
    hx = rng.random(n, dtype=np.float32)
    hy = rng.random(n, dtype=np.float32)

    # --- 1) synchronous offload ---------------------------------------
    rt = CudaLite(CARINA)
    x = rt.malloc(n)
    y = rt.malloc(n)
    with rt.timer() as t_sync:
        rt.memcpy_h2d(x, hx, pinned=True)
        rt.memcpy_h2d(y, hy, pinned=True)
        rt.launch(heavy_axpy, (n + block - 1) // block, block, x, y, n, 2.0)
        rt.memcpy_d2h(y, pinned=True)
    print("--- synchronous offload ---")
    print(rt.timeline.render_ascii())
    print(f"total: {t_sync.elapsed * 1e3:.3f} ms\n")

    # --- 2) chunked pipeline over 4 streams ----------------------------
    rt2 = CudaLite(CARINA)
    x2 = rt2.malloc(n)
    y2 = rt2.malloc(n)
    chunks = 4
    streams = [rt2.stream(f"stream {i + 1}") for i in range(chunks)]
    m = n // chunks
    with rt2.timer() as t_async:
        for c, s in enumerate(streams):
            xv = x2.slice(c * m, m)
            yv = y2.slice(c * m, m)
            rt2.memcpy_h2d(xv, hx[c * m:(c + 1) * m], stream=s, pinned=True,
                           name=f"H2D[{c}]")
            rt2.memcpy_h2d(yv, hy[c * m:(c + 1) * m], stream=s, pinned=True,
                           name=f"H2D[{c}]")
            rt2.launch(heavy_axpy, (m + block - 1) // block, block,
                       xv, yv, m, 2.0, stream=s)
            rt2.memcpy_d2h(yv, stream=s, pinned=True, name=f"D2H[{c}]")
    print("--- 4-stream pipeline ---")
    print(rt2.timeline.render_ascii())
    print(f"total: {t_async.elapsed * 1e3:.3f} ms "
          f"({t_sync.elapsed / t_async.elapsed:.2f}x vs synchronous)\n")

    # --- 3) events ------------------------------------------------------
    rt3 = CudaLite(CARINA)
    x3 = rt3.to_device(hx)
    y3 = rt3.to_device(hy)
    start = rt3.event("start")
    stop = rt3.event("stop")
    rt3.record_event(start)
    rt3.launch(heavy_axpy, (n + block - 1) // block, block, x3, y3, n, 2.0)
    rt3.record_event(stop)
    rt3.synchronize()
    print(f"event-timed kernel: {stop.elapsed_since(start) * 1e3:.3f} ms\n")

    # --- 4) task graph ----------------------------------------------------
    rt4 = CudaLite(CARINA)
    x4 = rt4.to_device(hx)
    y4 = rt4.to_device(hy)
    rt4.graph_capture_begin()
    for _ in range(6):
        rt4.launch(heavy_axpy, (n + block - 1) // block, block, x4, y4, n, 1.0001)
    graph = rt4.graph_capture_end().instantiate()
    with rt4.timer() as t_graph:
        for _ in range(10):
            rt4.graph_launch(graph)
    per_iter_graph = t_graph.elapsed / 10
    per_launch = rt4.gpu.kernel_launch_overhead_s
    print(f"graph replay: {per_iter_graph * 1e3:.3f} ms per 6-kernel chain "
          f"(individual launches would add ~{6 * per_launch * 1e6:.0f} us "
          f"of launch overhead each)")


if __name__ == "__main__":
    main()
