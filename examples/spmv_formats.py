#!/usr/bin/env python
"""SpMV offload cost across data layouts (paper §V-D).

For a fixed-size sparse matrix at several densities, measures the full
offload pipeline — copy-in, kernel, copy-back — for the dense row-major
layout and the CSR layout, splitting each total into transfer and
kernel time.  This is the MiniTransfer experiment with the timeline
shown, making it obvious that the dense layout's problem is the bytes
it ships, not (only) the math it wastes.

Run:  python examples/spmv_formats.py
"""

import numpy as np

from repro import CARINA, CudaLite
from repro.common.tables import render_table
from repro.kernels import spmv_csr, spmv_dense_row
from repro.sparse import random_sparse


def offload_dense(system, csr, hx, block=256):
    n = csr.n_rows
    rt = CudaLite(system)
    a = rt.malloc(n * n)
    x = rt.malloc(n)
    y = rt.malloc(n)
    with rt.timer() as t:
        rt.memcpy_h2d(a, csr.to_dense().ravel(), pinned=True)
        rt.memcpy_h2d(x, hx, pinned=True)
        rt.launch(spmv_dense_row, (n + block - 1) // block, block, a, x, y, n)
        out = rt.memcpy_d2h(y, pinned=True)
    copy_time = rt.timeline.busy_time("copy H2D") + rt.timeline.busy_time("copy D2H")
    return t.elapsed, copy_time, out


def offload_csr(system, csr, hx, block=256):
    n = csr.n_rows
    rt = CudaLite(system)
    vals = rt.malloc(max(csr.nnz, 1), np.float32)
    cols = rt.malloc(max(csr.nnz, 1), np.int32)
    rptr = rt.malloc(n + 1, np.int32)
    x = rt.malloc(n)
    y = rt.malloc(n)
    with rt.timer() as t:
        rt.memcpy_h2d(vals, csr.values, pinned=True)
        rt.memcpy_h2d(cols, csr.col_idx, pinned=True)
        rt.memcpy_h2d(rptr, csr.row_ptr, pinned=True)
        rt.memcpy_h2d(x, hx, pinned=True)
        rt.launch(spmv_csr, (n + block - 1) // block, block, vals, cols, rptr, x, y, n)
        out = rt.memcpy_d2h(y, pinned=True)
    copy_time = rt.timeline.busy_time("copy H2D") + rt.timeline.busy_time("copy D2H")
    return t.elapsed, copy_time, out


def main() -> None:
    n = 1024
    rng = np.random.default_rng(11)
    hx = rng.random(n, dtype=np.float32)
    rows = []
    for nnz in (n * 32, n * 8, n * 2, n // 2):
        csr = random_sparse(n, nnz, seed=nnz)
        ref = csr.spmv(hx)
        td, cd, outd = offload_dense(CARINA, csr, hx)
        tc, cc, outc = offload_csr(CARINA, csr, hx)
        assert np.allclose(outd, ref, rtol=1e-3, atol=1e-4)
        assert np.allclose(outc, ref, rtol=1e-3, atol=1e-4)
        rows.append(
            [
                f"{csr.density:.4%}",
                f"{td * 1e3:.2f}",
                f"{cd / td:.0%}",
                f"{tc * 1e3:.3f}",
                f"{cc / tc:.0%}",
                f"{td / tc:.1f}x",
            ]
        )
    print(
        render_table(
            ["density", "dense ms", "dense copy%", "CSR ms", "CSR copy%", "speedup"],
            rows,
            title=f"SpMV offload, {n}x{n}, dense vs CSR on {CARINA.gpu.name}",
        )
    )
    print(
        "\nThe dense layout is transfer-bound at every density; the CSR "
        "advantage\ngrows as nnz falls (paper Fig. 17 reaches 190x at "
        "10240^2)."
    )


if __name__ == "__main__":
    main()
