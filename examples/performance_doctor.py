#!/usr/bin/env python
"""The performance doctor: automatic detection of the paper's patterns.

Launches deliberately-flawed kernels (each exhibiting one CUDAMicroBench
inefficiency) and lets ``repro.host.diagnose`` name the problem and the
microbenchmark demonstrating the fix — the "guide users for performance
optimization" purpose of the paper, automated.

Run:  python examples/performance_doctor.py
"""

import numpy as np

from repro import CARINA, CudaLite
from repro.core.warpdiv import wd_kernel
from repro.host import diagnose
from repro.kernels import (
    axpy_block,
    axpy_cyclic,
    axpy_misaligned,
    reduce_interleaved_bc,
)


def main() -> None:
    rt = CudaLite(CARINA)
    n = 1 << 18
    rng = np.random.default_rng(5)
    hx = rng.random(n, dtype=np.float32)
    hy = rng.random(n, dtype=np.float32)
    x, y, z = rt.to_device(hx), rt.to_device(hy), rt.malloc(n)
    xm = rt.to_device(hx, offset=4)
    ym = rt.to_device(hy, offset=4)
    r = rt.malloc(n // 256)

    cases = [
        ("block-distributed AXPY", rt.launch(axpy_block, 64, 256, x, y, n, 2.0)),
        ("misaligned AXPY", rt.launch(axpy_misaligned, n // 256, 256, xm, ym, n, 2.0)),
        ("parity-branching kernel", rt.launch(wd_kernel, n // 256, 256, x, y, z)),
        ("interleaved reduction", rt.launch(reduce_interleaved_bc, n // 256, 256, x, r)),
        ("clean cyclic AXPY", rt.launch(axpy_cyclic, 1024, 256, x, y, n, 2.0)),
    ]
    rt.synchronize()

    for label, stats in cases:
        findings = diagnose(stats, rt.gpu)
        print(f"\n--- {label} ({stats.name}) ---")
        if not findings:
            print("  no inefficiency patterns detected")
        for f in findings:
            print(f"  {f}")

    print("\nfull profile with doctor annotations:\n")
    print(rt.profile_report(diagnose=True))


if __name__ == "__main__":
    main()
