#!/usr/bin/env python
"""Quickstart: write a kernel, launch it, read the profile.

This is the 60-second tour of the simulator's public API:

1. create a runtime for a preset system (a V100 box),
2. write a CUDA-style kernel against the thread-context API,
3. allocate device memory and launch,
4. read the simulated time and the nvprof-style metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CARINA, CudaLite, kernel


@kernel
def axpy(ctx, x, y, n, a):
    """y[i] += a * x[i] — one element per thread, coalesced."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))


def main() -> None:
    rt = CudaLite(CARINA)
    print(f"system: {rt.system.name}")
    print(f"GPU: {rt.gpu.name} ({rt.gpu.sm_count} SMs, "
          f"{rt.gpu.dram_bandwidth / 1e9:.0f} GB/s DRAM)\n")

    n = 1 << 22
    rng = np.random.default_rng(42)
    hx = rng.random(n, dtype=np.float32)
    hy = np.ones(n, dtype=np.float32)

    x = rt.to_device(hx)
    y = rt.to_device(hy)

    block = 256
    grid = (n + block - 1) // block
    with rt.timer() as t:
        stats = rt.launch(axpy, grid, block, x, y, n, 2.0)

    assert np.allclose(y.to_host(), hy + 2.0 * hx)
    print(f"AXPY over {n:,} elements: {t.elapsed * 1e6:.1f} us simulated")
    print(f"  warps: {stats.warps:,}")
    print(f"  global transactions: {stats.transactions:,.0f} "
          f"({stats.transactions / stats.global_requests:.1f} per request)")
    print(f"  load efficiency: {stats.gld_efficiency:.0%}")
    bw = 3 * n * 4 / t.elapsed
    print(f"  effective bandwidth: {bw / 1e9:.0f} GB/s "
          f"({bw / rt.gpu.dram_bandwidth:.0%} of peak)\n")
    print(rt.profile_report())


if __name__ == "__main__":
    main()
