"""Setup shim for environments without the wheel package (PEP 517 fallback)."""
from setuptools import setup

setup()
