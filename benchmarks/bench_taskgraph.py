"""TaskGraph (paper §III-D): launch-overhead reduction for repeated chains.

The paper includes this benchmark for programmability and reports no
performance figure; the harness quantifies the mechanism anyway — a
repeatedly-executed chain of short kernels submitted per-launch vs as
one instantiated graph.
"""

from benchmarks.common import emit, one_shot
from repro.core.taskgraph import TaskGraphBench

CHAIN_LENGTHS = [2, 4, 8, 16, 32]


def test_taskgraph(benchmark):
    bench = TaskGraphBench()
    res = bench.run()
    sweep = bench.sweep(CHAIN_LENGTHS, iterations=20, n=4096)
    speedups = sweep.speedups("launches", "graph")
    emit(
        "taskgraph",
        sweep.render(),
        f"speedup per chain length: {[f'{s:.2f}x' for s in speedups]}",
        f"headline (chain of 8, 50 iterations): {res.speedup:.2f}x",
        "paper: programmability feature, no performance study",
    )
    assert res.verified
    assert res.speedup > 1.5
    # longer chains amortize the single graph dispatch better
    assert speedups[-1] > speedups[0]
    one_shot(
        benchmark,
        lambda: TaskGraphBench().run(chain_len=8, iterations=10, n=2048),
    )
