"""Fig. 6: concurrent kernels — timelines and the ~7x speedup.

Paper (V100): launching 8 under-utilizing kernels into 8 streams is
about 7x faster than serial launching, visualized with nvvp timelines.
The simulated DES reproduces both the overlap picture and the speedup
(8 small kernels pack onto the idle SMs).
"""

from benchmarks.common import emit, one_shot
from repro.core.conkernels import Conkernels

COUNTS = [1, 2, 4, 8, 16]


def test_fig06_conkernels(benchmark):
    bench = Conkernels()
    res = bench.run(n_kernels=8)
    sweep = bench.sweep(COUNTS)
    speedups = sweep.speedups("serial", "concurrent")
    emit(
        "fig06_conkernels",
        res.notes,  # the two nvvp-style timelines
        sweep.render(),
        f"speedup per kernel count: {[f'{s:.2f}x' for s in speedups]}",
        f"headline with 8 kernels: {res.speedup:.2f}x (paper: ~7x)",
    )
    assert res.verified
    assert 6.0 < res.speedup <= 8.5
    one_shot(benchmark, lambda: Conkernels().run(n_kernels=8, rounds=16))
