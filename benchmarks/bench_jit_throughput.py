"""Trace-JIT sweep throughput: warm-cache jit vs the reference oracle.

Runs the analysis-bound Table I subset — the benchmarks whose wall
clock is dominated by per-access coalescing/bank analysis rather than
by the SIMT lane loop itself — once per backend and reports the warm
replay speedup.  Results are asserted byte-identical before any time is
reported, the reference-vs-jit wall clocks are compared through
``prof diff`` (the one sanctioned cross-backend diff, so the report
carries the ``MISMATCH allowed by flag`` marker), and the whole block
persists to ``BENCH_jit_throughput.json``.

Compute-bound entries (DynParallel dwell loops, TaskGraph chains,
transfer-bound UniMem/MiniTransfer) replay their analyses too but are
body-bound, so they are measured by ``bench_table1`` instead; this file
is the throughput claim for the jit tier, not a second Table I.
"""

import tempfile
import time

from benchmarks.common import emit, one_shot
from repro.core.registry import get_benchmark
from repro.exec import use_backend
from repro.jit import jit_stats, reset_jit_store
from repro.prof.diff import diff_metrics
from repro.prof.metrics import BENCH_SCHEMA

#: the analysis-bound subset, at paper-scale default parameters
SWEEP = ("CoMem", "WarpDivRedux", "HDOverlap", "BankRedux")


def _timed_run(name):
    t0 = time.perf_counter()
    result = get_benchmark(name).run()
    return result.as_dict(), time.perf_counter() - t0


def run_throughput_sweep():
    """One reference pass, one cold jit pass, one warm jit pass."""
    import os

    rows = []
    prev = os.environ.get("REPRO_JIT_CACHE_DIR")
    os.environ["REPRO_JIT_CACHE_DIR"] = tempfile.mkdtemp(prefix="jit-bench-")
    reset_jit_store()
    try:
        for name in SWEEP:
            with use_backend("reference"):
                ref, t_ref = _timed_run(name)
            with use_backend("jit"):
                cold, t_cold = _timed_run(name)
                warm, t_warm = _timed_run(name)
            assert ref == cold == warm, f"{name}: jit diverged from reference"
            # baseline = reference backend, optimized = warm jit; the
            # rows follow the bench-result layout so the document
            # validates as repro-prof-bench/1
            rows.append(
                dict(
                    benchmark=name,
                    baseline_time_s=t_ref,
                    jit_cold_s=t_cold,
                    optimized_time_s=t_warm,
                    speedup=t_ref / t_warm,
                    verified=True,
                )
            )
        stats = jit_stats()
    finally:
        if prev is None:
            os.environ.pop("REPRO_JIT_CACHE_DIR", None)
        else:
            os.environ["REPRO_JIT_CACHE_DIR"] = prev
        reset_jit_store()
    return rows, stats


def test_jit_throughput(benchmark):
    rows, store_stats = run_throughput_sweep()
    total_ref = sum(r["baseline_time_s"] for r in rows)
    total_warm = sum(r["optimized_time_s"] for r in rows)
    aggregate = total_ref / total_warm

    # the sanctioned cross-backend diff: identical analysis quantities,
    # wildly different wall clock
    before = {
        "backend": "reference",
        "kernels": {
            r["benchmark"]: {"time_avg_s": r["baseline_time_s"]} for r in rows
        },
    }
    after = {
        "backend": "jit",
        "kernels": {
            r["benchmark"]: {"time_avg_s": r["optimized_time_s"]} for r in rows
        },
    }
    report = diff_metrics(
        before,
        after,
        before_label="reference",
        after_label="jit-warm",
        allow_backend_mismatch=True,
    )

    lines = [
        f"{'benchmark':14s} {'reference':>10s} {'jit cold':>10s} "
        f"{'jit warm':>10s} {'speedup':>8s}"
    ]
    for r in rows:
        lines.append(
            f"{r['benchmark']:14s} {r['baseline_time_s']:9.2f}s "
            f"{r['jit_cold_s']:9.2f}s {r['optimized_time_s']:9.2f}s "
            f"{r['speedup']:7.2f}x"
        )
    lines.append(
        f"{'aggregate':14s} {total_ref:9.2f}s {'':10s} "
        f"{total_warm:9.2f}s {aggregate:7.2f}x"
    )
    emit(
        "jit_throughput",
        "\n".join(lines),
        report.render(),
        data={
            "schema": BENCH_SCHEMA,
            "sweep_benchmarks": list(SWEEP),
            "results": rows,
            "aggregate_speedup": aggregate,
            "reference_total_s": total_ref,
            "jit_warm_total_s": total_warm,
            "prof_diff": {
                "before_backend": report.before_backend,
                "after_backend": report.after_backend,
                "ok": report.ok,
                "rendered": report.render(),
            },
            "store": store_stats,
        },
        root_name="BENCH_jit_throughput.json",
    )
    assert report.ok, "warm jit regressed a wall clock past tolerance"
    # the committed BENCH_jit_throughput.json records >=5x on the
    # reference machine; keep the in-tree floor loose enough for
    # loaded CI runners while still catching a broken replay path
    assert aggregate >= 2.0, f"warm jit only {aggregate:.2f}x over reference"
    one_shot(benchmark, lambda: None)
