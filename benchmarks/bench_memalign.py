"""MemAlign (paper §IV-C): aligned vs misaligned AXPY.

Paper: aligned ~3% faster on a V100 (the extra boundary segments mostly
hit in cache; on L1-less parts the effect is larger).  The simulated
gap is ~3%, and running the same pair on the K80 preset shows the
larger uncached-path penalty the paper describes.
"""

from benchmarks.common import emit, one_shot
from repro.arch.presets import FORNAX
from repro.core.memalign import MemAlign

SIZES = [1 << k for k in range(19, 23)]


def test_memalign(benchmark):
    bench = MemAlign()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 22)
    res_k80 = MemAlign(FORNAX).run(n=1 << 21)
    speedups = sweep.speedups("misaligned", "aligned")
    emit(
        "memalign",
        sweep.render(),
        f"aligned speedup per size (V100): {[f'{s:.3f}x' for s in speedups]}",
        f"headline V100: {res.speedup:.3f}x (paper: ~3%, Table I 1.1x)",
        f"K80 (no L1 for global loads): {res_k80.speedup:.3f}x — larger, "
        "as §IV-C predicts for parts without L1",
        f"transactions per request: aligned "
        f"{res.metrics['aligned_transactions_per_request']:.2f} vs misaligned "
        f"{res.metrics['misaligned_transactions_per_request']:.2f}",
    )
    assert res.verified and res_k80.verified
    assert 1.0 < res.speedup < 1.15
    assert res_k80.speedup >= res.speedup * 0.98
    one_shot(benchmark, lambda: MemAlign().run(n=1 << 20))
