"""Fig. 13: reduction with and without shared-memory bank conflicts.

Paper (V100): the sequential-addressing kernel is ~1.3x faster, with
the advantage growing with array size.  The simulated interleaved
kernel pays exactly the 2-, 4-, ..., 32-way serialized passes of
paper Fig. 12.
"""

from benchmarks.common import emit, one_shot
from repro.core.bankredux import BankRedux

SIZES = [1 << k for k in range(16, 22)]


def test_fig13_bankredux(benchmark):
    bench = BankRedux()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 21)
    speedups = sweep.speedups("with conflicts", "without conflicts")
    emit(
        "fig13_bankredux",
        sweep.render(),
        f"conflict-free speedup per size: {[f'{s:.2f}x' for s in speedups]}",
        f"shared efficiency: interleaved "
        f"{res.metrics['bc_shared_efficiency']:.0%} vs sequential "
        f"{res.metrics['seq_shared_efficiency']:.0%}",
        f"headline: {res.speedup:.2f}x (paper: ~1.3x average)",
        data={
            "schema": "repro-prof-bench/1",
            "sweep": sweep.as_dict(),
            "speedups": speedups,
            "headline": res.as_dict(),
        },
    )
    assert res.verified
    assert all(s > 1.0 for s in speedups)
    one_shot(benchmark, lambda: BankRedux().run(n=1 << 18))
