"""Fig. 11: reduction with warp shuffle.

Paper (V100): shuffle improves the reduction by ~25% at N = 2^27, with
the advantage growing as the input grows.  The simulated win comes from
the same mechanism — five fewer barriers and no shared traffic in the
warp-level tail.
"""

from benchmarks.common import emit, one_shot
from repro.core.shuffle import Shuffle

SIZES = [1 << k for k in range(17, 23)]


def test_fig11_shuffle(benchmark):
    bench = Shuffle()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 22)
    speedups = sweep.speedups("traditional", "shuffle")
    emit(
        "fig11_shuffle",
        sweep.render(),
        f"shuffle speedup per size: {[f'{s:.3f}x' for s in speedups]}",
        f"barriers per block: {res.metrics['seq_barriers'] / 1.0:.0f} -> "
        f"{res.metrics['shfl_barriers']:.0f}; shared requests "
        f"{res.metrics['seq_shared_requests']:.3e} -> "
        f"{res.metrics['shfl_shared_requests']:.3e}",
        f"headline at 2^22: {res.speedup:.3f}x (paper: ~1.25x at 2^27)",
    )
    assert res.verified
    assert all(s > 1.0 for s in speedups)
    one_shot(benchmark, lambda: Shuffle().run(n=1 << 20))
