"""Table I: the fourteen-benchmark summary.

Runs every microbenchmark at its default (scaled) parameters on its
paper-faithful default system and prints the measured speedups beside
the paper's reported column.
"""

from benchmarks.common import emit, one_shot, scheduler_jobs
from repro.core.suite import run_suite
from repro.sched import parallel_suite

#: moderately scaled defaults: every benchmark shows its paper direction
#: while the whole table regenerates in a few minutes.
OVERRIDES = {
    "DynParallel": dict(size=1024),
    "Shmem": dict(n=256),
    "MiniTransfer": dict(n=1024, nnz=4096),
    "UniMem": dict(n=1 << 23, stride=1 << 16),
}


def test_table1(benchmark):
    jobs = scheduler_jobs()
    if jobs > 1:
        report = parallel_suite(OVERRIDES, jobs=jobs)
    else:
        report = run_suite(overrides=OVERRIDES)
    lines = [report.render(), ""]
    lines.append("per-benchmark detail:")
    lines.extend(f"  {r}" for r in report.results)
    emit(
        "table1_summary",
        "\n".join(lines),
        data=report.as_dict(),
        root_name="BENCH_table1.json",
    )
    assert report.all_verified
    # representative member for the timed harness
    one_shot(benchmark, lambda: run_suite(
        overrides={**OVERRIDES,
                   "DynParallel": dict(size=128, max_dwell=64),
                   "MiniTransfer": dict(n=256, nnz=1024),
                   "UniMem": dict(n=1 << 20, stride=1 << 14),
                   "Shmem": dict(n=64),
                   "CoMem": dict(n=1 << 19)}))
