"""Shmem (paper §IV-A): matmul with and without shared-memory tiling.

Paper: ~20-25% on a V100 at 2048^2 (caches already capture part of the
naive kernel's reuse).  The simulated matrices are smaller; the win
stays in the same modest band and grows slightly with size.
"""

from benchmarks.common import emit, one_shot
from repro.core.shmem import Shmem

SIZES = [64, 128, 256, 384]


def test_shmem(benchmark):
    bench = Shmem()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=256)
    speedups = sweep.speedups("global-only", "shared-tiled")
    emit(
        "shmem",
        sweep.render(),
        f"speedup per matrix order: {[f'{s:.2f}x' for s in speedups]}",
        f"headline at 256: {res.speedup:.2f}x (paper: 1.25x average at 2048)",
        f"DRAM traffic: naive {res.metrics['naive_dram_bytes'] / 2**20:.1f} MiB "
        f"vs tiled {res.metrics['tiled_dram_bytes'] / 2**20:.1f} MiB",
    )
    assert res.verified
    assert all(s > 1.0 for s in speedups)
    one_shot(benchmark, lambda: Shmem().run(n=128))
