"""Fig. 14: overlapping host-device copies with kernel execution.

Paper (V100): chunked ``cudaMemcpyAsync`` pipelines give AXPY only
1.036x — the 1:1 movement-to-compute ratio leaves little to hide.  The
simulated pipeline lands in the same small-win band, and raising the
kernel's arithmetic intensity (``rounds``) grows the benefit, which is
exactly the paper's point about the balance.
"""

from benchmarks.common import emit, one_shot
from repro.core.hdoverlap import HDOverlap

SIZES = [1 << k for k in range(19, 23)]


def test_fig14_hdoverlap(benchmark):
    bench = HDOverlap()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 22)
    speedups = sweep.speedups("synchronous", "async streams")
    heavy = bench.run(n=1 << 21, rounds=256)
    emit(
        "fig14_hdoverlap",
        sweep.render(),
        f"async speedup per size (AXPY, rounds=1): "
        f"{[f'{s:.3f}x' for s in speedups]}",
        f"headline: {res.speedup:.3f}x (paper: 1.036x best for AXPY)",
        f"with 256x the arithmetic per element: {heavy.speedup:.3f}x — "
        "compute-heavy kernels hide more of the transfer",
    )
    assert res.verified and heavy.verified
    assert all(s > 1.0 for s in speedups)
    assert heavy.speedup > res.speedup
    one_shot(benchmark, lambda: HDOverlap().run(n=1 << 20))
