"""Fig. 17: SpMV offload in dense vs CSR layout as sparsity grows.

Paper (V100, 10240^2): the CSR advantage grows as nnz falls, reaching
190x at the sparsest point — the dense offload is dominated by shipping
400 MB of zeros.  The simulated matrix is 1024^2 (the dense kernel is
interpreted), where the same transfer arithmetic tops out around
20-30x; the dense transfer volume scales as n^2 while CSR scales as
nnz, so the paper's 190x is the same curve evaluated at 10240.
"""

from benchmarks.common import emit, one_shot
from repro.core.minitransfer import MiniTransfer

N = 1024
NNZS = [N * 64, N * 16, N * 4, N, N // 4]


def test_fig17_minitransfer(benchmark):
    bench = MiniTransfer()
    sweep = bench.sweep(NNZS, n=N)
    res = bench.run(n=N, nnz=N // 4)
    speedups = sweep.speedups("dense", "CSR")
    emit(
        "fig17_minitransfer",
        sweep.render(),
        f"CSR speedup per nnz: {[f'{s:.1f}x' for s in speedups]}",
        f"transfer bytes at sparsest point: dense "
        f"{res.metrics['dense_transfer_bytes'] / 2**20:.1f} MiB vs CSR "
        f"{res.metrics['csr_transfer_bytes'] / 2**10:.1f} KiB",
        f"headline: {res.speedup:.1f}x at n={N} "
        "(paper: 190x best at n=10240 — same transfer arithmetic)",
    )
    assert res.verified
    # the paper's shape: sparser -> bigger CSR advantage (tolerate
    # sub-percent kernel-time jitter between near-flat points)
    assert all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 10.0
    one_shot(benchmark, lambda: MiniTransfer().run(n=256, nnz=1024))
