"""Ablations of the architecture-model choices DESIGN.md calls out.

Three single-knob experiments that show *which* modelled mechanism
produces each paper result:

1. **L1 bypass flag** — giving the V100 Kepler's
   ``global_loads_cached_in_l1=False`` + derated uncached path recreates
   the Fig. 15 texture gap on an otherwise-Volta chip; flipping Kepler
   to cached loads removes it.  The single flag carries the effect.
2. **Copy-engine count** — HDOverlap's pipeline win shrinks when the
   simulated device has one DMA engine instead of two (D2H can no
   longer ride alongside H2D).
3. **DRAM burst granularity** — CoMem's block-distribution penalty
   drops when sectors are modelled as free-standing (burst = sector),
   confirming the 64-byte-burst overfetch term contributes the gap
   between transaction-ratio and time-ratio.
"""

import numpy as np

from benchmarks.common import emit, one_shot
from repro.arch.presets import CARINA, FORNAX, TESLA_K80, TESLA_V100
from repro.core.comem import CoMem
from repro.core.hdoverlap import HDOverlap
from repro.core.readonly import ReadOnlyMem


def test_ablation_l1_bypass(benchmark):
    stock_v100 = ReadOnlyMem(CARINA).run(n=512)
    keplerized = CARINA.evolve(
        gpu=TESLA_V100.evolve(
            global_loads_cached_in_l1=False,
            uncached_path_efficiency=TESLA_K80.uncached_path_efficiency,
            texture_cache_dedicated=True,
        ),
        name="V100 with Kepler load path",
    )
    bypass_v100 = ReadOnlyMem(keplerized).run(n=512)
    volta_ized = FORNAX.evolve(
        gpu=TESLA_K80.evolve(
            global_loads_cached_in_l1=True,
            uncached_path_efficiency=1.0,
            texture_cache_dedicated=False,
        ),
        name="K80 with Volta load path",
    )
    cached_k80 = ReadOnlyMem(volta_ized).run(n=512)
    stock_k80 = ReadOnlyMem(FORNAX).run(n=512)
    emit(
        "ablation_l1_bypass",
        "texture-vs-global speedup (matrix add, 512^2):",
        f"  stock V100 (cached loads)      : {stock_v100.speedup:.2f}x",
        f"  V100 + Kepler load path        : {bypass_v100.speedup:.2f}x",
        f"  stock K80 (uncached loads)     : {stock_k80.speedup:.2f}x",
        f"  K80 + Volta load path          : {cached_k80.speedup:.2f}x",
        "the Fig. 15 architecture gap follows the load-path flag, not "
        "the rest of the chip",
    )
    assert bypass_v100.speedup > 1.5 > stock_v100.speedup
    assert stock_k80.speedup > 1.5 > cached_k80.speedup
    one_shot(benchmark, lambda: ReadOnlyMem(keplerized).run(n=256))


def test_ablation_copy_engines(benchmark):
    dual = HDOverlap(CARINA).run(n=1 << 21)
    single_sys = CARINA.evolve(
        gpu=CARINA.gpu.evolve(copy_engines=1), name="V100, one DMA engine"
    )
    single = HDOverlap(single_sys).run(n=1 << 21)
    emit(
        "ablation_copy_engines",
        f"HDOverlap pipeline speedup: dual engines {dual.speedup:.3f}x vs "
        f"single engine {single.speedup:.3f}x",
        "with one DMA engine the D2H of chunk i cannot overlap the H2D of "
        "chunk i+1; only kernel time hides, and the extra per-chunk "
        "transfer latency eats it — the near-1x regime the paper measured",
    )
    assert dual.speedup > single.speedup
    assert 0.9 <= single.speedup <= 1.1
    one_shot(benchmark, lambda: HDOverlap(single_sys).run(n=1 << 19))


def test_ablation_model_beta(benchmark):
    """Sensitivity of small-effect benchmarks to the overlap constant beta.

    ``beta`` is the timing model's single global calibration (DESIGN.md
    §5): with perfect overlap (beta=0) sub-dominant costs vanish and
    MemAlign/WarpDivRedux would show ~0%; the default 0.25 produces the
    paper's few-percent effects; order-of-magnitude results (CoMem) are
    insensitive to it.
    """
    from repro.host.runtime import CudaLite
    from repro.kernels.axpy import axpy_aligned, axpy_block, axpy_cyclic, axpy_misaligned
    from repro.timing.model import estimate_kernel_time

    n = 1 << 21
    rt = CudaLite(CARINA)
    rng = np.random.default_rng(0)
    hx = rng.random(n, dtype=np.float32)
    hy = rng.random(n, dtype=np.float32)
    x, y = rt.to_device(hx), rt.to_device(hy)
    xm, ym = rt.to_device(hx, offset=4), rt.to_device(hy, offset=4)
    s_al = rt.launch(axpy_aligned, n // 256, 256, x, y, n, 2.0)
    s_mis = rt.launch(axpy_misaligned, n // 256, 256, xm, ym, n, 2.0)
    s_blk = rt.launch(axpy_block, 1024, 256, x, y, n, 2.0)
    s_cyc = rt.launch(axpy_cyclic, 1024, 256, x, y, n, 2.0)
    rt.synchronize()
    gpu = CARINA.gpu

    lines = ["beta    MemAlign speedup    CoMem speedup"]
    results = {}
    for beta in (0.0, 0.1, 0.25, 0.5):
        align = (
            estimate_kernel_time(s_mis, gpu, beta=beta).exec_s
            / estimate_kernel_time(s_al, gpu, beta=beta).exec_s
        )
        comem = (
            estimate_kernel_time(s_blk, gpu, beta=beta).exec_s
            / estimate_kernel_time(s_cyc, gpu, beta=beta).exec_s
        )
        results[beta] = (align, comem)
        lines.append(f"{beta:<7} {align:<19.4f} {comem:.2f}")
    emit(
        "ablation_model_beta",
        "\n".join(lines),
        "MemAlign's few-percent effect rides on beta; CoMem's order of "
        "magnitude does not — the calibration cannot fake the headline "
        "results",
    )
    assert results[0.0][0] < results[0.5][0]          # beta drives MemAlign
    assert abs(results[0.0][1] - results[0.5][1]) < 0.35 * results[0.25][1]
    one_shot(
        benchmark,
        lambda: estimate_kernel_time(s_blk, gpu, beta=0.25).exec_s,
    )
