"""Fig. 3: warp divergence (WD vs noWD) over problem sizes.

Paper: noWD ~1.1x faster on average; nvprof warp execution efficiency
85.71% vs 100%.  The simulated efficiencies are 60% vs 100% (our kernel
body is a larger fraction of the instruction stream), and the speedup
lands in the same "memory-bound kernel, small win" regime.
"""

from benchmarks.common import emit, one_shot
from repro.core.warpdiv import WarpDivRedux

SIZES = [1 << k for k in range(17, 23)]


def test_fig03_warpdiv(benchmark):
    bench = WarpDivRedux()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 22)
    speedups = sweep.speedups("WD", "noWD")
    emit(
        "fig03_warpdiv",
        sweep.render(),
        f"speedup (WD/noWD) per size: {[f'{s:.3f}x' for s in speedups]}",
        f"warp execution efficiency: WD "
        f"{res.metrics['wd_warp_execution_efficiency']:.1%} vs noWD "
        f"{res.metrics['nowd_warp_execution_efficiency']:.1%} "
        f"(paper: 85.71% vs 100%)",
        f"headline: {res.speedup:.3f}x (paper: 1.1x average)",
        data={
            "schema": "repro-prof-bench/1",
            "sweep": sweep.as_dict(),
            "speedups": speedups,
            "headline": res.as_dict(),
        },
    )
    assert res.verified
    assert all(s > 1.0 for s in speedups)
    one_shot(benchmark, lambda: WarpDivRedux().run(n=1 << 19))
