"""Fig. 16: memory-access density (explicit copies vs unified memory).

Paper (V100): at high stride (low density) unified memory is ~3x
faster because only the touched pages migrate; at stride 1 the paging
machinery makes it slightly slower than explicit bulk copies.  Both
regimes and the crossover reproduce.
"""

from benchmarks.common import emit, one_shot
from repro.core.unimem import UniMem

STRIDES = [1, 1 << 8, 1 << 12, 1 << 14, 1 << 16, 1 << 17]
N = 1 << 23


def test_fig16_unimem(benchmark):
    bench = UniMem()
    sweep = bench.sweep(STRIDES, n=N)
    res = bench.run(n=N, stride=1 << 16)
    speedups = sweep.speedups("explicit copy", "unified memory")
    emit(
        "fig16_unimem",
        sweep.render(),
        f"unified-memory speedup per stride: {[f'{s:.2f}x' for s in speedups]}",
        f"headline at stride 2^16: {res.speedup:.2f}x (paper: ~3x average "
        "at low density)",
        f"pages touched per array: {res.metrics['um_touched_pages_per_array']:.0f} "
        f"of {N * 4 // bench.system.gpu.um_page_bytes}",
    )
    assert res.verified
    assert speedups[0] < 1.0          # dense access: UM pays overhead
    assert speedups[-1] > 2.0          # sparse access: UM wins big
    # monotone in stride up to sub-percent kernel-time jitter
    assert all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))
    one_shot(benchmark, lambda: UniMem().run(n=1 << 20, stride=1 << 14))
