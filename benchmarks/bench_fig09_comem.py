"""Fig. 9: coalesced vs uncoalesced AXPY (block vs cyclic distribution).

Paper (V100, ``<<<1024, 256>>>``): cyclic ~18x faster.  The simulator
reproduces the mechanism exactly — 16-32x the transactions, 8-16x the
DRAM traffic — and lands at ~15x at the largest size.
"""

from benchmarks.common import emit, one_shot
from repro.core.comem import CoMem

SIZES = [1 << k for k in range(19, 23)]


def test_fig09_comem(benchmark):
    bench = CoMem()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 22)
    speedups = sweep.speedups("BLOCK", "CYCLIC")
    emit(
        "fig09_comem",
        sweep.render(),
        f"speedup per size: {[f'{s:.1f}x' for s in speedups]}",
        f"transactions per request: block "
        f"{res.metrics['block_transactions_per_request']:.1f} vs cyclic "
        f"{res.metrics['cyclic_transactions_per_request']:.1f}",
        f"load efficiency: block {res.metrics['block_gld_efficiency']:.0%} "
        f"vs cyclic {res.metrics['cyclic_gld_efficiency']:.0%}",
        f"headline at 2^22: {res.speedup:.1f}x (paper: ~18x)",
        data={
            "schema": "repro-prof-bench/1",
            "sweep": sweep.as_dict(),
            "speedups": speedups,
            "headline": res.as_dict(),
        },
    )
    assert res.verified
    assert res.speedup > 8.0
    one_shot(benchmark, lambda: CoMem().run(n=1 << 20))
