"""Fig. 5: dynamic parallelism (escape time vs Mariani-Silver).

Paper (RTX 3080): Mariani-Silver loses at 2000^2 (launch overhead
outweighs the saved work) and wins 3.26x at 16000^2.  The simulated
sweep is scaled to 128..1024 pixels; the crossover reproduces at
proportionally smaller sizes (0.3x at 128 -> ~1.3x at 1024, and ~2.2x
at 2048 if you extend the sweep — see EXPERIMENTS.md).
"""

from benchmarks.common import emit, one_shot
from repro.core.dynparallel import DynParallel

SIZES = [128, 256, 512, 1024]


def test_fig05_dynparallel(benchmark):
    bench = DynParallel()
    sweep = bench.sweep(SIZES)
    speedups = sweep.speedups("escape time", "Mariani-Silver")
    emit(
        "fig05_dynparallel",
        sweep.render(),
        f"speedup per size: {[f'{s:.2f}x' for s in speedups]}",
        "paper: <1x at 2000^2, 3.26x at 16000^2 - same crossover shape "
        "at simulation scale",
    )
    # the paper's shape: losing small, winning large
    assert speedups[0] < 1.0
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.0
    one_shot(benchmark, lambda: DynParallel().run(size=256, max_dwell=64))
