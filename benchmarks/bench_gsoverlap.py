"""GSOverlap (paper §IV-D): global->shared staging with memcpy_async.

Paper (RTX 3080): the async copy is 1.04x faster for a shared-staged
AXPY.  The simulated gap comes from the same mechanism — the register
round trip and the separate shared-store slot disappear — and lands at
~1.01x, in the same "small but consistent" band (the kernel is
bandwidth-bound either way).
"""

from benchmarks.common import emit, one_shot
from repro.core.gsoverlap import GSOverlap

SIZES = [1 << k for k in range(19, 23)]


def test_gsoverlap(benchmark):
    bench = GSOverlap()
    sweep = bench.sweep(SIZES)
    res = bench.run(n=1 << 22)
    speedups = sweep.speedups("register-staged", "memcpy_async")
    emit(
        "gsoverlap",
        sweep.render(),
        f"async speedup per size: {[f'{s:.4f}x' for s in speedups]}",
        f"issue cycles: staged {res.metrics['sync_issue_cycles']:.3e} vs "
        f"async {res.metrics['async_issue_cycles']:.3e}",
        f"headline: {res.speedup:.4f}x (paper: 1.04x best)",
    )
    assert res.verified
    assert all(s >= 1.0 for s in speedups)
    one_shot(benchmark, lambda: GSOverlap().run(n=1 << 20))
