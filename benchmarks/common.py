"""Shared helpers for the figure/table regeneration harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it
runs the corresponding microbenchmark sweep, prints the same rows or
series the paper reports (visible with ``pytest -s`` and persisted
under ``benchmarks/results/``), and registers a representative run with
pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` also tracks
the harness's own wall-clock cost.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

__all__ = ["emit", "RESULTS_DIR", "REPO_ROOT", "one_shot", "scheduler_jobs"]


def scheduler_jobs(default: int = 1) -> int:
    """Worker-pool width for the harness (``REPRO_BENCH_JOBS`` env).

    Lets CI regenerate figures through the :mod:`repro.sched` pool
    without editing every ``bench_*.py``; results are byte-identical to
    the serial run, so the default stays 1.
    """
    try:
        return max(int(os.environ.get("REPRO_BENCH_JOBS", default)), 1)
    except ValueError:
        return default


def emit(
    tag: str,
    *blocks: str,
    data: dict[str, Any] | None = None,
    root_name: str | None = None,
) -> str:
    """Print and persist a figure/table reproduction block.

    ``data`` additionally writes a machine-readable document through the
    :mod:`repro.prof.metrics` exporter to ``results/<tag>.json`` (and,
    when ``root_name`` is given, to that filename at the repo root),
    so figure/table numbers are diffable without re-parsing text.
    """
    text = "\n\n".join(str(b).rstrip() for b in blocks if str(b).strip())
    banner = f"\n{'=' * 74}\n{tag}\n{'=' * 74}\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{tag}.txt").write_text(text + "\n")
    if data is not None:
        from repro.exec import current_backend_name
        from repro.prof.metrics import write_metrics

        # provenance stamp; results themselves are backend-invariant
        data = {**data, "backend": current_backend_name()}
        write_metrics(RESULTS_DIR / f"{tag}.json", data)
        if root_name is not None:
            write_metrics(REPO_ROOT / root_name, data)
    return text


def one_shot(benchmark, fn):
    """Register ``fn`` with pytest-benchmark for a single timed round.

    The simulations are deterministic, so repeated rounds only measure
    interpreter noise; one round keeps the harness fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
