"""Shared helpers for the figure/table regeneration harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it
runs the corresponding microbenchmark sweep, prints the same rows or
series the paper reports (visible with ``pytest -s`` and persisted
under ``benchmarks/results/``), and registers a representative run with
pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` also tracks
the harness's own wall-clock cost.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["emit", "RESULTS_DIR", "one_shot"]


def emit(tag: str, *blocks: str) -> str:
    """Print and persist a figure/table reproduction block."""
    text = "\n\n".join(str(b).rstrip() for b in blocks if str(b).strip())
    banner = f"\n{'=' * 74}\n{tag}\n{'=' * 74}\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{tag}.txt").write_text(text + "\n")
    return text


def one_shot(benchmark, fn):
    """Register ``fn`` with pytest-benchmark for a single timed round.

    The simulations are deterministic, so repeated rounds only measure
    interpreter noise; one round keeps the harness fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
