"""Fig. 15: read-only data placement (global vs 1-D/2-D texture).

Paper: up to ~4x from texture memory on the K80 (whose global loads
bypass the L1) and no significant difference on the V100 (unified
texture/L1) — the architecture-dependence message of §V-B.  Both
halves reproduce.
"""

from benchmarks.common import emit, one_shot
from repro.arch.presets import CARINA
from repro.core.readonly import ReadOnlyMem

SIZES = [256, 512, 1024, 1536]


def test_fig15_readonly(benchmark):
    k80 = ReadOnlyMem()
    sweep_k80 = k80.sweep(SIZES)
    res_k80 = k80.run(n=1024)
    res_v100 = ReadOnlyMem(CARINA).run(n=1024)
    speedups = sweep_k80.speedups("global", "tex2D")
    emit(
        "fig15_readonly",
        sweep_k80.render(),
        f"tex2D speedup per size on K80: {[f'{s:.2f}x' for s in speedups]}",
        f"headline K80: {res_k80.speedup:.2f}x (paper: up to ~4x)",
        f"same experiment on V100: {res_v100.speedup:.2f}x "
        "(paper: no significant difference)",
    )
    assert res_k80.verified and res_v100.verified
    assert res_k80.speedup > 1.5
    assert 0.8 < res_v100.speedup < 1.3
    one_shot(benchmark, lambda: ReadOnlyMem().run(n=512))
