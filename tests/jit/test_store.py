"""ArtifactStore: memo + disk tiers, poisoning, corruption recovery."""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.jit import JIT_SCHEMA, ArtifactStore, default_store, jit_stats, reset_jit_store
from repro.jit.codegen import GlobalEvent, compile_artifact, generate_source
from repro.jit.guards import lane_fingerprint
from repro.mem.coalesce import AccessSummary

KEY = "cd" * 32


def _artifact(key=KEY):
    addrs = np.arange(64) * 4
    ev = GlobalEvent(
        fp=lane_fingerprint(addrs, None),
        itemsize=4,
        warp_size=32,
        transaction_bytes=128,
        sector_bytes=32,
        summary=AccessSummary(
            n_warps=2, n_active_lanes=64, transactions=4.0, sectors=8.0,
            bursts=4.0, unique_sectors=8.0, unique_bursts=4.0,
            bytes_requested=256, sample_fraction=1.0,
        ),
    )
    return compile_artifact(key, "k", generate_source(key, "k", [ev]))


class TestMemoTier:
    def test_put_then_lookup(self, tmp_path):
        store = ArtifactStore(tmp_path / "jit")
        assert store.lookup(KEY) is None
        store.put(KEY, _artifact())
        art = store.lookup(KEY)
        assert art is not None and art.key == KEY
        assert store.stats()["memo_hits"] == 1
        assert store.stats()["misses"] == 1

    def test_memory_only_mode(self, tmp_path):
        store = ArtifactStore("off")
        store.put(KEY, _artifact())
        assert store.lookup(KEY) is not None
        assert store.stats()["persistent"] is False
        # nothing written anywhere
        assert not (tmp_path / "off").exists()


class TestDiskTier:
    def test_cross_store_reuse(self, tmp_path):
        """A second store on the same directory compiles from disk."""
        root = tmp_path / "jit"
        ArtifactStore(root).put(KEY, _artifact())
        fresh = ArtifactStore(root)
        art = fresh.lookup(KEY)
        assert art is not None and art.kernel == "k"
        assert fresh.stats()["disk_hits"] == 1
        # promoted to the memo: second lookup skips the disk
        fresh.lookup(KEY)
        assert fresh.stats()["memo_hits"] == 1

    def test_corrupt_source_recomputes(self, tmp_path):
        """A persisted artifact that no longer compiles is a miss."""
        root = tmp_path / "jit"
        store = ArtifactStore(root)
        store.put(KEY, _artifact())
        # corrupt every payload's source in place
        for p in Path(root).rglob("*.json"):
            doc = json.loads(p.read_text())
            payload = doc.get("payload", doc)
            if payload.get("schema") == JIT_SCHEMA and "source" in payload:
                payload["source"] = "def ("  # syntax error
                p.write_text(json.dumps(doc))
        fresh = ArtifactStore(root)
        assert fresh.lookup(KEY) is None
        assert fresh.stats()["misses"] == 1

    def test_poison_persists(self, tmp_path):
        root = tmp_path / "jit"
        store = ArtifactStore(root)
        store.put(KEY, _artifact())
        store.poison(KEY)
        assert store.lookup(KEY) is None
        assert store.is_poisoned(KEY)
        # a fresh process sees the ban, not the stale artifact
        fresh = ArtifactStore(root)
        assert fresh.lookup(KEY) is None
        assert fresh.is_poisoned(KEY)

    def test_unwritable_directory_degrades(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        store = ArtifactStore(blocker / "jit")
        store.put(KEY, _artifact())  # must not raise
        assert store.stats()["disk_errors"] == 1
        assert store.stats()["persistent"] is False
        assert store.lookup(KEY) is not None  # memo still works


class TestGlobalStore:
    def test_env_var_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path / "here"))
        reset_jit_store()
        try:
            assert default_store().root == str(tmp_path / "here")
            assert jit_stats()["dir"] == str(tmp_path / "here")
            assert default_store() is default_store()
        finally:
            reset_jit_store()

    def test_stats_shape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", "off")
        reset_jit_store()
        try:
            stats = jit_stats()
        finally:
            reset_jit_store()
        assert set(stats) == {
            "dir", "persistent", "memo_hits", "disk_hits", "misses",
            "stores", "poisoned", "disk_errors",
        }
