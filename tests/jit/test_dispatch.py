"""JitDispatch life-cycle: record, replay, bail out, degrade safely."""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.host.runtime import CudaLite
from repro.jit import default_store, reset_jit_store
from repro.simt.kernel import kernel


@pytest.fixture
def jit_env(tmp_path, monkeypatch):
    """Fresh global store over a private disk directory."""
    monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path / "jit"))
    reset_jit_store()
    yield
    reset_jit_store()


@kernel
def saxpy(ctx, x, y, a, n):
    i = ctx.global_thread_id()
    ctx.if_active(
        i < n, lambda: ctx.store(y, i, ctx.load(y, i) + a * ctx.load(x, i))
    )


@kernel
def gather(ctx, out, x, idx, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(out, i, ctx.load(x, ctx.load(idx, i))))


@kernel
def dwell(ctx, x, steps, n):
    # per-lane data-dependent trip count: the number of global accesses
    # this launch issues depends on device *contents*, not the key
    i = ctx.global_thread_id()
    s = ctx.load(steps, i)
    cnt = ctx.zeros(np.int64)

    def body():
        nonlocal cnt
        ctx.store(x, i, ctx.load(x, i) + 1.0)
        cnt = ctx.masked(cnt, cnt + 1)
        return cnt < s

    ctx.while_active(cnt < s, body)


@kernel
def exploding(ctx, x, n):
    ctx.load(x, ctx.global_thread_id())
    raise RuntimeError("injected kernel fault")


def _saxpy_rt(n=1 << 12):
    rt = CudaLite(CARINA, backend="jit")
    x = rt.to_device(np.arange(n, dtype=np.float32))
    y = rt.to_device(np.ones(n, dtype=np.float32))
    return rt, x, y, n


class TestRecordReplay:
    def test_second_launch_replays(self, jit_env):
        rt, x, y, n = _saxpy_rt()
        rt.launch(saxpy, n // 256, 256, x, y, 2.0, n)
        c = rt.dispatch.counters
        assert (c.jit_traced, c.jit_compiled, c.jit_replayed) == (1, 1, 0)
        rt.launch(saxpy, n // 256, 256, x, y, 2.0, n)
        assert rt.dispatch.counters.jit_replayed == 1
        assert rt.dispatch.counters.global_jit > 0
        assert rt.dispatch.counters.jit_bailouts == 0

    def test_replay_result_identical(self, jit_env):
        host = np.arange(1 << 12, dtype=np.float32)
        outs = []
        for _ in range(2):  # second process-alike run replays from disk
            reset_jit_store()
            rt = CudaLite(CARINA, backend="jit")
            x = rt.to_device(host)
            y = rt.to_device(np.ones_like(host))
            rt.launch(saxpy, len(host) // 256, 256, x, y, 2.0, len(host))
            outs.append(y.to_host().tobytes())
        assert outs[0] == outs[1]

    def test_cross_runtime_replay_via_store(self, jit_env):
        """Deterministic allocation ⇒ a fresh runtime hits the artifact."""
        rt1, x1, y1, n = _saxpy_rt()
        rt1.launch(saxpy, n // 256, 256, x1, y1, 2.0, n)
        rt2, x2, y2, n = _saxpy_rt()
        rt2.launch(saxpy, n // 256, 256, x2, y2, 2.0, n)
        c2 = rt2.dispatch.counters
        assert c2.jit_traced == 0 and c2.jit_replayed == 1

    def test_kernel_counters_equal_under_replay(self, jit_env):
        rt, x, y, n = _saxpy_rt()
        rt.launch(saxpy, n // 256, 256, x, y, 2.0, n)
        rt.launch(saxpy, n // 256, 256, x, y, 2.0, n)
        first, second = (stats.counters() for stats, _ in rt.kernel_log)
        assert first == second


class TestBailout:
    def test_guard_fail_degrades_and_poisons(self, jit_env):
        n = 1 << 10
        rt = CudaLite(CARINA, backend="jit")
        out = rt.malloc(n, np.float32)
        x = rt.to_device(np.arange(n, dtype=np.float32))
        idx = rt.to_device(np.arange(n, dtype=np.int64))
        rt.launch(gather, n // 128, 128, out, x, idx, n)  # record
        # same key (in-place rewrite), different address stream
        idx.fill_from(np.arange(n, dtype=np.int64)[::-1].copy())
        rt.launch(gather, n // 128, 128, out, x, idx, n)  # replay -> bail
        c = rt.dispatch.counters
        assert c.jit_replayed == 1 and c.jit_bailouts == 1
        # the bailed launch still computed the right thing on reference
        assert np.array_equal(
            out.to_host(), x.to_host()[::-1]
        )
        # third launch goes straight to reference: key is poisoned
        rt.launch(gather, n // 128, 128, out, x, idx, n)
        c = rt.dispatch.counters
        assert c.jit_replayed == 1 and c.jit_traced == 1
        assert default_store().stats()["poisoned"] == 1

    def test_trace_exhaustion_bails(self, jit_env):
        n = 256
        rt = CudaLite(CARINA, backend="jit")
        x = rt.to_device(np.zeros(n, np.float32))
        steps = rt.to_device(np.full(n, 2, np.int64))
        rt.launch(dwell, 2, 128, x, steps, n)  # record: 2 iterations
        steps.fill_from(np.full(n, 4, np.int64))  # same key, longer loop
        rt.launch(dwell, 2, 128, x, steps, n)
        c = rt.dispatch.counters
        assert c.jit_bailouts == 1
        # every lane still dwelled the full 4 extra steps
        assert np.all(x.to_host() == 6.0)

    def test_bailout_emits_telemetry(self, jit_env):
        events = []

        class Hub:
            def wants(self, kind):
                return True

            def emit(self, kind, name, **fields):
                events.append((kind, name, fields))

        n = 1 << 10
        rt = CudaLite(CARINA, backend="jit")
        rt.dispatch.hub = Hub()
        out = rt.malloc(n, np.float32)
        x = rt.to_device(np.arange(n, dtype=np.float32))
        idx = rt.to_device(np.arange(n, dtype=np.int64))
        rt.launch(gather, n // 128, 128, out, x, idx, n)
        idx.fill_from(np.arange(n, dtype=np.int64)[::-1].copy())
        rt.launch(gather, n // 128, 128, out, x, idx, n)
        assert len(events) == 1
        kind, name, fields = events[0]
        assert kind == "jit" and "gather" in name
        assert fields["reason"] == "global-guard"
        assert len(fields["key"]) == 12


class TestDegradation:
    def test_untraceable_argument_runs_reference(self, jit_env):
        class Opaque:
            pass

        @kernel
        def with_opaque(ctx, x, blob, n):
            i = ctx.global_thread_id()
            ctx.if_active(i < n, lambda: ctx.store(x, i, 1.0))

        n = 512
        rt = CudaLite(CARINA, backend="jit")
        x = rt.malloc(n, np.float32)
        rt.launch(with_opaque, 2, 256, x, Opaque(), n)
        c = rt.dispatch.counters
        assert c.jit_untraceable == 1 and c.jit_traced == 0
        assert np.all(x.to_host() == 1.0)

    def test_overflow_poisons_instead_of_compiling(self, jit_env, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_MAX_EVENTS", "2")
        rt, x, y, n = _saxpy_rt()  # saxpy issues 3 accesses per launch
        assert rt.dispatch.max_trace_events == 2
        rt.launch(saxpy, n // 256, 256, x, y, 2.0, n)
        assert rt.dispatch.counters.jit_compiled == 0
        assert default_store().stats()["poisoned"] == 1
        # subsequent launches skip straight to reference — no retrace
        rt.launch(saxpy, n // 256, 256, x, y, 2.0, n)
        c = rt.dispatch.counters
        assert c.jit_traced == 1 and c.jit_replayed == 0

    def test_failed_launch_discards_trace_without_poison(self, jit_env):
        n = 512
        rt = CudaLite(CARINA, backend="jit")
        x = rt.to_device(np.zeros(n, np.float32))
        with pytest.raises(RuntimeError, match="injected kernel fault"):
            rt.launch(exploding, 2, 256, x, n)
        stats = default_store().stats()
        assert stats["poisoned"] == 0 and stats["stores"] == 0
        assert rt.dispatch.counters.jit_compiled == 0
        # the launch stack must be balanced after the fault
        assert rt.dispatch._stack == []
