"""Trace-key identity: stable where it must be, sensitive where it must be."""

import numpy as np
import pytest

from repro.arch.presets import CARINA, FORNAX
from repro.host.runtime import CudaLite
from repro.jit import Untraceable, launch_key
from repro.jit.tracekey import kernel_source
from repro.simt.dim3 import Dim3
from repro.simt.kernel import kernel


@kernel
def touch(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) + 1.0))


@kernel
def touch_twin(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) + 2.0))


@pytest.fixture
def rt():
    return CudaLite(CARINA)


def _key(rt, kdef=touch, grid=4, block=128, gpu=None, args=None):
    x = args if args is not None else (rt.to_device(np.zeros(512, np.float32)), 512)
    return launch_key(kdef, Dim3(grid), Dim3(block), gpu or CARINA.gpu, x)


class TestStability:
    def test_deterministic(self, rt):
        x = rt.to_device(np.zeros(512, np.float32))
        assert _key(rt, args=(x, 512)) == _key(rt, args=(x, 512))

    def test_data_contents_not_keyed(self, rt):
        """Rewriting a buffer in place must NOT change the key.

        Contents are guarded at replay time, not keyed — this is what
        lets warm sweeps reuse artifacts across data refills.
        """
        x = rt.to_device(np.zeros(512, np.float32))
        before = _key(rt, args=(x, 512))
        x.fill_from(np.ones(512, np.float32))
        assert _key(rt, args=(x, 512)) == before

    def test_same_placement_same_key_across_runtimes(self):
        """The deterministic allocator repeats addresses across runs."""
        keys = []
        for _ in range(2):
            rt = CudaLite(CARINA)
            x = rt.to_device(np.zeros(512, np.float32))
            keys.append(_key(rt, args=(x, 512)))
        assert keys[0] == keys[1]


class TestSensitivity:
    def test_kernel_identity(self, rt):
        assert _key(rt, kdef=touch) != _key(rt, kdef=touch_twin)

    def test_geometry(self, rt):
        assert _key(rt, grid=4) != _key(rt, grid=8)
        assert _key(rt, block=128) != _key(rt, block=64)

    def test_gpu_spec(self, rt):
        assert _key(rt, gpu=CARINA.gpu) != _key(rt, gpu=FORNAX.gpu)

    def test_scalar_args(self, rt):
        x = rt.to_device(np.zeros(512, np.float32))
        assert _key(rt, args=(x, 512)) != _key(rt, args=(x, 256))

    def test_scalar_type_distinguished(self, rt):
        """1 and 1.0 and np.int32(1) are different specializations."""
        x = rt.to_device(np.zeros(512, np.float32))
        keys = {
            _key(rt, args=(x, 1)),
            _key(rt, args=(x, 1.0)),
            _key(rt, args=(x, np.int32(1))),
        }
        assert len(keys) == 3

    def test_buffer_placement(self, rt):
        a = rt.to_device(np.zeros(512, np.float32))
        b = rt.to_device(np.zeros(512, np.float32))
        assert _key(rt, args=(a, 512)) != _key(rt, args=(b, 512))

    def test_buffer_dtype_and_shape(self, rt):
        a = rt.to_device(np.zeros(512, np.float32))
        k32 = _key(rt, args=(a, 512))
        rt2 = CudaLite(CARINA)
        b = rt2.to_device(np.zeros(512, np.float64))
        assert _key(rt2, args=(b, 512)) != k32


class TestUntraceable:
    def test_opaque_argument_raises(self, rt):
        with pytest.raises(Untraceable):
            _key(rt, args=(object(),))

    def test_ndarray_host_argument_raises(self, rt):
        # host arrays have no device placement to sign
        with pytest.raises(Untraceable):
            _key(rt, args=(np.zeros(4),))


def test_kernel_source_memoized():
    assert kernel_source(touch) is kernel_source(touch)
    assert "global_thread_id" in kernel_source(touch)
