"""Codegen: recorded events render to source that replays bit-identically."""

import pytest

from repro.jit.codegen import (
    GlobalEvent,
    SharedEvent,
    compile_artifact,
    generate_source,
)
from repro.jit.guards import lane_fingerprint
from repro.mem.banks import BankConflictSummary
from repro.mem.coalesce import AccessSummary

import numpy as np

KEY = "ab" * 32


def _global_event(addrs, mask=None, **overrides):
    summary = AccessSummary(
        n_warps=2,
        n_active_lanes=64,
        transactions=overrides.pop("transactions", 4.0),
        sectors=8.0,
        bursts=4.0,
        unique_sectors=8.0,
        unique_bursts=4.0,
        bytes_requested=256,
        sample_fraction=overrides.pop("sample_fraction", 1.0),
    )
    return GlobalEvent(
        fp=lane_fingerprint(addrs, mask),
        itemsize=4,
        warp_size=32,
        transaction_bytes=128,
        sector_bytes=32,
        summary=summary,
    )


def _shared_event(offsets, mask=None):
    summary = BankConflictSummary(
        n_warps=1, n_active_lanes=32, passes=2, conflict_extra=1, max_degree=2
    )
    return SharedEvent(
        fp=lane_fingerprint(offsets, mask),
        warp_size=32,
        nbanks=32,
        bank_bytes=4,
        summary=summary,
    )


class TestGenerateAndCompile:
    def test_replay_matches_event_order(self):
        addrs = np.arange(64) * 4
        offs = np.arange(32) * 4
        events = [_global_event(addrs), _shared_event(offs), _global_event(addrs)]
        art = compile_artifact(KEY, "k", generate_source(KEY, "k", events))
        assert art.n_events == 3
        assert [kind for kind, _ in art.replay] == ["global", "shared", "global"]
        assert art.key == KEY and art.kernel == "k"

    def test_global_replay_roundtrip(self):
        addrs = np.arange(64) * 4
        ev = _global_event(addrs, sample_fraction=0.1 + 0.2)  # non-trivial float
        art = compile_artifact(KEY, "k", generate_source(KEY, "k", [ev]))
        _, fn = art.replay[0]
        out = fn(addrs, None, 4, 32, 128, 32)
        assert out == ev.summary  # repr round-trips doubles exactly

    def test_shared_replay_roundtrip(self):
        offs = np.arange(32) * 4
        ev = _shared_event(offs)
        art = compile_artifact(KEY, "k", generate_source(KEY, "k", [ev]))
        _, fn = art.replay[0]
        assert fn(offs, None, 32, 32, 4) == ev.summary

    def test_guard_rejects_changed_lanes(self):
        addrs = np.arange(64) * 4
        art = compile_artifact(
            KEY, "k", generate_source(KEY, "k", [_global_event(addrs)])
        )
        _, fn = art.replay[0]
        other = addrs.copy()
        other[3] += 4
        assert fn(other, None, 4, 32, 128, 32) is None

    def test_guard_rejects_changed_params(self):
        addrs = np.arange(64) * 4
        art = compile_artifact(
            KEY, "k", generate_source(KEY, "k", [_global_event(addrs)])
        )
        _, fn = art.replay[0]
        assert fn(addrs, None, 8, 32, 128, 32) is None  # itemsize differs

    def test_guard_is_mask_sensitive(self):
        addrs = np.arange(64) * 4
        mask = np.ones(64, bool)
        art = compile_artifact(
            KEY, "k", generate_source(KEY, "k", [_global_event(addrs, mask)])
        )
        _, fn = art.replay[0]
        off = mask.copy()
        off[0] = False
        assert fn(addrs, mask, 4, 32, 128, 32) is not None
        assert fn(addrs, off, 4, 32, 128, 32) is None

    def test_source_is_inspectable(self):
        addrs = np.arange(64) * 4
        src = generate_source(KEY, "mykernel", [_global_event(addrs)])
        assert f"KEY = {KEY!r}" in src
        assert "mykernel" in src
        assert "machine-generated" in src

    def test_empty_trace_compiles(self):
        art = compile_artifact(KEY, "k", generate_source(KEY, "k", []))
        assert art.n_events == 0


class TestRejection:
    def test_non_finite_summary_rejected(self):
        addrs = np.arange(64) * 4
        ev = _global_event(addrs, transactions=float("nan"))
        with pytest.raises(ValueError, match="non-finite"):
            generate_source(KEY, "k", [ev])

    def test_malformed_replay_rejected(self):
        with pytest.raises(ValueError, match="malformed REPLAY"):
            compile_artifact(KEY, "k", "REPLAY = (('bogus', None),)\n")
