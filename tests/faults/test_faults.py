"""Deterministic fault injection and sticky-error runtime semantics."""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.common.errors import (
    AllocationError,
    KernelRuntimeError,
    MemoryError_,
    ReproError,
    WatchdogTimeout,
    cuda_error_name,
)
from repro.faults import FaultLog, FaultPlan, RetryPolicy
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_1per_thread


def _rt(plan=None, **kw):
    return CudaLite(CARINA, faults=plan, **kw)


class TestFaultPlan:
    def test_deterministic_across_replays(self):
        a = FaultPlan(17, h2d_fail_prob=0.4, corrupt_prob=0.2)
        b = FaultPlan(17, h2d_fail_prob=0.4, corrupt_prob=0.2)
        seq_a = [a.transfer_outcome("h2d") for _ in range(64)]
        seq_b = [b.transfer_outcome("h2d") for _ in range(64)]
        assert seq_a == seq_b
        assert set(seq_a) == {"ok", "fail", "corrupt"}

    def test_reset_rewinds_counters(self):
        plan = FaultPlan(5, d2h_fail_prob=0.5)
        first = [plan.transfer_outcome("d2h") for _ in range(32)]
        plan.reset()
        assert [plan.transfer_outcome("d2h") for _ in range(32)] == first

    def test_seeds_decorrelate(self):
        def seq(s):
            plan = FaultPlan(s, h2d_fail_prob=0.5)
            return tuple(plan.transfer_outcome("h2d") for _ in range(32))

        assert len({seq(s) for s in range(4)}) == 4

    def test_probability_validation(self):
        with pytest.raises(ReproError):
            FaultPlan(0, h2d_fail_prob=1.5)
        with pytest.raises(ReproError):
            FaultPlan(0, h2d_fail_prob=0.8, corrupt_prob=0.4)

    def test_max_transfer_failures_cap(self):
        plan = FaultPlan(0, h2d_fail_prob=1.0, max_transfer_failures=2)
        outcomes = [plan.transfer_outcome("h2d") for _ in range(5)]
        assert outcomes == ["fail", "fail", "ok", "ok", "ok"]


class TestTransferRetry:
    def test_h2d_retries_and_recovers(self):
        """First attempt fails deterministically; the retry lands the data."""
        plan = FaultPlan(3, h2d_fail_prob=1.0, max_transfer_failures=1)
        rt = _rt(plan)
        x = rt.malloc(1024, np.float32)
        host = np.arange(1024, dtype=np.float32)
        rt.memcpy_h2d(x, host)
        assert (x.to_host() == host).all()
        assert rt.fault_log.count("h2d-fail") == 1
        assert rt.fault_log.count("h2d-recovered") == 1

    def test_retry_budget_exhausted_raises(self):
        plan = FaultPlan(3, h2d_fail_prob=1.0)
        rt = _rt(plan, retry=RetryPolicy(max_attempts=3))
        x = rt.malloc(64, np.float32)
        with pytest.raises(MemoryError_, match="injected fault"):
            rt.memcpy_h2d(x, np.zeros(64, dtype=np.float32))
        assert rt.fault_log.count("h2d-fail") == 3
        rt.synchronize()  # transfer errors are not sticky

    def test_backoff_occupies_the_stream(self):
        plan = FaultPlan(3, h2d_fail_prob=1.0, max_transfer_failures=1)
        rt = _rt(plan, retry=RetryPolicy(backoff_s=1e-3))
        x = rt.malloc(1024, np.float32)
        rt.memcpy_h2d(x, np.zeros(1024, dtype=np.float32))
        elapsed = rt.synchronize()
        assert elapsed >= 1e-3  # the simulated backoff delay is visible

    def test_d2h_corruption_flips_one_bit(self):
        plan = FaultPlan(9, corrupt_prob=1.0)
        rt = _rt(plan)
        host = np.arange(256, dtype=np.float32)
        x = rt.malloc(256, np.float32)
        x.fill_from(host)
        out = rt.memcpy_d2h(x)
        assert rt.fault_log.count("d2h-corrupt") == 1
        diff = out.view(np.uint8) ^ host.view(np.uint8)
        assert int(diff.sum()) and bin(int(diff[diff != 0][0])).count("1") == 1
        assert (x.to_host() == host).all()  # device side untouched


class TestKernelAbortSticky:
    def test_abort_poisons_until_reset(self):
        plan = FaultPlan(0, kernel_abort_at=0)
        rt = _rt(plan)
        x = rt.to_device(np.ones(256, dtype=np.float32))
        y = rt.to_device(np.ones(256, dtype=np.float32))
        with pytest.raises(KernelRuntimeError, match="injected fault"):
            rt.launch(axpy_1per_thread, 1, 256, x, y, 256, 2.0)
        assert isinstance(rt.sticky_error, KernelRuntimeError)
        # every API entry point now fails with the sticky error class
        with pytest.raises(KernelRuntimeError, match="sticky"):
            rt.malloc(4)
        with pytest.raises(KernelRuntimeError, match="sticky"):
            rt.synchronize()
        with pytest.raises(KernelRuntimeError, match="sticky"):
            rt.memcpy_d2h(x)
        rt.reset()
        assert rt.sticky_error is None
        # launch ordinal 1 is past the abort point: runs fine
        rt.launch(axpy_1per_thread, 1, 256, x, y, 256, 2.0)
        rt.synchronize()
        assert (y.to_host() == 3.0).all()

    def test_abort_ordinal_is_deterministic(self):
        plan = FaultPlan(0, kernel_abort_at=1)
        rt = _rt(plan)
        x = rt.to_device(np.ones(64, dtype=np.float32))
        y = rt.to_device(np.ones(64, dtype=np.float32))
        rt.launch(axpy_1per_thread, 1, 64, x, y, 64, 2.0)  # ordinal 0 fine
        with pytest.raises(KernelRuntimeError):
            rt.launch(axpy_1per_thread, 1, 64, x, y, 64, 2.0)  # ordinal 1


class TestWatchdog:
    def test_runaway_kernel_killed(self):
        rt = CudaLite(CARINA, watchdog_cycles=10.0)
        x = rt.malloc(16384, np.float32)
        y = rt.malloc(16384, np.float32)
        with pytest.raises(WatchdogTimeout, match="watchdog"):
            rt.launch(axpy_1per_thread, 64, 256, x, y, 16384, 2.0)
        # WatchdogTimeout is a KernelRuntimeError and is sticky
        with pytest.raises(KernelRuntimeError):
            rt.malloc(4)
        rt.reset()
        rt.malloc(4)

    def test_watchdog_from_fault_plan(self):
        plan = FaultPlan(0, watchdog_cycles=10.0)
        rt = _rt(plan)
        x = rt.malloc(16384, np.float32)
        y = rt.malloc(16384, np.float32)
        with pytest.raises(WatchdogTimeout):
            rt.launch(axpy_1per_thread, 64, 256, x, y, 16384, 2.0)

    def test_generous_budget_passes(self):
        rt = CudaLite(CARINA, watchdog_cycles=1e9)
        x = rt.to_device(np.ones(256, dtype=np.float32))
        y = rt.to_device(np.ones(256, dtype=np.float32))
        rt.launch(axpy_1per_thread, 1, 256, x, y, 256, 2.0)
        rt.synchronize()


class TestAllocAndStall:
    def test_alloc_budget(self):
        plan = FaultPlan(0, alloc_fail_after_bytes=8192)
        rt = _rt(plan)
        rt.malloc(1024, np.float32)  # 4096 bytes: inside budget
        with pytest.raises(AllocationError, match="injected fault"):
            rt.malloc(4096, np.float32)
        # OOM is not sticky, mirroring cudaErrorMemoryAllocation
        rt.synchronize()

    def test_stall_every_op(self):
        plan = FaultPlan(0, stall_every=1, stall_seconds=1e-3)
        rt = _rt(plan)
        x = rt.malloc(1024, np.float32)
        rt.memcpy_h2d(x, np.zeros(1024, dtype=np.float32))
        assert rt.fault_log.count("stream-stall") == 1
        assert rt.synchronize() >= 1e-3


class TestErrorNames:
    def test_cuda_error_names(self):
        assert cuda_error_name(WatchdogTimeout("x")) == "cudaErrorLaunchTimeout"
        assert cuda_error_name(KernelRuntimeError("x")) == "cudaErrorLaunchFailure"
        assert cuda_error_name(AllocationError("x")) == "cudaErrorMemoryAllocation"
        assert cuda_error_name(ReproError("x")) == "cudaErrorUnknown"

    def test_str_carries_cuda_error(self):
        assert "[cudaErrorLaunchTimeout]" in str(WatchdogTimeout("too slow"))

    def test_fault_log_render(self):
        log = FaultLog()
        assert "no faults" in log.render()
        log.record("h2d-fail", "attempt 1")
        assert "h2d-fail" in log.render()
