"""Suite runner and Table I rendering (scaled-down end-to-end run)."""

import pytest

from repro.core.registry import ALL_BENCHMARKS
from repro.core.suite import SuiteReport, run_suite

#: small parameters so the full 14-benchmark suite runs in test time
FAST_OVERRIDES = {
    "WarpDivRedux": dict(n=1 << 16),
    "DynParallel": dict(size=128, max_dwell=64),
    "Conkernels": dict(rounds=16),
    "TaskGraph": dict(chain_len=4, iterations=5, n=2048),
    "Shmem": dict(n=64),
    "CoMem": dict(n=1 << 19),
    "MemAlign": dict(n=1 << 18),
    "GSOverlap": dict(n=1 << 18),
    "Shuffle": dict(n=1 << 18),
    "BankRedux": dict(n=1 << 16),
    "HDOverlap": dict(n=1 << 18),
    "ReadOnlyMem": dict(n=256),
    "UniMem": dict(n=1 << 20, stride=1 << 14),
    "MiniTransfer": dict(n=256, nnz=1024),
}


@pytest.fixture(scope="module")
def report() -> SuiteReport:
    return run_suite(overrides=FAST_OVERRIDES)


class TestRunSuite:
    def test_all_ran(self, report):
        assert len(report.results) == 14

    def test_all_verified(self, report):
        bad = [r.benchmark for r in report.results if not r.verified]
        assert not bad, f"functional mismatch in: {bad}"

    def test_optimizations_win_where_paper_says(self, report):
        # every benchmark except the scale-sensitive ones should show the
        # optimized version winning even at test scale
        expected_winners = {
            "WarpDivRedux", "Conkernels", "TaskGraph", "Shmem", "CoMem",
            "MemAlign", "Shuffle", "BankRedux", "HDOverlap", "ReadOnlyMem",
            "MiniTransfer",
        }
        for r in report.results:
            if r.benchmark in expected_winners:
                assert r.speedup > 1.0, f"{r.benchmark}: {r.speedup}"


class TestRender:
    def test_table_mentions_every_benchmark(self, report):
        out = report.render()
        for cls in ALL_BENCHMARKS:
            assert cls.name in out

    def test_table_shows_measured_and_paper(self, report):
        out = report.render()
        assert "paper speedup" in out
        assert "measured" in out
        assert "x" in out
