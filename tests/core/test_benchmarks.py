"""Every microbenchmark runs, verifies, and shows the paper's direction.

Parameters are scaled down for test speed; the benchmark harness in
``benchmarks/`` runs the paper-scale sweeps.
"""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.core import (
    BankRedux,
    CoMem,
    Conkernels,
    DynParallel,
    GSOverlap,
    HDOverlap,
    MemAlign,
    MiniTransfer,
    ReadOnlyMem,
    Shmem,
    Shuffle,
    TaskGraphBench,
    UniMem,
    WarpDivRedux,
)


class TestWarpDivRedux:
    @pytest.fixture(scope="class")
    def result(self):
        return WarpDivRedux().run(n=1 << 18)

    def test_verified(self, result):
        assert result.verified

    def test_nowd_wins(self, result):
        assert result.speedup > 1.0

    def test_modest_speedup(self, result):
        # memory-bound kernel: divergence costs ~5-20%, not 2x
        assert result.speedup < 1.5

    def test_efficiency_metrics(self, result):
        assert result.metrics["wd_warp_execution_efficiency"] < 0.75
        assert result.metrics["nowd_warp_execution_efficiency"] == 1.0
        assert result.metrics["wd_branch_efficiency"] == 0.0
        assert result.metrics["nowd_branch_efficiency"] == 1.0

    def test_sweep_shape(self):
        sweep = WarpDivRedux().sweep([1 << 14, 1 << 16])
        assert len(sweep.x_values) == 2
        assert all(
            w >= n for w, n in zip(sweep.series["WD"], sweep.series["noWD"])
        )


class TestDynParallel:
    def test_small_image_overhead_dominates(self):
        r = DynParallel().run(size=128, max_dwell=64)
        assert r.verified
        assert r.speedup < 1.0  # paper: overhead outweighs benefit when small

    def test_work_avoidance_grows(self):
        r1 = DynParallel().run(size=128, max_dwell=64)
        r2 = DynParallel().run(size=512, max_dwell=64)
        assert r2.speedup > r1.speedup

    def test_fills_avoid_interior(self):
        r = DynParallel().run(size=512, max_dwell=64)
        assert r.metrics["pixel_fraction_computed"] < 1.0
        assert r.metrics["fill_fraction"] > 0.0


class TestConkernels:
    @pytest.fixture(scope="class")
    def result(self):
        return Conkernels().run(n_kernels=8, rounds=32)

    def test_verified(self, result):
        assert result.verified

    def test_near_linear_speedup(self, result):
        # paper reports ~7x with 8 kernels
        assert 6.0 < result.speedup <= 8.5

    def test_timelines_in_notes(self, result):
        assert "serial timeline" in result.notes
        assert "concurrent timeline" in result.notes


class TestTaskGraph:
    @pytest.fixture(scope="class")
    def result(self):
        return TaskGraphBench().run(chain_len=4, iterations=10, n=2048)

    def test_verified(self, result):
        assert result.verified

    def test_graph_wins(self, result):
        assert result.speedup > 1.5


class TestShmem:
    @pytest.fixture(scope="class")
    def result(self):
        return Shmem().run(n=128)

    def test_verified(self, result):
        assert result.verified

    def test_tiled_wins_modestly(self, result):
        assert 1.0 < result.speedup < 4.0

    def test_traffic_reduced(self, result):
        assert result.metrics["tiled_dram_bytes"] <= result.metrics["naive_dram_bytes"]


class TestCoMem:
    @pytest.fixture(scope="class")
    def result(self):
        return CoMem().run(n=1 << 22)

    def test_verified(self, result):
        assert result.verified

    def test_order_of_magnitude(self, result):
        # paper: ~18x; simulated ~15x
        assert result.speedup > 8.0

    def test_transaction_ratio(self, result):
        assert result.metrics["block_transactions_per_request"] > 8
        assert result.metrics["cyclic_transactions_per_request"] == pytest.approx(1.0)


class TestMemAlign:
    @pytest.fixture(scope="class")
    def result(self):
        return MemAlign().run(n=1 << 22)

    def test_verified(self, result):
        assert result.verified

    def test_small_effect(self, result):
        # paper: ~3% on V100
        assert 1.0 < result.speedup < 1.15

    def test_transactions_double(self, result):
        assert result.metrics["misaligned_transactions_per_request"] == pytest.approx(
            2.0, abs=0.1
        )


class TestGSOverlap:
    @pytest.fixture(scope="class")
    def result(self):
        return GSOverlap().run(n=1 << 20)

    def test_verified(self, result):
        assert result.verified

    def test_marginal_improvement(self, result):
        # paper: 1.04x best — "small but real"
        assert 1.0 <= result.speedup < 1.2

    def test_issue_cycles_reduced(self, result):
        assert result.metrics["async_issue_cycles"] < result.metrics["sync_issue_cycles"]


class TestShuffle:
    @pytest.fixture(scope="class")
    def result(self):
        return Shuffle().run(n=1 << 20)

    def test_verified(self, result):
        assert result.verified

    def test_shuffle_wins(self, result):
        assert 1.0 < result.speedup < 2.0

    def test_fewer_barriers(self, result):
        assert result.metrics["shfl_barriers"] < result.metrics["seq_barriers"]


class TestBankRedux:
    @pytest.fixture(scope="class")
    def result(self):
        return BankRedux().run(n=1 << 18)

    def test_verified(self, result):
        assert result.verified

    def test_conflict_free_wins(self, result):
        # paper: ~1.3x
        assert 1.1 < result.speedup < 2.5

    def test_efficiency_gap(self, result):
        assert result.metrics["bc_shared_efficiency"] < 0.5
        assert result.metrics["seq_shared_efficiency"] == 1.0


class TestHDOverlap:
    @pytest.fixture(scope="class")
    def result(self):
        return HDOverlap().run(n=1 << 20)

    def test_verified(self, result):
        assert result.verified

    def test_async_wins_modestly(self, result):
        # paper: 1.036x; dual copy engines let us hide a bit more
        assert 1.0 < result.speedup < 1.6

    def test_more_compute_more_benefit(self):
        light = HDOverlap().run(n=1 << 18, rounds=1)
        heavy = HDOverlap().run(n=1 << 18, rounds=64)
        assert heavy.speedup > light.speedup


class TestReadOnlyMem:
    def test_k80_texture_wins(self):
        r = ReadOnlyMem().run(n=512)
        assert r.verified
        assert r.speedup > 1.5  # paper: up to ~4x on K80

    def test_v100_no_gap(self):
        r = ReadOnlyMem(CARINA).run(n=512)
        assert r.verified
        assert 0.8 < r.speedup < 1.3  # paper: no significant difference


class TestUniMem:
    def test_sparse_access_wins(self):
        r = UniMem().run(n=1 << 22, stride=1 << 15)
        assert r.verified
        assert r.speedup > 1.2

    def test_dense_access_loses(self):
        r = UniMem().run(n=1 << 20, stride=1)
        assert r.verified
        assert r.speedup < 1.0

    def test_crossover_direction(self):
        dense = UniMem().run(n=1 << 21, stride=1)
        sparse = UniMem().run(n=1 << 21, stride=1 << 15)
        assert sparse.speedup > dense.speedup


class TestMiniTransfer:
    @pytest.fixture(scope="class")
    def result(self):
        return MiniTransfer().run(n=512, nnz=2048)

    def test_verified(self, result):
        assert result.verified

    def test_csr_wins_big(self, result):
        assert result.speedup > 3.0

    def test_transfer_accounting(self, result):
        assert result.metrics["csr_transfer_bytes"] < result.metrics["dense_transfer_bytes"] / 10

    def test_sparser_wins_more(self):
        dense_ish = MiniTransfer().run(n=512, nnz=16384)
        sparse = MiniTransfer().run(n=512, nnz=512)
        assert sparse.speedup > dense_ish.speedup


class TestBenchResultAPI:
    def test_str_contains_verdict(self):
        r = WarpDivRedux().run(n=1 << 14)
        assert "WarpDivRedux" in str(r)
        assert "ok" in str(r)

    def test_speedup_infinite_guard(self):
        from repro.core.base import BenchResult

        r = BenchResult(
            benchmark="x", system="s", baseline_name="a", optimized_name="b",
            baseline_time=1.0, optimized_time=0.0, verified=True,
        )
        assert r.speedup == float("inf")
