"""BenchResult serialization round-trip and validation."""

import pytest

from repro.common.errors import ReproError
from repro.core.base import BenchResult

ROW = {
    "benchmark": "CoMem",
    "system": "Carina (V100)",
    "baseline_name": "block",
    "optimized_name": "cyclic",
    "baseline_time_s": 1.0,
    "optimized_time_s": 0.5,
    "speedup": 2.0,
    "verified": True,
    "params": {"n": 1024},
    "metrics": {"x": 1.0},
}


class TestFromDict:
    def test_roundtrip(self):
        r = BenchResult.from_dict(ROW)
        assert r.as_dict() == ROW

    def test_nan_time_rejected(self):
        with pytest.raises(ReproError, match="invalid baseline_time_s"):
            BenchResult.from_dict(dict(ROW, baseline_time_s=float("nan")))

    def test_negative_time_rejected(self):
        with pytest.raises(ReproError, match="invalid optimized_time_s"):
            BenchResult.from_dict(dict(ROW, optimized_time_s=-1e-6))

    def test_infinite_time_rejected(self):
        with pytest.raises(ReproError, match="invalid baseline_time_s"):
            BenchResult.from_dict(dict(ROW, baseline_time_s=float("inf")))

    def test_non_numeric_time_rejected(self):
        with pytest.raises(ReproError, match="non-numeric baseline_time_s"):
            BenchResult.from_dict(dict(ROW, baseline_time_s="fast"))

    def test_missing_time_rejected(self):
        row = dict(ROW)
        del row["optimized_time_s"]
        with pytest.raises(ReproError, match="non-numeric optimized_time_s"):
            BenchResult.from_dict(row)

    def test_error_names_the_benchmark(self):
        with pytest.raises(ReproError, match="'CoMem'"):
            BenchResult.from_dict(dict(ROW, baseline_time_s=float("nan")))

    def test_zero_time_allowed(self):
        r = BenchResult.from_dict(
            dict(ROW, optimized_time_s=0.0, speedup=float("inf"))
        )
        assert r.speedup == float("inf")
