"""Benchmark registry and Table I metadata."""

import pytest

from repro.arch.presets import FORNAX
from repro.common.errors import ReproError
from repro.core.base import CATEGORIES, Microbenchmark
from repro.core.registry import ALL_BENCHMARKS, get_benchmark, list_benchmarks


class TestRegistry:
    def test_fourteen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 14

    def test_names_unique(self):
        names = list_benchmarks()
        assert len(set(names)) == 14

    def test_paper_names_present(self):
        names = set(list_benchmarks())
        assert {
            "WarpDivRedux", "DynParallel", "Conkernels", "TaskGraph",
            "Shmem", "CoMem", "MemAlign", "GSOverlap", "Shuffle",
            "BankRedux", "HDOverlap", "ReadOnlyMem", "UniMem", "MiniTransfer",
        } == names

    def test_get_benchmark_case_insensitive(self):
        b = get_benchmark("comem")
        assert b.name == "CoMem"

    def test_get_benchmark_with_system(self):
        b = get_benchmark("CoMem", FORNAX)
        assert b.system is FORNAX

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_benchmark("nope")


class TestTableIMetadata:
    @pytest.mark.parametrize("cls", ALL_BENCHMARKS, ids=lambda c: c.name)
    def test_metadata_complete(self, cls):
        assert cls.category in CATEGORIES
        assert cls.pattern
        assert cls.technique
        assert cls.paper_speedup
        assert 1 <= cls.programmability <= 5

    @pytest.mark.parametrize("cls", ALL_BENCHMARKS, ids=lambda c: c.name)
    def test_table1_row(self, cls):
        row = cls.table1_row()
        assert row[0] == cls.name
        assert len(row) == 5

    def test_category_counts_match_paper(self):
        from collections import Counter

        counts = Counter(cls.category for cls in ALL_BENCHMARKS)
        assert counts["parallelism"] == 4
        assert counts["gpu-memory"] == 6
        assert counts["data-movement"] == 4

    def test_subclassing_contract(self):
        assert all(issubclass(c, Microbenchmark) for c in ALL_BENCHMARKS)
