"""Occupancy calculator against known CUDA occupancy results."""

import pytest

from repro.arch.presets import TESLA_K80, TESLA_V100
from repro.common.errors import LaunchConfigError
from repro.timing.occupancy import compute_occupancy


class TestLimits:
    def test_warp_limited_full(self):
        # 256-thread blocks, low resources: 8 blocks/SM on V100 (64 warps)
        occ = compute_occupancy(TESLA_V100, 256)
        assert occ.blocks_per_sm == 8
        assert occ.warps_per_sm == 64
        assert occ.occupancy == 1.0

    def test_block_count_limited(self):
        # 32-thread blocks: warp limit would allow 64, but block cap is 32
        occ = compute_occupancy(TESLA_V100, 32)
        assert occ.blocks_per_sm == 32
        assert occ.limiter == "blocks"
        assert occ.occupancy == 0.5

    def test_shared_limited(self):
        occ = compute_occupancy(
            TESLA_V100, 256, shared_mem_per_block=32 * 1024
        )
        assert occ.limiter == "shared"
        assert occ.blocks_per_sm == 3

    def test_register_limited(self):
        occ = compute_occupancy(TESLA_V100, 256, registers_per_thread=128)
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 2

    def test_k80_block_cap(self):
        occ = compute_occupancy(TESLA_K80, 64)
        assert occ.blocks_per_sm == 16  # Kepler's lower block cap

    def test_odd_block_rounds_to_warps(self):
        occ = compute_occupancy(TESLA_V100, 48)  # 2 warps per block
        assert occ.warps_per_block == 2


class TestValidation:
    def test_zero_threads(self):
        with pytest.raises(LaunchConfigError):
            compute_occupancy(TESLA_V100, 0)

    def test_too_many_threads(self):
        with pytest.raises(LaunchConfigError):
            compute_occupancy(TESLA_V100, 2048)

    def test_too_much_shared(self):
        with pytest.raises(LaunchConfigError):
            compute_occupancy(TESLA_V100, 32, shared_mem_per_block=64 * 1024)

    def test_too_many_registers(self):
        with pytest.raises(LaunchConfigError):
            compute_occupancy(TESLA_V100, 32, registers_per_thread=256)

    def test_kernel_cannot_fit(self):
        # 1024 threads x 64 regs = 65536 regs = exactly one block; 96 fails
        with pytest.raises(LaunchConfigError):
            compute_occupancy(TESLA_V100, 1024, registers_per_thread=96)


class TestDerived:
    def test_waves(self):
        occ = compute_occupancy(TESLA_V100, 256, n_blocks=80 * 8 * 3 + 1)
        assert occ.waves == 4

    def test_single_wave(self):
        occ = compute_occupancy(TESLA_V100, 256, n_blocks=10)
        assert occ.waves == 1

    def test_active_sms(self):
        occ = compute_occupancy(TESLA_V100, 256, n_blocks=10)
        assert occ.active_sms == 10
        occ = compute_occupancy(TESLA_V100, 256, n_blocks=1000)
        assert occ.active_sms == 80
