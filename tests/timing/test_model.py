"""The roofline timing model: bounds, limits, launch overheads."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_K80, TESLA_V100
from repro.common.errors import SpecError
from repro.simt.executor import run_kernel
from repro.simt.kernel import kernel
from repro.timing.model import estimate_kernel_time, launch_overhead
from tests.conftest import make_device_array


@kernel
def streaming(ctx, x, y, n):
    """Memory-bound: one coalesced load + store per thread."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, ctx.load(x, i)))


@kernel
def flops(ctx, x, n, rounds):
    """Compute-bound: many FMAs per element."""
    i = ctx.global_thread_id()

    def body():
        v = ctx.load(x, i)
        for _ in range(rounds):
            v = ctx.fma(v, 1.0001, 0.1)
        ctx.store(x, i, v)

    ctx.if_active(i < n, body)


def run(kdef, args, n, gpu=TESLA_V100, block=256):
    return run_kernel(kdef, -(-n // block), block, args, gpu=gpu)


class TestLaunchOverhead:
    def test_kinds(self):
        assert launch_overhead(TESLA_V100, "host") == TESLA_V100.kernel_launch_overhead_s
        assert launch_overhead(TESLA_V100, "device") == TESLA_V100.device_launch_overhead_s
        assert launch_overhead(TESLA_V100, "graph") == TESLA_V100.graph_node_overhead_s
        assert launch_overhead(TESLA_V100, "none") == 0.0

    def test_unknown(self):
        with pytest.raises(SpecError):
            launch_overhead(TESLA_V100, "warp")

    def test_device_cheaper_than_host(self):
        assert (
            TESLA_V100.device_launch_overhead_s
            < TESLA_V100.kernel_launch_overhead_s
        )


class TestBounds:
    def test_streaming_is_dram_bound(self, allocator):
        n = 1 << 20
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        y = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        t = estimate_kernel_time(run(streaming, (x, y, n), n), TESLA_V100)
        assert t.limiter == "dram"
        # effective bandwidth between 50% and 100% of peak
        bw = 2 * n * 4 / t.exec_s
        assert 0.5 * TESLA_V100.dram_bandwidth < bw <= TESLA_V100.dram_bandwidth

    def test_flops_is_issue_bound(self, allocator):
        n = 1 << 16
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        t = estimate_kernel_time(run(flops, (x, n, 64), n), TESLA_V100)
        assert t.limiter == "issue"

    def test_tiny_grid_latency_floor(self, allocator):
        x = make_device_array(allocator, np.zeros(32, dtype=np.float32))
        y = make_device_array(allocator, np.zeros(32, dtype=np.float32))
        t = estimate_kernel_time(run(streaming, (x, y, 32), 32, block=32), TESLA_V100)
        assert t.bounds["latency"] >= t.bounds["dram"]

    def test_total_includes_overhead(self, allocator):
        n = 1 << 12
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        y = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        stats = run(streaming, (x, y, n), n)
        t_host = estimate_kernel_time(stats, TESLA_V100, launch_kind="host")
        t_none = estimate_kernel_time(stats, TESLA_V100, launch_kind="none")
        assert t_host.time_s == pytest.approx(
            t_none.time_s + TESLA_V100.kernel_launch_overhead_s
        )
        assert t_host.exec_s == pytest.approx(t_none.exec_s)

    def test_bound_fraction(self, allocator):
        n = 1 << 16
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        y = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        t = estimate_kernel_time(run(streaming, (x, y, n), n), TESLA_V100)
        assert t.bound_fraction(t.limiter) == 1.0
        assert 0 <= t.bound_fraction("issue") <= 1.0


class TestSmLimit:
    def test_fewer_sms_slower(self, allocator):
        n = 1 << 18
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        stats = run(flops, (x, n, 128), n)
        t_full = estimate_kernel_time(stats, TESLA_V100)
        t_quarter = estimate_kernel_time(stats, TESLA_V100, sm_limit=20)
        assert t_quarter.exec_s > 3 * t_full.exec_s

    def test_limit_above_demand_no_effect(self, allocator):
        n = 1 << 14
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        stats = run(flops, (x, n, 8), n)
        t1 = estimate_kernel_time(stats, TESLA_V100)
        t2 = estimate_kernel_time(stats, TESLA_V100, sm_limit=1000)
        assert t1.exec_s == t2.exec_s


class TestArchitectureEffects:
    def test_k80_uncached_path_derated(self, allocator):
        n = 1 << 18
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        y = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        stats = run(streaming, (x, y, n), n, gpu=TESLA_K80)
        t = estimate_kernel_time(stats, TESLA_K80)
        # uncached global reads achieve far below peak bandwidth
        read_bw = n * 4 / t.bounds["dram"]
        assert read_bw < 0.6 * TESLA_K80.dram_bandwidth

    def test_bigger_gpu_faster(self, allocator):
        n = 1 << 18
        x = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        y = make_device_array(allocator, np.zeros(n, dtype=np.float32))
        s_v = run(streaming, (x, y, n), n, gpu=TESLA_V100)
        s_k = run(streaming, (x, y, n), n, gpu=TESLA_K80)
        t_v = estimate_kernel_time(s_v, TESLA_V100).exec_s
        t_k = estimate_kernel_time(s_k, TESLA_K80).exec_s
        assert t_v < t_k
