"""memcheck: OOB detection with coordinates, red zones, init tracking."""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.common.errors import InvalidAddressError, SanitizerError
from repro.host.runtime import CudaLite
from repro.sanitize import Sanitizer
from repro.simt.kernel import kernel


@kernel
def oob_store(ctx, out, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(out, i + 8, 1.0))


@kernel
def wild_store(ctx, out, n):
    """Writes far outside the array (hard OOB)."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(out, i + 10 * n, 1.0))


@kernel
def read_only(ctx, x, y, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, ctx.load(x, i)))


def _memcheck_rt():
    san = Sanitizer("memcheck")
    return san, CudaLite(CARINA, sanitize=san)


class TestRedZone:
    def test_redzone_writes_reported_with_coords(self):
        san, rt = _memcheck_rt()
        out = rt.malloc(1024 + 32, np.float32)
        out.logical_size = 1024
        rt.launch(oob_store, 8, 128, out, 1024)
        findings = san.report().findings
        assert len(findings) == 8
        f = findings[0]
        assert f.tool == "memcheck" and f.rule == "global-oob-write"
        assert f.severity == "critical"
        # thread 120 of block 7 computes i = 7*128+120 = 1016, writes 1024
        assert f.block == (7, 0, 0) and f.thread == (120, 0, 0)
        assert f.address == out.base_addr + 1024 * 4
        assert "1024" in f.message

    def test_redzone_write_still_lands(self):
        """Hardware semantics: the red-zone write happens anyway."""
        san, rt = _memcheck_rt()
        out = rt.malloc(1024 + 32, np.float32)
        out.logical_size = 1024
        rt.launch(oob_store, 8, 128, out, 1024)
        assert out.view[1024] == 1.0

    def test_clean_without_sanitizer(self):
        """The same kernel is silent when memcheck is off (padding absorbs)."""
        rt = CudaLite(CARINA)
        out = rt.malloc(1024 + 32, np.float32)
        out.logical_size = 1024
        rt.launch(oob_store, 8, 128, out, 1024)  # no raise

    def test_no_logical_size_no_redzone_findings(self):
        san, rt = _memcheck_rt()
        out = rt.malloc(1024 + 32, np.float32)
        rt.launch(oob_store, 8, 128, out, 1024)
        assert san.report().findings == []


class TestHardOOB:
    def test_reported_not_raised_and_suppressed(self):
        san, rt = _memcheck_rt()
        out = rt.malloc(64, np.float32)
        before = out.view.copy()
        rt.launch(wild_store, 1, 64, out, 64)
        findings = san.report().findings
        assert findings and all(f.rule == "global-oob-write" for f in findings)
        # suppressed lanes: nothing was written anywhere
        assert (out.view == before).all()

    def test_raises_without_sanitizer(self):
        rt = CudaLite(CARINA)
        out = rt.malloc(64, np.float32)
        with pytest.raises(InvalidAddressError):
            rt.launch(wild_store, 1, 64, out, 64)

    def test_launch_error_is_sticky_without_sanitizer(self):
        rt = CudaLite(CARINA)
        out = rt.malloc(64, np.float32)
        with pytest.raises(InvalidAddressError):
            rt.launch(wild_store, 1, 64, out, 64)
        with pytest.raises(InvalidAddressError):
            rt.malloc(4)
        rt.reset()
        rt.malloc(4)  # recovered


class TestUninitRead:
    def test_uninitialized_read_is_warning(self):
        san, rt = _memcheck_rt()
        x = rt.malloc(256, np.float32)  # never written
        y = rt.malloc(256, np.float32)
        rt.launch(read_only, 2, 128, x, y, 256)
        findings = [f for f in san.report().findings if f.rule == "uninitialized-read"]
        assert findings
        assert all(f.severity == "warning" for f in findings)
        assert san.report().ok  # warnings do not fail the run

    def test_initialized_read_is_clean(self):
        san, rt = _memcheck_rt()
        x = rt.to_device(np.ones(256, dtype=np.float32))
        y = rt.malloc(256, np.float32)
        rt.launch(read_only, 2, 128, x, y, 256)
        assert san.report().findings == []

    def test_kernel_store_marks_initialized(self):
        san, rt = _memcheck_rt()
        x = rt.to_device(np.ones(256, dtype=np.float32))
        y = rt.malloc(256, np.float32)
        rt.launch(read_only, 2, 128, x, y, 256)  # writes y
        z = rt.malloc(256, np.float32)
        rt.launch(read_only, 2, 128, y, z, 256)  # reads y: now initialized
        assert san.report().findings == []


class TestReport:
    def test_raise_if_errors(self):
        san, rt = _memcheck_rt()
        out = rt.malloc(64, np.float32)
        rt.launch(wild_store, 1, 64, out, 64)
        with pytest.raises(SanitizerError):
            san.report().raise_if_errors()

    def test_render_mentions_tool_and_counts(self):
        san, rt = _memcheck_rt()
        out = rt.malloc(1024 + 32, np.float32)
        out.logical_size = 1024
        rt.launch(oob_store, 8, 128, out, 1024)
        text = san.report().render()
        assert "memcheck" in text and "8 finding(s)" in text

    def test_dedup_across_relaunch(self):
        san, rt = _memcheck_rt()
        out = rt.malloc(1024 + 32, np.float32)
        out.logical_size = 1024
        rt.launch(oob_store, 8, 128, out, 1024)
        rt.launch(oob_store, 8, 128, out, 1024)
        assert len(san.report().findings) == 8  # identical findings deduped
