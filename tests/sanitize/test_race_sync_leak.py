"""racecheck, synccheck, leakcheck, and the ambient sanitize session."""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.common.errors import KernelRuntimeError
from repro.host.runtime import CudaLite
from repro.sanitize import Sanitizer, current_session, sanitize_session
from repro.simt.kernel import kernel


@kernel
def race_reverse(ctx, x, y, n):
    """Missing barrier between the store and the cross-warp read."""
    tile = ctx.shared_array(ctx.block.x, np.float32)
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x
    ctx.if_active(i < n, lambda: tile.store(t, ctx.load(x, i)))
    rev = (ctx.block.x - 1) - t
    ctx.if_active(i < n, lambda: ctx.store(y, i, tile.load(rev)))


@kernel
def reverse_with_barrier(ctx, x, y, n):
    """The fixed version: a barrier closes the hazard epoch."""
    tile = ctx.shared_array(ctx.block.x, np.float32)
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x
    ctx.if_active(i < n, lambda: tile.store(t, ctx.load(x, i)))
    ctx.syncthreads()
    rev = (ctx.block.x - 1) - t
    ctx.if_active(i < n, lambda: ctx.store(y, i, tile.load(rev)))


@kernel
def divergent_barrier(ctx, y, n):
    i = ctx.global_thread_id()
    t = ctx.thread_idx_x

    def body():
        ctx.syncthreads(unsafe=True)
        ctx.store(y, i, 1.0)

    ctx.if_active(t < ctx.block.x // 2, body)


def _run_reverse(kdef, tools):
    san = Sanitizer(tools)
    rt = CudaLite(CARINA, sanitize=san)
    x = rt.to_device(np.arange(256, dtype=np.float32))
    y = rt.malloc(256, np.float32)
    rt.launch(kdef, 2, 128, x, y, 256)
    return san, y


class TestRacecheck:
    def test_missing_barrier_reported(self):
        san, _ = _run_reverse(race_reverse, "racecheck")
        findings = san.report().findings
        assert findings
        assert all(f.tool == "racecheck" for f in findings)
        assert any(f.rule == "read-after-write" for f in findings)
        assert all(f.severity == "critical" for f in findings)
        # the conflicting thread's coordinates are named
        assert "conflicts with thread" in findings[0].message

    def test_barrier_clears_epoch(self):
        san, y = _run_reverse(reverse_with_barrier, "racecheck")
        assert san.report().findings == []
        assert (y.to_host() == np.arange(256, dtype=np.float32).reshape(2, 128)[:, ::-1].reshape(-1)).all()

    def test_warp_synchronous_assumption(self):
        """Hazards entirely within one warp are filtered by default."""

        @kernel
        def intra_warp(ctx, y, n):
            tile = ctx.shared_array(32, np.float32)
            t = ctx.thread_idx_x
            tile.store(t, 1.0)
            ctx.store(y, ctx.global_thread_id(), tile.load(31 - t))

        san = Sanitizer("racecheck")
        rt = CudaLite(CARINA, sanitize=san)
        y = rt.malloc(32, np.float32)
        rt.launch(intra_warp, 1, 32, y, 32)
        assert san.report().findings == []

    def test_no_raise_without_sanitizer(self):
        rt = CudaLite(CARINA)
        x = rt.to_device(np.arange(256, dtype=np.float32))
        y = rt.malloc(256, np.float32)
        rt.launch(race_reverse, 2, 128, x, y, 256)  # silent


class TestSynccheck:
    def test_divergent_barrier_reported_with_coords(self):
        san = Sanitizer("synccheck")
        rt = CudaLite(CARINA, sanitize=san)
        y = rt.malloc(256, np.float32)
        rt.launch(divergent_barrier, 2, 128, y, 256)
        findings = san.report().findings
        assert findings
        assert all(f.rule == "divergent-barrier" for f in findings)
        assert all(f.severity == "critical" for f in findings)
        # the first missing thread of the first split warp is t=64
        assert findings[0].thread == (64, 0, 0)

    def test_synccheck_reports_instead_of_raising(self):
        """Even a non-unsafe divergent barrier becomes a finding."""

        @kernel
        def divergent_strict(ctx, y, n):
            t = ctx.thread_idx_x
            ctx.if_active(t < 1, lambda: ctx.syncthreads())

        san = Sanitizer("synccheck")
        rt = CudaLite(CARINA, sanitize=san)
        y = rt.malloc(64, np.float32)
        rt.launch(divergent_strict, 1, 64, y, 64)  # no raise
        assert san.report().findings

    def test_raises_without_sanitizer(self):
        @kernel
        def divergent_strict(ctx, y, n):
            t = ctx.thread_idx_x
            ctx.if_active(t < 1, lambda: ctx.syncthreads())

        rt = CudaLite(CARINA)
        y = rt.malloc(64, np.float32)
        with pytest.raises(KernelRuntimeError):
            rt.launch(divergent_strict, 1, 64, y, 64)

    def test_uniform_barrier_is_clean(self):
        san, _ = _run_reverse(reverse_with_barrier, "synccheck")
        assert san.report().findings == []


class TestLeakcheck:
    def test_close_reports_live_allocations(self):
        san = Sanitizer("leakcheck")
        rt = CudaLite(CARINA, sanitize=san)
        rt.malloc(1024, np.float32)
        rt.close()
        findings = san.report().findings
        assert any(f.rule == "leaked-allocations" for f in findings)

    def test_freed_everything_is_clean(self):
        san = Sanitizer("leakcheck")
        rt = CudaLite(CARINA, sanitize=san)
        a = rt.malloc(1024, np.float32)
        rt.free(a)
        rt.close()
        assert san.report().findings == []


class TestSession:
    def test_runtime_inherits_session_sanitizer(self):
        san = Sanitizer("memcheck")
        with sanitize_session(sanitizer=san) as session:
            rt = CudaLite(CARINA)
            assert rt.sanitizer is san
            assert session.runtimes == [rt]
        assert current_session() is None

    def test_session_exit_sweeps_leaks(self):
        san = Sanitizer("leakcheck")
        with sanitize_session(sanitizer=san):
            rt = CudaLite(CARINA)
            rt.malloc(512, np.float32)
        assert any(f.tool == "leakcheck" for f in san.report().findings)

    def test_explicit_args_beat_session(self):
        outer = Sanitizer("memcheck")
        inner = Sanitizer("racecheck")
        with sanitize_session(sanitizer=outer):
            rt = CudaLite(CARINA, sanitize=inner)
        assert rt.sanitizer is inner
