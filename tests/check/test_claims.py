"""Claim-spec parsing and evaluation (``repro.check.claims``)."""

import pytest

from repro.check.claims import (
    evaluate_claims_on_document,
    evaluate_result_claim,
    evaluate_sweep_claim,
    load_claim_file,
    load_claims,
    load_claims_dir,
)
from repro.common.errors import ReproError


def write_claim(tmp_path, body, name="spec.toml"):
    path = tmp_path / name
    path.write_text(body)
    return path


VALID = """
schema = "repro-claims/1"
benchmark = "CoMem"
source = "Table I"

[run]
n = 65536

[[claims]]
kind = "speedup"
min = 2.0
max = 30.0
paper = "18 (average)"

[[claims]]
kind = "verified"

[[claims]]
kind = "metric"
key = "cyclic_transactions_per_request"
max = 1.05

[[claims]]
kind = "metric_ratio"
numerator = "block_transactions_per_request"
denominator = "cyclic_transactions_per_request"
min = 4.0

[[claims]]
kind = "sweep_monotonic"
values = [1024, 4096]
baseline = "BLOCK"
optimized = "CYCLIC"
direction = "increasing"
slow = true
"""


class TestLoading:
    def test_valid_file(self, tmp_path):
        spec = load_claim_file(write_claim(tmp_path, VALID))
        assert spec.benchmark == "CoMem"
        assert spec.run_params == {"n": 65536}
        assert len(spec.claims) == 5
        assert spec.claims[0].paper == "18 (average)"

    def test_quick_filters_slow_claims(self, tmp_path):
        spec = load_claim_file(write_claim(tmp_path, VALID))
        assert len(spec.sweep_claims()) == 1
        assert spec.sweep_claims(quick=True) == []
        # result claims here are all fast; quick keeps them
        assert len(spec.result_claims(quick=True)) == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_claim_file(tmp_path / "nope.toml")

    def test_invalid_toml(self, tmp_path):
        path = write_claim(tmp_path, "schema = [unclosed")
        with pytest.raises(ReproError, match="not valid TOML"):
            load_claim_file(path)

    def test_wrong_schema(self, tmp_path):
        path = write_claim(
            tmp_path, 'schema = "repro-claims/9"\nbenchmark = "X"\n[[claims]]\nkind = "verified"'
        )
        with pytest.raises(ReproError, match="schema"):
            load_claim_file(path)

    def test_unknown_kind(self, tmp_path):
        path = write_claim(
            tmp_path,
            'schema = "repro-claims/1"\nbenchmark = "X"\n'
            '[[claims]]\nkind = "vibes"\n',
        )
        with pytest.raises(ReproError, match="unknown claim kind"):
            load_claim_file(path)

    def test_unknown_field_rejected(self, tmp_path):
        path = write_claim(
            tmp_path,
            'schema = "repro-claims/1"\nbenchmark = "X"\n'
            '[[claims]]\nkind = "verified"\ntreshold = 2.0\n',
        )
        with pytest.raises(ReproError, match="unknown claim field"):
            load_claim_file(path)

    def test_metric_needs_key(self, tmp_path):
        path = write_claim(
            tmp_path,
            'schema = "repro-claims/1"\nbenchmark = "X"\n'
            '[[claims]]\nkind = "metric"\nmin = 1.0\n',
        )
        with pytest.raises(ReproError, match="needs a 'key'"):
            load_claim_file(path)

    def test_range_required(self, tmp_path):
        path = write_claim(
            tmp_path,
            'schema = "repro-claims/1"\nbenchmark = "X"\n'
            '[[claims]]\nkind = "speedup"\n',
        )
        with pytest.raises(ReproError, match="'min' and/or 'max'"):
            load_claim_file(path)

    def test_duplicate_benchmark_in_dir(self, tmp_path):
        write_claim(tmp_path, VALID, name="a.toml")
        write_claim(tmp_path, VALID, name="b.toml")
        with pytest.raises(ReproError, match="duplicate claims"):
            load_claims_dir(tmp_path)

    def test_load_claims_file_or_dir(self, tmp_path):
        path = write_claim(tmp_path, VALID)
        assert len(load_claims(path)) == 1
        assert len(load_claims(tmp_path)) == 1

    def test_committed_claim_files_cover_all_benchmarks(self):
        from repro.core.registry import list_benchmarks

        specs = load_claims_dir()
        assert set(specs) == set(list_benchmarks())
        for spec in specs.values():
            kinds = {c.kind for c in spec.claims}
            assert "speedup" in kinds, spec.benchmark
            assert "verified" in kinds, spec.benchmark


ROW = {
    "benchmark": "CoMem",
    "baseline_name": "block",
    "optimized_name": "cyclic",
    "baseline_time_s": 1.0,
    "optimized_time_s": 0.1,
    "speedup": 10.0,
    "verified": True,
    "params": {"n": 65536},
    "metrics": {
        "block_transactions_per_request": 16.0,
        "cyclic_transactions_per_request": 1.0,
    },
}


class TestResultEvaluation:
    def _claims(self, tmp_path):
        return load_claim_file(write_claim(tmp_path, VALID)).claims

    def test_all_pass_on_conforming_row(self, tmp_path):
        for claim in self._claims(tmp_path)[:4]:
            out = evaluate_result_claim(claim, ROW, benchmark="CoMem")
            assert out.passed, out

    def test_speedup_out_of_range_fails_with_paper_context(self, tmp_path):
        row = dict(ROW, speedup=1.0)
        out = evaluate_result_claim(self._claims(tmp_path)[0], row, benchmark="CoMem")
        assert not out.passed
        assert "18 (average)" in out.detail
        assert "[2, 30]" in out.detail

    def test_unverified_fails_naming_both_kernels(self, tmp_path):
        row = dict(ROW, verified=False)
        out = evaluate_result_claim(self._claims(tmp_path)[1], row, benchmark="CoMem")
        assert not out.passed
        assert "cyclic" in out.detail and "block" in out.detail

    def test_missing_metric_fails(self, tmp_path):
        row = dict(ROW, metrics={})
        out = evaluate_result_claim(self._claims(tmp_path)[2], row, benchmark="CoMem")
        assert not out.passed
        assert "missing" in out.detail

    def test_nan_speedup_fails(self, tmp_path):
        row = dict(ROW, speedup=float("nan"))
        out = evaluate_result_claim(self._claims(tmp_path)[0], row, benchmark="CoMem")
        assert not out.passed


def sweep(series):
    return {"x_name": "n", "x_values": [1024, 4096], "series": series}


class TestSweepEvaluation:
    def _sweep_claim(self, tmp_path):
        return load_claim_file(write_claim(tmp_path, VALID)).claims[4]

    def test_increasing_trend_passes(self, tmp_path):
        out = evaluate_sweep_claim(
            self._sweep_claim(tmp_path),
            sweep({"BLOCK": [2.0, 8.0], "CYCLIC": [1.0, 1.0]}),
            benchmark="CoMem",
        )
        assert out.passed

    def test_decreasing_trend_fails(self, tmp_path):
        out = evaluate_sweep_claim(
            self._sweep_claim(tmp_path),
            sweep({"BLOCK": [8.0, 2.0], "CYCLIC": [1.0, 1.0]}),
            benchmark="CoMem",
        )
        assert not out.passed

    def test_unknown_series_fails_listing_names(self, tmp_path):
        out = evaluate_sweep_claim(
            self._sweep_claim(tmp_path),
            sweep({"serial": [1.0, 1.0], "parallel": [1.0, 1.0]}),
            benchmark="CoMem",
        )
        assert not out.passed
        assert "serial" in out.detail

    def test_crossover(self, tmp_path):
        path = write_claim(
            tmp_path,
            'schema = "repro-claims/1"\nbenchmark = "X"\n'
            '[[claims]]\nkind = "sweep_crossover"\nvalues = [1024, 4096]\n'
            'baseline = "a"\noptimized = "b"\nthreshold = 1.0\n',
            name="x.toml",
        )
        claim = load_claim_file(path).claims[0]
        crossing = sweep({"a": [0.5, 2.0], "b": [1.0, 1.0]})
        assert evaluate_sweep_claim(claim, crossing, benchmark="X").passed
        always_above = sweep({"a": [2.0, 3.0], "b": [1.0, 1.0]})
        assert not evaluate_sweep_claim(claim, always_above, benchmark="X").passed


class TestDocumentEvaluation:
    def test_evaluates_matching_rows(self, tmp_path):
        specs = [load_claim_file(write_claim(tmp_path, VALID))]
        doc = {"schema": "repro-prof-bench/1", "results": [ROW]}
        outcomes = evaluate_claims_on_document(specs, doc)
        assert len(outcomes) == 4
        assert all(o.passed for o in outcomes)

    def test_skips_rows_at_other_params(self, tmp_path):
        specs = [load_claim_file(write_claim(tmp_path, VALID))]
        doc = {
            "schema": "repro-prof-bench/1",
            "results": [dict(ROW, params={"n": 128})],
        }
        assert evaluate_claims_on_document(specs, doc) == []

    def test_skips_benchmarks_without_rows(self, tmp_path):
        specs = [load_claim_file(write_claim(tmp_path, VALID))]
        doc = {"schema": "repro-prof-bench/1", "results": []}
        assert evaluate_claims_on_document(specs, doc) == []
