"""Metamorphic-relation runner (``repro.check.metamorphic``)."""

import pytest

from repro.check.metamorphic import list_relations, run_relations
from repro.common.errors import ReproError


class TestRegistry:
    def test_known_relations_registered(self):
        names = list_relations()
        assert "scale-n-scales-transactions" in names
        assert "block-order-permutation-preserves-counters" in names
        assert "warp-size-shifts-divergence" in names

    def test_unknown_relation_raises(self):
        with pytest.raises(ReproError, match="unknown relation"):
            run_relations(["no-such-relation"])


class TestRelationsHold:
    def test_scaling_relation_passes_on_both_backends(self):
        outcomes = run_relations(["scale-n-scales-transactions"])
        assert {o.backend for o in outcomes} == {"reference", "fast"}
        assert all(o.passed for o in outcomes), [
            str(o) for o in outcomes if not o.passed
        ]

    def test_block_permutation_relation_passes(self):
        outcomes = run_relations(
            ["block-order-permutation-preserves-counters"],
            backends=("reference",),
        )
        assert outcomes and all(o.passed for o in outcomes)
        assert "counters + output identical" in outcomes[0].detail

    def test_warp_size_relation_passes(self):
        outcomes = run_relations(
            ["warp-size-shifts-divergence"], backends=("fast",)
        )
        # one outcome per width, all attributing the divergence shift
        assert {o.subject for o in outcomes} == {"warp16", "warp32", "warp64"}
        assert all(o.passed for o in outcomes), [
            str(o) for o in outcomes if not o.passed
        ]
