"""Conformance engine over live runs (``repro.check.engine``)."""

import pytest

from repro.check import check_all, check_benchmark, load_claim_file
from repro.common.errors import ReproError

FAST_SPEC = """
schema = "repro-claims/1"
benchmark = "MemAlign"
source = "Table I"

[run]
n = 65536

[[claims]]
kind = "speedup"
min = 1.0
max = 1.2

[[claims]]
kind = "verified"

[[claims]]
kind = "metric"
key = "misaligned_transactions_per_request"
min = 1.99
max = 2.01
"""

BROKEN_SPEC = FAST_SPEC.replace("min = 1.0\nmax = 1.2", "min = 50.0")


def spec_from(tmp_path, body, name="memalign.toml"):
    path = tmp_path / name
    path.write_text(body)
    return load_claim_file(path)


class TestCheckBenchmark:
    def test_conforming_benchmark_passes(self, tmp_path):
        outcomes = check_benchmark(spec_from(tmp_path, FAST_SPEC))
        assert outcomes
        assert all(o.passed for o in outcomes), [
            str(o) for o in outcomes if not o.passed
        ]
        kinds = {o.kind for o in outcomes}
        # claims evaluated AND the run's metrics audited
        assert {"claim", "invariant", "structure"} <= kinds

    def test_impossible_claim_fails_pointedly(self, tmp_path):
        outcomes = check_benchmark(spec_from(tmp_path, BROKEN_SPEC))
        bad = [o for o in outcomes if not o.passed]
        assert len(bad) == 1
        assert bad[0].name == "speedup"
        assert ">= 50" in bad[0].detail

    def test_quick_with_only_slow_claims_skips_run(self, tmp_path):
        slow = FAST_SPEC.replace(
            'kind = "speedup"', 'kind = "speedup"\nslow = true'
        ).replace(
            'kind = "verified"', 'kind = "verified"\nslow = true'
        ).replace(
            'kind = "metric"', 'kind = "metric"\nslow = true'
        )
        assert check_benchmark(spec_from(tmp_path, slow), quick=True) == []

    def test_backend_recorded_on_outcomes(self, tmp_path):
        outcomes = check_benchmark(spec_from(tmp_path, FAST_SPEC), backend="fast")
        assert outcomes and all(o.backend == "fast" for o in outcomes)


class TestCheckAll:
    def test_unknown_benchmark_name_raises(self, tmp_path):
        (tmp_path / "m.toml").write_text(FAST_SPEC)
        with pytest.raises(ReproError, match="no claim file for: Nope"):
            check_all(
                benchmarks=["Nope"], claims_dir=str(tmp_path), relations=False
            )

    def test_single_benchmark_single_backend(self, tmp_path):
        (tmp_path / "m.toml").write_text(FAST_SPEC)
        report = check_all(
            benchmarks=["MemAlign"],
            claims_dir=str(tmp_path),
            backend="reference",
            relations=False,
        )
        assert report.ok and report.outcomes

    def test_both_backends_by_default(self, tmp_path):
        (tmp_path / "m.toml").write_text(FAST_SPEC)
        report = check_all(claims_dir=str(tmp_path), relations=False)
        assert {o.backend for o in report.outcomes} == {"reference", "fast"}
