"""Conformance report shape and rendering (``repro.check.report``)."""

import json

import pytest

from repro.check.report import CheckOutcome, ConformanceReport


def out(subject="CoMem", name="speedup", passed=True, kind="claim"):
    return CheckOutcome(
        kind=kind, subject=subject, name=name, passed=passed, detail="d"
    )


class TestReport:
    def test_ok_only_when_nothing_failed(self):
        r = ConformanceReport(title="t")
        r.add(out())
        assert r.ok
        r.add(out(passed=False))
        assert not r.ok
        assert len(r.failures) == 1

    def test_groups_by_subject_prefix(self):
        r = ConformanceReport(title="t")
        r.add(out(subject="CoMem/kernel_a", kind="invariant"))
        r.add(out(subject="CoMem"))
        assert set(r.by_subject()) == {"CoMem"}

    def test_json_document_shape(self, tmp_path):
        r = ConformanceReport(title="t")
        r.add(out())
        r.add(out(name="verified", passed=False))
        path = r.write_json(tmp_path / "report.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-conformance/1"
        assert doc["ok"] is False
        assert doc["total"] == 2 and doc["failed"] == 1
        assert doc["by_kind"]["claim"] == {"total": 2, "failed": 1}
        assert len(doc["outcomes"]) == 2

    def test_render_lists_failures_and_verdict(self):
        r = ConformanceReport(title="t")
        r.add(out())
        r.add(out(subject="Shmem", name="verified", passed=False))
        text = r.render()
        assert "FAIL" in text and "Shmem" in text
        assert "1 of 2 checks FAILED" in text

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown outcome kind"):
            CheckOutcome(
                kind="vibe", subject="s", name="n", passed=True, detail=""
            )
