"""Physical-invariant registry (``repro.check.invariants``)."""

import json

import pytest

from repro.check.invariants import (
    KERNEL_INVARIANTS,
    check_bench_row,
    check_cache_dir,
    check_document,
    check_kernel_entry,
    check_sweep,
)
from repro.common.errors import ReproError

GPU = {"warp_size": 32, "transaction_bytes": 128, "sector_bytes": 32}


def entry(**over):
    """A minimal, physically-consistent kernel entry."""
    base = {
        "time_total_s": 1e-4,
        "time_avg_s": 1e-4,
        "grid": [4, 1, 1],
        "block": [256, 1, 1],
        "counters": {
            "blocks": 4,
            "threads": 1024,
            "warps": 32,
            "global_requests": 64,
            "transactions": 64,
            "sectors_requested": 256,
            "bytes_requested": 8192,
            "branches": 10,
            "divergent_branches": 2,
            "shared_requests": 8,
            "shared_passes": 10,
            "bank_conflict_extra": 2,
        },
        "metrics": {
            "warp_execution_efficiency": 0.9,
            "branch_efficiency": 0.8,
            "gld_efficiency": 1.0,
            "shared_efficiency": 0.8,
            "achieved_occupancy": 0.5,
        },
        "traffic": {
            "l1_hit_rate": 0.5,
            "l2_hit_rate": 0.5,
            "l2_sectors": 256,
            "dram_sectors": 128,
            "dram_read_bytes": 3000,
            "dram_write_bytes": 1096,
            "dram_bytes": 4096,
            "dram_uncached_read_bytes": 0,
        },
    }
    base.update(over)
    return base


def failures(e, gpu=GPU):
    return [o for o in check_kernel_entry("k", e, gpu) if not o.passed]


class TestKernelInvariants:
    def test_registry_is_populated(self):
        assert len(KERNEL_INVARIANTS) >= 9

    def test_consistent_entry_passes_everything(self):
        assert failures(entry()) == []

    def test_nan_counter_flagged(self):
        e = entry()
        e["counters"]["transactions"] = float("nan")
        names = {o.name for o in failures(e)}
        assert "counters-finite-nonnegative" in names

    def test_negative_counter_flagged(self):
        e = entry()
        e["counters"]["bytes_requested"] = -1
        names = {o.name for o in failures(e)}
        assert "counters-finite-nonnegative" in names

    def test_geometry_mismatch_flagged(self):
        e = entry()
        e["counters"]["threads"] = 999
        assert any(o.name == "geometry-consistent" for o in failures(e))

    def test_transactions_below_byte_floor_flagged(self):
        e = entry()
        # 8192 useful bytes cannot fit in 10 x 128B transactions
        e["counters"]["transactions"] = 10
        bad = failures(e)
        assert any(o.name == "transactions-lower-bound" for o in bad)
        assert any("lower bound" in o.detail for o in bad)

    def test_bytes_beyond_broadcast_capacity_flagged(self):
        e = entry()
        e["counters"]["sectors_requested"] = 1
        e["counters"]["bytes_requested"] = 32 * 32 * 2  # 2x the broadcast cap
        assert any(o.name == "sectors-cover-bytes" for o in failures(e))

    def test_broadcast_reuse_within_warp_width_allowed(self):
        e = entry()
        # every lane served from one sector: legal gld_efficiency > 1
        e["counters"]["sectors_requested"] = 8
        e["counters"]["bytes_requested"] = 8 * 32 * 32
        e["counters"]["transactions"] = 64
        e["metrics"]["gld_efficiency"] = 4.0
        assert failures(e) == []

    def test_occupancy_above_one_flagged(self):
        e = entry()
        e["metrics"]["achieved_occupancy"] = 1.4
        assert any(o.name == "efficiencies-are-fractions" for o in failures(e))

    def test_gld_efficiency_beyond_warp_width_flagged(self):
        e = entry()
        e["metrics"]["gld_efficiency"] = 33.0
        assert any(o.name == "efficiencies-are-fractions" for o in failures(e))

    def test_divergent_branches_beyond_total_flagged(self):
        e = entry()
        e["counters"]["divergent_branches"] = 11
        assert any(o.name == "divergence-within-branches" for o in failures(e))

    def test_conflict_passes_below_requests_flagged(self):
        e = entry()
        e["counters"]["shared_passes"] = 4  # fewer passes than requests
        e["counters"]["bank_conflict_extra"] = 0
        assert any(o.name == "bank-conflicts-only-add" for o in failures(e))

    def test_dram_bypassing_l2_flagged(self):
        e = entry()
        e["traffic"]["dram_sectors"] = 1024  # more than l2_sectors
        bad = failures(e)
        assert any("traverse L2" in o.detail for o in bad)

    def test_dram_byte_conservation_flagged(self):
        e = entry()
        e["traffic"]["dram_bytes"] = 999999
        assert any("conservation" in o.detail for o in failures(e))

    def test_negative_time_flagged(self):
        e = entry(time_avg_s=-1.0)
        assert any(o.name == "times-physical" for o in failures(e))


class TestBenchRow:
    ROW = {
        "benchmark": "CoMem",
        "baseline_time_s": 1.0,
        "optimized_time_s": 0.5,
        "speedup": 2.0,
        "verified": True,
    }

    def test_consistent_row_passes(self):
        (out,) = check_bench_row(self.ROW)
        assert out.passed and out.name == "result-sanity"

    def test_nan_time_fails(self):
        (out,) = check_bench_row(dict(self.ROW, baseline_time_s=float("nan")))
        assert not out.passed

    def test_speedup_inconsistent_with_times_fails(self):
        (out,) = check_bench_row(dict(self.ROW, speedup=7.0))
        assert not out.passed
        assert "inconsistent" in out.detail

    def test_non_bool_verified_fails(self):
        (out,) = check_bench_row(dict(self.ROW, verified="yes"))
        assert not out.passed


class TestSweepAndDocument:
    def test_misaligned_series_fails(self):
        (out,) = check_sweep(
            {"x_values": [1, 2], "series": {"a": [1.0], "b": [1.0, 2.0]}}
        )
        assert not out.passed

    def test_negative_point_fails(self):
        (out,) = check_sweep(
            {"x_values": [1, 2], "series": {"a": [1.0, -2.0]}}
        )
        assert not out.passed

    def test_structurally_broken_document_fails_loudly(self):
        outcomes = check_document({"schema": "repro-prof-metrics/1"})
        assert len(outcomes) == 1
        assert outcomes[0].kind == "structure" and not outcomes[0].passed

    def test_live_run_document_passes(self, tmp_path):
        from repro.core.registry import get_benchmark
        from repro.prof import collect_metrics, profile_session

        bench = get_benchmark("MemAlign")
        with profile_session() as prof:
            bench.run(n=65536)
        checked = 0
        for rt in prof.runtimes:
            if not rt.kernel_log:
                continue
            doc = collect_metrics(rt, benchmark="MemAlign")
            outcomes = check_document(doc, subject="MemAlign")
            assert all(o.passed for o in outcomes), [
                str(o) for o in outcomes if not o.passed
            ]
            checked += len(outcomes)
        assert checked > 0


class TestCacheAudit:
    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            check_cache_dir(tmp_path / "nope")

    def test_good_and_corrupt_entries(self, tmp_path):
        sub = tmp_path / "ab"
        sub.mkdir()
        good = {
            "schema": "repro-sched-cache/1",
            "key": "ab" + "0" * 62,
            "payload": {
                "result": {
                    "benchmark": "CoMem",
                    "baseline_time_s": 1.0,
                    "optimized_time_s": 0.5,
                    "speedup": 2.0,
                    "verified": True,
                }
            },
        }
        (sub / ("ab" + "0" * 62 + ".json")).write_text(json.dumps(good))
        (sub / ("ab" + "1" * 62 + ".json")).write_text("{ not json")
        outcomes = check_cache_dir(tmp_path)
        assert any(o.passed and o.name == "result-sanity" for o in outcomes)
        assert any(
            not o.passed and o.name == "cache-entry" for o in outcomes
        )
