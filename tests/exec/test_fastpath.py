"""Residue-class fast path: eligibility gating and exact equivalence."""

import numpy as np
import pytest

from repro.exec.fastpath import analyze_access_fast, analyze_shared_access_fast
from repro.mem.banks import analyze_shared_access
from repro.mem.coalesce import analyze_access

BASE = 0x100000


def affine(n, stride, itemsize=4, offset=0):
    return BASE + offset + np.arange(n, dtype=np.int64) * stride * itemsize


class TestEligibility:
    def test_partial_mask_ineligible(self):
        mask = np.ones(64, dtype=bool)
        mask[3] = False
        assert analyze_access_fast(affine(64, 1), mask, 4) is None

    def test_irregular_stride_ineligible(self):
        addrs = affine(64, 1)
        addrs[40] += 4
        assert analyze_access_fast(addrs, None, 4) is None

    def test_mixed_stride_across_warps_ineligible(self):
        addrs = np.concatenate([affine(32, 1), affine(32, 2, offset=4096)])
        assert analyze_access_fast(addrs, None, 4) is None

    def test_whole_warp_inactive_is_eligible(self):
        mask = np.ones(64, dtype=bool)
        mask[32:] = False
        fast = analyze_access_fast(affine(64, 1), mask, 4)
        assert fast is not None
        assert fast == analyze_access(affine(64, 1), mask, 4)

    def test_empty_grid(self):
        fast = analyze_access_fast(np.array([], dtype=np.int64), None, 4)
        assert fast == analyze_access(np.array([], dtype=np.int64), None, 4)

    def test_shared_partial_mask_ineligible(self):
        mask = np.ones(32, dtype=bool)
        mask[0] = False
        offs = np.arange(32, dtype=np.int64) * 4
        assert analyze_shared_access_fast(offs, mask) is None


class TestGlobalEquivalence:
    @pytest.mark.parametrize("stride", [1, 2, 4, 8, 17, 32, 1 << 12])
    @pytest.mark.parametrize("itemsize", [1, 4, 8])
    def test_strided_streams(self, stride, itemsize):
        addrs = affine(512, stride, itemsize)
        fast = analyze_access_fast(addrs, None, itemsize)
        assert fast is not None
        assert fast == analyze_access(addrs, None, itemsize)

    @pytest.mark.parametrize("offset", [0, 1, 3, 4, 31, 32, 100, 127])
    def test_misaligned_streams(self, offset):
        addrs = affine(256, 1, 4, offset=offset)
        fast = analyze_access_fast(addrs, None, 4)
        assert fast is not None
        assert fast == analyze_access(addrs, None, 4)

    def test_straddling_elements(self):
        # 8-byte elements at odd 4-byte offsets straddle 32B sector lines
        addrs = affine(128, 1, 8, offset=4)
        fast = analyze_access_fast(addrs, None, 8)
        assert fast == analyze_access(addrs, None, 8)

    def test_broadcast_stride_zero(self):
        addrs = np.full(64, BASE, dtype=np.int64)
        fast = analyze_access_fast(addrs, None, 4)
        assert fast == analyze_access(addrs, None, 4)

    def test_negative_stride(self):
        addrs = BASE + (np.arange(128, dtype=np.int64)[::-1]) * 4
        fast = analyze_access_fast(np.ascontiguousarray(addrs), None, 4)
        assert fast == analyze_access(addrs, None, 4)

    def test_sampling_threshold_consistent(self):
        addrs = affine(32 * 64, 1)
        fast = analyze_access_fast(addrs, None, 4, max_analyzed_warps=16)
        ref = analyze_access(addrs, None, 4, max_analyzed_warps=16)
        assert fast == ref
        assert fast.sample_fraction < 1.0


class TestSharedEquivalence:
    @pytest.mark.parametrize("stride_words", [1, 2, 4, 8, 16, 32, 33])
    def test_strided_words(self, stride_words):
        offs = np.arange(256, dtype=np.int64) * stride_words * 4
        fast = analyze_shared_access_fast(offs, None)
        assert fast is not None
        assert fast == analyze_shared_access(offs, None)

    def test_broadcast(self):
        offs = np.zeros(64, dtype=np.int64)
        fast = analyze_shared_access_fast(offs, None)
        assert fast == analyze_shared_access(offs, None)

    def test_whole_warp_inactive(self):
        mask = np.ones(64, dtype=bool)
        mask[:32] = False
        offs = np.arange(64, dtype=np.int64) * 8
        fast = analyze_shared_access_fast(offs, mask)
        assert fast == analyze_shared_access(offs, mask)
