"""Backend selection and dispatch accounting."""

import numpy as np
import pytest

from repro.common.errors import LaunchConfigError
from repro.exec.dispatch import (
    BACKENDS,
    FastDispatch,
    ReferenceDispatch,
    current_backend_name,
    make_dispatcher,
    use_backend,
)


class TestSelection:
    def test_default_is_reference(self):
        assert current_backend_name() == "reference"

    def test_explicit_wins(self):
        with use_backend("fast"):
            assert current_backend_name("reference") == "reference"

    def test_context_nesting(self):
        with use_backend("fast"):
            assert current_backend_name() == "fast"
            with use_backend("reference"):
                assert current_backend_name() == "reference"
            assert current_backend_name() == "fast"
        assert current_backend_name() == "reference"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert current_backend_name() == "fast"

    def test_context_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        with use_backend("reference"):
            assert current_backend_name() == "reference"

    def test_unknown_name_raises(self):
        with pytest.raises(LaunchConfigError):
            current_backend_name("vectorized")
        with pytest.raises(LaunchConfigError):
            with use_backend("nope"):
                pass  # pragma: no cover

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "nope")
        with pytest.raises(LaunchConfigError):
            current_backend_name()

    def test_make_dispatcher(self):
        from repro.jit.dispatch import JitDispatch

        assert isinstance(make_dispatcher("fast"), FastDispatch)
        d = make_dispatcher("reference")
        assert isinstance(d, ReferenceDispatch) and not isinstance(d, FastDispatch)
        assert isinstance(make_dispatcher("jit"), JitDispatch)
        with use_backend("fast"):
            assert isinstance(make_dispatcher(), FastDispatch)

    def test_backend_names(self):
        assert BACKENDS == ("reference", "fast", "jit")


AFFINE = np.arange(32, dtype=np.int64) * 4
DIVERGENT_MASK = np.array([i % 2 == 0 for i in range(32)])
RAGGED = np.array([0, 4, 8, 12] + [100 * i for i in range(4, 32)], dtype=np.int64)


class TestCounters:
    def test_reference_counts_reference(self):
        d = ReferenceDispatch()
        d.analyze_global(
            AFFINE, None, 4, warp_size=32, transaction_bytes=128, sector_bytes=32
        )
        d.analyze_shared(AFFINE, None, warp_size=32, nbanks=32, bank_bytes=4)
        c = d.counters.as_dict()
        assert c["global_reference"] == 1 and c["shared_reference"] == 1
        assert c["global_fast"] == c["shared_fast"] == 0

    def test_fast_counts_fast_on_affine(self):
        d = FastDispatch()
        d.analyze_global(
            AFFINE, None, 4, warp_size=32, transaction_bytes=128, sector_bytes=32
        )
        d.analyze_shared(AFFINE, None, warp_size=32, nbanks=32, bank_bytes=4)
        assert d.counters.global_fast == 1
        assert d.counters.shared_fast == 1
        assert d.counters.global_fallback == 0

    def test_fast_counts_fallback_on_divergent(self):
        d = FastDispatch()
        d.analyze_global(
            AFFINE,
            DIVERGENT_MASK,
            4,
            warp_size=32,
            transaction_bytes=128,
            sector_bytes=32,
        )
        assert d.counters.global_fallback == 1
        assert d.counters.global_fast == 0

    def test_fallback_result_matches_reference(self):
        fast = FastDispatch()
        ref = ReferenceDispatch()
        kwargs = dict(warp_size=32, transaction_bytes=128, sector_bytes=32)
        assert fast.analyze_global(RAGGED, None, 4, **kwargs) == ref.analyze_global(
            RAGGED, None, 4, **kwargs
        )
