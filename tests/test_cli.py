"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_params, build_parser, main


class TestParseParams:
    def test_int(self):
        assert _parse_params(["n=1024"]) == {"n": 1024}

    def test_hex_and_float(self):
        assert _parse_params(["n=0x10", "a=2.5"]) == {"n": 16, "a": 2.5}

    def test_string_fallback(self):
        assert _parse_params(["mode=fast"]) == {"mode": "fast"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CoMem" in out and "MiniTransfer" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Tesla V100" in out and "Tesla K80" in out

    def test_run_small(self, capsys):
        rc = main(["run", "MemAlign", "-p", "n=65536"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MemAlign" in out
        assert "metrics:" in out

    def test_run_with_system(self, capsys):
        rc = main(["run", "MemAlign", "--system", "carina", "-p", "n=65536"])
        assert rc == 0

    def test_run_unknown_benchmark(self, capsys):
        assert main(["run", "NoSuchBench"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_system(self, capsys):
        assert main(["run", "MemAlign", "--system", "laptop"]) == 2

    def test_sweep(self, capsys):
        rc = main(["sweep", "BankRedux", "--values", "65536,131072"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "65536" in out and "131072" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDoctorCommand:
    def test_critical_findings_exit_nonzero(self, capsys):
        rc = main(["doctor", "CoMem"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "uncoalesced-access" in out

    def test_clean_benchmark_exits_zero(self, capsys):
        rc = main(["doctor", "MemAlign", "-p", "n=65536"])
        assert rc == 0

    def test_unknown_benchmark(self, capsys):
        assert main(["doctor", "NoSuchBench"]) == 2


class TestProfileCommand:
    def test_writes_metrics_trace_and_ndjson(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        ndjson = tmp_path / "log.ndjson"
        rc = main([
            "profile", "MemAlign", "-p", "n=65536",
            "--json", str(metrics), "--trace", str(trace), "--ndjson", str(ndjson),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "roofline" in out
        assert "activity record(s) collected" in out

        import json

        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "repro-prof-metrics/1"
        assert doc["kernels"]
        tdoc = json.loads(trace.read_text())
        assert len(tdoc["traceEvents"]) > 0
        assert all(
            {"name", "ph", "ts", "pid", "tid"} <= set(ev)
            for ev in tdoc["traceEvents"]
        )
        assert ndjson.read_text().strip()

    def test_run_with_export_flags(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        rc = main([
            "run", "MemAlign", "-p", "n=65536", "--json", str(metrics),
        ])
        assert rc == 0
        assert metrics.exists()

    def test_unknown_benchmark(self, capsys):
        assert main(["profile", "NoSuchBench"]) == 2


class TestProfDiffCommand:
    @staticmethod
    def _write(path, time_avg, gld=1.0):
        import json

        path.write_text(json.dumps({
            "schema": "repro-prof-metrics/1",
            "kernels": {"k": {"time_avg_s": time_avg,
                              "metrics": {"gld_efficiency": gld}}},
        }))

    def test_no_regression_exits_zero(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 1e-3)
        self._write(b, 1e-3)
        rc = main(["prof", "diff", str(a), str(b)])
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 1e-3, gld=1.0)
        self._write(b, 5e-3, gld=0.3)
        rc = main(["prof", "diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSED" in out

    def test_tolerance_flag_waives_regression(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, 1e-3)
        self._write(b, 1.2e-3)
        assert main(["prof", "diff", str(a), str(b)]) == 1
        assert main(["prof", "diff", str(a), str(b), "--time-tolerance", "0.5"]) == 0

    def test_missing_file_exits_two(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        self._write(a, 1e-3)
        rc = main(["prof", "diff", str(a), str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    @staticmethod
    def _write_backend(path, backend, time_avg=1e-3):
        import json

        path.write_text(json.dumps({
            "schema": "repro-prof-metrics/1",
            "execution": {"backend": backend},
            "kernels": {"k": {"time_avg_s": time_avg, "metrics": {}}},
        }))

    def test_backend_reported(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_backend(a, "jit")
        self._write_backend(b, "jit")
        assert main(["prof", "diff", str(a), str(b)]) == 0
        assert "backend: jit -> jit" in capsys.readouterr().out

    def test_cross_backend_refused(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_backend(a, "reference")
        self._write_backend(b, "jit")
        rc = main(["prof", "diff", str(a), str(b)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "refusing to diff across execution backends" in err
        assert "--allow-backend-mismatch" in err

    def test_cross_backend_mismatch_flag(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_backend(a, "reference")
        self._write_backend(b, "jit")
        rc = main([
            "prof", "diff", str(a), str(b), "--allow-backend-mismatch",
        ])
        assert rc == 0
        assert "MISMATCH allowed by flag" in capsys.readouterr().out

    def test_roofline_from_saved_document(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        rc = main(["profile", "MemAlign", "-p", "n=65536", "--json", str(metrics)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["prof", "roofline", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ops/byte" in out and "bound" in out


class TestSanitizeCommand:
    def test_buggy_demo_exits_nonzero(self, capsys):
        rc = main(["sanitize", "oob-write", "--tool", "memcheck"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "global-oob-write" in out
        assert "block (" in out and "thread (" in out

    def test_clean_demo_exits_zero(self, capsys):
        rc = main(["sanitize", "clean", "--tool", "all"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no issues detected" in out

    def test_benchmark_under_all_tools(self, capsys):
        rc = main(["sanitize", "MemAlign", "--tool", "all", "-p", "n=65536"])
        assert rc == 0  # leak warnings are not critical

    def test_race_demo_caught_by_racecheck(self, capsys):
        rc = main(["sanitize", "shared-race", "--tool", "racecheck"])
        assert rc == 1
        assert "racecheck" in capsys.readouterr().out

    def test_divergent_barrier_caught_by_synccheck(self, capsys):
        rc = main(["sanitize", "divergent-barrier", "--tool", "synccheck"])
        assert rc == 1
        assert "divergent-barrier" in capsys.readouterr().out

    def test_injected_abort_reports_and_exits_2(self, capsys):
        rc = main(["sanitize", "clean", "--fault-seed", "0", "--abort-at", "0"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "injected fault" in captured.err
        assert "kernel-abort" in captured.out  # fault log still printed

    def test_transfer_faults_recover_with_cap(self, capsys):
        rc = main(
            ["sanitize", "clean", "--fault-seed", "3",
             "--h2d-fail-prob", "1.0", "--max-transfer-failures", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "h2d-fail" in out and "h2d-recovered" in out

    def test_unknown_demo_or_benchmark(self, capsys):
        assert main(["sanitize", "no-such-target"]) == 2


class TestBackendFlag:
    def test_run_backend_fast_matches_reference(self, capsys):
        assert main(["run", "MemAlign", "--backend", "fast", "-p", "n=65536"]) == 0
        fast_out = capsys.readouterr().out
        assert main(["run", "MemAlign", "--backend", "reference", "-p", "n=65536"]) == 0
        ref_out = capsys.readouterr().out
        assert fast_out == ref_out

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "MemAlign", "--backend", "vectorized"])


class TestSchedulerFlags:
    def test_parallel_sweep_out_is_byte_identical(self, capsys, tmp_path):
        values = "65536,131072"
        serial = tmp_path / "serial.json"
        par = tmp_path / "par.json"
        stats = tmp_path / "stats.json"
        assert main(
            ["sweep", "BankRedux", "--values", values, "--out", str(serial)]
        ) == 0
        assert main(
            [
                "sweep", "BankRedux", "--values", values, "--out", str(par),
                "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
                "--journal-dir", str(tmp_path / "journal"),
                "--stats", str(stats),
            ]
        ) == 0
        capsys.readouterr()
        assert serial.read_bytes() == par.read_bytes()
        import json

        doc = json.loads(stats.read_text())
        assert doc["schema"] == "repro-prof-sched/1"
        assert doc["cache"]["misses"] == 2 and doc["cache"]["hits"] == 0

    def test_warm_cache_skips_recompute(self, capsys, tmp_path):
        argv = [
            "sweep", "BankRedux", "--values", "65536,131072",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "--journal-dir", str(tmp_path / "journal"),
            "--stats", str(tmp_path / "stats.json"),
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        import json

        doc = json.loads((tmp_path / "stats.json").read_text())
        assert doc["cache"]["hits"] == 2 and doc["cache"]["misses"] == 0

    def test_no_cache_disables_lookup(self, capsys, tmp_path):
        argv = [
            "sweep", "BankRedux", "--values", "65536", "--jobs", "2",
            "--no-cache", "--cache-dir", str(tmp_path / "cache"),
            "--journal-dir", str(tmp_path / "journal"),
            "--stats", str(tmp_path / "stats.json"),
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        import json

        doc = json.loads((tmp_path / "stats.json").read_text())
        assert doc["cache"]["enabled"] is False
        assert doc["cache"]["hits"] == 0 and doc["cache"]["stores"] == 0

    def test_jobs_without_values_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "BankRedux", "--jobs", "2"])


class TestResilienceFlags:
    def test_chaos_sweep_byte_identical_to_clean(self, capsys, tmp_path):
        values = "16384,32768"
        serial = tmp_path / "serial.json"
        chaotic = tmp_path / "chaotic.json"
        assert main(
            ["sweep", "MemAlign", "--values", values, "--out", str(serial)]
        ) == 0
        assert main(
            [
                "sweep", "MemAlign", "--values", values, "--out", str(chaotic),
                "--chaos", "seed=7,crash=0.6,payload=0.3,max-fault-attempts=2",
                "--max-retries", "4", "--no-cache",
                "--journal-dir", str(tmp_path / "journal"),
            ]
        ) == 0
        capsys.readouterr()
        assert serial.read_bytes() == chaotic.read_bytes()

    def test_interrupt_saves_journal_then_resume_completes(self, capsys, tmp_path):
        import json

        values = "8192,16384,32768"
        serial = tmp_path / "serial.json"
        resumed = tmp_path / "resumed.json"
        stats = tmp_path / "stats.json"
        assert main(
            ["sweep", "MemAlign", "--values", values, "--out", str(serial)]
        ) == 0
        base = [
            "sweep", "MemAlign", "--values", values, "--no-cache",
            "--journal-dir", str(tmp_path / "journal"),
        ]
        assert main(base + ["--run-id", "r1", "--chaos", "interrupt-after=1"]) == 4
        err = capsys.readouterr().err
        assert "--resume r1" in err and "1 completed" in err
        assert main(
            base + ["--resume", "r1", "--out", str(resumed), "--stats", str(stats)]
        ) == 0
        capsys.readouterr()
        assert serial.read_bytes() == resumed.read_bytes()
        doc = json.loads(stats.read_text())
        assert doc["execution"]["resume_skips"] == 1
        assert doc["execution"]["completed"] == 2

    def test_degraded_fallback_exits_three(self, capsys, tmp_path):
        rc = main([
            "run", "MemAlign", "-p", "n=16384", "--backend", "fast",
            "--chaos", "diverge=0", "--no-journal",
        ])
        out = capsys.readouterr().out
        assert rc == 3
        assert "[ok]" in out  # the fallback re-ran on the reference backend

    def test_quarantine_exits_two(self, capsys, tmp_path):
        rc = main([
            "sweep", "MemAlign", "--values", "16384",
            "--chaos", "seed=3,crash=1.0", "--max-retries", "1",
            "--no-cache", "--no-journal",
        ])
        assert rc == 2
        assert "quarantined" in capsys.readouterr().err

    def test_interrupted_no_journal_mentions_discard(self, capsys, tmp_path):
        rc = main([
            "sweep", "MemAlign", "--values", "8192,16384", "--no-cache",
            "--no-journal", "--chaos", "interrupt-after=1",
        ])
        assert rc == 4
        assert "discarded" in capsys.readouterr().err


class TestCliErrorPaths:
    def test_unknown_benchmark_everywhere(self, capsys):
        for argv in (
            ["run", "NoSuchBench"],
            ["sweep", "NoSuchBench", "--values", "16"],
            ["check", "NoSuchBench"],
        ):
            assert main(argv) == 2, argv
            assert "error:" in capsys.readouterr().err

    def test_invalid_backend_rejected(self, capsys):
        for argv in (
            ["run", "MemAlign", "--backend", "turbo"],
            ["check", "--all", "--backend", "turbo"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_unwritable_cache_dir_exits_two(self, capsys, tmp_path):
        # a file where the cache directory should be: mkdir -> OSError
        blocker = tmp_path / "cache"
        blocker.write_text("not a directory")
        rc = main([
            "sweep", "BankRedux", "--values", "65536", "--jobs", "2",
            "--cache-dir", str(blocker),
            "--journal-dir", str(tmp_path / "journal"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "not writable" in err and "--no-cache" in err

    def test_malformed_metrics_json_to_prof_diff_exits_two(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        good.write_text('{"schema": "repro-prof-metrics/1", "kernels": {}}')
        bad.write_text("{ this is not json")
        assert main(["prof", "diff", str(good), str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_metrics_json_to_prof_diff_exits_two(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        wrong = tmp_path / "wrong.json"
        good.write_text('{"schema": "repro-prof-metrics/1", "kernels": {}}')
        wrong.write_text('{"some": "object"}')
        assert main(["prof", "diff", str(good), str(wrong)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheckCommand:
    @staticmethod
    def _write_doc(path, *, speedup=14.0, verified=True):
        import json

        path.write_text(json.dumps({
            "schema": "repro-prof-bench/1",
            "results": [{
                "benchmark": "CoMem",
                "baseline_name": "block",
                "optimized_name": "cyclic",
                "baseline_time_s": speedup * 0.1,
                "optimized_time_s": 0.1,
                "speedup": speedup,
                "verified": verified,
                "params": {"n": 4194304, "grid": 1024, "block": 256},
                "metrics": {
                    "block_transactions_per_request": 16.0,
                    "cyclic_transactions_per_request": 1.0,
                    "block_gld_efficiency": 0.125,
                    "cyclic_gld_efficiency": 1.0,
                },
            }],
        }))

    def test_no_selection_exits_two(self, capsys):
        assert main(["check"]) == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_doc_mode_passes_on_conforming_document(self, capsys, tmp_path):
        doc = tmp_path / "results.json"
        self._write_doc(doc)
        assert main(["check", "--doc", str(doc)]) == 0
        out = capsys.readouterr().out
        assert "conformance: OK" in out

    def test_doc_mode_fails_on_broken_document(self, capsys, tmp_path):
        doc = tmp_path / "results.json"
        self._write_doc(doc, speedup=0.5)
        assert main(["check", "--doc", str(doc)]) == 1
        out = capsys.readouterr().out
        assert "FAIL claim CoMem: speedup" in out
        assert "18 (average)" in out  # the paper context in the report

    def test_doc_mode_fails_on_unverified_result(self, capsys, tmp_path):
        doc = tmp_path / "results.json"
        self._write_doc(doc, verified=False)
        assert main(["check", "--doc", str(doc)]) == 1
        assert "DISAGREE" in capsys.readouterr().out

    def test_json_report_written(self, capsys, tmp_path):
        import json

        doc = tmp_path / "results.json"
        out_json = tmp_path / "report.json"
        self._write_doc(doc)
        assert main(["check", "--doc", str(doc), "--json", str(out_json)]) == 0
        report = json.loads(out_json.read_text())
        assert report["schema"] == "repro-conformance/1"
        assert report["ok"] is True

    def test_live_check_one_benchmark(self, capsys, tmp_path):
        spec = tmp_path / "memalign.toml"
        spec.write_text(
            'schema = "repro-claims/1"\nbenchmark = "MemAlign"\n'
            "[run]\nn = 65536\n"
            '[[claims]]\nkind = "speedup"\nmin = 1.0\nmax = 1.2\n'
            '[[claims]]\nkind = "verified"\n'
        )
        rc = main([
            "check", "MemAlign", "--claims-dir", str(tmp_path),
            "--backend", "reference", "--no-relations",
        ])
        assert rc == 0
        assert "conformance: OK" in capsys.readouterr().out

    def test_missing_claims_dir_exits_two(self, capsys, tmp_path):
        rc = main(["check", "--all", "--claims-dir", str(tmp_path / "nope")])
        assert rc == 2
        assert "claims directory not found" in capsys.readouterr().err


class TestProfDiffClaims:
    def _claim_file(self, tmp_path):
        spec = tmp_path / "comem.toml"
        spec.write_text(
            'schema = "repro-claims/1"\nbenchmark = "CoMem"\n'
            '[[claims]]\nkind = "speedup"\nmin = 8.0\nmax = 25.0\n'
            '[[claims]]\nkind = "verified"\n'
        )
        return spec

    def test_claims_pass_alongside_diff(self, capsys, tmp_path):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        TestCheckCommand._write_doc(before)
        TestCheckCommand._write_doc(after)
        rc = main([
            "prof", "diff", str(before), str(after),
            "--claims", str(self._claim_file(tmp_path)),
        ])
        assert rc == 0
        assert "paper claims on after.json: 2/2 pass" in capsys.readouterr().out

    def test_failing_claim_is_a_regression(self, capsys, tmp_path):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        TestCheckCommand._write_doc(before)
        # after regresses to 7x: within the relative diff tolerance
        # window? no -- but the absolute claim floor of 8x catches it
        TestCheckCommand._write_doc(after, speedup=7.5)
        rc = main([
            "prof", "diff", str(before), str(after),
            "--claims", str(self._claim_file(tmp_path)),
            "--time-tolerance", "10.0",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL claim CoMem: speedup" in out


class TestProfDiffBenchDocs:
    def test_reports_removed_benchmark(self, capsys, tmp_path):
        import json

        def doc(names):
            return {
                "schema": "repro-prof-bench/1",
                "results": [
                    {
                        "benchmark": n,
                        "baseline_time_s": 1.0,
                        "optimized_time_s": 0.5,
                        "speedup": 2.0,
                        "verified": True,
                    }
                    for n in names
                ],
            }

        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps(doc(["CoMem", "Shmem"])))
        after.write_text(json.dumps(doc(["CoMem"])))
        assert main(["prof", "diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "benchmarks only in before: Shmem" in out


class TestFleetCLI:
    """``sweep --fleet/--join`` and their argument validation."""

    def _sweep(self, tmp_path, *extra):
        return main([
            "sweep", "MemAlign", "--values", "8192,16384",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            *extra,
        ])

    def test_fleet_sweep_matches_serial(self, capsys, tmp_path):
        out_fleet = tmp_path / "fleet.json"
        out_serial = tmp_path / "serial.json"
        assert self._sweep(
            tmp_path, "--fleet", "2", "--run-id", "clifleet",
            "--out", str(out_fleet),
        ) == 0
        assert main([
            "sweep", "MemAlign", "--values", "8192,16384",
            "--out", str(out_serial),
        ]) == 0
        import json

        a = json.loads(out_fleet.read_text())
        b = json.loads(out_serial.read_text())
        assert a["sweep"] == b["sweep"]

    def test_join_of_complete_run_merges(self, capsys, tmp_path):
        assert self._sweep(
            tmp_path, "--fleet", "1", "--run-id", "clifleet"
        ) == 0
        capsys.readouterr()
        assert self._sweep(tmp_path, "--join", "clifleet") == 0
        assert "MemAlign" in capsys.readouterr().out

    def test_stats_carry_fleet_section(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        assert self._sweep(
            tmp_path, "--fleet", "2", "--stats", str(stats)
        ) == 0
        import json

        fleet = json.loads(stats.read_text())["execution"]["fleet"]
        assert fleet["workers"] == 2
        assert fleet["leases_acquired"] == 2

    def test_fleet_and_join_are_exclusive(self, capsys, tmp_path):
        assert self._sweep(
            tmp_path, "--fleet", "2", "--join", "x"
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_fleet_rejects_nonpositive_workers(self, capsys, tmp_path):
        assert self._sweep(tmp_path, "--fleet", "0") == 2
        assert "positive worker count" in capsys.readouterr().err

    def test_fleet_rejects_resume(self, capsys, tmp_path):
        assert self._sweep(
            tmp_path, "--fleet", "2", "--resume", "old"
        ) == 2
        assert "--join" in capsys.readouterr().err

    def test_fleet_requires_values(self, tmp_path):
        with pytest.raises(SystemExit, match="--values"):
            main([
                "sweep", "MemAlign", "--fleet", "2",
                "--journal-dir", str(tmp_path / "jd"),
                "--cache-dir", str(tmp_path / "cd"),
            ])


class TestResumeNothingToDo:
    """``--resume`` of a complete run: exit 0, no artifacts re-written."""

    def _sweep(self, tmp_path, *extra):
        return main([
            "sweep", "MemAlign", "--values", "8192,16384",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            *extra,
        ])

    def test_complete_resume_is_a_noop(self, capsys, tmp_path):
        out = tmp_path / "out.json"
        assert self._sweep(
            tmp_path, "--run-id", "r1", "--out", str(out)
        ) == 0
        first_bytes = out.read_text()
        out.write_text("sentinel: must not be re-written")
        capsys.readouterr()
        assert self._sweep(
            tmp_path, "--resume", "r1", "--out", str(out)
        ) == 0
        printed = capsys.readouterr().out
        assert "nothing to do" in printed
        assert "r1 already complete" in printed
        assert out.read_text() == "sentinel: must not be re-written"
        assert first_bytes  # sanity: the first run did write the doc

    def test_partial_resume_still_runs_and_writes(self, capsys, tmp_path):
        assert self._sweep(tmp_path, "--run-id", "r1") == 0
        out = tmp_path / "out.json"
        capsys.readouterr()
        # one extra value: the resume has real work, so it must render
        # and write normally
        assert main([
            "sweep", "MemAlign", "--values", "8192,16384,32768",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            "--resume", "r1", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "nothing to do" not in printed
        assert out.exists()


class TestJournalCLI:
    """``repro journal ls/show/gc``."""

    def _seed_run(self, tmp_path):
        assert main([
            "sweep", "MemAlign", "--values", "8192",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            "--run-id", "r1",
        ]) == 0

    def test_ls_empty(self, capsys, tmp_path):
        assert main([
            "journal", "ls", "--journal-dir", str(tmp_path / "jd")
        ]) == 0
        assert "no journaled runs" in capsys.readouterr().out

    def test_ls_and_show(self, capsys, tmp_path):
        self._seed_run(tmp_path)
        capsys.readouterr()
        assert main([
            "journal", "ls", "--journal-dir", str(tmp_path / "jd")
        ]) == 0
        out = capsys.readouterr().out
        assert "r1" in out and "sweep" in out
        assert main([
            "journal", "show", "r1", "--journal-dir", str(tmp_path / "jd")
        ]) == 0
        assert "run r1" in capsys.readouterr().out

    def test_show_fleet_run(self, capsys, tmp_path):
        assert main([
            "sweep", "MemAlign", "--values", "8192",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            "--fleet", "1", "--run-id", "f1",
        ]) == 0
        capsys.readouterr()
        assert main([
            "journal", "show", "f1", "--journal-dir", str(tmp_path / "jd")
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet run f1" in out and "completed 1/1" in out

    def test_show_unknown_run_exits_two(self, capsys, tmp_path):
        assert main([
            "journal", "show", "ghost", "--journal-dir", str(tmp_path / "jd")
        ]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_gc_dry_run_then_real(self, capsys, tmp_path):
        import os
        import time

        self._seed_run(tmp_path)
        old = time.time() - 10 * 86400.0
        os.utime(tmp_path / "jd" / "r1.ndjson", (old, old))
        capsys.readouterr()
        assert main([
            "journal", "gc", "--older-than", "7", "--dry-run",
            "--journal-dir", str(tmp_path / "jd"),
        ]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert (tmp_path / "jd" / "r1.ndjson").exists()
        assert main([
            "journal", "gc", "--older-than", "7",
            "--journal-dir", str(tmp_path / "jd"),
        ]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not (tmp_path / "jd" / "r1.ndjson").exists()


class TestObsCLI:
    """``repro top``, ``--metrics``, ``--trace`` stitching, show filters."""

    def _fleet_sweep(self, tmp_path, run_id="f1", extra=()):
        return main([
            "sweep", "MemAlign", "--values", "8192,16384",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            "--fleet", "1", "--run-id", run_id, *extra,
        ])

    def test_top_once_renders_completed_run(self, capsys, tmp_path):
        assert self._fleet_sweep(tmp_path) == 0
        capsys.readouterr()
        assert main([
            "top", "f1", "--journal-dir", str(tmp_path / "jd"), "--once",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet f1" in out
        assert "2/2 jobs (100%)" in out
        assert "WORKER" in out

    def test_top_unknown_run_exits_two(self, capsys, tmp_path):
        assert main([
            "top", "ghost", "--journal-dir", str(tmp_path / "jd"), "--once",
        ]) == 2
        assert "no fleet run directory" in capsys.readouterr().err

    def test_fleet_trace_and_metrics_sidecar(self, capsys, tmp_path):
        import json

        from repro.obs import TraceContext, parse_prometheus_text

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert self._fleet_sweep(tmp_path, extra=(
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        )) == 0
        out = capsys.readouterr().out
        assert "stitched fleet trace written to" in out
        assert "metrics written to" in out

        samples = parse_prometheus_text(metrics_path.read_text())
        by_name = {s.name: s for s in samples}
        assert by_name["repro_jobs_completed_total"].value == 2.0
        assert by_name["repro_run_info"].labels["mode"] == "fleet"

        doc = json.loads(trace_path.read_text())
        spans = [
            e for e in doc["traceEvents"] if e.get("cat") == "span"
        ]
        roots = [e for e in spans if "parent_span_id" not in e["args"]]
        assert len(roots) == 1
        assert roots[0]["args"]["trace_id"] == TraceContext.root("f1").trace_id

    def test_pool_trace_and_metrics_sidecar(self, capsys, tmp_path):
        import json

        from repro.obs import parse_prometheus_text

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "sweep", "MemAlign", "--values", "8192,16384",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            "--run-id", "r1",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]) == 0
        assert "journal trace written to" in capsys.readouterr().out
        samples = parse_prometheus_text(metrics_path.read_text())
        by_name = {s.name: s for s in samples}
        assert by_name["repro_run_info"].labels["run_id"] == "r1"
        assert by_name["repro_jobs_completed_total"].value == 2.0
        doc = json.loads(trace_path.read_text())
        assert doc["otherData"]["run_id"] == "r1"

    def test_journal_show_trace_and_span_filters(self, capsys, tmp_path):
        from repro.obs import TraceContext, trace_id_for_run

        assert main([
            "sweep", "MemAlign", "--values", "8192",
            "--journal-dir", str(tmp_path / "jd"),
            "--cache-dir", str(tmp_path / "cd"),
            "--run-id", "r1",
        ]) == 0
        capsys.readouterr()
        base = ["journal", "show", "r1", "--journal-dir", str(tmp_path / "jd")]
        tid = trace_id_for_run("r1")
        assert main(base + ["--trace", tid[:8]]) == 0
        out = capsys.readouterr().out
        assert f"trace={tid}" in out
        assert "1/1 job(s) matched" in out

        span = TraceContext.root("r1").job(0).span_id
        assert main(base + ["--span", span[:8]]) == 0
        assert "1/1 job(s) matched" in capsys.readouterr().out

        assert main(base + ["--span", "ffffffffffffffff"]) == 0
        assert "0/1 job(s) matched" in capsys.readouterr().out

    def test_journal_gc_sweeps_orphan_flightrec(self, capsys, tmp_path):
        jd = tmp_path / "jd"
        orphan = jd / "flightrec" / "gone-run"
        orphan.mkdir(parents=True)
        (orphan / "worker-crash.json").write_text("{}")
        assert main([
            "journal", "gc", "--older-than", "7", "--journal-dir", str(jd),
        ]) == 0
        assert "1 flight-dump dir(s)" in capsys.readouterr().out
        assert not orphan.exists()

    def test_monitor_does_not_perturb_merge(self, capsys, tmp_path):
        import threading

        from repro.common.errors import ReproError
        from repro.obs import fleet_status
        from repro.resilience.fleet import fleet_dir

        plain = tmp_path / "plain.json"
        watched = tmp_path / "watched.json"
        assert self._fleet_sweep(
            tmp_path, run_id="fa", extra=("--out", str(plain))
        ) == 0

        run_dir = fleet_dir(tmp_path / "jd", "fb")
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                try:
                    fleet_status(run_dir)
                except ReproError:
                    pass  # run dir not created yet
                stop.wait(0.02)

        watcher = threading.Thread(target=poll, daemon=True)
        watcher.start()
        try:
            assert self._fleet_sweep(
                tmp_path, run_id="fb", extra=("--out", str(watched))
            ) == 0
        finally:
            stop.set()
            watcher.join(timeout=10)
        capsys.readouterr()
        assert watched.read_bytes() == plain.read_bytes()

    def test_quarantine_writes_flight_dump(self, capsys, tmp_path):
        import json

        assert main([
            "sweep", "MemAlign", "--values", "16384",
            "--chaos", "seed=3,crash=1.0,max-fault-attempts=99",
            "--max-retries", "1", "--no-cache",
            "--journal-dir", str(tmp_path / "jd"), "--run-id", "q1",
        ]) == 2
        capsys.readouterr()
        dump = tmp_path / "jd" / "flightrec" / "q1" / "pool-quarantine.json"
        doc = json.loads(dump.read_text())
        assert doc["format"] == "repro-flight/1"
        assert {r["name"] for r in doc["records"]} >= {"retry", "quarantine"}
        assert all(r.get("trace_id") for r in doc["records"])
        assert main([
            "journal", "show", "q1", "--journal-dir", str(tmp_path / "jd"),
        ]) == 0
        out = capsys.readouterr().out
        assert "pool-quarantine.json" in out and "reason=quarantine" in out


class TestCacheGCCommand:
    def make_entry(self, root, key, *, age_days=0.0, size=64):
        import os
        import time

        shard = root / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        path = shard / f"{key}.json"
        path.write_bytes(b"x" * size)
        stamp = time.time() - age_days * 86400.0
        os.utime(path, (stamp, stamp))
        return path

    def test_gc_removes_old_entries(self, capsys, tmp_path):
        old = self.make_entry(tmp_path, "aa" + "0" * 62, age_days=30)
        kept = self.make_entry(tmp_path, "bb" + "0" * 62)
        rc = main([
            "cache", "gc", "--older-than", "7",
            "--cache-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "removed 1 entr(ies)" in out
        assert "1 by age" in out
        assert not old.exists()
        assert kept.exists()

    def test_gc_dry_run_keeps_files(self, capsys, tmp_path):
        old = self.make_entry(tmp_path, "aa" + "0" * 62, age_days=30)
        rc = main([
            "cache", "gc", "--older-than", "7", "--dry-run",
            "--cache-dir", str(tmp_path),
        ])
        assert rc == 0
        assert "would remove 1" in capsys.readouterr().out
        assert old.exists()

    def test_gc_max_bytes_with_suffix(self, capsys, tmp_path):
        self.make_entry(tmp_path, "aa" + "0" * 62, age_days=2, size=1024)
        self.make_entry(tmp_path, "bb" + "0" * 62, age_days=1, size=1024)
        rc = main([
            "cache", "gc", "--max-bytes", "1K",
            "--cache-dir", str(tmp_path),
        ])
        assert rc == 0
        assert "1 by size" in capsys.readouterr().out

    def test_gc_bad_size_is_an_error(self, capsys, tmp_path):
        rc = main([
            "cache", "gc", "--max-bytes", "lots",
            "--cache-dir", str(tmp_path),
        ])
        assert rc == 2
        assert "cannot parse size" in capsys.readouterr().err

    def test_parse_size_suffixes(self):
        from repro.__main__ import _parse_size

        assert _parse_size("4096") == 4096
        assert _parse_size("64K") == 64 << 10
        assert _parse_size("1.5M") == int(1.5 * (1 << 20))
        assert _parse_size("2GiB") == 2 << 30


class TestServeParser:
    def test_serve_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve", "--port", "9000", "--data-dir", "dd",
            "--workers", "3", "--max-queue", "16",
            "--max-per-client", "2", "--breaker-threshold", "5",
            "--breaker-cooldown", "60", "--drain-grace", "10",
        ])
        assert args.port == 9000
        assert args.data_dir == "dd"
        assert args.workers == 3
        assert args.max_queue == 16
        assert args.breaker_threshold == 5
        assert args.drain_grace == 10.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8321
        assert args.host == "127.0.0.1"
        assert args.data_dir == ".repro-serve"
        assert args.workers == 2
