"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_params, build_parser, main


class TestParseParams:
    def test_int(self):
        assert _parse_params(["n=1024"]) == {"n": 1024}

    def test_hex_and_float(self):
        assert _parse_params(["n=0x10", "a=2.5"]) == {"n": 16, "a": 2.5}

    def test_string_fallback(self):
        assert _parse_params(["mode=fast"]) == {"mode": "fast"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CoMem" in out and "MiniTransfer" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Tesla V100" in out and "Tesla K80" in out

    def test_run_small(self, capsys):
        rc = main(["run", "MemAlign", "-p", "n=65536"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MemAlign" in out
        assert "metrics:" in out

    def test_run_with_system(self, capsys):
        rc = main(["run", "MemAlign", "--system", "carina", "-p", "n=65536"])
        assert rc == 0

    def test_run_unknown_benchmark(self, capsys):
        assert main(["run", "NoSuchBench"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_system(self, capsys):
        assert main(["run", "MemAlign", "--system", "laptop"]) == 2

    def test_sweep(self, capsys):
        rc = main(["sweep", "BankRedux", "--values", "65536,131072"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "65536" in out and "131072" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
