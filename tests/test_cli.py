"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_params, build_parser, main


class TestParseParams:
    def test_int(self):
        assert _parse_params(["n=1024"]) == {"n": 1024}

    def test_hex_and_float(self):
        assert _parse_params(["n=0x10", "a=2.5"]) == {"n": 16, "a": 2.5}

    def test_string_fallback(self):
        assert _parse_params(["mode=fast"]) == {"mode": "fast"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CoMem" in out and "MiniTransfer" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Tesla V100" in out and "Tesla K80" in out

    def test_run_small(self, capsys):
        rc = main(["run", "MemAlign", "-p", "n=65536"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MemAlign" in out
        assert "metrics:" in out

    def test_run_with_system(self, capsys):
        rc = main(["run", "MemAlign", "--system", "carina", "-p", "n=65536"])
        assert rc == 0

    def test_run_unknown_benchmark(self, capsys):
        assert main(["run", "NoSuchBench"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_system(self, capsys):
        assert main(["run", "MemAlign", "--system", "laptop"]) == 2

    def test_sweep(self, capsys):
        rc = main(["sweep", "BankRedux", "--values", "65536,131072"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "65536" in out and "131072" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDoctorCommand:
    def test_critical_findings_exit_nonzero(self, capsys):
        rc = main(["doctor", "CoMem"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "uncoalesced-access" in out

    def test_clean_benchmark_exits_zero(self, capsys):
        rc = main(["doctor", "MemAlign", "-p", "n=65536"])
        assert rc == 0

    def test_unknown_benchmark(self, capsys):
        assert main(["doctor", "NoSuchBench"]) == 2


class TestSanitizeCommand:
    def test_buggy_demo_exits_nonzero(self, capsys):
        rc = main(["sanitize", "oob-write", "--tool", "memcheck"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "global-oob-write" in out
        assert "block (" in out and "thread (" in out

    def test_clean_demo_exits_zero(self, capsys):
        rc = main(["sanitize", "clean", "--tool", "all"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no issues detected" in out

    def test_benchmark_under_all_tools(self, capsys):
        rc = main(["sanitize", "MemAlign", "--tool", "all", "-p", "n=65536"])
        assert rc == 0  # leak warnings are not critical

    def test_race_demo_caught_by_racecheck(self, capsys):
        rc = main(["sanitize", "shared-race", "--tool", "racecheck"])
        assert rc == 1
        assert "racecheck" in capsys.readouterr().out

    def test_divergent_barrier_caught_by_synccheck(self, capsys):
        rc = main(["sanitize", "divergent-barrier", "--tool", "synccheck"])
        assert rc == 1
        assert "divergent-barrier" in capsys.readouterr().out

    def test_injected_abort_reports_and_exits_2(self, capsys):
        rc = main(["sanitize", "clean", "--fault-seed", "0", "--abort-at", "0"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "injected fault" in captured.err
        assert "kernel-abort" in captured.out  # fault log still printed

    def test_transfer_faults_recover_with_cap(self, capsys):
        rc = main(
            ["sanitize", "clean", "--fault-seed", "3",
             "--h2d-fail-prob", "1.0", "--max-transfer-failures", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "h2d-fail" in out and "h2d-recovered" in out

    def test_unknown_demo_or_benchmark(self, capsys):
        assert main(["sanitize", "no-such-target"]) == 2
