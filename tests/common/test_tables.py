"""ASCII table/series rendering."""

import pytest

from repro.common.tables import render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[3]
        # all data lines padded to consistent column starts
        assert lines[2].index("2") == lines[3].index("4")

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert set(out.splitlines()[1]) == {"="}

    def test_float_formatting(self):
        out = render_table(["v"], [[0.000123456]])
        assert "1.235e-04" in out

    def test_plain_float(self):
        out = render_table(["v"], [[1.5]])
        assert "1.5" in out

    def test_zero(self):
        assert "0" in render_table(["v"], [[0.0]])

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_columns(self):
        out = render_series("n", [1, 2], {"fast": [0.1, 0.2], "slow": [1.0, 2.0]})
        header = out.splitlines()[0]
        assert "n" in header and "fast" in header and "slow" in header
        assert len(out.splitlines()) == 4

    def test_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            render_series("n", [1, 2], {"y": [1.0]})

    def test_title_passthrough(self):
        out = render_series("n", [1], {"y": [2]}, title="Fig. 9")
        assert out.splitlines()[0] == "Fig. 9"
