"""Units and formatting helpers."""

import pytest

from repro.common.units import (
    GIB,
    KIB,
    MIB,
    fmt_bytes,
    fmt_count,
    fmt_rate,
    fmt_time,
    parse_size,
)


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(0) == "0 B"
        assert fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert fmt_bytes(KIB) == "1.00 KiB"
        assert fmt_bytes(1536) == "1.50 KiB"

    def test_mib_gib(self):
        assert fmt_bytes(MIB) == "1.00 MiB"
        assert fmt_bytes(3 * GIB) == "3.00 GiB"

    def test_negative(self):
        assert fmt_bytes(-2048) == "-2.00 KiB"


class TestFmtTime:
    def test_seconds(self):
        assert fmt_time(1.5) == "1.500 s"

    def test_milliseconds(self):
        assert fmt_time(2e-3) == "2.000 ms"

    def test_microseconds(self):
        assert fmt_time(3.25e-6) == "3.250 us"

    def test_nanoseconds(self):
        assert fmt_time(5e-9) == "5.0 ns"

    def test_negative(self):
        assert fmt_time(-1e-3).startswith("-")


class TestFmtRate:
    def test_gbs(self):
        assert fmt_rate(900e9) == "900.0 GB/s"

    def test_mbs(self):
        assert fmt_rate(12e6) == "12.0 MB/s"

    def test_small(self):
        assert fmt_rate(10.0) == "10.0 B/s"


class TestFmtCount:
    def test_int(self):
        assert fmt_count(1234567) == "1,234,567"

    def test_float(self):
        assert fmt_count(1234.5) == "1,234.50"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("128", 128),
            ("64KiB", 64 * KIB),
            ("2 MiB", 2 * MIB),
            ("1GiB", GIB),
            ("16GB", 16 * 10**9),
            ("900KB", 900 * 10**3),
            ("4b", 4),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_size(text) == expected

    def test_fractional(self):
        assert parse_size("1.5KiB") == 1536

    def test_no_number_raises(self):
        with pytest.raises(ValueError):
            parse_size("KiB")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_size("twelve")

    def test_round_trip_binary(self):
        for n in (1, KIB, 3 * MIB, 7 * GIB):
            assert parse_size(fmt_bytes(n).replace(" ", "")) == n
