"""Deterministic RNG helpers."""

import numpy as np

from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_decorrelates(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_non_negative_63bit(self):
        for seed in (0, 1, 2**40, 2**62):
            s = derive_seed(seed, "label")
            assert 0 <= s < 2**63


class TestMakeRng:
    def test_reproducible(self):
        a = make_rng(7, "w").random(16)
        b = make_rng(7, "w").random(16)
        assert np.array_equal(a, b)

    def test_default_seed(self):
        a = make_rng().random(8)
        b = make_rng(DEFAULT_SEED).random(8)
        assert np.array_equal(a, b)

    def test_streams_differ(self):
        a = make_rng(7, "spmv").random(16)
        b = make_rng(7, "mandel").random(16)
        assert not np.array_equal(a, b)
