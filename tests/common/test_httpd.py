"""Hardened HTTP base: bounds, timeouts, restart-safe close."""

import http.client
import socket
import threading

import pytest

from repro.common.httpd import (
    HardenedHandler,
    HardenedHTTPServer,
    MAX_HEADER_COUNT,
    MAX_REQUEST_LINE,
)


class _EchoHandler(HardenedHandler):
    def do_GET(self):  # noqa: N802 - stdlib handler API
        body = b"ok\n"
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture()
def server():
    srv = HardenedHTTPServer(("127.0.0.1", 0), _EchoHandler)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


def port_of(srv):
    return srv.server_address[1]


class TestBounds:
    def test_normal_request_ok(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", port_of(server), timeout=10
        )
        conn.request("GET", "/")
        assert conn.getresponse().status == 200
        conn.close()

    def test_oversized_request_line_is_414(self, server):
        sock = socket.create_connection(
            ("127.0.0.1", port_of(server)), timeout=10
        )
        sock.sendall(b"GET /" + b"a" * MAX_REQUEST_LINE + b" HTTP/1.1\r\n")
        data = sock.recv(4096)
        assert b"414" in data.split(b"\r\n", 1)[0]
        sock.close()

    def test_too_many_headers_is_431(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", port_of(server), timeout=10
        )
        conn.putrequest("GET", "/")
        for n in range(MAX_HEADER_COUNT + 1):
            conn.putheader(f"X-Flood-{n}", "x")
        conn.endheaders()
        assert conn.getresponse().status == 431
        conn.close()

    def test_huge_header_block_is_431(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", port_of(server), timeout=10
        )
        conn.putrequest("GET", "/")
        conn.putheader("X-Big", "v" * 20000)
        conn.endheaders()
        assert conn.getresponse().status == 431
        conn.close()


class TestLifecycle:
    def test_close_without_serve_forever_does_not_hang(self):
        srv = HardenedHTTPServer(("127.0.0.1", 0), _EchoHandler)
        done = threading.Event()

        def close():
            srv.close()
            done.set()

        threading.Thread(target=close, daemon=True).start()
        assert done.wait(timeout=5), "close() hung on an unserved socket"

    def test_immediate_rebind_after_close(self, server):
        port = port_of(server)
        server.close()
        # SO_REUSEADDR: the very next bind on the same port succeeds
        again = HardenedHTTPServer(("127.0.0.1", port), _EchoHandler)
        assert port_of(again) == port
        again.close()

    def test_silent_client_is_dropped(self, server):
        class Impatient(_EchoHandler):
            read_timeout_s = 0.2

        server.RequestHandlerClass = Impatient
        sock = socket.create_connection(
            ("127.0.0.1", port_of(server)), timeout=10
        )
        # say nothing: the server must hang up on us
        sock.settimeout(10)
        assert sock.recv(1) == b""
        sock.close()
