"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.arch.presets import CARINA, FORNAX, RTX3080_SYSTEM, TESLA_V100
from repro.host.runtime import CudaLite
from repro.mem.allocator import DeviceAllocator
from repro.mem.buffer import DeviceArray

# Hypothesis profiles: `ci` pins the property suite to a deterministic
# example stream (derandomize) so tier-1 cannot flake on a fresh seed;
# `dev` keeps local exploration random.  CI selects `ci` via
# REPRO_HYPOTHESIS_PROFILE (falling back to the conventional CI=true).
settings.register_profile("ci", derandomize=True, deadline=None, print_blob=True)
settings.register_profile("dev", deadline=None)
settings.load_profile(
    os.environ.get("REPRO_HYPOTHESIS_PROFILE")
    or ("ci" if os.environ.get("CI") else "dev")
)


@pytest.fixture(autouse=True, scope="session")
def _jit_cache_isolation(tmp_path_factory):
    """Point the jit artifact store at a per-session temp directory.

    Keeps test-produced artifacts out of the developer's (or CI's)
    ``.repro-cache/jit`` while still exercising the persistent tier;
    worker processes inherit the variable through the environment.
    """
    if "REPRO_JIT_CACHE_DIR" not in os.environ:
        os.environ["REPRO_JIT_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("jit-artifacts")
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def allocator() -> DeviceAllocator:
    return DeviceAllocator(1 << 30)


@pytest.fixture
def rt() -> CudaLite:
    """A V100 runtime (the paper's primary system)."""
    return CudaLite(CARINA)


@pytest.fixture
def rt_k80() -> CudaLite:
    return CudaLite(FORNAX)


@pytest.fixture
def rt_ampere() -> CudaLite:
    return CudaLite(RTX3080_SYSTEM)


@pytest.fixture
def v100():
    return TESLA_V100


def make_device_array(
    allocator: DeviceAllocator,
    data: np.ndarray,
    *,
    offset: int = 0,
) -> DeviceArray:
    """Allocate and fill a device array (helper, not a fixture)."""
    data = np.ascontiguousarray(data)
    alloc = allocator.malloc(data.nbytes, offset=offset)
    arr = DeviceArray(alloc, data.dtype, data.shape)
    arr.fill_from(data)
    return arr
