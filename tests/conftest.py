"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.presets import CARINA, FORNAX, RTX3080_SYSTEM, TESLA_V100
from repro.host.runtime import CudaLite
from repro.mem.allocator import DeviceAllocator
from repro.mem.buffer import DeviceArray


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def allocator() -> DeviceAllocator:
    return DeviceAllocator(1 << 30)


@pytest.fixture
def rt() -> CudaLite:
    """A V100 runtime (the paper's primary system)."""
    return CudaLite(CARINA)


@pytest.fixture
def rt_k80() -> CudaLite:
    return CudaLite(FORNAX)


@pytest.fixture
def rt_ampere() -> CudaLite:
    return CudaLite(RTX3080_SYSTEM)


@pytest.fixture
def v100():
    return TESLA_V100


def make_device_array(
    allocator: DeviceAllocator,
    data: np.ndarray,
    *,
    offset: int = 0,
) -> DeviceArray:
    """Allocate and fill a device array (helper, not a fixture)."""
    data = np.ascontiguousarray(data)
    alloc = allocator.malloc(data.nbytes, offset=offset)
    arr = DeviceArray(alloc, data.dtype, data.shape)
    arr.fill_from(data)
    return arr
