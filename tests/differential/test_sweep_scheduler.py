"""Scheduler differential: parallel and cached runs replay the serial result.

The sweep scheduler decomposes a figure sweep into one job per x-value
and Table I into one job per benchmark; both must reproduce the serial
documents exactly — including through a worker pool and through a warm
content-addressed cache.
"""

import json

import pytest

from repro.core.registry import get_benchmark
from repro.sched import JobSpec, ResultCache, parallel_suite, parallel_sweep, run_jobs

SWEEP_VALUES = [1 << 19, 1 << 20]


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSweepEquivalence:
    def test_parallel_sweep_matches_serial(self):
        serial = get_benchmark("CoMem").sweep(SWEEP_VALUES)
        par = parallel_sweep("CoMem", SWEEP_VALUES, jobs=2)
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            par.as_dict(), sort_keys=True
        )

    def test_warm_cache_replays_byte_identically(self, cache):
        cold = parallel_sweep("CoMem", SWEEP_VALUES, jobs=2, cache=cache)
        assert cache.hits == 0 and cache.misses == len(SWEEP_VALUES)
        warm = parallel_sweep("CoMem", SWEEP_VALUES, jobs=2, cache=cache)
        assert cache.hits == len(SWEEP_VALUES)
        assert json.dumps(cold.as_dict()) == json.dumps(warm.as_dict())

    def test_backends_cache_separately(self, cache):
        spec_ref = JobSpec(benchmark="CoMem", kind="sweep", values=(1 << 19,))
        spec_fast = JobSpec(
            benchmark="CoMem", kind="sweep", values=(1 << 19,), backend="fast"
        )
        run_jobs([spec_ref], cache=cache)
        run_jobs([spec_fast], cache=cache)
        assert cache.hits == 0 and cache.stores == 2


class TestSuiteEquivalence:
    # two representative benchmarks through the run-job path is enough
    # here; the full 14x2 matrix lives in test_backend_equivalence.py
    def test_run_jobs_match_direct_runs(self):
        specs = [
            JobSpec(benchmark="Shmem", params=dict(n=64)),
            JobSpec(benchmark="MiniTransfer", params=dict(n=256, nnz=1024)),
        ]
        payloads = run_jobs(specs, jobs=2)
        direct = [
            get_benchmark("Shmem").run(n=64).as_dict(),
            get_benchmark("MiniTransfer").run(n=256, nnz=1024).as_dict(),
        ]
        assert [p["result"] for p in payloads] == direct

    def test_parallel_suite_runs_all_fourteen(self, cache):
        overrides = {
            "WarpDivRedux": dict(n=1 << 16),
            "DynParallel": dict(size=128, max_dwell=64),
            "Conkernels": dict(rounds=16),
            "TaskGraph": dict(chain_len=4, iterations=5, n=2048),
            "Shmem": dict(n=64),
            "CoMem": dict(n=1 << 19),
            "MemAlign": dict(n=1 << 18),
            "GSOverlap": dict(n=1 << 18),
            "Shuffle": dict(n=1 << 18),
            "BankRedux": dict(n=1 << 16),
            "HDOverlap": dict(n=1 << 18),
            "ReadOnlyMem": dict(n=256),
            "UniMem": dict(n=1 << 20, stride=1 << 14),
            "MiniTransfer": dict(n=256, nnz=1024),
        }
        report = parallel_suite(overrides, jobs=2, cache=cache)
        assert len(report.results) == 14
        assert all(r.verified for r in report.results)
        assert cache.stores == 14
        # warm rerun is pure cache replay
        again = parallel_suite(overrides, jobs=2, cache=cache)
        assert cache.hits == 14
        assert [r.as_dict() for r in again.results] == [
            r.as_dict() for r in report.results
        ]
