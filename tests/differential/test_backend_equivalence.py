"""Differential suite: every backend must be bit-identical to reference.

Every registered microbenchmark runs once per backend at test scale and
the :class:`BenchResult` documents are compared field-for-field — the
14x3 matrix (reference, the residue-class fast path, and the trace-JIT
tier).  Representative kernels are additionally launched through
per-backend runtimes to assert equality of the *raw microarchitectural
counters* (the quantities the non-reference paths recompute or replay),
to check sanitizer findings are untouched by the backend, and to prove
each accelerated path actually engages rather than silently falling
back everywhere.
"""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.core.registry import ALL_BENCHMARKS, get_benchmark
from repro.exec import use_backend
from repro.host.runtime import CudaLite
from repro.sanitize.core import Sanitizer
from repro.simt.kernel import kernel

#: non-reference backends; the matrix compares each against reference
ALT_BACKENDS = ("fast", "jit")

#: small parameters so the 14x3 differential run stays in test time
#: (mirrors tests/core/test_suite.py FAST_OVERRIDES)
SCALED = {
    "WarpDivRedux": dict(n=1 << 16),
    "DynParallel": dict(size=128, max_dwell=64),
    "Conkernels": dict(rounds=16),
    "TaskGraph": dict(chain_len=4, iterations=5, n=2048),
    "Shmem": dict(n=64),
    "CoMem": dict(n=1 << 19),
    "MemAlign": dict(n=1 << 18),
    "GSOverlap": dict(n=1 << 18),
    "Shuffle": dict(n=1 << 18),
    "BankRedux": dict(n=1 << 16),
    "HDOverlap": dict(n=1 << 18),
    "ReadOnlyMem": dict(n=256),
    "UniMem": dict(n=1 << 20, stride=1 << 14),
    "MiniTransfer": dict(n=256, nnz=1024),
}

#: reference results, computed once per benchmark and shared across the
#: per-backend comparisons (the expensive half of every matrix cell)
_reference_memo: dict[str, dict] = {}


def _reference_result(name: str) -> dict:
    cached = _reference_memo.get(name)
    if cached is None:
        with use_backend("reference"):
            cached = get_benchmark(name).run(**SCALED.get(name, {})).as_dict()
        _reference_memo[name] = cached
    return cached


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("cls", ALL_BENCHMARKS, ids=lambda c: c.name)
def test_benchmark_identical_across_backends(cls, backend):
    ref = _reference_result(cls.name)
    with use_backend(backend):
        alt = get_benchmark(cls.name).run(**SCALED.get(cls.name, {}))
    assert ref == alt.as_dict(), (
        f"{cls.name}: {backend} backend diverged from reference"
    )


# ---------------------------------------------------------------------------
# kernel-level counter equality


@kernel
def stream_copy(ctx, x, y, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, ctx.load(x, i)))


@kernel
def strided_touch(ctx, x, n, stride):
    i = ctx.global_thread_id() * stride
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) + 1.0))


@kernel
def shared_column(ctx, x, width):
    tid = ctx.thread_idx_x
    tile = ctx.shared_array((width * 32,), np.float32)
    tile.store(tid * width, ctx.load(x, ctx.global_thread_id()))
    ctx.syncthreads()
    ctx.store(x, ctx.global_thread_id(), tile.load(tid * width))


def _launch_all(backend, *, repeat=1):
    rt = CudaLite(CARINA, backend=backend)
    n = 1 << 14
    x = rt.to_device(np.arange(n, dtype=np.float32))
    y = rt.malloc(n, np.float32)
    for _ in range(repeat):
        rt.launch(stream_copy, n // 256, 256, x, y, n)
        rt.launch(strided_touch, n // 256, 256, x, n, 32)
        rt.launch(shared_column, 1, 32, x, 8)
    counters = [stats.counters() for stats, _ in rt.kernel_log]
    return rt, counters


class TestKernelCounters:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_counters_identical(self, backend):
        _, ref = _launch_all("reference")
        _, alt = _launch_all(backend)
        assert ref == alt

    def test_fast_path_engages(self):
        rt, _ = _launch_all("fast")
        c = rt.dispatch.counters
        assert c.global_fast > 0, "affine global accesses never hit the fast path"
        assert c.shared_fast > 0, "affine shared accesses never hit the fast path"

    def test_jit_replay_engages(self, monkeypatch):
        # fresh memory-only store: round 1 records, round 2 replays
        from repro.jit import reset_jit_store

        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", "off")
        reset_jit_store()
        try:
            rt, counters = _launch_all("jit", repeat=2)
        finally:
            reset_jit_store()
        c = rt.dispatch.counters
        assert c.jit_traced == 3 and c.jit_compiled == 3
        assert c.jit_replayed == 3
        assert c.global_jit > 0 and c.shared_jit > 0
        assert c.jit_bailouts == 0
        # and the replayed rounds report the same kernel counters
        assert counters[:3] == counters[3:]

    def test_reference_backend_never_uses_fast_path(self):
        rt, _ = _launch_all("reference")
        c = rt.dispatch.counters
        assert c.global_fast == c.shared_fast == 0
        assert c.global_reference > 0


# ---------------------------------------------------------------------------
# sanitizer findings are backend-invariant


@kernel
def oob_tail_store(ctx, out, n):
    # every thread past n-8 writes one element past the logical end
    i = ctx.global_thread_id()
    ctx.if_active(i >= n - 8, lambda: ctx.store(out, n, 1.0))
    ctx.if_active(i < n - 8, lambda: ctx.store(out, i, 2.0))


def _findings(backend):
    san = Sanitizer("memcheck")
    rt = CudaLite(CARINA, sanitize=san, backend=backend)
    out = rt.malloc(1024 + 32, np.float32)
    out.logical_size = 1024
    rt.launch(oob_tail_store, 8, 128, out, 1024)
    rt.launch(oob_tail_store, 8, 128, out, 1024)  # jit replay round
    return san.report().findings


class TestSanitizeFindingsEquivalence:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_findings_identical(self, backend):
        assert _findings("reference") == _findings(backend)
