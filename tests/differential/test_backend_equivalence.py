"""Differential suite: the fast backend must be bit-identical to reference.

Every registered microbenchmark runs once per backend at test scale and
the two :class:`BenchResult` documents are compared field-for-field.
Representative kernels are additionally launched through two runtimes to
assert equality of the *raw microarchitectural counters* (the quantities
the fast path actually recomputes) and to prove the fast path engages
rather than silently falling back everywhere.
"""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.core.registry import ALL_BENCHMARKS, get_benchmark
from repro.exec import use_backend
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel

#: small parameters so the 14x2 differential run stays in test time
#: (mirrors tests/core/test_suite.py FAST_OVERRIDES)
SCALED = {
    "WarpDivRedux": dict(n=1 << 16),
    "DynParallel": dict(size=128, max_dwell=64),
    "Conkernels": dict(rounds=16),
    "TaskGraph": dict(chain_len=4, iterations=5, n=2048),
    "Shmem": dict(n=64),
    "CoMem": dict(n=1 << 19),
    "MemAlign": dict(n=1 << 18),
    "GSOverlap": dict(n=1 << 18),
    "Shuffle": dict(n=1 << 18),
    "BankRedux": dict(n=1 << 16),
    "HDOverlap": dict(n=1 << 18),
    "ReadOnlyMem": dict(n=256),
    "UniMem": dict(n=1 << 20, stride=1 << 14),
    "MiniTransfer": dict(n=256, nnz=1024),
}


@pytest.mark.parametrize("cls", ALL_BENCHMARKS, ids=lambda c: c.name)
def test_benchmark_identical_across_backends(cls):
    params = SCALED.get(cls.name, {})
    with use_backend("reference"):
        ref = get_benchmark(cls.name).run(**params)
    with use_backend("fast"):
        fast = get_benchmark(cls.name).run(**params)
    assert ref.as_dict() == fast.as_dict(), (
        f"{cls.name}: fast backend diverged from reference"
    )


# ---------------------------------------------------------------------------
# kernel-level counter equality


@kernel
def stream_copy(ctx, x, y, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, ctx.load(x, i)))


@kernel
def strided_touch(ctx, x, n, stride):
    i = ctx.global_thread_id() * stride
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) + 1.0))


@kernel
def shared_column(ctx, x, width):
    tid = ctx.thread_idx_x
    tile = ctx.shared_array((width * 32,), np.float32)
    tile.store(tid * width, ctx.load(x, ctx.global_thread_id()))
    ctx.syncthreads()
    ctx.store(x, ctx.global_thread_id(), tile.load(tid * width))


def _launch_all(backend):
    rt = CudaLite(CARINA, backend=backend)
    n = 1 << 14
    x = rt.to_device(np.arange(n, dtype=np.float32))
    y = rt.malloc(n, np.float32)
    rt.launch(stream_copy, n // 256, 256, x, y, n)
    rt.launch(strided_touch, n // 256, 256, x, n, 32)
    rt.launch(shared_column, 1, 32, x, 8)
    counters = [stats.counters() for stats, _ in rt.kernel_log]
    return rt, counters


class TestKernelCounters:
    def test_counters_identical(self):
        _, ref = _launch_all("reference")
        _, fast = _launch_all("fast")
        assert ref == fast

    def test_fast_path_engages(self):
        rt, _ = _launch_all("fast")
        c = rt.dispatch.counters
        assert c.global_fast > 0, "affine global accesses never hit the fast path"
        assert c.shared_fast > 0, "affine shared accesses never hit the fast path"

    def test_reference_backend_never_uses_fast_path(self):
        rt, _ = _launch_all("reference")
        c = rt.dispatch.counters
        assert c.global_fast == c.shared_fast == 0
        assert c.global_reference > 0
