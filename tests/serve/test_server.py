"""ServeDaemon over real HTTP, plus direct admission/drain decisions."""

import http.client
import json
import threading

import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.serve.client import ServeClient, ServeRejected
from repro.serve.request import parse_request
from repro.serve.server import ServeDaemon


def sweep_doc(**over):
    doc = {"kind": "sweep", "benchmark": "MemAlign", "values": [4096]}
    doc.update(over)
    return doc


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    d = ServeDaemon(
        tmp_path_factory.mktemp("serve-data"), port=0, workers=1
    )
    with d:
        yield d


@pytest.fixture(scope="module")
def client(daemon):
    return ServeClient(daemon.url, timeout_s=60.0)


class TestEndpoints:
    def test_health_and_ready(self, client):
        assert client.healthy()
        assert client.ready()

    def test_submit_wait_result(self, client):
        sub = client.submit(sweep_doc())
        assert sub["state"] in ("queued", "running", "done")
        status = client.wait(sub["id"], timeout_s=120)
        assert status["state"] == "done"
        data = client.result(status["fingerprint"])
        doc = json.loads(data)
        assert doc["schema"] == "repro-prof-bench/1"
        assert doc["benchmark"] == "MemAlign"
        assert doc["sweep"]["x_values"] == [4096]

    def test_duplicate_returns_200_with_same_id(self, client):
        first = client.submit(sweep_doc())
        client.wait(first["id"], timeout_s=120)
        again = client.submit(sweep_doc())
        assert again["duplicate"] is True
        assert again["id"] == first["id"]
        assert again["state"] == "done"

    def test_user_idempotency_key_wins(self, client):
        a = client.submit(sweep_doc(), idempotency_key="pin-1")
        b = client.submit(
            sweep_doc(values=[8192]), idempotency_key="pin-1"
        )
        assert b["id"] == a["id"]
        assert a["fingerprint"] == "user-pin-1"

    def test_invalid_json_is_400(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        conn.request(
            "POST", "/v1/jobs", body=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        assert resp.status == 400
        assert b"invalid JSON" in resp.read()
        conn.close()

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServeRejected) as exc:
            client.submit({"kind": "explode"})
        assert exc.value.status == 400
        assert "unknown kind" in exc.value.body["error"]

    def test_unknown_routes_are_404(self, client):
        with pytest.raises(ServeRejected) as exc:
            client._json("GET", "/v2/everything", ok=(200,))
        assert exc.value.status == 404
        with pytest.raises(ServeRejected) as exc:
            client._json("POST", "/v1/other", body=b"{}", ok=(200,))
        assert exc.value.status == 404

    def test_unknown_job_and_result_are_404(self, client):
        with pytest.raises(ServeRejected) as exc:
            client.status("req-does-not-exist")
        assert exc.value.status == 404
        with pytest.raises(ServeRejected) as exc:
            client.result("0" * 64)
        assert exc.value.status == 404

    def test_oversized_body_is_413(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        conn.request(
            "POST", "/v1/jobs", body=b"",
            headers={"Content-Length": str(2 << 20)},
        )
        resp = conn.getresponse()
        assert resp.status == 413
        conn.close()

    def test_metrics_parse_strictly(self, client):
        samples = parse_prometheus_text(client.metrics())
        names = {s.name for s in samples}
        for required in (
            "repro_serve_queue_depth",
            "repro_serve_inflight",
            "repro_serve_ready",
            "repro_serve_draining",
            "repro_serve_workers",
            "repro_serve_requests",
            "repro_serve_accepted_total",
            "repro_serve_completed_total",
        ):
            assert required in names

    def test_watch_streams_to_terminal(self, client, daemon):
        sub = client.submit(sweep_doc(values=[8192]))
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=120
        )
        conn.request("GET", f"/v1/jobs/{sub['id']}?watch=1")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in resp.read().splitlines()]
        conn.close()
        assert lines[0]["id"] == sub["id"]
        assert lines[-1]["state"] == "done"
        assert any("event" in line for line in lines)

    def test_unfinished_result_is_409_with_retry_after(self, tmp_path):
        # HTTP only, no workers: the queued request stays queued
        daemon = ServeDaemon(tmp_path / "data", port=0, workers=1)
        http_thread = threading.Thread(
            target=daemon._server.serve_forever, daemon=True
        )
        http_thread.start()
        try:
            request = parse_request(sweep_doc())
            daemon.queue.submit(request)
            client = ServeClient(daemon.url)
            with pytest.raises(ServeRejected) as exc:
                client.result(request.fingerprint)
            assert exc.value.status == 409
            assert exc.value.body["state"] == "queued"
            assert exc.value.retry_after_s >= 1
        finally:
            daemon._server.close()
            http_thread.join(timeout=5)
            daemon.queue.close()


class TestAdmitDirect:
    """Rejection paths exercised deterministically, no workers racing."""

    def make(self, tmp_path, **kw):
        return ServeDaemon(tmp_path / "data", port=0, workers=1, **kw)

    def test_queue_full_is_429(self, tmp_path):
        daemon = self.make(tmp_path, max_queue=1)
        daemon.queue.submit(parse_request(sweep_doc()))
        decision, body, status = daemon.admit(
            parse_request(sweep_doc(values=[1024]))
        )
        assert status == 429
        assert body["error"] == "queue-full"
        assert decision.retry_after_s >= 1
        daemon.queue.close()
        daemon._server.close()

    def test_client_cap_is_429(self, tmp_path):
        daemon = self.make(tmp_path, max_per_client=1)
        daemon.queue.submit(
            parse_request(sweep_doc(), client="alice")
        )
        _, body, status = daemon.admit(
            parse_request(sweep_doc(values=[1024]), client="alice")
        )
        assert status == 429
        assert body["error"] == "client-cap"
        # a different client is unaffected
        _, _, status = daemon.admit(
            parse_request(sweep_doc(values=[2048]), client="bob")
        )
        assert status == 202
        daemon.queue.close()
        daemon._server.close()

    def test_draining_is_503(self, tmp_path):
        daemon = self.make(tmp_path)
        daemon._draining.set()
        _, body, status = daemon.admit(parse_request(sweep_doc()))
        assert status == 503
        assert body["error"] == "draining"
        daemon.queue.close()
        daemon._server.close()

    def test_open_breaker_is_503_but_check_bypasses(self, tmp_path):
        daemon = self.make(tmp_path, breaker_threshold=1)
        daemon.breakers.record_failure("MemAlign")
        decision, body, status = daemon.admit(parse_request(sweep_doc()))
        assert status == 503
        assert body["error"] == "breaker-open"
        assert decision.retry_after_s is not None
        # check requests carry no benchmark: never breaker-gated
        _, _, status = daemon.admit(parse_request({"kind": "check"}))
        assert status == 202
        daemon.queue.close()
        daemon._server.close()

    def test_duplicate_bypasses_full_queue(self, tmp_path):
        daemon = self.make(tmp_path, max_queue=1)
        daemon.queue.submit(parse_request(sweep_doc()))
        _, body, status = daemon.admit(parse_request(sweep_doc()))
        assert status == 202
        assert body["duplicate"] is True
        daemon.queue.close()
        daemon._server.close()


class TestDrain:
    def test_empty_drain_exits_zero(self, tmp_path):
        daemon = ServeDaemon(tmp_path / "data", port=0, workers=1)
        daemon.start()
        assert daemon.drain(grace_s=10.0) == 0
        assert daemon.drain_duration_s is not None

    def test_pending_work_drains_to_exit_four(self, tmp_path):
        # never started: the queued request cannot be picked up, so it
        # remains durable and drain reports "journal saved"
        daemon = ServeDaemon(tmp_path / "data", port=0, workers=1)
        daemon.queue.submit(parse_request(sweep_doc()))
        assert daemon.drain(grace_s=1.0) == 4

    def test_readiness_reasons(self, tmp_path):
        daemon = ServeDaemon(tmp_path / "data", port=0, workers=1)
        assert daemon.readiness() == (False, "recovering")
        daemon._ready.set()
        assert daemon.readiness() == (True, "ready")
        daemon._draining.set()
        assert daemon.readiness()[1] == "draining"
        daemon.queue.close()
        daemon._server.close()

    def test_high_water_blocks_readiness(self, tmp_path):
        daemon = ServeDaemon(
            tmp_path / "data", port=0, workers=1, max_queue=2
        )
        daemon._ready.set()
        daemon.queue.submit(parse_request(sweep_doc()))
        ready, reason = daemon.readiness()
        assert not ready
        assert "high water" in reason
        daemon.queue.close()
        daemon._server.close()
