"""Admission control: 429/503 decisions and the Retry-After estimator."""

from repro.serve.admission import AdmissionController


def make(**kw):
    kw.setdefault("max_queue", 4)
    kw.setdefault("max_per_client", 2)
    return AdmissionController(**kw)


class TestDecisions:
    def test_admits_under_limits(self):
        decision = make().decide(queue_depth=0, client_load=0, workers=2)
        assert decision.admitted

    def test_queue_full_is_429_with_retry_after(self):
        decision = make().decide(queue_depth=4, client_load=0, workers=2)
        assert not decision.admitted
        assert decision.status == 429
        assert decision.reason == "queue-full"
        assert decision.retry_after_s >= 1

    def test_client_cap_is_429(self):
        decision = make().decide(queue_depth=1, client_load=2, workers=2)
        assert decision.status == 429
        assert decision.reason == "client-cap"

    def test_draining_is_503_without_retry_after(self):
        decision = make().decide(
            queue_depth=0, client_load=0, workers=2, draining=True
        )
        assert decision.status == 503
        assert decision.reason == "draining"
        assert decision.retry_after_s is None

    def test_breaker_open_is_503_with_cooldown(self):
        decision = make().decide(
            queue_depth=0, client_load=0, workers=2,
            breaker_open=True, breaker_retry_s=12.4,
        )
        assert decision.status == 503
        assert decision.reason == "breaker-open"
        assert decision.retry_after_s == 12

    def test_drain_beats_breaker(self):
        decision = make().decide(
            queue_depth=9, client_load=9, workers=2,
            draining=True, breaker_open=True,
        )
        assert decision.reason == "draining"


class TestRetryAfterEstimator:
    def test_default_without_samples(self):
        assert make().retry_after_s(10, 2) == 5

    def test_scales_with_depth_and_service_time(self):
        ctl = make()
        for _ in range(4):
            ctl.observe_service_time(2.0)
        # 6 deep, 2 workers, 2s each → ~6s
        assert ctl.retry_after_s(6, 2) == 6

    def test_clamped_to_sane_range(self):
        ctl = make()
        ctl.observe_service_time(1000.0)
        assert ctl.retry_after_s(100, 1) == 300
        ctl2 = make()
        ctl2.observe_service_time(0.001)
        assert ctl2.retry_after_s(1, 8) == 1


class TestHighWater:
    def test_high_water_below_max(self):
        ctl = AdmissionController(max_queue=10)
        assert ctl.high_water == 8
        assert AdmissionController(max_queue=1).high_water == 1
