"""Circuit breaker: closed → open → half-open with an injected clock."""

from repro.serve.breaker import BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def make(self, **kw):
        clock = FakeClock()
        kw.setdefault("threshold", 3)
        kw.setdefault("cooldown_s", 30.0)
        return CircuitBreaker(now=clock, **kw), clock

    def test_closed_allows(self):
        breaker, _ = self.make()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_cooldown_admits_one_probe(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t += 31.0
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else still rejected

    def test_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t += 31.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t += 31.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after_s() > 29.0

    def test_retry_after_counts_down(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after_s() == 30.0
        clock.t += 10.0
        assert breaker.retry_after_s() == 20.0


class TestBreakerBoard:
    def test_per_benchmark_isolation(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=2, now=clock)
        board.record_failure("MemAlign")
        board.record_failure("MemAlign")
        assert not board.allow("MemAlign")
        assert board.allow("CoMem")
        assert board.states() == {"MemAlign": "open"}

    def test_none_benchmark_always_allowed(self):
        board = BreakerBoard(threshold=1)
        board.record_failure(None)     # no-op
        assert board.allow(None)
