"""Request validation and idempotency fingerprints."""

import pytest

from repro.serve.request import (
    BadRequest,
    parse_request,
    request_fingerprint,
)


def sweep_doc(**over):
    doc = {"kind": "sweep", "benchmark": "MemAlign", "values": [4096, 8192]}
    doc.update(over)
    return doc


class TestValidation:
    def test_minimal_sweep_parses(self):
        req = parse_request(sweep_doc())
        assert req.kind == "sweep"
        assert req.benchmark == "MemAlign"
        assert req.values == [4096, 8192]
        assert len(req.fingerprint) == 64

    def test_unknown_kind_rejected(self):
        with pytest.raises(BadRequest, match="unknown kind"):
            parse_request({"kind": "explode"})

    def test_non_object_body_rejected(self):
        with pytest.raises(BadRequest, match="JSON object"):
            parse_request([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequest, match="unknown request field"):
            parse_request(sweep_doc(surprise=1))

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(BadRequest, match="unknown benchmark"):
            parse_request(sweep_doc(benchmark="NotABench"))

    def test_sweep_needs_values(self):
        with pytest.raises(BadRequest, match="non-empty 'values'"):
            parse_request({"kind": "sweep", "benchmark": "MemAlign"})

    def test_sweep_values_must_be_numbers(self):
        with pytest.raises(BadRequest, match="not a number"):
            parse_request(sweep_doc(values=[4096, "big"]))

    def test_values_rejected_on_run(self):
        with pytest.raises(BadRequest, match="only applies to sweep"):
            parse_request(
                {"kind": "run", "benchmark": "MemAlign", "values": [1]}
            )

    def test_params_must_be_scalars(self):
        with pytest.raises(BadRequest, match="not a scalar"):
            parse_request(sweep_doc(params={"n": [1, 2]}))

    def test_unknown_backend_rejected(self):
        with pytest.raises(BadRequest, match="unknown backend"):
            parse_request(sweep_doc(backend="magic"))

    def test_check_allows_both_backend(self):
        req = parse_request({"kind": "check", "backend": "both"})
        assert req.backend == "both"

    def test_run_rejects_both_backend(self):
        with pytest.raises(BadRequest, match="unknown backend"):
            parse_request(
                {"kind": "run", "benchmark": "MemAlign", "backend": "both"}
            )

    def test_unknown_system_rejected(self):
        with pytest.raises(BadRequest):
            parse_request(sweep_doc(system="crayon"))

    def test_deadline_must_be_positive_int(self):
        with pytest.raises(BadRequest, match="deadline_ms"):
            parse_request(sweep_doc(deadline_ms=-5))
        with pytest.raises(BadRequest, match="deadline_ms"):
            parse_request(sweep_doc(deadline_ms=True))

    def test_benchmarks_only_on_check(self):
        with pytest.raises(BadRequest, match="only applies to check"):
            parse_request(sweep_doc(benchmarks=["MemAlign"]))

    def test_bad_client_id_rejected(self):
        with pytest.raises(BadRequest, match="X-Client-Id"):
            parse_request(sweep_doc(), client="space cadet!")

    def test_bad_idempotency_key_rejected(self):
        with pytest.raises(BadRequest, match="Idempotency-Key"):
            parse_request(sweep_doc(), idempotency_key="a" * 200)


class TestFingerprints:
    def test_same_request_same_fingerprint(self):
        a = parse_request(sweep_doc())
        b = parse_request(sweep_doc())
        assert a.fingerprint == b.fingerprint

    def test_different_values_different_fingerprint(self):
        a = parse_request(sweep_doc())
        b = parse_request(sweep_doc(values=[4096]))
        assert a.fingerprint != b.fingerprint

    def test_kind_distinguishes_fingerprint(self):
        run = parse_request({"kind": "run", "benchmark": "MemAlign"})
        prof = parse_request({"kind": "profile", "benchmark": "MemAlign"})
        assert run.fingerprint != prof.fingerprint

    def test_user_key_overrides(self):
        req = parse_request(sweep_doc(), idempotency_key="my-key-1")
        assert req.fingerprint == "user-my-key-1"

    def test_check_fingerprint_covers_quick(self):
        a = parse_request({"kind": "check", "quick": True})
        b = parse_request({"kind": "check"})
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_function_matches_parse(self):
        req = parse_request(sweep_doc())
        assert request_fingerprint(req) == req.fingerprint


class TestJobSpecs:
    def test_sweep_decomposes_one_job_per_value(self):
        specs = parse_request(sweep_doc()).job_specs()
        assert [s.values for s in specs] == [(4096,), (8192,)]
        assert all(s.kind == "sweep" for s in specs)

    def test_run_is_one_job(self):
        specs = parse_request(
            {"kind": "run", "benchmark": "MemAlign"}
        ).job_specs()
        assert len(specs) == 1
        assert specs[0].kind == "run"
