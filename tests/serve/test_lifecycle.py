"""Full-process lifecycle: boot, SIGKILL mid-job, recover, byte-identity.

These tests drive ``python -m repro serve`` as a real subprocess — the
same shape as the CI ``serve-smoke`` job — because kill -9 durability
cannot be faked in-process.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

#: large MemAlign sizes run long enough (~0.5s/value) that a SIGKILL
#: lands mid-sweep deterministically
VALUES = "262144,524288,262145"


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(port: int, cwd: Path) -> subprocess.Popen:
    env = dict(
        os.environ,
        PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"),
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--data-dir", "data",
            "--workers", "1", "--cache-dir", "cache",
        ],
        cwd=cwd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_ready(client: ServeClient, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if client.ready():
                return
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError("daemon never became ready")


@pytest.fixture()
def workdir(tmp_path):
    return tmp_path


def test_kill9_recover_byte_identical_drain(workdir):
    port = free_port()
    client = ServeClient(f"http://127.0.0.1:{port}", timeout_s=30.0)

    proc = spawn(port, workdir)
    try:
        wait_ready(client)
        sub = client.submit({
            "kind": "sweep", "benchmark": "MemAlign",
            "values": [int(v) for v in VALUES.split(",")],
        })
        request_id = sub["id"]

        # let the journal accumulate at least one checkpoint, then
        # murder the daemon mid-sweep
        journal = workdir / "data" / "journals" / f"{request_id}.ndjson"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and len(journal.read_bytes().splitlines()) >= 2:
                break
            time.sleep(0.1)
        else:
            raise AssertionError("journal never checkpointed")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

        # restart over the same data dir: recovery must re-lease the
        # in-flight request and finish it
        proc = spawn(port, workdir)
        wait_ready(client)
        status = client.wait(request_id, timeout_s=120)
        assert status["state"] == "done"
        assert status["attempts"] == 2
        served = client.result(status["fingerprint"])

        # byte-identical to the serial CLI writing the same sweep
        out = workdir / "cli.json"
        subprocess.run(
            [
                sys.executable, "-m", "repro", "sweep", "MemAlign",
                "--values", VALUES, "--out", str(out),
            ],
            cwd=workdir,
            env=dict(
                os.environ,
                PYTHONPATH=str(
                    Path(__file__).resolve().parents[2] / "src"
                ),
            ),
            check=True, capture_output=True,
        )
        assert served == out.read_bytes()

        # metrics surface the recovery
        samples = {
            line.split(" ")[0]: line.split(" ")[-1]
            for line in client.metrics().splitlines()
            if line and not line.startswith("#")
        }
        assert float(samples["repro_serve_recovered_requests"]) >= 1.0
        assert float(samples["repro_serve_recovered_releases"]) >= 1.0

        # graceful drain: SIGTERM, nothing pending, exit 0
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_sigterm_with_queued_work_exits_four(workdir):
    port = free_port()
    client = ServeClient(f"http://127.0.0.1:{port}", timeout_s=30.0)
    proc = spawn(port, workdir)
    try:
        wait_ready(client)
        # a long sweep the single worker will still be running, plus a
        # queued one behind it
        first = client.submit({
            "kind": "sweep", "benchmark": "MemAlign",
            "values": [524288, 262144, 524289],
        })
        client.submit({
            "kind": "sweep", "benchmark": "MemAlign", "values": [4096],
        })
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.status(first["id"])["state"] == "running":
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 4  # interrupted; journal saved

        # everything survives for the next incarnation
        states = [
            json.loads(path.read_text())["state"]
            for path in (workdir / "data" / "requests").glob("*.json")
        ]
        assert sorted(states) in (["done", "queued"], ["queued", "queued"])
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
