"""Crash recovery: a restarted queue replays its data dir faithfully."""

import pytest

from repro.serve.queue import DurableQueue
from repro.serve.recovery import recover
from repro.serve.request import parse_request


def sweep_request(values=(4096, 8192), **over):
    doc = {"kind": "sweep", "benchmark": "MemAlign", "values": list(values)}
    doc.update(over)
    return parse_request(doc)


@pytest.fixture()
def data_dir(tmp_path):
    return tmp_path / "data"


def restart(data_dir):
    """A fresh incarnation over the same data dir, recovered."""
    queue = DurableQueue(data_dir)
    summary = recover(queue)
    return queue, summary


class TestRecovery:
    def test_queued_entries_requeued_in_order(self, data_dir):
        first = DurableQueue(data_dir)
        a, _ = first.submit(sweep_request())
        b, _ = first.submit(sweep_request(values=[1024]))
        first.close()

        queue, summary = restart(data_dir)
        assert summary.requests == 2
        assert summary.requeued == 2
        assert summary.releases == 0
        assert queue.claim("w0").id == a.id
        assert queue.claim("w0").id == b.id
        queue.close()

    def test_running_entry_released_and_requeued(self, data_dir):
        first = DurableQueue(data_dir)
        first.submit(sweep_request())
        claimed = first.claim("w0")
        assert first.leases.read(claimed.id) is not None
        # crash: no release, no close bookkeeping

        queue, summary = restart(data_dir)
        assert summary.releases == 1
        assert summary.requeued == 1
        entry = queue.get(claimed.id)
        assert entry.state == "queued"
        reclaimed = queue.claim("w0")
        assert reclaimed.id == claimed.id
        assert reclaimed.attempts == 2  # persisted attempt survived
        queue.close()

    def test_terminal_entries_stay_done_with_results(self, data_dir):
        first = DurableQueue(data_dir)
        first.submit(sweep_request())
        claimed = first.claim("w0")
        text = '{"schema": "repro-prof-bench/1"}\n'
        first.put_result(claimed.request.fingerprint, text)
        first.complete(claimed, claimed.request.fingerprint)
        first.close()

        queue, summary = restart(data_dir)
        assert summary.completed == 1
        assert summary.requeued == 0
        entry = queue.by_fingerprint(claimed.request.fingerprint)
        assert entry.state == "done"
        assert queue.get_result(claimed.request.fingerprint) == text.encode()
        assert queue.depth() == 0
        queue.close()

    def test_intake_backstop_rebuilds_lost_state_file(self, data_dir):
        first = DurableQueue(data_dir)
        entry, _ = first.submit(sweep_request())
        first.close()
        # crash scenario: the fsync'd intake line landed but the state
        # file did not
        (data_dir / "requests" / f"{entry.id}.json").unlink()

        queue, summary = restart(data_dir)
        assert summary.rebuilt_from_intake == 1
        rebuilt = queue.get(entry.id)
        assert rebuilt.state == "queued"
        assert rebuilt.request.fingerprint == entry.request.fingerprint
        assert queue.claim("w0").id == entry.id
        queue.close()

    def test_orphaned_lease_on_queued_entry_reclaimed(self, data_dir):
        first = DurableQueue(data_dir)
        entry, _ = first.submit(sweep_request())
        # crash between lease-create and the running-state write
        assert first.leases.claim(entry.id, "dead-worker") is not None
        first.close()

        queue, summary = restart(data_dir)
        assert summary.requeued == 1
        assert queue.leases.read(entry.id) is None
        assert queue.claim("w0") is not None
        queue.close()

    def test_duplicate_submission_after_restart_maps_to_recovered(
        self, data_dir
    ):
        first = DurableQueue(data_dir)
        entry, _ = first.submit(sweep_request())
        first.close()

        queue, _ = restart(data_dir)
        again, dup = queue.submit(sweep_request())
        assert dup
        assert again.id == entry.id
        assert queue.depth() == 1
        queue.close()

    def test_sequence_counter_resumes_past_recovered(self, data_dir):
        first = DurableQueue(data_dir)
        a, _ = first.submit(sweep_request())
        first.close()

        queue, _ = restart(data_dir)
        b, _ = queue.submit(sweep_request(values=[1024]))
        assert b.seq > a.seq
        queue.close()
