"""DurableQueue: accepted means persisted; idempotent resubmission."""

import json

import pytest

from repro.serve.queue import DurableQueue
from repro.serve.request import parse_request


def sweep_request(values=(4096, 8192), **over):
    doc = {"kind": "sweep", "benchmark": "MemAlign", "values": list(values)}
    doc.update(over)
    return parse_request(doc)


@pytest.fixture()
def queue(tmp_path):
    q = DurableQueue(tmp_path / "data")
    yield q
    q.close()


class TestSubmit:
    def test_submit_persists_before_returning(self, queue):
        entry, dup = queue.submit(sweep_request())
        assert not dup
        state = queue.data_dir / "requests" / f"{entry.id}.json"
        assert state.exists()
        doc = json.loads(state.read_text())
        assert doc["state"] == "queued"
        assert doc["fingerprint"] == entry.request.fingerprint
        intake = (queue.data_dir / "intake.ndjson").read_text().splitlines()
        assert any(entry.id in line for line in intake)

    def test_duplicate_maps_to_original(self, queue):
        first, _ = queue.submit(sweep_request())
        second, dup = queue.submit(sweep_request())
        assert dup
        assert second.id == first.id
        assert queue.depth() == 1  # not double-enqueued

    def test_distinct_requests_distinct_entries(self, queue):
        a, _ = queue.submit(sweep_request())
        b, _ = queue.submit(sweep_request(values=[1024]))
        assert a.id != b.id
        assert queue.depth() == 2

    def test_failed_duplicate_rearms(self, queue):
        entry, _ = queue.submit(sweep_request())
        claimed = queue.claim("w0")
        queue.fail(claimed, "boom")
        assert entry.state == "failed"
        again, dup = queue.submit(sweep_request())
        assert dup
        assert again.id == entry.id
        assert again.state == "queued"
        assert queue.depth() == 1

    def test_done_duplicate_stays_done(self, queue):
        queue.submit(sweep_request())
        claimed = queue.claim("w0")
        queue.complete(claimed, claimed.request.fingerprint)
        again, dup = queue.submit(sweep_request())
        assert dup
        assert again.state == "done"
        assert queue.depth() == 0


class TestClaimAndTransitions:
    def test_claim_is_fifo_and_leases(self, queue):
        a, _ = queue.submit(sweep_request())
        queue.submit(sweep_request(values=[1024]))
        claimed = queue.claim("w0")
        assert claimed.id == a.id
        assert claimed.state == "running"
        assert claimed.attempts == 1
        assert queue.leases.read(claimed.id) is not None

    def test_complete_releases_lease_and_persists(self, queue):
        queue.submit(sweep_request())
        claimed = queue.claim("w0")
        queue.complete(claimed, "fp123")
        assert claimed.state == "done"
        assert claimed.result_fingerprint == "fp123"
        assert queue.leases.read(claimed.id) is None
        doc = json.loads(
            (queue.data_dir / "requests" / f"{claimed.id}.json").read_text()
        )
        assert doc["state"] == "done"
        assert doc["result_fingerprint"] == "fp123"

    def test_expire_is_terminal_with_error(self, queue):
        queue.submit(sweep_request())
        claimed = queue.claim("w0")
        queue.expire(claimed, "deadline of 10ms expired")
        assert claimed.state == "expired"
        assert "deadline" in claimed.error

    def test_requeue_returns_to_pending(self, queue):
        queue.submit(sweep_request())
        claimed = queue.claim("w0")
        queue.requeue(claimed)
        assert claimed.state == "queued"
        assert queue.depth() == 1
        assert queue.leases.read(claimed.id) is None

    def test_claim_timeout_returns_none(self, queue):
        assert queue.claim("w0", timeout=0.01) is None


class TestDurability:
    def test_torn_intake_tail_tolerated(self, queue):
        entry, _ = queue.submit(sweep_request())
        path = queue.data_dir / "intake.ndjson"
        with path.open("a") as fh:
            fh.write('{"id": "torn-req", "seq"')  # crash mid-append
        lines = DurableQueue._read_intake(path)
        assert [line["id"] for line in lines] == [entry.id]

    def test_result_roundtrip(self, queue):
        text = '{"schema": "repro-prof-bench/1"}\n'
        queue.put_result("abc123", text)
        assert queue.get_result("abc123") == text.encode()
        assert queue.get_result("missing") is None


class TestAccounting:
    def test_counts_and_client_load(self, queue):
        queue.submit(sweep_request())
        queue.submit(sweep_request(values=[1024]))
        claimed = queue.claim("w0")
        counts = queue.counts()
        assert counts["running"] == 1
        assert counts["queued"] == 1
        assert queue.inflight() == 1
        assert queue.client_load("anon") == 2
        queue.complete(claimed, "fp")
        assert queue.client_load("anon") == 1
