"""End-to-end integration scenarios across subsystem boundaries.

Each test exercises a realistic multi-component workflow: memory +
kernels + streams + timing together, the way a library user would.
"""

import numpy as np
import pytest

from repro import (
    CARINA,
    FORNAX,
    CudaLite,
    estimate_kernel_time,
    kernel,
)
from repro.kernels import (
    matmul_grid_for,
    matmul_tiled,
    reduce_shuffle,
)


@kernel
def scale(ctx, x, n, a):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, a * ctx.load(x, i)))


class TestMultiKernelPipeline:
    def test_matmul_then_reduce(self, rng):
        """C = A @ B, then per-block sums of C — two kernels chained."""
        rt = CudaLite(CARINA)
        n = 64
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        a = rt.to_device(ha.ravel())
        b = rt.to_device(hb.ravel())
        c = rt.malloc(n * n)
        grid, block = matmul_grid_for(n)
        rt.launch(matmul_tiled, grid, block, a, b, c, n)
        r = rt.malloc(n * n // 256)
        rt.launch(reduce_shuffle, n * n // 256, 256, c, r)
        total = rt.synchronize()
        ref = (ha @ hb).ravel().reshape(-1, 256).sum(axis=1)
        assert np.allclose(r.to_host(), ref, rtol=1e-3)
        assert total > 0

    def test_iterative_updates_in_one_buffer(self, rng):
        rt = CudaLite(CARINA)
        n = 4096
        hx = rng.random(n, dtype=np.float32)
        x = rt.to_device(hx)
        for _ in range(5):
            rt.launch(scale, n // 256, 256, x, n, 2.0)
        rt.synchronize()
        assert np.allclose(x.to_host(), hx * 32.0, rtol=1e-5)


class TestStreamPipelines:
    def test_producer_consumer_across_streams(self, rng):
        rt = CudaLite(CARINA)
        n = 1 << 14
        hx = rng.random(n, dtype=np.float32)
        x = rt.malloc(n)
        s_copy = rt.stream("copy")
        s_compute = rt.stream("compute")
        done_copy = rt.event("copied")
        rt.memcpy_h2d(x, hx, stream=s_copy, pinned=True)
        rt.record_event(done_copy, stream=s_copy)
        rt.wait_event(done_copy, stream=s_compute)
        rt.launch(scale, n // 256, 256, x, n, 3.0, stream=s_compute)
        rt.synchronize()
        assert np.allclose(x.to_host(), 3.0 * hx, rtol=1e-6)
        # the kernel must not have started before the copy finished
        copy_ev = [e for e in rt.timeline.events if e.kind == "h2d"][0]
        kern_ev = [e for e in rt.timeline.events if e.kind == "kernel"][0]
        assert kern_ev.start >= copy_ev.end

    def test_timeline_busy_accounting(self, rng):
        rt = CudaLite(CARINA)
        n = 1 << 16
        x = rt.to_device(rng.random(n, dtype=np.float32))
        with rt.timer() as t:
            rt.launch(scale, n // 256, 256, x, n, 1.5)
        assert rt.timeline.busy_time() == pytest.approx(t.elapsed, rel=1e-6)


class TestCrossArchitecture:
    def test_same_program_two_systems(self, rng):
        """One workload, two simulated machines — results equal, times differ."""
        n = 1 << 16
        hx = rng.random(n, dtype=np.float32)
        outs = {}
        times = {}
        for system in (CARINA, FORNAX):
            rt = CudaLite(system)
            x = rt.to_device(hx)
            with rt.timer() as t:
                rt.launch(scale, n // 256, 256, x, n, 2.0)
            outs[system.name] = x.to_host()
            times[system.name] = t.elapsed
        a, b = outs.values()
        assert np.array_equal(a, b)
        ta, tb = times.values()
        assert ta != tb  # a V100 is not a K80

    def test_occupancy_feeds_timing(self, rng):
        """A shared-memory-hungry kernel loses occupancy and slows down."""

        @kernel
        def hungry(ctx, x, n):
            ctx.shared_array(16 * 1024 // 4, np.float32)  # 16 KiB/block
            i = ctx.global_thread_id()

            def body():
                v = ctx.load(x, i)
                for _ in range(64):
                    v = ctx.fma(v, 1.0001, 0.1)
                ctx.store(x, i, v)

            ctx.if_active(i < n, body)

        @kernel
        def lean(ctx, x, n):
            i = ctx.global_thread_id()

            def body():
                v = ctx.load(x, i)
                for _ in range(64):
                    v = ctx.fma(v, 1.0001, 0.1)
                ctx.store(x, i, v)

            ctx.if_active(i < n, body)

        rt = CudaLite(CARINA)
        n = 1 << 16
        x = rt.to_device(rng.random(n, dtype=np.float32))
        s_hungry = rt.launch(hungry, n // 256, 256, x, n)
        s_lean = rt.launch(lean, n // 256, 256, x, n)
        rt.synchronize()
        t_hungry = estimate_kernel_time(s_hungry, rt.gpu)
        t_lean = estimate_kernel_time(s_lean, rt.gpu)
        assert t_hungry.occupancy.occupancy < t_lean.occupancy.occupancy
        assert t_hungry.occupancy.limiter == "shared"


class TestMemoryLifecycles:
    def test_alloc_free_reuse_cycle(self, rng):
        rt = CudaLite(CARINA)
        for _ in range(20):
            x = rt.malloc(1 << 16)
            x.fill_from(rng.random(1 << 16, dtype=np.float32))
            rt.free(x)
        assert rt.allocator.live_allocations == 0

    def test_oom_is_clean(self):
        from repro.common.errors import AllocationError

        rt = CudaLite(CARINA)
        with pytest.raises(AllocationError):
            rt.malloc(rt.gpu.dram_size * 2)
        # runtime still usable afterwards
        x = rt.malloc(1024)
        assert x.size == 1024
