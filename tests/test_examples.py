"""Smoke tests: every example script runs end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "AXPY" in out
        assert "effective bandwidth" in out

    def test_coalescing_study(self):
        out = run_example("coalescing_study.py")
        assert "cyclic" in out
        assert "block" in out

    def test_mandelbrot_adaptive(self):
        out = run_example("mandelbrot_adaptive.py", "128")
        assert "Mariani-Silver" in out
        assert "speedup" in out

    def test_spmv_formats(self):
        out = run_example("spmv_formats.py")
        assert "CSR" in out
        assert "density" in out

    def test_overlap_pipeline(self):
        out = run_example("overlap_pipeline.py")
        assert "synchronous offload" in out
        assert "graph replay" in out

    def test_gpu_comparison(self):
        out = run_example("gpu_comparison.py")
        assert "Tesla K80" in out
        assert "texture win" in out

    def test_performance_doctor(self):
        out = run_example("performance_doctor.py")
        assert "uncoalesced-access" in out
        assert "no inefficiency patterns detected" in out

    def test_all_examples_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py", "coalescing_study.py", "mandelbrot_adaptive.py",
            "spmv_formats.py", "overlap_pipeline.py", "gpu_comparison.py",
            "performance_doctor.py",
        }
        assert scripts == tested
