"""Reduction kernels: correctness and shared/shuffle signatures."""

import numpy as np
import pytest

from repro.common.errors import LaunchConfigError
from repro.kernels.reduction import (
    reduce_interleaved_bc,
    reduce_sequential,
    reduce_shuffle,
)

KERNELS = [reduce_interleaved_bc, reduce_sequential, reduce_shuffle]


def run_reduce(rt, kdef, hx, block):
    n = hx.shape[0]
    x = rt.to_device(hx)
    r = rt.malloc(n // block)
    stats = rt.launch(kdef, n // block, block, x, r)
    rt.synchronize()
    return stats, r.to_host()


class TestCorrectness:
    @pytest.mark.parametrize("kdef", KERNELS, ids=lambda k: k.name)
    @pytest.mark.parametrize("block", [32, 64, 256])
    def test_partial_sums(self, rt, rng, kdef, block):
        hx = rng.random(block * 16, dtype=np.float32)
        _, partial = run_reduce(rt, kdef, hx, block)
        expect = hx.reshape(-1, block).sum(axis=1)
        assert np.allclose(partial, expect, rtol=1e-4)

    @pytest.mark.parametrize("kdef", KERNELS, ids=lambda k: k.name)
    def test_negative_values(self, rt, rng, kdef):
        hx = (rng.random(1024, dtype=np.float32) - 0.5) * 10
        _, partial = run_reduce(rt, kdef, hx, 256)
        assert np.allclose(partial, hx.reshape(-1, 256).sum(axis=1), rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("kdef", KERNELS, ids=lambda k: k.name)
    def test_non_pow2_block_rejected(self, rt, rng, kdef):
        hx = rng.random(96 * 4, dtype=np.float32)
        with pytest.raises(LaunchConfigError):
            run_reduce(rt, kdef, hx, 96)

    def test_all_agree(self, rt, rng):
        hx = rng.random(4096, dtype=np.float32)
        results = [run_reduce(rt, k, hx, 256)[1] for k in KERNELS]
        assert np.allclose(results[0], results[1], rtol=1e-5)
        assert np.allclose(results[1], results[2], rtol=1e-5)


class TestSignatures:
    def test_interleaved_has_conflicts(self, rt, rng):
        hx = rng.random(4096, dtype=np.float32)
        s_bc, _ = run_reduce(rt, reduce_interleaved_bc, hx, 256)
        s_seq, _ = run_reduce(rt, reduce_sequential, hx, 256)
        assert s_bc.bank_conflict_extra > 0
        assert s_seq.bank_conflict_extra == 0
        assert s_bc.shared_efficiency < s_seq.shared_efficiency

    def test_shuffle_reduces_barriers(self, rt, rng):
        hx = rng.random(4096, dtype=np.float32)
        s_seq, _ = run_reduce(rt, reduce_sequential, hx, 256)
        s_shfl, _ = run_reduce(rt, reduce_shuffle, hx, 256)
        assert s_shfl.barriers < s_seq.barriers
        assert s_shfl.shuffles > 0
        assert s_seq.shuffles == 0

    def test_shuffle_reduces_shared_traffic(self, rt, rng):
        hx = rng.random(4096, dtype=np.float32)
        s_seq, _ = run_reduce(rt, reduce_sequential, hx, 256)
        s_shfl, _ = run_reduce(rt, reduce_shuffle, hx, 256)
        assert s_shfl.shared_requests < s_seq.shared_requests

    def test_conflict_degree_grows_with_stride(self, rt, rng):
        # the interleaved kernel's later iterations have wider conflicts
        hx = rng.random(1024, dtype=np.float32)
        s_bc, _ = run_reduce(rt, reduce_interleaved_bc, hx, 256)
        # total passes exceed 2x requests -> multi-way conflicts occurred
        assert s_bc.shared_passes > 1.5 * s_bc.shared_requests
