"""AXPY kernel family: correctness and access-pattern signatures."""

import numpy as np
import pytest

from repro.arch.presets import RTX3080_SYSTEM
from repro.host.runtime import CudaLite
from repro.kernels.axpy import (
    axpy_1per_thread,
    axpy_aligned,
    axpy_block,
    axpy_cyclic,
    axpy_misaligned,
    axpy_shared_async,
    axpy_shared_staged,
    axpy_strided,
)

N = 1 << 14
A = 2.5


@pytest.fixture
def data(rng):
    return rng.random(N, dtype=np.float32), rng.random(N, dtype=np.float32)


def launch(rt, kdef, hx, hy, grid, block, *extra):
    x = rt.to_device(hx)
    y = rt.to_device(hy)
    stats = rt.launch(kdef, grid, block, x, y, N, A, *extra)
    rt.synchronize()
    return stats, y.to_host()


class TestCorrectness:
    def test_1per_thread(self, rt, data):
        hx, hy = data
        _, out = launch(rt, axpy_1per_thread, hx, hy, N // 256, 256)
        assert np.allclose(out, hy + A * hx, rtol=1e-6)

    def test_block_distribution(self, rt, data):
        hx, hy = data
        _, out = launch(rt, axpy_block, hx, hy, 16, 256)
        assert np.allclose(out, hy + A * hx, rtol=1e-6)

    def test_cyclic_distribution(self, rt, data):
        hx, hy = data
        _, out = launch(rt, axpy_cyclic, hx, hy, 4, 256)
        assert np.allclose(out, hy + A * hx, rtol=1e-6)

    def test_block_and_cyclic_agree(self, rt, data):
        hx, hy = data
        _, out_b = launch(rt, axpy_block, hx, hy, 16, 256)
        _, out_c = launch(rt, axpy_cyclic, hx, hy, 16, 256)
        assert np.array_equal(out_b, out_c)

    def test_aligned_skips_element_zero(self, rt, data):
        hx, hy = data
        _, out = launch(rt, axpy_aligned, hx, hy, N // 256, 256)
        assert out[0] == hy[0]
        assert np.allclose(out[1:], hy[1:] + A * hx[1:], rtol=1e-6)

    def test_misaligned_matches_aligned(self, rt, data):
        hx, hy = data
        _, out_a = launch(rt, axpy_aligned, hx, hy, N // 256, 256)
        _, out_m = launch(rt, axpy_misaligned, hx, hy, N // 256, 256)
        assert np.array_equal(out_a, out_m)

    @pytest.mark.parametrize("stride", [1, 7, 256, 4096])
    def test_strided(self, rt, data, stride):
        hx, hy = data
        threads = -(-N // stride)
        _, out = launch(
            rt, axpy_strided, hx, hy, -(-threads // 256), 256, stride
        )
        expect = hy.copy()
        idx = np.arange(0, N, stride)
        expect[idx] += A * hx[idx]
        assert np.allclose(out, expect, rtol=1e-6)

    def test_shared_staged(self, rt, data):
        hx, hy = data
        _, out = launch(rt, axpy_shared_staged, hx, hy, N // 256, 256)
        assert np.allclose(out, hy + A * hx, rtol=1e-6)

    def test_shared_async_on_ampere(self, data):
        rt = CudaLite(RTX3080_SYSTEM)
        hx, hy = data
        _, out = launch(rt, axpy_shared_async, hx, hy, N // 256, 256)
        assert np.allclose(out, hy + A * hx, rtol=1e-6)

    def test_shared_async_rejected_on_volta(self, rt, data):
        from repro.common.errors import KernelRuntimeError

        hx, hy = data
        with pytest.raises(KernelRuntimeError):
            launch(rt, axpy_shared_async, hx, hy, N // 256, 256)


class TestAccessSignatures:
    def test_cyclic_coalesced(self, rt, data):
        hx, hy = data
        stats, _ = launch(rt, axpy_cyclic, hx, hy, 4, 256)
        assert stats.transactions / stats.global_requests == pytest.approx(1.0)

    def test_block_uncoalesced(self, rt, data):
        hx, hy = data
        stats, _ = launch(rt, axpy_block, hx, hy, 16, 256)
        assert stats.transactions / stats.global_requests > 3

    def test_misaligned_doubles_transactions(self, rt, data):
        hx, hy = data
        s_al, _ = launch(rt, axpy_aligned, hx, hy, N // 256, 256)
        s_mis, _ = launch(rt, axpy_misaligned, hx, hy, N // 256, 256)
        assert s_mis.transactions > 1.8 * s_al.transactions

    def test_async_skips_issue_work(self, data):
        rt = CudaLite(RTX3080_SYSTEM)
        hx, hy = data
        s_sync, _ = launch(rt, axpy_shared_staged, hx, hy, N // 256, 256)
        s_async, _ = launch(rt, axpy_shared_async, hx, hy, N // 256, 256)
        assert s_async.issue_cycles < s_sync.issue_cycles
        assert s_async.async_copy_bytes == N * 4
