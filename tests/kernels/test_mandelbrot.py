"""Mandelbrot kernels: dwell correctness and divergence behaviour."""

import numpy as np
import pytest

from repro.core.dynparallel import MandelView, mariani_silver
from repro.host.runtime import CudaLite
from repro.arch.presets import RTX3080_SYSTEM
from repro.kernels.mandelbrot import (
    dwell_host_reference,
    fill_indexed,
    mandel_escape,
    mandel_points,
)

VIEW = MandelView()


def escape_image(rt, size, max_dwell=64):
    w = h = size
    dx, dy = VIEW.steps(w, h)
    out = rt.malloc(w * h, np.int64)
    stats = rt.launch(
        mandel_escape,
        ((w + 15) // 16, (h + 15) // 16),
        (16, 16),
        out, w, h, VIEW.x0, VIEW.y0, dx, dy, max_dwell,
    )
    rt.synchronize()
    return stats, out.to_host().reshape(h, w)


class TestEscape:
    def test_matches_host_reference(self, rt):
        _, img = escape_image(rt, 64)
        ref = dwell_host_reference(64, 64, VIEW.x0, VIEW.y0, *VIEW.steps(64, 64), 64)
        assert np.array_equal(img, ref)

    def test_interior_reaches_max_dwell(self, rt):
        _, img = escape_image(rt, 64, max_dwell=32)
        # (0,0) is inside the set: dwell = max
        ref = dwell_host_reference(64, 64, VIEW.x0, VIEW.y0, *VIEW.steps(64, 64), 32)
        assert img.max() == 32
        assert np.array_equal(img, ref)

    def test_divergence_recorded(self, rt):
        stats, _ = escape_image(rt, 64)
        assert stats.warp_execution_efficiency < 1.0

    def test_non_square_grid_guard(self, rt):
        # width not a multiple of block: masked lanes must not write
        w, h = 50, 30
        dx, dy = VIEW.span / w, VIEW.span / h
        out = rt.malloc(w * h, np.int64)
        rt.launch(
            mandel_escape, ((w + 15) // 16, (h + 15) // 16), (16, 16),
            out, w, h, VIEW.x0, VIEW.y0, dx, dy, 32,
        )
        rt.synchronize()
        ref = dwell_host_reference(w, h, VIEW.x0, VIEW.y0, dx, dy, 32)
        assert np.array_equal(out.to_host().reshape(h, w), ref)


class TestPoints:
    def test_matches_escape(self, rt):
        size = 32
        dx, dy = VIEW.steps(size, size)
        ref = dwell_host_reference(size, size, VIEW.x0, VIEW.y0, dx, dy, 64)
        yy, xx = np.mgrid[0:size, 0:size]
        n = size * size
        xs = rt.to_device(xx.ravel().astype(np.int64))
        ys = rt.to_device(yy.ravel().astype(np.int64))
        dd = rt.malloc(n, np.int64)
        rt.launch(
            mandel_points, (n + 255) // 256, 256,
            xs, ys, dd, n, VIEW.x0, VIEW.y0, dx, dy, 64,
        )
        rt.synchronize()
        assert np.array_equal(dd.to_host().reshape(size, size), ref)


class TestFillIndexed:
    def test_scatter(self, rt):
        out = rt.malloc(64, np.int64)
        idxs = rt.to_device(np.array([1, 5, 9], dtype=np.int64))
        vals = rt.to_device(np.array([10, 50, 90], dtype=np.int64))
        rt.launch(fill_indexed, 1, 32, out, idxs, vals, 3)
        rt.synchronize()
        h = out.to_host()
        assert h[1] == 10 and h[5] == 50 and h[9] == 90
        assert h.sum() == 150


class TestMarianiSilver:
    def test_image_matches_escape(self):
        rt = CudaLite(RTX3080_SYSTEM)
        size = 128
        out = rt.malloc(size * size, np.int64)
        info = mariani_silver(rt, out, size, size, max_dwell=64)
        rt.synchronize()
        ref = dwell_host_reference(
            size, size, VIEW.x0, VIEW.y0, *VIEW.steps(size, size), 64
        )
        img = out.to_host().reshape(size, size)
        assert (img == ref).mean() > 0.99
        assert info["device_launches"] > 0

    def test_computes_fewer_pixels_at_scale(self):
        rt = CudaLite(RTX3080_SYSTEM)
        size = 256
        out = rt.malloc(size * size, np.int64)
        info = mariani_silver(rt, out, size, size, max_dwell=64, min_size=16)
        rt.synchronize()
        assert info["pixels_computed"] < size * size
        assert info["pixels_filled"] > 0


class TestHostReference:
    def test_known_points(self):
        # c = 0 never escapes; c = 2 escapes immediately
        img = dwell_host_reference(2, 1, 0.0, 0.0, 2.0, 1.0, max_dwell=50)
        assert img[0, 0] == 50   # c = 0
        assert img[0, 1] <= 2    # c = 2

    def test_deterministic(self):
        a = dwell_host_reference(16, 16, -2, -1.5, 0.2, 0.2, 32)
        b = dwell_host_reference(16, 16, -2, -1.5, 0.2, 0.2, 32)
        assert np.array_equal(a, b)
