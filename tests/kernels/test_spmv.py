"""SpMV kernels against the host CSR reference."""

import numpy as np
import pytest

from repro.kernels.spmv import spmv_csr, spmv_dense_row
from repro.sparse.csr import random_sparse


def run_dense(rt, csr, hx):
    n = csr.n_rows
    a = rt.to_device(csr.to_dense().ravel())
    x = rt.to_device(hx)
    y = rt.malloc(n)
    stats = rt.launch(spmv_dense_row, (n + 255) // 256, 256, a, x, y, n)
    rt.synchronize()
    return stats, y.to_host()


def run_csr(rt, csr, hx):
    n = csr.n_rows
    vals = rt.to_device(csr.values)
    cols = rt.to_device(csr.col_idx)
    rptr = rt.to_device(csr.row_ptr)
    x = rt.to_device(hx)
    y = rt.malloc(n)
    stats = rt.launch(spmv_csr, (n + 255) // 256, 256, vals, cols, rptr, x, y, n)
    rt.synchronize()
    return stats, y.to_host()


@pytest.fixture
def workload(rng):
    n = 256
    csr = random_sparse(n, 2048, seed=5)
    return csr, rng.random(n, dtype=np.float32)


class TestCorrectness:
    def test_dense(self, rt, workload):
        csr, hx = workload
        _, y = run_dense(rt, csr, hx)
        assert np.allclose(y, csr.spmv(hx), rtol=1e-3, atol=1e-5)

    def test_csr(self, rt, workload):
        csr, hx = workload
        _, y = run_csr(rt, csr, hx)
        assert np.allclose(y, csr.spmv(hx), rtol=1e-3, atol=1e-5)

    def test_agree(self, rt, workload):
        csr, hx = workload
        _, yd = run_dense(rt, csr, hx)
        _, yc = run_csr(rt, csr, hx)
        assert np.allclose(yd, yc, rtol=1e-3, atol=1e-5)

    def test_empty_rows(self, rt, rng):
        n = 64
        csr = random_sparse(n, 8, seed=9)  # most rows empty
        hx = rng.random(n, dtype=np.float32)
        _, y = run_csr(rt, csr, hx)
        assert np.allclose(y, csr.spmv(hx), rtol=1e-4)

    def test_diagonal_matrix(self, rt, rng):
        n = 64
        from repro.sparse.csr import CSRMatrix

        d = rng.random(n, dtype=np.float32)
        csr = CSRMatrix.from_dense(np.diag(d))
        hx = rng.random(n, dtype=np.float32)
        _, y = run_csr(rt, csr, hx)
        assert np.allclose(y, d * hx, rtol=1e-5)


class TestSignatures:
    def test_csr_needs_less_data(self, workload):
        csr, _ = workload
        assert csr.nbytes < csr.n_rows * csr.n_cols * 4 / 4

    def test_csr_divergence_from_row_lengths(self, rt, workload):
        csr, hx = workload
        stats, _ = run_csr(rt, csr, hx)
        # uneven rows make some warps idle while others loop
        assert stats.warp_execution_efficiency < 1.0

    def test_dense_more_work(self, rt, workload):
        csr, hx = workload
        s_dense, _ = run_dense(rt, csr, hx)
        s_csr, _ = run_csr(rt, csr, hx)
        assert s_dense.issue_cycles > 5 * s_csr.issue_cycles


def run_csc(rt, csr, hx):
    """Launch the CSC kernel for y = A @ x (CSC of A)."""
    from repro.kernels.spmv import spmv_csc

    csc = csr.transpose()
    n = csr.n_rows
    vals = rt.to_device(csc.values)
    rows = rt.to_device(csc.row_idx)
    cptr = rt.to_device(csc.col_ptr)
    x = rt.to_device(hx)
    y = rt.to_device(np.zeros(n, dtype=np.float32))
    stats = rt.launch(
        spmv_csc, (n + 255) // 256, 256, vals, rows, cptr, x, y, n
    )
    rt.synchronize()
    return stats, y.to_host()


class TestCSCKernel:
    def test_matches_reference(self, rt, workload):
        csr, hx = workload
        _, y = run_csc(rt, csr, hx)
        assert np.allclose(y, csr.spmv(hx), rtol=1e-3, atol=1e-4)

    def test_uses_atomics(self, rt, workload):
        csr, hx = workload
        stats, _ = run_csc(rt, csr, hx)
        assert stats.atomics > 0

    def test_csr_cheaper_than_csc_for_Ax(self, rt, workload):
        # the "right combination" point of paper §IV-B: row format for A@x
        from repro.timing.model import estimate_kernel_time

        csr, hx = workload
        s_csr, _ = run_csr(rt, csr, hx)
        s_csc, _ = run_csc(rt, csr, hx)
        t_csr = estimate_kernel_time(s_csr, rt.gpu).exec_s
        t_csc = estimate_kernel_time(s_csc, rt.gpu).exec_s
        assert t_csr < t_csc
