"""Matmul kernels: correctness and traffic signatures."""

import numpy as np
import pytest

from repro.common.errors import LaunchConfigError
from repro.kernels.matmul import TILE, matmul_grid_for, matmul_naive, matmul_tiled
from repro.timing.model import estimate_kernel_time


def run_matmul(rt, kdef, ha, hb):
    n = ha.shape[0]
    a = rt.to_device(ha.ravel())
    b = rt.to_device(hb.ravel())
    c = rt.malloc(n * n)
    grid, block = matmul_grid_for(n)
    stats = rt.launch(kdef, grid, block, a, b, c, n)
    rt.synchronize()
    return stats, c.to_host().reshape(n, n)


class TestGridHelper:
    def test_grid_for(self):
        grid, block = matmul_grid_for(64)
        assert grid == (4, 4)
        assert block == (TILE, TILE)

    def test_non_multiple_rejected(self):
        with pytest.raises(LaunchConfigError):
            matmul_grid_for(100)


class TestCorrectness:
    @pytest.mark.parametrize("kdef", [matmul_naive, matmul_tiled], ids=lambda k: k.name)
    @pytest.mark.parametrize("n", [16, 48, 64])
    def test_against_numpy(self, rt, rng, kdef, n):
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        _, out = run_matmul(rt, kdef, ha, hb)
        assert np.allclose(out, ha @ hb, rtol=1e-4, atol=1e-4)

    def test_identity(self, rt, rng):
        n = 32
        ha = rng.random((n, n), dtype=np.float32)
        _, out = run_matmul(rt, matmul_tiled, ha, np.eye(n, dtype=np.float32))
        assert np.allclose(out, ha, rtol=1e-6)

    def test_naive_and_tiled_agree(self, rt, rng):
        n = 48
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        _, o1 = run_matmul(rt, matmul_naive, ha, hb)
        _, o2 = run_matmul(rt, matmul_tiled, ha, hb)
        assert np.allclose(o1, o2, rtol=1e-5)


class TestSignatures:
    def test_tiled_uses_shared(self, rt, rng):
        n = 64
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        s_naive, _ = run_matmul(rt, matmul_naive, ha, hb)
        s_tiled, _ = run_matmul(rt, matmul_tiled, ha, hb)
        assert s_naive.shared_requests == 0
        assert s_tiled.shared_requests > 0
        assert s_tiled.shared_mem_per_block == 2 * TILE * TILE * 4

    def test_tiled_no_bank_conflicts(self, rt, rng):
        n = 64
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        s_tiled, _ = run_matmul(rt, matmul_tiled, ha, hb)
        assert s_tiled.bank_conflict_extra == 0

    def test_tiled_fewer_global_requests(self, rt, rng):
        n = 64
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        s_naive, _ = run_matmul(rt, matmul_naive, ha, hb)
        s_tiled, _ = run_matmul(rt, matmul_tiled, ha, hb)
        assert s_tiled.global_requests < s_naive.global_requests / 4

    def test_tiled_faster(self, rt, rng):
        n = 128
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        s_naive, _ = run_matmul(rt, matmul_naive, ha, hb)
        s_tiled, _ = run_matmul(rt, matmul_tiled, ha, hb)
        t_naive = estimate_kernel_time(s_naive, rt.gpu).exec_s
        t_tiled = estimate_kernel_time(s_tiled, rt.gpu).exec_s
        assert t_tiled < t_naive
