"""2-D stencil kernels: correctness and shared-memory payoff."""

import numpy as np
import pytest

from repro.common.errors import LaunchConfigError
from repro.kernels.stencil import (
    stencil_global,
    stencil_grid_for,
    stencil_host_reference,
    stencil_shared,
)
from repro.timing.model import estimate_kernel_time


def run_stencil(rt, kdef, field):
    n = field.shape[0]
    inp = rt.to_device(field.ravel())
    out = rt.malloc(n * n)
    grid, block = stencil_grid_for(n)
    stats = rt.launch(kdef, grid, block, inp, out, n)
    rt.synchronize()
    return stats, out.to_host().reshape(n, n)


@pytest.fixture
def field(rng):
    return rng.random((64, 64), dtype=np.float32)


class TestCorrectness:
    @pytest.mark.parametrize("kdef", [stencil_global, stencil_shared], ids=lambda k: k.name)
    def test_matches_reference(self, rt, field, kdef):
        _, out = run_stencil(rt, kdef, field)
        assert np.allclose(out, stencil_host_reference(field), rtol=1e-6)

    def test_boundary_copied(self, rt, field):
        _, out = run_stencil(rt, stencil_global, field)
        assert np.array_equal(out[0], field[0])
        assert np.array_equal(out[:, -1], field[:, -1])

    def test_variants_agree_exactly(self, rt, field):
        _, o1 = run_stencil(rt, stencil_global, field)
        _, o2 = run_stencil(rt, stencil_shared, field)
        assert np.array_equal(o1, o2)

    def test_repeated_sweeps_converge(self, rt):
        # Jacobi on a constant field is a fixed point
        const = np.full((32, 32), 3.5, dtype=np.float32)
        _, out = run_stencil(rt, stencil_shared, const)
        assert np.allclose(out, const, rtol=1e-6)

    def test_grid_helper_rejects_ragged(self):
        with pytest.raises(LaunchConfigError):
            stencil_grid_for(100)


class TestSignatures:
    def test_shared_version_fewer_global_reads(self, rt, field):
        s_glob, _ = run_stencil(rt, stencil_global, field)
        s_sh, _ = run_stencil(rt, stencil_shared, field)
        glob_reads = sum(
            r.summary.n_active_lanes
            for r in s_glob.trace.records
            if not r.is_store
        )
        sh_reads = sum(
            r.summary.n_active_lanes
            for r in s_sh.trace.records
            if not r.is_store
        )
        assert sh_reads < glob_reads / 2

    def test_times_comparable_on_volta(self, rt, field):
        """On cache-rich Volta the naive stencil's neighbour reuse hits in
        L1, so shared staging is no automatic win — the finding of the
        paper's ref [4] ("is data placement optimization still relevant
        on newer GPUs?").  Assert the two stay within a small factor."""
        s_glob, _ = run_stencil(rt, stencil_global, field)
        s_sh, _ = run_stencil(rt, stencil_shared, field)
        t_glob = estimate_kernel_time(s_glob, rt.gpu).exec_s
        t_sh = estimate_kernel_time(s_sh, rt.gpu).exec_s
        assert 0.3 < t_sh / t_glob < 3.0

    def test_shared_kernel_uses_shared(self, rt, field):
        s_sh, _ = run_stencil(rt, stencil_shared, field)
        assert s_sh.shared_mem_per_block == (16 + 2) * (16 + 2) * 4
        assert s_sh.barriers >= 1
