"""Matrix-add kernels across memory spaces."""

import numpy as np
import pytest

from repro.kernels.matadd import (
    matadd_constant_scatter,
    matadd_global,
    matadd_ldg,
    matadd_tex1d,
    matadd_tex2d,
    saxpy_const_coeffs,
)


@pytest.fixture
def mats(rng):
    n = 64
    return (
        rng.random((n, n), dtype=np.float32),
        rng.random((n, n), dtype=np.float32),
    )


def grid_for(n):
    return ((n + 15) // 16, (n + 15) // 16), (16, 16)


class TestGlobalAndLdg:
    def test_global(self, rt, mats):
        ha, hb = mats
        n = ha.shape[0]
        a, b, c = rt.to_device(ha.ravel()), rt.to_device(hb.ravel()), rt.malloc(n * n)
        grid, block = grid_for(n)
        rt.launch(matadd_global, grid, block, a, b, c, n)
        rt.synchronize()
        assert np.allclose(c.to_host().reshape(n, n), ha + hb)

    def test_ldg(self, rt, mats):
        ha, hb = mats
        n = ha.shape[0]
        a, b, c = rt.to_device(ha.ravel()), rt.to_device(hb.ravel()), rt.malloc(n * n)
        grid, block = grid_for(n)
        stats = rt.launch(matadd_ldg, grid, block, a, b, c, n)
        rt.synchronize()
        assert np.allclose(c.to_host().reshape(n, n), ha + hb)
        # read-only loads recorded on the texture path
        spaces = {r.space for r in stats.trace.records if not r.is_store}
        assert spaces == {"texture"}

    def test_non_multiple_size_guarded(self, rt, rng):
        n = 50
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        a, b, c = rt.to_device(ha.ravel()), rt.to_device(hb.ravel()), rt.malloc(n * n)
        grid, block = grid_for(n)
        rt.launch(matadd_global, grid, block, a, b, c, n)
        rt.synchronize()
        assert np.allclose(c.to_host().reshape(n, n), ha + hb)


class TestTextures:
    def test_tex1d(self, rt, mats):
        ha, hb = mats
        n = ha.shape[0]
        ta, tb = rt.texture_1d(ha.ravel()), rt.texture_1d(hb.ravel())
        c = rt.malloc(n * n)
        grid, block = grid_for(n)
        rt.launch(matadd_tex1d, grid, block, ta, tb, c, n)
        rt.synchronize()
        assert np.allclose(c.to_host().reshape(n, n), ha + hb)

    def test_tex2d(self, rt, mats):
        ha, hb = mats
        n = ha.shape[0]
        ta, tb = rt.texture_2d(ha), rt.texture_2d(hb)
        c = rt.malloc(n * n)
        grid, block = grid_for(n)
        rt.launch(matadd_tex2d, grid, block, ta, tb, c, n)
        rt.synchronize()
        assert np.allclose(c.to_host().reshape(n, n), ha + hb)


class TestConstant:
    def test_saxpy_coeffs(self, rt, rng):
        n = 1024
        hx = rng.random(n, dtype=np.float32)
        coeffs = rt.const_array(np.array([3.0, 0.5], dtype=np.float32))
        x, y = rt.to_device(hx), rt.malloc(n)
        stats = rt.launch(saxpy_const_coeffs, n // 256, 256, x, y, coeffs, n)
        rt.synchronize()
        assert np.allclose(y.to_host(), 3.0 * hx + 0.5)
        assert stats.constant_replays == 0  # uniform reads broadcast

    def test_scatter_antipattern_replays(self, rt, rng):
        n = 1024
        ha = rng.random(n, dtype=np.float32)
        hb = rng.random(n, dtype=np.float32)
        a_const = rt.const_array(ha)
        b, c = rt.to_device(hb), rt.malloc(n)
        stats = rt.launch(matadd_constant_scatter, n // 256, 256, a_const, b, c, n)
        rt.synchronize()
        assert np.allclose(c.to_host(), ha + hb)
        assert stats.constant_replays > 0
