"""Cache GC: age and size eviction, dry-run, stale-artifact sweep."""

import os

from repro.sched.cache import gc_cache

NOW = 1_000_000.0
DAY = 86400.0


def put_entry(root, key, *, age_days=0.0, size=100):
    shard = root / key[:2]
    shard.mkdir(parents=True, exist_ok=True)
    path = shard / f"{key}.json"
    path.write_bytes(b"x" * size)
    stamp = NOW - age_days * DAY
    os.utime(path, (stamp, stamp))
    return path


class TestAgePass:
    def test_old_entries_removed_young_kept(self, tmp_path):
        old = put_entry(tmp_path, "aa" + "0" * 62, age_days=10)
        young = put_entry(tmp_path, "bb" + "0" * 62, age_days=1)
        summary = gc_cache(tmp_path, older_than_days=7, now=NOW)
        assert [r["reason"] for r in summary["removed"]] == ["age"]
        assert not old.exists()
        assert young.exists()
        assert summary["kept"] == 1

    def test_empty_shards_pruned(self, tmp_path):
        put_entry(tmp_path, "aa" + "0" * 62, age_days=10)
        gc_cache(tmp_path, older_than_days=7, now=NOW)
        assert not (tmp_path / "aa").exists()

    def test_no_cutoff_keeps_everything(self, tmp_path):
        put_entry(tmp_path, "aa" + "0" * 62, age_days=100)
        summary = gc_cache(tmp_path, now=NOW)
        assert summary["removed"] == []
        assert summary["kept"] == 1


class TestSizePass:
    def test_evicts_oldest_first_until_under_budget(self, tmp_path):
        put_entry(tmp_path, "aa" + "0" * 62, age_days=3, size=100)
        put_entry(tmp_path, "bb" + "0" * 62, age_days=2, size=100)
        newest = put_entry(tmp_path, "cc" + "0" * 62, age_days=1, size=100)
        summary = gc_cache(tmp_path, max_bytes=150, now=NOW)
        assert [r["reason"] for r in summary["removed"]] == ["size", "size"]
        assert [r["key"][:2] for r in summary["removed"]] == ["aa", "bb"]
        assert newest.exists()
        assert summary["kept_bytes"] == 100

    def test_age_pass_runs_before_size(self, tmp_path):
        put_entry(tmp_path, "aa" + "0" * 62, age_days=10, size=100)
        put_entry(tmp_path, "bb" + "0" * 62, age_days=1, size=100)
        summary = gc_cache(
            tmp_path, older_than_days=7, max_bytes=100, now=NOW
        )
        reasons = {r["key"][:2]: r["reason"] for r in summary["removed"]}
        assert reasons == {"aa": "age"}
        assert summary["kept"] == 1


class TestDryRun:
    def test_reports_without_deleting(self, tmp_path):
        old = put_entry(tmp_path, "aa" + "0" * 62, age_days=10)
        (tmp_path / "aa" / "orphan.tmp").write_bytes(b"torn")
        summary = gc_cache(
            tmp_path, older_than_days=7, now=NOW, dry_run=True
        )
        assert summary["dry_run"] is True
        assert len(summary["removed"]) == 1
        assert summary["tmp_files_removed"] == 1
        assert old.exists()
        assert (tmp_path / "aa" / "orphan.tmp").exists()


class TestArtifactSweep:
    def test_tmp_files_always_removed(self, tmp_path):
        put_entry(tmp_path, "aa" + "0" * 62)
        tmp = tmp_path / "aa" / "write.tmp"
        tmp.write_bytes(b"torn")
        summary = gc_cache(tmp_path, now=NOW)
        assert summary["tmp_files_removed"] == 1
        assert not tmp.exists()

    def test_old_quarantine_entries_removed(self, tmp_path):
        qdir = tmp_path / "quarantine"
        qdir.mkdir(parents=True)
        old = qdir / "corrupt-1.json"
        old.write_bytes(b"bad")
        stamp = NOW - 30 * DAY
        os.utime(old, (stamp, stamp))
        fresh = qdir / "corrupt-2.json"
        fresh.write_bytes(b"bad")
        os.utime(fresh, (NOW, NOW))
        gc_cache(tmp_path, older_than_days=7, now=NOW)
        assert not old.exists()
        assert fresh.exists()

    def test_missing_root_is_a_noop(self, tmp_path):
        summary = gc_cache(tmp_path / "never-created", older_than_days=1)
        assert summary["kept"] == 0
        assert summary["removed"] == []
