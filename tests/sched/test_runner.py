"""Job specs and the cache-first scheduler loop (serial paths)."""

import pytest

from repro.common.errors import ReproError
from repro.sched import JobSpec, ResultCache, execute_job, parallel_sweep, run_jobs


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestJobSpec:
    def test_run_default(self):
        spec = JobSpec(benchmark="Shmem")
        assert spec.kind == "run" and spec.backend == "reference"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            JobSpec(benchmark="Shmem", kind="profile")

    def test_sweep_needs_values(self):
        with pytest.raises(ReproError):
            JobSpec(benchmark="Shmem", kind="sweep")


class TestExecuteJob:
    def test_run_payload(self):
        payload = execute_job(JobSpec(benchmark="Shmem", params=dict(n=64)))
        assert payload["kind"] == "run"
        assert payload["result"]["benchmark"] == "Shmem"
        assert payload["result"]["verified"] is True

    def test_sweep_payload(self):
        payload = execute_job(
            JobSpec(benchmark="Shmem", kind="sweep", values=(64,))
        )
        assert payload["kind"] == "sweep"
        assert payload["sweep"]["x_values"] == [64]

    def test_backend_applied(self):
        ref = execute_job(JobSpec(benchmark="Shmem", params=dict(n=64)))
        fast = execute_job(
            JobSpec(benchmark="Shmem", params=dict(n=64), backend="fast")
        )
        assert ref["result"] == fast["result"]


class TestRunJobs:
    def test_order_preserved_with_cache_hits(self, cache):
        specs = [
            JobSpec(benchmark="Shmem", params=dict(n=64)),
            JobSpec(benchmark="Shmem", params=dict(n=128)),
        ]
        first = run_jobs(specs, cache=cache)
        assert cache.misses == 2 and cache.stores == 2
        # warm up only the second job's entry being present already
        second = run_jobs(list(reversed(specs)), cache=cache)
        assert cache.hits == 2
        assert second == list(reversed(first))

    def test_no_cache_recomputes(self):
        specs = [JobSpec(benchmark="Shmem", params=dict(n=64))]
        assert run_jobs(specs) == run_jobs(specs)


class TestParallelSweepValidation:
    def test_empty_values_rejected(self):
        with pytest.raises(ReproError):
            parallel_sweep("Shmem", [])

    def test_serial_merge_matches_sweep(self):
        serial = get_sweep()
        merged = parallel_sweep("Shmem", [64, 128])
        assert merged.as_dict() == serial.as_dict()
        assert merged.title == serial.title


def get_sweep():
    from repro.core.registry import get_benchmark

    return get_benchmark("Shmem").sweep([64, 128])
