"""Content-addressed result cache: keys, round-trips, accounting."""

import json

import pytest

from repro.arch.presets import CARINA, FORNAX
from repro.core.registry import get_benchmark
from repro.sched.cache import CACHE_SCHEMA, ResultCache, source_fingerprint


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def key(cache, **over):
    base = dict(
        bench_cls=type(get_benchmark("CoMem")),
        system=CARINA,
        kind="sweep",
        params={"n": 64},
        values=[1 << 19],
        backend="reference",
    )
    base.update(over)
    return cache.key_for(**base)


class TestKeying:
    def test_deterministic(self, cache):
        assert key(cache) == key(cache)

    def test_params_change_key(self, cache):
        assert key(cache) != key(cache, params={"n": 128})

    def test_values_change_key(self, cache):
        assert key(cache) != key(cache, values=[1 << 20])

    def test_backend_changes_key(self, cache):
        assert key(cache) != key(cache, backend="fast")

    def test_system_changes_key(self, cache):
        assert key(cache) != key(cache, system=FORNAX)

    def test_benchmark_changes_key(self, cache):
        other = type(get_benchmark("Shmem"))
        assert key(cache) != key(cache, bench_cls=other)

    def test_kind_changes_key(self, cache):
        assert key(cache) != key(cache, kind="run", values=None)

    def test_source_fingerprint_stable(self):
        cls = type(get_benchmark("CoMem"))
        assert source_fingerprint(cls) == source_fingerprint(cls)


class TestStore:
    def test_roundtrip(self, cache):
        payload = {"kind": "run", "result": {"speedup": 2.0}}
        k = key(cache)
        assert cache.get(k) is None
        cache.put(k, payload)
        assert cache.get(k) == payload
        assert cache.stats() == {
            "enabled": True,
            "dir": str(cache._root_path),
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "quarantines": 0,
        }

    def test_float_exact_roundtrip(self, cache):
        payload = {"result": {"t": 0.1 + 0.2, "x": 1e-17}}
        k = key(cache)
        cache.put(k, payload)
        got = cache.get(k)
        assert got["result"]["t"] == payload["result"]["t"]
        assert got["result"]["x"] == payload["result"]["x"]

    def test_disabled_cache_never_hits(self, cache):
        off = ResultCache(cache._root_path, enabled=False)
        k = key(off)
        off.put(k, {"x": 1})
        assert off.get(k) is None
        assert off.stores == 0 and off.misses == 1

    def test_corrupt_entry_is_a_miss(self, cache):
        k = key(cache)
        cache.put(k, {"x": 1})
        cache._path(k).write_text("{ not json")
        assert cache.get(k) is None

    def test_wrong_schema_is_a_miss(self, cache):
        k = key(cache)
        cache._path(k).parent.mkdir(parents=True, exist_ok=True)
        cache._path(k).write_text(json.dumps({"schema": "other/9", "payload": {}}))
        assert cache.get(k) is None

    def test_entry_file_carries_schema_and_key(self, cache):
        k = key(cache)
        cache.put(k, {"x": 1})
        entry = json.loads(cache._path(k).read_text())
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["key"] == k
        assert entry["sha256"]


class TestQuarantine:
    def test_torn_entry_quarantined_not_crash(self, cache):
        k = key(cache)
        cache.put(k, {"x": 1})
        path = cache._path(k)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(k) is None
        assert cache.quarantines == 1
        assert not path.exists()
        qdir = cache._root_path / "quarantine"
        assert [p.name for p in qdir.iterdir()] == [path.name]

    def test_checksum_mismatch_quarantined(self, cache):
        k = key(cache)
        cache.put(k, {"x": 1})
        path = cache._path(k)
        entry = json.loads(path.read_text())
        entry["payload"] = {"x": 2}  # bit rot: payload no longer matches
        path.write_text(json.dumps(entry))
        assert cache.get(k) is None
        assert cache.quarantines == 1

    def test_wrong_schema_is_not_quarantined(self, cache):
        # a stale layout version is a plain miss, not corruption
        k = key(cache)
        cache._path(k).parent.mkdir(parents=True, exist_ok=True)
        cache._path(k).write_text(
            json.dumps({"schema": "other/9", "payload": {}})
        )
        assert cache.get(k) is None
        assert cache.quarantines == 0

    def test_recompute_after_quarantine_repopulates(self, cache):
        k = key(cache)
        cache.put(k, {"x": 1})
        cache._path(k).write_text("garbage")
        assert cache.get(k) is None  # quarantined
        cache.put(k, {"x": 1})       # the recompute stores a fresh entry
        assert cache.get(k) == {"x": 1}
        assert cache.stats()["quarantines"] == 1

    def test_pre_checksum_entry_still_readable(self, cache):
        # entries written before the checksum field verify nothing
        k = key(cache)
        cache._path(k).parent.mkdir(parents=True, exist_ok=True)
        cache._path(k).write_text(
            json.dumps({"schema": CACHE_SCHEMA, "key": k, "payload": {"x": 3}})
        )
        assert cache.get(k) == {"x": 3}

    def test_chaos_tears_entries_deterministically(self, cache, tmp_path):
        from repro.faults.plan import FaultPlan

        k = key(cache)
        cache.put(k, {"x": 1})
        chaotic = ResultCache(
            cache._root_path, chaos=FaultPlan(5, cache_corrupt_prob=1.0)
        )
        assert chaotic.get(k) is None
        assert chaotic.quarantines == 1
