"""GPU/link/system specification validation and derived quantities."""

import pytest

from repro.arch.spec import DEFAULT_OP_THROUGHPUT, GPUSpec, LinkSpec, SystemSpec
from repro.common.errors import SpecError


def make_spec(**overrides):
    base = dict(
        name="TestGPU",
        compute_capability=(7, 0),
        sm_count=4,
        clock_hz=1e9,
    )
    base.update(overrides)
    return GPUSpec(**base)


class TestGPUSpecValidation:
    def test_valid(self):
        spec = make_spec()
        assert spec.sm_count == 4

    def test_zero_sms_rejected(self):
        with pytest.raises(SpecError):
            make_spec(sm_count=0)

    def test_non_pow2_warp_rejected(self):
        with pytest.raises(SpecError):
            make_spec(warp_size=30)

    def test_zero_clock_rejected(self):
        with pytest.raises(SpecError):
            make_spec(clock_hz=0)

    def test_block_over_sm_threads_rejected(self):
        with pytest.raises(SpecError):
            make_spec(max_threads_per_block=4096, max_threads_per_sm=2048)

    def test_shared_block_over_sm_rejected(self):
        with pytest.raises(SpecError):
            make_spec(shared_mem_per_block=128 * 1024, shared_mem_per_sm=64 * 1024)

    def test_transaction_sector_mismatch_rejected(self):
        with pytest.raises(SpecError):
            make_spec(transaction_bytes=100, sector_bytes=32)

    def test_missing_op_class_rejected(self):
        bad = dict(DEFAULT_OP_THROUGHPUT)
        del bad["fp32"]
        with pytest.raises(SpecError):
            make_spec(op_throughput=bad)


class TestGPUSpecDerived:
    def test_warps_per_sm(self):
        assert make_spec(max_threads_per_sm=2048).warps_per_sm == 64

    def test_total_thread_capacity(self):
        spec = make_spec(sm_count=10, max_threads_per_sm=1024)
        assert spec.total_thread_capacity == 10240

    def test_peak_fp32(self):
        spec = make_spec(sm_count=2, clock_hz=1e9)
        assert spec.peak_fp32_flops == 2 * 2 * 64 * 1e9

    def test_sectors_per_transaction(self):
        assert make_spec().sectors_per_transaction == 4

    def test_op_cycles(self):
        spec = make_spec()
        assert spec.op_cycles("fp32") == 32 / 64
        assert spec.op_cycles("div") == 32 / 8

    def test_op_cycles_unknown_raises(self):
        with pytest.raises(SpecError):
            make_spec().op_cycles("bogus")

    def test_evolve(self):
        spec = make_spec().evolve(sm_count=8)
        assert spec.sm_count == 8
        assert spec.name == "TestGPU"

    def test_frozen(self):
        with pytest.raises(Exception):
            make_spec().sm_count = 1  # type: ignore[misc]


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        link = LinkSpec("L", pinned_bandwidth=10e9, pageable_bandwidth=5e9, latency_s=1e-5)
        assert link.transfer_time(0) == pytest.approx(1e-5)
        assert link.transfer_time(10e9) == pytest.approx(1.0 + 1e-5)

    def test_pageable_slower(self):
        link = LinkSpec("L", pinned_bandwidth=10e9, pageable_bandwidth=5e9)
        assert link.transfer_time(1e9, pinned=False) > link.transfer_time(1e9)

    def test_negative_size_rejected(self):
        link = LinkSpec("L", pinned_bandwidth=1e9, pageable_bandwidth=1e9)
        with pytest.raises(SpecError):
            link.transfer_time(-1)

    def test_pageable_over_pinned_rejected(self):
        with pytest.raises(SpecError):
            LinkSpec("L", pinned_bandwidth=1e9, pageable_bandwidth=2e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SpecError):
            LinkSpec("L", pinned_bandwidth=0, pageable_bandwidth=0)


class TestSystemSpec:
    def test_evolve(self):
        from repro.arch.presets import CARINA

        s = CARINA.evolve(name="other")
        assert s.name == "other"
        assert s.gpu is CARINA.gpu
