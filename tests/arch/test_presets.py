"""Preset architecture sanity: the paper's three platforms."""

import pytest

from repro.arch.presets import (
    A100,
    CARINA,
    FORNAX,
    RTX3080_SYSTEM,
    RTX_3080,
    TESLA_K80,
    TESLA_V100,
    get_gpu,
    get_system,
    list_gpus,
)
from repro.common.errors import SpecError


class TestPresetValues:
    def test_v100_geometry(self):
        assert TESLA_V100.sm_count == 80
        assert TESLA_V100.compute_capability == (7, 0)
        assert TESLA_V100.dram_bandwidth == pytest.approx(900e9)

    def test_k80_is_kepler(self):
        assert TESLA_K80.compute_capability == (3, 7)
        assert not TESLA_K80.global_loads_cached_in_l1
        assert TESLA_K80.texture_cache_dedicated
        assert TESLA_K80.uncached_path_efficiency < 1.0

    def test_volta_texture_unified(self):
        assert TESLA_V100.global_loads_cached_in_l1
        assert not TESLA_V100.texture_cache_dedicated

    def test_ampere_has_memcpy_async(self):
        assert RTX_3080.supports_memcpy_async
        assert A100.supports_memcpy_async
        assert not TESLA_V100.supports_memcpy_async

    def test_k80_lacks_task_graphs(self):
        assert not TESLA_K80.supports_task_graphs

    def test_kepler_fp32_lanes(self):
        # Kepler SMX had 192 FP32 lanes per SM
        assert TESLA_K80.op_throughput["fp32"] == 192.0

    def test_peak_flops_ordering(self):
        # A100 > V100 > K80 in FP32 peak
        assert A100.peak_fp32_flops > TESLA_K80.peak_fp32_flops


class TestSystems:
    def test_paper_systems(self):
        assert CARINA.gpu is TESLA_V100
        assert FORNAX.gpu is TESLA_K80
        assert RTX3080_SYSTEM.gpu is RTX_3080

    def test_link_bandwidth_positive(self):
        for s in (CARINA, FORNAX, RTX3080_SYSTEM):
            assert s.link.pinned_bandwidth > 0


class TestLookup:
    def test_get_gpu(self):
        assert get_gpu("v100") is TESLA_V100
        assert get_gpu("K80") is TESLA_K80

    def test_get_gpu_unknown(self):
        with pytest.raises(SpecError):
            get_gpu("gtx285")

    def test_get_system(self):
        assert get_system("carina") is CARINA
        assert get_system("Fornax") is FORNAX

    def test_get_system_unknown(self):
        with pytest.raises(SpecError):
            get_system("nonesuch")

    def test_list_gpus(self):
        names = list_gpus()
        assert "v100" in names and "k80" in names and sorted(names) == names
