"""CSR/CSC formats: construction, conversion, reference SpMV."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, random_sparse


@pytest.fixture
def small():
    dense = np.array(
        [
            [1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0],
        ],
        dtype=np.float32,
    )
    return dense, CSRMatrix.from_dense(dense)


class TestConstruction:
    def test_from_dense(self, small):
        dense, csr = small
        assert csr.nnz == 4
        assert list(csr.row_ptr) == [0, 2, 2, 4]
        assert list(csr.col_idx) == [0, 2, 0, 1]
        assert list(csr.values) == [1.0, 2.0, 3.0, 4.0]

    def test_roundtrip(self, small):
        dense, csr = small
        assert np.array_equal(csr.to_dense(), dense)

    def test_density(self, small):
        _, csr = small
        assert csr.density == pytest.approx(4 / 9)

    def test_nbytes(self, small):
        _, csr = small
        assert csr.nbytes == 4 * 4 + 4 * 4 + 4 * 4

    def test_from_dense_needs_2d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.zeros(4))

    def test_validation_row_ptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.zeros(1), np.zeros(1, np.int32), np.zeros(2, np.int32))

    def test_validation_row_ptr_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                2, 2,
                np.ones(2, np.float32),
                np.zeros(2, np.int32),
                np.array([0, 2, 2 - 1], np.int32),
            )

    def test_validation_col_range(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                1, 2,
                np.ones(1, np.float32),
                np.array([5], np.int32),
                np.array([0, 1], np.int32),
            )

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((4, 4)))
        assert csr.nnz == 0
        assert np.array_equal(csr.to_dense(), np.zeros((4, 4), np.float32))


class TestSpmv:
    def test_reference(self, small):
        dense, csr = small
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        assert np.allclose(csr.spmv(x), dense @ x)

    def test_wrong_length(self, small):
        _, csr = small
        with pytest.raises(ValueError):
            csr.spmv(np.zeros(5, dtype=np.float32))

    def test_random_against_dense(self, rng):
        csr = random_sparse(64, 512, seed=1)
        x = rng.random(64, dtype=np.float32)
        assert np.allclose(csr.spmv(x), csr.to_dense() @ x, rtol=1e-4)


class TestTranspose:
    def test_csc_is_transpose(self, small):
        dense, csr = small
        csc = csr.transpose()
        assert np.array_equal(csc.to_dense(), dense)
        assert csc.nnz == csr.nnz
        assert csc.nbytes > 0


class TestRandomSparse:
    def test_exact_nnz(self):
        csr = random_sparse(32, 100, seed=0)
        assert csr.nnz == 100

    def test_reproducible(self):
        a = random_sparse(32, 100, seed=0)
        b = random_sparse(32, 100, seed=0)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_seed_changes(self):
        a = random_sparse(32, 100, seed=0)
        b = random_sparse(32, 100, seed=1)
        assert not np.array_equal(a.col_idx, b.col_idx)

    def test_over_capacity_rejected(self):
        with pytest.raises(ValueError):
            random_sparse(4, 17)

    def test_values_in_range(self):
        csr = random_sparse(32, 200, seed=2)
        assert csr.values.min() >= 0.5
        assert csr.values.max() < 1.5

    def test_valid_structure(self):
        csr = random_sparse(50, 500, seed=3)
        assert csr.row_ptr[-1] == 500
        # no duplicate coordinates
        dense = csr.to_dense()
        assert (dense != 0).sum() == 500
