"""DeviceArray views: addressing, reshaping, host transfer."""

import numpy as np
import pytest

from repro.common.errors import InvalidAddressError
from repro.mem.buffer import DeviceArray


class TestGeometry:
    def test_basic(self, allocator):
        a = allocator.malloc(64 * 4)
        arr = DeviceArray(a, np.float32, 64)
        assert arr.size == 64
        assert arr.nbytes == 256
        assert arr.itemsize == 4
        assert arr.base_addr == a.addr

    def test_2d_shape(self, allocator):
        a = allocator.malloc(8 * 4 * 4)
        arr = DeviceArray(a, np.float32, (8, 4))
        assert arr.size == 32
        assert arr.ndim == 2

    def test_byte_offset(self, allocator):
        a = allocator.malloc(256)
        arr = DeviceArray(a, np.float32, 32, byte_offset=128)
        assert arr.base_addr == a.addr + 128

    def test_overrun_rejected(self, allocator):
        a = allocator.malloc(64)
        with pytest.raises(InvalidAddressError):
            DeviceArray(a, np.float32, 32)  # needs 128B

    def test_offset_overrun_rejected(self, allocator):
        a = allocator.malloc(128)
        with pytest.raises(InvalidAddressError):
            DeviceArray(a, np.float32, 32, byte_offset=4)

    def test_negative_dim_rejected(self, allocator):
        a = allocator.malloc(64)
        with pytest.raises(InvalidAddressError):
            DeviceArray(a, np.float32, (-1,))


class TestData:
    def test_fill_and_read_back(self, allocator):
        a = allocator.malloc(16 * 8)
        arr = DeviceArray(a, np.float64, 16)
        data = np.arange(16, dtype=np.float64)
        arr.fill_from(data)
        assert np.array_equal(arr.to_host(), data)

    def test_view_is_writable(self, allocator):
        a = allocator.malloc(4 * 4)
        arr = DeviceArray(a, np.float32, 4)
        arr.view[:] = 7.0
        assert np.all(arr.to_host() == 7.0)

    def test_to_host_is_copy(self, allocator):
        a = allocator.malloc(4 * 4)
        arr = DeviceArray(a, np.float32, 4)
        h = arr.to_host()
        h[:] = 99
        assert not np.any(arr.to_host() == 99)

    def test_fill_shape_mismatch(self, allocator):
        a = allocator.malloc(16)
        arr = DeviceArray(a, np.float32, 4)
        with pytest.raises(InvalidAddressError):
            arr.fill_from(np.zeros(5, dtype=np.float32))

    def test_two_views_share_bytes(self, allocator):
        a = allocator.malloc(64)
        v1 = DeviceArray(a, np.float32, 16)
        v2 = DeviceArray(a, np.float32, 16)
        v1.view[0] = 5.0
        assert v2.to_host()[0] == 5.0


class TestAddressing:
    def test_addr_of_scalar(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        assert arr.addr_of(3) == arr.base_addr + 12

    def test_addr_of_vector(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        addrs = arr.addr_of(np.array([0, 1, 15]))
        assert list(addrs) == [arr.base_addr, arr.base_addr + 4, arr.base_addr + 60]

    def test_addr_of_out_of_range(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        with pytest.raises(InvalidAddressError):
            arr.addr_of(16)
        with pytest.raises(InvalidAddressError):
            arr.addr_of(np.array([0, -1]))


class TestReshape:
    def test_reshape_roundtrip(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        m = arr.reshape(4, 4)
        assert m.shape == (4, 4)
        assert m.base_addr == arr.base_addr

    def test_reshape_size_mismatch(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        with pytest.raises(InvalidAddressError):
            arr.reshape(5, 5)


class TestSlice:
    def test_view_shares_bytes(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        sub = arr.slice(4, 8)
        sub.view[:] = 9.0
        host = arr.to_host()
        assert np.all(host[4:12] == 9.0)
        assert host[3] == 0.0 and host[12] == 0.0

    def test_addressing_offset(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        sub = arr.slice(4, 8)
        assert sub.base_addr == arr.base_addr + 16

    def test_bounds(self, allocator):
        a = allocator.malloc(64)
        arr = DeviceArray(a, np.float32, 16)
        with pytest.raises(InvalidAddressError):
            arr.slice(10, 8)
        with pytest.raises(InvalidAddressError):
            arr.slice(-1, 4)
