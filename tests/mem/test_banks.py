"""Shared-memory bank-conflict analysis (paper §IV-F scenarios)."""

import numpy as np
import pytest

from repro.mem.banks import analyze_shared_access


def offsets(words):
    """Byte offsets for 4-byte words."""
    return np.asarray(words, dtype=np.int64) * 4


class TestConflictFree:
    def test_sequential_lanes(self):
        s = analyze_shared_access(offsets(np.arange(32)), None)
        assert s.passes == 1
        assert s.conflict_extra == 0
        assert s.max_degree == 1

    def test_broadcast_free(self):
        s = analyze_shared_access(offsets(np.zeros(32, dtype=np.int64)), None)
        assert s.passes == 1
        assert s.max_degree == 1

    def test_permutation_free(self):
        # any permutation of 0..31 hits each bank once
        perm = np.random.default_rng(0).permutation(32)
        s = analyze_shared_access(offsets(perm), None)
        assert s.passes == 1

    def test_stride_33_free(self):
        # stride coprime with 32 banks: conflict-free
        s = analyze_shared_access(offsets(np.arange(32) * 33), None)
        assert s.max_degree == 1


class TestConflicts:
    @pytest.mark.parametrize("stride,degree", [(2, 2), (4, 4), (8, 8), (16, 16), (32, 32)])
    def test_power_of_two_strides(self, stride, degree):
        s = analyze_shared_access(offsets(np.arange(32) * stride), None)
        assert s.max_degree == degree
        assert s.passes == degree

    def test_interleaved_reduction_step1(self):
        # paper Fig. 12: index = 2*i*cid with i=1 -> 2-way conflicts
        idx = 2 * np.arange(32)
        s = analyze_shared_access(offsets(idx), None)
        assert s.max_degree == 2

    def test_mixed_broadcast_and_conflict(self):
        # 16 lanes read word 0 (broadcast), 16 lanes read words 32,64,...
        words = np.concatenate([np.zeros(16, np.int64), (np.arange(16) + 1) * 32])
        s = analyze_shared_access(offsets(words), None)
        # the strided half all map to bank 0 -> 16 distinct words + the
        # broadcast word in bank 0 = 17-way
        assert s.max_degree == 17


class TestMasking:
    def test_inactive_lanes_ignored(self):
        words = np.arange(32) * 2
        mask = np.zeros(32, dtype=bool)
        mask[:2] = True  # only lanes 0 and 1: words 0 and 2 -> different banks
        s = analyze_shared_access(offsets(words), mask)
        assert s.max_degree == 1
        assert s.n_active_lanes == 2

    def test_dead_lane_collision_ignored(self):
        # dead lane shares a bank-word with a live lane; must not double
        words = np.zeros(32, dtype=np.int64)
        words[1] = 32  # same bank as word 0
        mask = np.ones(32, dtype=bool)
        mask[1] = False
        s = analyze_shared_access(offsets(words), mask)
        assert s.max_degree == 1

    def test_live_dead_live_same_word(self):
        words = np.zeros(32, dtype=np.int64)
        mask = np.ones(32, dtype=bool)
        mask[5] = False
        s = analyze_shared_access(offsets(words), mask)
        assert s.passes == 1  # broadcast still one pass

    def test_empty(self):
        s = analyze_shared_access(offsets(np.arange(32)), np.zeros(32, bool))
        assert s.n_warps == 0
        assert s.passes == 0


class TestMultiWarp:
    def test_summed_over_warps(self):
        # warp 0 conflict-free, warp 1 two-way
        words = np.concatenate([np.arange(32), np.arange(32) * 2])
        s = analyze_shared_access(offsets(words), None)
        assert s.n_warps == 2
        assert s.passes == 3
        assert s.conflict_extra == 1
        assert s.mean_degree == pytest.approx(1.5)

    def test_partial_last_warp(self):
        words = np.arange(48)  # 1.5 warps
        s = analyze_shared_access(offsets(words), None)
        assert s.n_warps == 2
        assert s.passes == 2
