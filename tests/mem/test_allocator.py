"""Device allocator: alignment, free-list behaviour, bounds checks."""

import pytest

from repro.common.errors import AllocationError, InvalidAddressError
from repro.mem.allocator import DEFAULT_ALIGNMENT, DeviceAllocator


class TestMalloc:
    def test_default_alignment(self, allocator):
        a = allocator.malloc(100)
        assert a.addr % DEFAULT_ALIGNMENT == 0

    def test_custom_alignment(self, allocator):
        a = allocator.malloc(100, align=1024)
        assert a.addr % 1024 == 0

    def test_deliberate_offset(self, allocator):
        a = allocator.malloc(100, offset=4)
        assert a.addr % DEFAULT_ALIGNMENT == 4

    def test_backing_buffer_zeroed(self, allocator):
        a = allocator.malloc(64)
        assert a.data.shape == (64,)
        assert not a.data.any()

    def test_distinct_regions(self, allocator):
        a = allocator.malloc(100)
        b = allocator.malloc(100)
        assert a.end <= b.addr or b.end <= a.addr

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.malloc(0)

    def test_negative_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.malloc(-4)

    def test_bad_alignment_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.malloc(16, align=3)

    def test_offset_out_of_range_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.malloc(16, align=256, offset=256)

    def test_oom(self):
        alloc = DeviceAllocator(1024)
        with pytest.raises(AllocationError):
            alloc.malloc(2048)

    def test_exhaustion_then_free_recovers(self):
        alloc = DeviceAllocator(4096)
        a = alloc.malloc(3000, align=1)
        with pytest.raises(AllocationError):
            alloc.malloc(3000, align=1)
        alloc.free(a)
        alloc.malloc(3000, align=1)  # fits again

    def test_managed_flag(self, allocator):
        assert allocator.malloc(16, managed=True).managed
        assert not allocator.malloc(16).managed


class TestFree:
    def test_double_free_raises(self, allocator):
        a = allocator.malloc(64)
        allocator.free(a)
        with pytest.raises(InvalidAddressError):
            allocator.free(a)

    def test_accounting(self, allocator):
        assert allocator.bytes_in_use == 0
        a = allocator.malloc(100)
        b = allocator.malloc(50)
        assert allocator.bytes_in_use == 150
        assert allocator.live_allocations == 2
        allocator.free(a)
        assert allocator.bytes_in_use == 50
        assert allocator.peak_bytes_in_use == 150

    def test_hole_coalescing(self):
        alloc = DeviceAllocator(1 << 20)
        blocks = [alloc.malloc(1000, align=1) for _ in range(8)]
        for b in blocks:
            alloc.free(b)
        # after freeing everything the arena is one hole again
        big = alloc.malloc((1 << 20) - 16, align=1)
        assert big.nbytes == (1 << 20) - 16


class TestFind:
    def test_find_hit(self, allocator):
        a = allocator.malloc(64)
        assert allocator.find(a.addr) is a
        assert allocator.find(a.addr + 63) is a

    def test_find_miss(self, allocator):
        a = allocator.malloc(64)
        with pytest.raises(InvalidAddressError):
            allocator.find(a.end)

    def test_find_freed(self, allocator):
        a = allocator.malloc(64)
        allocator.free(a)
        with pytest.raises(InvalidAddressError):
            allocator.find(a.addr)

    def test_check_range_overrun(self, allocator):
        a = allocator.malloc(64)
        assert allocator.check_range(a.addr, 64) is a
        with pytest.raises(InvalidAddressError):
            allocator.check_range(a.addr + 32, 64)

    def test_address_zero_never_valid(self, allocator):
        with pytest.raises(InvalidAddressError):
            allocator.find(0)


class TestCapacityValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(AllocationError):
            DeviceAllocator(0)
