"""LRU cache model: replacement, sets, dirty write-back accounting."""

import numpy as np
import pytest

from repro.mem.cache import LRUCache, simulate_stream


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = LRUCache(8)
        assert not c.access(1)
        assert c.access(1)
        assert c.hits == 1 and c.misses == 1

    def test_hit_rate(self):
        c = LRUCache(8)
        c.access(1)
        c.access(1)
        c.access(1)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_zero_capacity_always_misses(self):
        c = LRUCache(0)
        assert not c.access(1)
        assert not c.access(1)
        assert c.hits == 0

    def test_len(self):
        c = LRUCache(8)
        for i in range(5):
            c.access(i)
        assert len(c) == 5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LRUCache(-1)
        with pytest.raises(ValueError):
            LRUCache(8, ways=0)

    def test_reset_counters(self):
        c = LRUCache(4)
        c.access(1, write=True)
        c.reset_counters()
        assert c.accesses == 0 and c.lines_dirtied == 0


class TestLRUReplacement:
    def test_evicts_least_recent(self):
        c = LRUCache(2, ways=2)  # fully associative, 2 lines
        c.access(1)
        c.access(2)
        c.access(1)      # 1 is now most recent
        c.access(3)      # evicts 2
        assert c.contains(1) and c.contains(3) and not c.contains(2)

    def test_working_set_fits(self):
        c = LRUCache(16, ways=16)
        stream = list(range(16)) * 4
        hits, misses = simulate_stream(stream, 16, ways=16)
        assert misses == 16
        assert hits == 48

    def test_working_set_thrashes(self):
        # cyclic sweep one larger than capacity: classic LRU worst case
        hits, _ = simulate_stream(list(range(17)) * 4, 16, ways=16)
        assert hits == 0

    def test_eviction_counter(self):
        c = LRUCache(2, ways=2)
        for i in range(5):
            c.access(i)
        assert c.evictions == 3


class TestSetMapping:
    def test_set_count(self):
        c = LRUCache(8, ways=2)
        assert c.n_sets == 4

    def test_small_capacity_fully_associative(self):
        c = LRUCache(4, ways=8)
        assert c.ways == 4
        assert c.n_sets == 1

    def test_hashed_sets_tolerate_pow2_strides(self):
        # power-of-two strided lines must not collapse onto one set
        # (the set index is hashed, like real L2 slices)
        c = LRUCache(64, ways=4)
        lines = [i * 64 for i in range(32)]
        c.access_many(lines)
        hits = c.access_many(lines)
        assert hits >= 24  # most of the 32-line working set survives

    def test_capacity_still_bounds_contents(self):
        c = LRUCache(8, ways=2)
        c.access_many(range(100))
        assert len(c) <= 8


class TestDirtyTracking:
    def test_write_miss_dirties(self):
        c = LRUCache(8)
        c.access(1, write=True)
        assert c.lines_dirtied == 1

    def test_rewrite_not_recounted(self):
        c = LRUCache(8)
        c.access(1, write=True)
        c.access(1, write=True)
        assert c.lines_dirtied == 1

    def test_read_then_write_transitions(self):
        c = LRUCache(8)
        c.access(1)
        assert c.lines_dirtied == 0
        c.access(1, write=True)
        assert c.lines_dirtied == 1

    def test_evicted_then_rewritten_counts_again(self):
        c = LRUCache(1, ways=1)
        c.access(1, write=True)
        c.access(2)          # evicts 1
        c.access(1, write=True)
        assert c.lines_dirtied == 2

    def test_zero_capacity_write_counts(self):
        c = LRUCache(0)
        c.access(1, write=True)
        c.access(1, write=True)
        assert c.lines_dirtied == 2


class TestAccessMany:
    def test_numpy_input(self):
        c = LRUCache(8)
        hits = c.access_many(np.array([1, 2, 1, 2]))
        assert hits == 2

    def test_write_mode(self):
        c = LRUCache(8)
        c.access_many([1, 2, 3], write=True)
        assert c.lines_dirtied == 3
