"""Memory-hierarchy resolution: L1/L2/DRAM traffic."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_K80, TESLA_V100
from repro.mem.coalesce import analyze_access
from repro.mem.hierarchy import resolve_traffic
from repro.mem.trace import AccessTrace


def make_trace(n_lanes):
    return AccessTrace.for_grid(n_lanes)


def add_access(trace, addrs, *, mask=None, itemsize=4, space="global", is_store=False):
    summary = analyze_access(np.asarray(addrs, dtype=np.int64), mask, itemsize)
    trace.record(
        space=space, is_store=is_store, itemsize=itemsize,
        summary=summary, addrs=addrs, mask=mask,
    )
    return summary


BASE = 0x200000


class TestColdStream:
    def test_read_traffic_equals_footprint(self):
        n = 1 << 14
        t = make_trace(n)
        add_access(t, BASE + np.arange(n) * 4)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        assert rep.dram_read_bytes == pytest.approx(n * 4, rel=0.01)
        assert rep.dram_write_bytes == 0

    def test_store_traffic_is_writeback(self):
        n = 1 << 14
        t = make_trace(n)
        add_access(t, BASE + np.arange(n) * 4, is_store=True)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        assert rep.dram_write_bytes == pytest.approx(n * 4, rel=0.01)
        assert rep.dram_read_bytes == 0

    def test_empty_trace(self):
        rep = resolve_traffic(make_trace(0), TESLA_V100, resident_warps_per_sm=64)
        assert rep.dram_bytes == 0


class TestTemporalReuse:
    def test_rereading_hits_l1(self):
        n = 1 << 12
        t = make_trace(n)
        addrs = BASE + np.arange(n) * 4
        add_access(t, addrs)
        add_access(t, addrs)  # same line set again
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=4)
        assert rep.l1_hit_rate == pytest.approx(0.5, abs=0.05)
        assert rep.dram_read_bytes == pytest.approx(n * 4, rel=0.05)

    def test_rewriting_not_recharged(self):
        n = 1 << 12
        t = make_trace(n)
        addrs = BASE + np.arange(n) * 4
        add_access(t, addrs, is_store=True)
        add_access(t, addrs, is_store=True)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=4)
        # one eventual write-back per sector, not two
        assert rep.dram_write_bytes == pytest.approx(n * 4, rel=0.05)

    def test_l1_capacity_thrash_goes_to_l2(self):
        # per-warp working set far beyond the L1 share -> misses; but the
        # L2 (scaled) still holds the re-read stream
        n = 1 << 12
        t = make_trace(n)
        stride_addrs = BASE + (np.arange(n) * 512) * 4  # scattered lines
        add_access(t, stride_addrs)
        add_access(t, stride_addrs)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        assert rep.l1_hit_rate < 0.99
        assert rep.l2_hits > 0


class TestArchitectureFlags:
    def test_kepler_global_bypasses_l1(self):
        n = 1 << 12
        t = make_trace(n)
        addrs = BASE + np.arange(n) * 4
        add_access(t, addrs)
        add_access(t, addrs)
        rep = resolve_traffic(t, TESLA_K80, resident_warps_per_sm=32)
        assert rep.l1_lookups == 0
        assert rep.dram_uncached_read_bytes >= 0
        # the reuse is caught by L2 instead
        assert rep.l2_hit_rate > 0.4

    def test_kepler_texture_path_cached(self):
        n = 1 << 12
        t = make_trace(n)
        addrs = BASE + np.arange(n) * 4
        add_access(t, addrs, space="texture")
        add_access(t, addrs, space="texture")
        rep = resolve_traffic(t, TESLA_K80, resident_warps_per_sm=32)
        assert rep.tex_lookups > 0
        assert rep.tex_hits > 0
        assert rep.dram_uncached_read_bytes == 0

    def test_volta_texture_same_as_global(self):
        n = 1 << 12
        t = make_trace(n)
        addrs = BASE + np.arange(n) * 4
        add_access(t, addrs, space="texture")
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        # unified path: accounted as L1, not a separate texture cache
        assert rep.tex_lookups == 0
        assert rep.l1_lookups > 0


class TestConstantSpace:
    def test_constant_not_in_dram_traffic(self):
        n = 1 << 10
        t = make_trace(n)
        add_access(t, BASE + np.arange(n) * 4, space="constant")
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        assert rep.dram_bytes == 0
        assert rep.per_space.get("constant", 0) > 0


class TestLatencyMix:
    def test_cold_stream_latency_near_dram(self):
        n = 1 << 14
        t = make_trace(n)
        add_access(t, BASE + np.arange(n) * 4)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        assert rep.avg_load_latency_cycles == pytest.approx(
            TESLA_V100.dram_latency_cycles, rel=0.1
        )

    def test_hot_stream_latency_low(self):
        n = 1 << 10
        t = make_trace(n)
        addrs = BASE + np.arange(n) * 4
        for _ in range(4):
            add_access(t, addrs)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=2)
        assert rep.avg_load_latency_cycles < TESLA_V100.dram_latency_cycles / 2


class TestBurstFactorApplied:
    def test_scattered_sectors_double_dram(self):
        n = 1 << 12
        t = make_trace(n)
        # 64B-spaced 4B loads: every sector isolated
        add_access(t, BASE + np.arange(n) * 64)
        rep = resolve_traffic(t, TESLA_V100, resident_warps_per_sm=64)
        assert rep.dram_read_bytes == pytest.approx(n * 32 * 2, rel=0.05)
