"""Access traces and the cache window."""

import numpy as np

from repro.mem.coalesce import analyze_access
from repro.mem.trace import CACHE_WINDOW_WARPS, AccessTrace


def record_linear(trace, n, itemsize=4, base=0x100000, is_store=False):
    addrs = base + np.arange(n, dtype=np.int64) * itemsize
    summary = analyze_access(addrs, None, itemsize)
    return trace.record(
        space="global",
        is_store=is_store,
        itemsize=itemsize,
        summary=summary,
        addrs=addrs,
        mask=None,
    )


class TestForGrid:
    def test_small_grid_window_covers_all(self):
        t = AccessTrace.for_grid(64)  # 2 warps
        assert t.window_warps == 2
        assert t.window_start_warp == 0
        assert t.window_fraction == 1.0

    def test_large_grid_window_mid(self):
        t = AccessTrace.for_grid(32 * 10_000)
        assert t.window_warps == CACHE_WINDOW_WARPS
        assert 0 < t.window_start_warp < 10_000 - CACHE_WINDOW_WARPS
        assert t.window_fraction == CACHE_WINDOW_WARPS / 10_000

    def test_empty_grid(self):
        t = AccessTrace.for_grid(0)
        assert t.n_grid_warps == 0
        assert t.window_fraction == 1.0

    def test_partial_warp(self):
        t = AccessTrace.for_grid(33)
        assert t.n_grid_warps == 2


class TestRecord:
    def test_window_slice_shape(self):
        t = AccessTrace.for_grid(32 * 200)
        rec = record_linear(t, 32 * 200)
        assert rec.window_addrs.shape == (CACHE_WINDOW_WARPS, 32)
        assert rec.window_mask.all()

    def test_window_contains_mid_grid_addresses(self):
        t = AccessTrace.for_grid(32 * 200)
        rec = record_linear(t, 32 * 200)
        lane0 = t.window_start_warp * 32
        assert rec.window_addrs[0, 0] == 0x100000 + lane0 * 4

    def test_records_ordered(self):
        t = AccessTrace.for_grid(64)
        r1 = record_linear(t, 64)
        r2 = record_linear(t, 64, is_store=True)
        assert t.records == [r1, r2]
        assert len(t) == 2

    def test_mask_sliced(self):
        t = AccessTrace.for_grid(64)
        addrs = 0x100000 + np.arange(64, dtype=np.int64) * 4
        mask = np.zeros(64, dtype=bool)
        mask[:10] = True
        summary = analyze_access(addrs, mask, 4)
        rec = t.record(
            space="global", is_store=False, itemsize=4,
            summary=summary, addrs=addrs, mask=mask,
        )
        assert rec.window_mask.sum() == 10
