"""Coalescing analysis: the Fig. 7 scenarios and edge cases."""

import numpy as np
import pytest

from repro.mem.coalesce import (
    analyze_access,
    lanes_to_warps,
    warp_distinct_counts,
)


def addrs_for(indices, itemsize=4, base=0x100000):
    return base + np.asarray(indices, dtype=np.int64) * itemsize


class TestLanesToWarps:
    def test_exact_multiple(self):
        v, m = lanes_to_warps(np.arange(64), None, 32)
        assert v.shape == (2, 32)
        assert m.all()

    def test_padding(self):
        v, m = lanes_to_warps(np.arange(40), None, 32)
        assert v.shape == (2, 32)
        assert m[0].all()
        assert m[1, :8].all() and not m[1, 8:].any()

    def test_mask_passthrough(self):
        mask = np.zeros(32, dtype=bool)
        mask[::2] = True
        _, m = lanes_to_warps(np.arange(32), mask, 32)
        assert m.sum() == 16

    def test_empty(self):
        v, m = lanes_to_warps(np.empty(0, dtype=np.int64), None, 32)
        assert v.shape == (0, 32)

    def test_mask_length_mismatch(self):
        with pytest.raises(ValueError):
            lanes_to_warps(np.arange(4), np.ones(5, dtype=bool), 32)


class TestWarpDistinctCounts:
    def test_all_same(self):
        keys = np.zeros((1, 32), dtype=np.int64)
        assert warp_distinct_counts(keys, np.ones((1, 32), bool))[0] == 1

    def test_all_distinct(self):
        keys = np.arange(32, dtype=np.int64).reshape(1, 32)
        assert warp_distinct_counts(keys, np.ones((1, 32), bool))[0] == 32

    def test_masked_out_ignored(self):
        keys = np.arange(32, dtype=np.int64).reshape(1, 32)
        mask = np.zeros((1, 32), bool)
        mask[0, :4] = True
        assert warp_distinct_counts(keys, mask)[0] == 4

    def test_dead_lane_values_ignored(self):
        # dead lanes share key values with live lanes; must not distort
        keys = np.zeros((1, 32), dtype=np.int64)
        keys[0, :16] = np.arange(16)
        mask = np.zeros((1, 32), bool)
        mask[0, :16] = True
        assert warp_distinct_counts(keys, mask)[0] == 16

    def test_fully_inactive_row(self):
        keys = np.arange(32, dtype=np.int64).reshape(1, 32)
        assert warp_distinct_counts(keys, np.zeros((1, 32), bool))[0] == 0

    def test_single_column(self):
        keys = np.array([[5], [7]], dtype=np.int64)
        mask = np.array([[True], [False]])
        out = warp_distinct_counts(keys, mask)
        assert list(out) == [1, 0]


class TestAnalyzeAccessPatterns:
    """The three regimes of paper Fig. 7."""

    def test_coalesced_one_transaction(self):
        s = analyze_access(addrs_for(np.arange(32)), None, 4)
        assert s.transactions == 1
        assert s.sectors == 4
        assert s.bus_utilization == 1.0

    def test_strided_32_transactions(self):
        s = analyze_access(addrs_for(np.arange(32) * 32), None, 4)
        assert s.transactions == 32
        assert s.sectors == 32
        assert s.bus_utilization == pytest.approx(4 / 32)

    def test_random_access_in_between(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 1 << 20, size=32)
        s = analyze_access(addrs_for(idx), None, 4)
        assert 1 < s.transactions <= 32

    def test_broadcast_single_sector(self):
        s = analyze_access(addrs_for(np.zeros(32, dtype=np.int64)), None, 4)
        assert s.transactions == 1
        assert s.sectors == 1

    def test_misaligned_extra_segment(self):
        # each misaligned warp straddles one extra 128B segment
        aligned = analyze_access(addrs_for(np.arange(32)), None, 4)
        mis = analyze_access(addrs_for(np.arange(32) + 1), None, 4)
        assert aligned.transactions == 1
        assert mis.transactions == 2

    def test_element_straddling_segment(self):
        # one 8-byte element straddling a 128B boundary counts twice
        s = analyze_access(np.array([0x100000 + 124]), None, 8)
        assert s.transactions == 2

    def test_multiple_warps_sum(self):
        s = analyze_access(addrs_for(np.arange(128)), None, 4)
        assert s.n_warps == 4
        assert s.transactions == 4

    def test_partial_warp_masked(self):
        mask = np.zeros(32, dtype=bool)
        mask[:8] = True
        s = analyze_access(addrs_for(np.arange(32)), mask, 4)
        assert s.n_warps == 1
        assert s.n_active_lanes == 8
        assert s.transactions == 1
        assert s.sectors == 1

    def test_empty_mask(self):
        s = analyze_access(addrs_for(np.arange(32)), np.zeros(32, bool), 4)
        assert s.n_warps == 0
        assert s.transactions == 0

    def test_bytes_requested(self):
        s = analyze_access(addrs_for(np.arange(10)), None, 4)
        assert s.bytes_requested == 40


class TestBurstFactor:
    def test_dense_factor_one(self):
        s = analyze_access(addrs_for(np.arange(64)), None, 4)
        assert s.dram_burst_factor == pytest.approx(1.0)

    def test_isolated_sectors_factor_two(self):
        # 64B-strided 4B elements: every sector isolated in its burst
        s = analyze_access(addrs_for(np.arange(32) * 16), None, 4)
        assert s.dram_burst_factor == pytest.approx(2.0)

    def test_misaligned_stream_not_penalized(self):
        # neighbouring warps share boundary segments; dedup keeps ~1.0
        s = analyze_access(addrs_for(np.arange(1024) + 1), None, 4)
        assert s.dram_burst_factor == pytest.approx(1.0, abs=0.02)


class TestSampling:
    def test_sampled_counts_rescaled(self):
        n = 1 << 21  # 65536 warps -> sampling kicks in at limit 4096
        s_full = analyze_access(addrs_for(np.arange(1 << 16)), None, 4)
        s_samp = analyze_access(
            addrs_for(np.arange(n)), None, 4, max_analyzed_warps=4096
        )
        assert s_samp.sample_fraction < 1.0
        # per-warp statistics preserved for the regular pattern
        assert s_samp.transactions / s_samp.n_warps == pytest.approx(
            s_full.transactions / s_full.n_warps, rel=0.05
        )

    def test_exact_below_limit(self):
        s = analyze_access(addrs_for(np.arange(1 << 12)), None, 4)
        assert s.sample_fraction == 1.0
