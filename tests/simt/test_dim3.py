"""Dim3 coercion and arithmetic."""

import pytest

from repro.common.errors import LaunchConfigError
from repro.simt.dim3 import Dim3


class TestConstruction:
    def test_defaults(self):
        d = Dim3(4)
        assert (d.x, d.y, d.z) == (4, 1, 1)

    def test_full(self):
        d = Dim3(2, 3, 4)
        assert d.size == 24

    def test_zero_rejected(self):
        with pytest.raises(LaunchConfigError):
            Dim3(0)

    def test_negative_rejected(self):
        with pytest.raises(LaunchConfigError):
            Dim3(1, -1)

    def test_non_int_rejected(self):
        with pytest.raises(LaunchConfigError):
            Dim3(1.5)  # type: ignore[arg-type]


class TestOf:
    def test_int(self):
        assert Dim3.of(7) == Dim3(7)

    def test_tuple(self):
        assert Dim3.of((2, 3)) == Dim3(2, 3)
        assert Dim3.of((2, 3, 4)) == Dim3(2, 3, 4)

    def test_identity(self):
        d = Dim3(5)
        assert Dim3.of(d) is d

    def test_bad_tuple(self):
        with pytest.raises(LaunchConfigError):
            Dim3.of((1, 2, 3, 4))

    def test_bad_type(self):
        with pytest.raises(LaunchConfigError):
            Dim3.of("16")  # type: ignore[arg-type]


class TestMisc:
    def test_as_tuple(self):
        assert Dim3(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_str(self):
        assert str(Dim3(16, 16)) == "(16, 16, 1)"

    def test_hashable(self):
        assert len({Dim3(1), Dim3(1), Dim3(2)}) == 2
