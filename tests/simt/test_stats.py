"""KernelStats derived metrics and child merging."""

import pytest

from repro.mem.trace import AccessTrace
from repro.simt.dim3 import Dim3
from repro.simt.stats import KernelStats


def make_stats(**overrides):
    base = dict(
        name="k",
        grid=Dim3(4),
        block=Dim3(64),
        threads=256,
        warps=8,
        trace=AccessTrace.for_grid(256),
    )
    base.update(overrides)
    return KernelStats(**base)


class TestMetrics:
    def test_warp_execution_efficiency(self):
        s = make_stats(warp_instructions=10, thread_instructions=10 * 32)
        assert s.warp_execution_efficiency == 1.0
        s2 = make_stats(warp_instructions=10, thread_instructions=160)
        assert s2.warp_execution_efficiency == 0.5

    def test_efficiency_empty(self):
        assert make_stats().warp_execution_efficiency == 1.0

    def test_branch_efficiency(self):
        s = make_stats(branches=10, divergent_branches=3)
        assert s.branch_efficiency == pytest.approx(0.7)
        assert make_stats().branch_efficiency == 1.0

    def test_gld_efficiency(self):
        s = make_stats(sectors_requested=10, bytes_requested=320)
        assert s.gld_efficiency == 1.0
        s2 = make_stats(sectors_requested=10, bytes_requested=32)
        assert s2.gld_efficiency == pytest.approx(0.1)

    def test_shared_efficiency(self):
        s = make_stats(shared_requests=10, shared_passes=20)
        assert s.shared_efficiency == 0.5
        assert make_stats().shared_efficiency == 1.0

    def test_blocks(self):
        assert make_stats().blocks == 4


class TestMergeChild:
    def test_counters_fold(self):
        parent = make_stats(issue_cycles=10.0, branches=1)
        child = make_stats(issue_cycles=5.0, branches=2, barriers=3)
        child.trace.records = []
        parent.merge_child(child)
        assert parent.issue_cycles == 15.0
        assert parent.branches == 3
        assert parent.barriers == 3
        assert parent.device_launches == 1

    def test_nested_launch_count(self):
        parent = make_stats()
        child = make_stats(device_launches=4)
        parent.merge_child(child)
        assert parent.device_launches == 5
