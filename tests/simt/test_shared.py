"""Per-block shared memory: functional semantics and conflict charging."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.common.errors import InvalidAddressError, LaunchConfigError
from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3


def ctx_for(grid=2, block=64):
    return ThreadContext(TESLA_V100, Dim3.of(grid), Dim3.of(block), name="t")


class TestAllocation:
    def test_tracks_bytes(self):
        c = ctx_for()
        c.shared_array(256, np.float32)
        assert c.shared_bytes_per_block == 1024

    def test_multiple_arrays_accumulate(self):
        c = ctx_for()
        c.shared_array(128, np.float32)
        c.shared_array(128, np.float64)
        assert c.shared_bytes_per_block == 512 + 1024

    def test_over_limit_raises(self):
        c = ctx_for()
        with pytest.raises(LaunchConfigError):
            c.shared_array(TESLA_V100.shared_mem_per_block // 4 + 1, np.float32)

    def test_zero_dim_rejected(self):
        c = ctx_for()
        with pytest.raises(LaunchConfigError):
            c.shared_array(0, np.float32)


class TestLoadStore:
    def test_per_block_isolation(self):
        c = ctx_for(grid=2, block=64)
        s = c.shared_array(64, np.float32)
        s.store(c.thread_idx_x, c.block_idx_x.astype(np.float32) + 1.0)
        # block 0 sees 1.0, block 1 sees 2.0
        assert np.all(s.block_view(0) == 1.0)
        assert np.all(s.block_view(1) == 2.0)

    def test_roundtrip(self):
        c = ctx_for(grid=1, block=64)
        s = c.shared_array(64, np.float32)
        tid = c.thread_idx_x
        s.store(tid, tid.astype(np.float32))
        out = s.load(tid)
        assert np.array_equal(out.data, np.arange(64, dtype=np.float32))

    def test_2d_indexing(self):
        c = ctx_for(grid=1, block=(8, 8))
        s = c.shared_array((8, 8), np.float32)
        tx, ty = c.thread_idx_x, c.thread_idx_y
        s.store((ty, tx), (ty * 8 + tx).astype(np.float32))
        out = s.load((ty, tx))
        assert np.array_equal(out.data, np.arange(64, dtype=np.float32))

    def test_wrong_arity_raises(self):
        c = ctx_for(grid=1, block=(8, 8))
        s = c.shared_array((8, 8), np.float32)
        with pytest.raises(InvalidAddressError):
            s.load((c.thread_idx_x, c.thread_idx_y, c.thread_idx_x))

    def test_bounds_checked(self):
        c = ctx_for(grid=1, block=64)
        s = c.shared_array(32, np.float32)
        with pytest.raises(InvalidAddressError):
            s.load(c.thread_idx_x)  # lanes 32..63 out of range

    def test_masked_lanes_untouched(self):
        c = ctx_for(grid=1, block=64)
        s = c.shared_array(64, np.float32)
        tid = c.thread_idx_x
        c.if_active(tid < 8, lambda: s.store(tid, c.const(9.0)))
        bv = s.block_view(0)
        assert bv[:8].sum() == 72.0
        assert bv[8:].sum() == 0.0


class TestConflictCharging:
    def test_conflict_free_cost(self):
        c = ctx_for(grid=1, block=32)
        s = c.shared_array(32, np.float32)
        before = c.stats.issue_cycles
        s.load(c.thread_idx_x)
        assert c.stats.issue_cycles - before == 1
        assert c.stats.bank_conflict_extra == 0

    def test_two_way_conflict_cost(self):
        c = ctx_for(grid=1, block=32)
        s = c.shared_array(64, np.float32)
        idx = c.thread_idx_x * 2  # the multiply charges separately
        before = c.stats.issue_cycles
        s.load(idx)
        assert c.stats.issue_cycles - before == 2
        assert c.stats.bank_conflict_extra == 1

    def test_stats_accumulate(self):
        c = ctx_for(grid=1, block=64)
        s = c.shared_array(64, np.float32)
        s.load(c.thread_idx_x)
        s.load(c.thread_idx_x)
        assert c.stats.shared_requests == 4  # 2 warps x 2 accesses
        assert c.stats.shared_bytes == 2 * 64 * 4
