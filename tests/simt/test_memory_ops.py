"""Global/constant/texture memory operations of the thread context."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.common.errors import InvalidAddressError, KernelRuntimeError
from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3
from repro.simt.texture import TextureView
from tests.conftest import make_device_array


@pytest.fixture
def ctx():
    return ThreadContext(TESLA_V100, Dim3(1), Dim3(64), name="t")


class TestLoad:
    def test_gather(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(64, dtype=np.float32))
        out = ctx.load(arr, ctx.global_thread_id())
        assert np.array_equal(out.data, np.arange(64, dtype=np.float32))

    def test_masked_lanes_read_zero(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(64, dtype=np.float32) + 1)
        tid = ctx.global_thread_id()
        out = {}
        ctx.if_active(tid < 10, lambda: out.setdefault("v", ctx.load(arr, tid)))
        assert np.all(out["v"].data[10:] == 0)
        assert np.all(out["v"].data[:10] == np.arange(10) + 1)

    def test_out_of_bounds_raises(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(8, dtype=np.float32))
        with pytest.raises(InvalidAddressError):
            ctx.load(arr, ctx.global_thread_id())

    def test_masked_out_of_bounds_ok(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(8, dtype=np.float32))
        tid = ctx.global_thread_id()
        ctx.if_active(tid < 8, lambda: ctx.load(arr, tid))  # no raise

    def test_records_trace(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        ctx.load(arr, ctx.global_thread_id())
        assert len(ctx.stats.trace) == 1
        assert ctx.stats.trace.records[0].space == "global"
        assert not ctx.stats.trace.records[0].is_store

    def test_charges_transactions(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        before = ctx.stats.issue_cycles
        ctx.load(arr, ctx.global_thread_id())
        assert ctx.stats.issue_cycles == before + 2  # 2 warps, coalesced
        assert ctx.stats.transactions == 2

    def test_uncoalesced_charges_more(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64 * 32, dtype=np.float32))
        idx = ctx.as_lanevec(np.arange(64, dtype=np.int64) * 32)
        before = ctx.stats.issue_cycles
        ctx.load(arr, idx)
        assert ctx.stats.issue_cycles - before == 64

    def test_bad_index_shape(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        with pytest.raises(KernelRuntimeError):
            ctx.load(arr, np.arange(3))

    def test_scalar_index_broadcast(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(4, dtype=np.float32))
        out = ctx.load(arr, 2)
        assert np.all(out.data == 2.0)


class TestStore:
    def test_scatter(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        ctx.store(arr, ctx.global_thread_id(), ctx.const(5.0))
        assert np.all(arr.to_host() == 5.0)

    def test_masked_scatter(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        tid = ctx.global_thread_id()
        ctx.if_active(tid < 4, lambda: ctx.store(arr, tid, ctx.const(1.0)))
        assert arr.to_host().sum() == 4.0

    def test_store_scalar_value(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        ctx.store(arr, ctx.global_thread_id(), 3.5)
        assert np.all(arr.to_host() == 3.5)

    def test_dtype_cast_on_store(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.int32))
        ctx.store(arr, ctx.global_thread_id(), ctx.const(7.9))
        assert np.all(arr.to_host() == 7)

    def test_store_records_as_store(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        ctx.store(arr, ctx.global_thread_id(), 1.0)
        assert ctx.stats.trace.records[0].is_store


class TestAtomicAdd:
    def test_single_address_accumulates(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(1, dtype=np.float32))
        ctx.atomic_add(arr, 0, ctx.const(1.0))
        assert arr.to_host()[0] == 64.0

    def test_returns_pre_values(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(1, dtype=np.float32))
        pre = ctx.atomic_add(arr, 0, ctx.const(1.0))
        assert sorted(pre.data.tolist()) == list(range(64))

    def test_distinct_addresses(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        ctx.atomic_add(arr, ctx.global_thread_id(), ctx.const(2.0))
        assert np.all(arr.to_host() == 2.0)

    def test_counted(self, ctx, allocator):
        arr = make_device_array(allocator, np.zeros(1, dtype=np.float32))
        ctx.atomic_add(arr, 0, ctx.const(1.0))
        assert ctx.stats.atomics == 64


class TestConstant:
    def test_uniform_read_one_pass(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(8, dtype=np.float32))
        before = ctx.stats.issue_cycles
        out = ctx.load_constant(arr, 0)
        assert np.all(out.data == 0.0)
        assert ctx.stats.issue_cycles - before == 2  # one pass per warp
        assert ctx.stats.constant_replays == 0

    def test_scattered_read_serializes(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(64, dtype=np.float32))
        before = ctx.stats.issue_cycles
        ctx.load_constant(arr, ctx.global_thread_id())
        assert ctx.stats.issue_cycles - before == 64  # 32 passes per warp
        assert ctx.stats.constant_replays == 62

    def test_not_in_global_trace(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(8, dtype=np.float32))
        ctx.load_constant(arr, 0)
        assert ctx.stats.transactions == 0

    def test_bounds_checked(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(8, dtype=np.float32))
        with pytest.raises(InvalidAddressError):
            ctx.load_constant(arr, ctx.global_thread_id())


class TestReadOnlyPath:
    def test_ldg_records_texture_space(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(64, dtype=np.float32))
        out = ctx.load_readonly(arr, ctx.global_thread_id())
        assert np.array_equal(out.data, np.arange(64, dtype=np.float32))
        assert ctx.stats.trace.records[0].space == "texture"


class TestTextureFetch:
    def test_tex1d(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(64, dtype=np.float32))
        view = TextureView(arr, width=64)
        out = ctx.tex1d(view, ctx.global_thread_id())
        assert np.array_equal(out.data, np.arange(64, dtype=np.float32))

    def test_tex1d_clamps(self, ctx, allocator):
        arr = make_device_array(allocator, np.arange(8, dtype=np.float32))
        view = TextureView(arr, width=8)
        out = ctx.tex1d(view, ctx.global_thread_id())
        assert np.all(out.data[8:] == 7.0)

    def test_tex2d_block_linear(self, ctx, allocator):
        host = np.arange(64, dtype=np.float32).reshape(8, 8)
        storage = make_device_array(allocator, TextureView.swizzle_2d(host, tile=4))
        view = TextureView(storage, width=8, height=8, tile=4)
        x = ctx.as_lanevec(np.arange(64, dtype=np.int64) % 8)
        y = ctx.as_lanevec(np.arange(64, dtype=np.int64) // 8)
        out = ctx.tex2d(view, x, y)
        assert np.array_equal(out.data, host.reshape(-1))
