"""Device-side child launches (dynamic parallelism)."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.common.errors import KernelRuntimeError, LaunchConfigError
from repro.simt.executor import run_kernel
from repro.simt.kernel import kernel
from repro.timing.model import estimate_kernel_time
from tests.conftest import make_device_array


@kernel
def child_fill(ctx, out, n, value):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(out, i, value))


@kernel
def parent_launches(ctx, out, n):
    """Every kernel instance launches one child that fills ``out``."""
    ctx.launch_child(child_fill, -(-n // 32), 32, out, n, 7.0)


@kernel
def parent_reads_child_result(ctx, out, n):
    # the child runs after the parent: parent-side reads see old data,
    # matching the fork-join approximation documented on launch_child
    ctx.launch_child(child_fill, -(-n // 32), 32, out, n, 1.0)


@kernel
def recursive(ctx, out, depth):
    def go():
        ctx.launch_child(recursive, 1, 32, out, depth - 1)

    if depth > 0:
        go()
    else:
        ctx.store(out, ctx.global_thread_id(), 42.0)


class TestFunctional:
    def test_child_executes(self, allocator):
        out = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        run_kernel(parent_launches, 1, 32, (out, 64), gpu=TESLA_V100)
        assert np.all(out.to_host() == 7.0)

    def test_stats_merged(self, allocator):
        out = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        stats = run_kernel(parent_launches, 1, 32, (out, 64), gpu=TESLA_V100)
        assert stats.device_launches == 1
        assert stats.transactions > 0  # the child's store is in there

    def test_recursion(self, allocator):
        out = make_device_array(allocator, np.zeros(32, dtype=np.float32))
        stats = run_kernel(recursive, 1, 32, (out, 3), gpu=TESLA_V100)
        assert np.all(out.to_host() == 42.0)
        assert stats.device_launches == 3

    def test_depth_guard(self, allocator):
        out = make_device_array(allocator, np.zeros(32, dtype=np.float32))
        with pytest.raises(LaunchConfigError):
            run_kernel(recursive, 1, 32, (out, 100), gpu=TESLA_V100)

    def test_unsupported_arch_raises(self, allocator):
        no_dp = TESLA_V100.evolve(supports_dynamic_parallelism=False)
        out = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        with pytest.raises(KernelRuntimeError):
            run_kernel(parent_launches, 1, 32, (out, 64), gpu=no_dp)


class TestTiming:
    def test_device_launch_overhead_charged(self, allocator):
        out = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        s_parent = run_kernel(parent_launches, 1, 32, (out, 64), gpu=TESLA_V100)
        s_plain = run_kernel(child_fill, 2, 32, (out, 64, 7.0), gpu=TESLA_V100)
        t_parent = estimate_kernel_time(s_parent, TESLA_V100)
        t_plain = estimate_kernel_time(s_plain, TESLA_V100)
        assert t_parent.overhead_s > t_plain.overhead_s

    def test_managed_pages_propagate(self, rt):
        # children touching managed memory must trigger migrations
        x = rt.malloc_managed(1 << 12)

        @kernel
        def parent(ctx, x, n):
            ctx.launch_child(child_fill, -(-n // 32), 32, x, n, 3.0)

        rt.launch(parent, 1, 32, x, 1 << 12)
        rt.synchronize()
        assert [e for e in rt.timeline.events if e.kind == "migrate"]
        assert np.all(x.to_host() == 3.0)
