"""Texture views: block-linear layout and clamping."""

import numpy as np
import pytest

from repro.common.errors import InvalidAddressError
from repro.mem.buffer import DeviceArray
from repro.simt.texture import TextureView
from tests.conftest import make_device_array


class TestSwizzle:
    def test_roundtrip_exact_tiles(self):
        host = np.arange(64, dtype=np.float32).reshape(8, 8)
        flat = TextureView.swizzle_2d(host, tile=4)
        assert flat.shape == (64,)
        # spot check: tile (0,0) holds rows 0-3 cols 0-3 in row-major
        assert np.array_equal(flat[:4], host[0, :4])
        assert np.array_equal(flat[4:8], host[1, :4])

    def test_roundtrip_via_flat_index(self, allocator):
        host = np.arange(15 * 9, dtype=np.float32).reshape(9, 15)  # ragged
        flat = TextureView.swizzle_2d(host, tile=4)
        storage = make_device_array(allocator, flat)
        view = TextureView(storage, width=15, height=9, tile=4)
        yy, xx = np.mgrid[0:9, 0:15]
        idx = view.flat_index_2d(xx.ravel(), yy.ravel())
        assert np.array_equal(flat[idx], host.ravel())

    def test_padding_replicates_edge(self):
        host = np.arange(6, dtype=np.float32).reshape(2, 3)
        flat = TextureView.swizzle_2d(host, tile=4)
        assert flat.shape == (16,)
        # padded column equals last real column
        tiles = flat.reshape(4, 4)
        assert tiles[0, 3] == host[0, 2]


class TestFlatIndex:
    def test_1d_clamp(self, allocator):
        storage = make_device_array(allocator, np.arange(8, dtype=np.float32))
        view = TextureView(storage, width=8)
        idx = view.flat_index_1d(np.array([-5, 0, 7, 100]))
        assert list(idx) == [0, 0, 7, 7]

    def test_2d_clamp(self, allocator):
        host = np.arange(64, dtype=np.float32).reshape(8, 8)
        storage = make_device_array(allocator, TextureView.swizzle_2d(host, tile=4))
        view = TextureView(storage, width=8, height=8, tile=4)
        inside = view.flat_index_2d(np.array([7]), np.array([7]))
        outside = view.flat_index_2d(np.array([100]), np.array([100]))
        assert inside == outside

    def test_2d_locality(self, allocator):
        # a 2D-neighbourhood touches few distinct tiles
        host = np.zeros((64, 64), dtype=np.float32)
        storage = make_device_array(allocator, TextureView.swizzle_2d(host, tile=8))
        view = TextureView(storage, width=64, height=64, tile=8)
        yy, xx = np.mgrid[8:16, 8:16]
        idx = view.flat_index_2d(xx.ravel(), yy.ravel())
        # one aligned 8x8 patch = exactly one 64-element tile
        assert idx.max() - idx.min() == 63

    def test_2d_on_1d_raises(self, allocator):
        storage = make_device_array(allocator, np.arange(8, dtype=np.float32))
        view = TextureView(storage, width=8)
        with pytest.raises(InvalidAddressError):
            view.flat_index_2d(np.array([0]), np.array([0]))


class TestValidation:
    def test_storage_too_small_1d(self, allocator):
        storage = make_device_array(allocator, np.arange(8, dtype=np.float32))
        with pytest.raises(InvalidAddressError):
            TextureView(storage, width=16)

    def test_storage_too_small_2d(self, allocator):
        storage = make_device_array(allocator, np.zeros(32, dtype=np.float32))
        with pytest.raises(InvalidAddressError):
            TextureView(storage, width=8, height=8, tile=4)

    def test_bad_dims(self, allocator):
        storage = make_device_array(allocator, np.zeros(8, dtype=np.float32))
        with pytest.raises(InvalidAddressError):
            TextureView(storage, width=0)

    def test_properties(self, allocator):
        storage = make_device_array(allocator, np.zeros(96, dtype=np.float32))
        view = TextureView(storage, width=10, height=7, tile=4)
        assert view.is_2d
        assert view.tiles_x == 3 and view.tiles_y == 2
        assert view.padded_width == 12 and view.padded_height == 8
