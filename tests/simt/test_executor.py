"""Kernel launch validation and execution."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.common.errors import KernelRuntimeError, LaunchConfigError
from repro.simt.dim3 import Dim3
from repro.simt.executor import run_kernel, validate_launch
from repro.simt.kernel import KernelDef, kernel
from tests.conftest import make_device_array


@kernel
def write_tid(ctx, out, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(out, i, i.astype(np.float32)))


class TestValidateLaunch:
    def test_ok(self):
        validate_launch(TESLA_V100, Dim3(10), Dim3(256))

    def test_block_too_big(self):
        with pytest.raises(LaunchConfigError):
            validate_launch(TESLA_V100, Dim3(1), Dim3(2048))

    def test_block_dim_z_limit(self):
        with pytest.raises(LaunchConfigError):
            validate_launch(TESLA_V100, Dim3(1), Dim3(1, 1, 128))

    def test_grid_dim_limit(self):
        with pytest.raises(LaunchConfigError):
            validate_launch(TESLA_V100, Dim3(1, 70000), Dim3(32))

    def test_shared_over_limit(self):
        with pytest.raises(LaunchConfigError):
            validate_launch(
                TESLA_V100, Dim3(1), Dim3(32), shared_mem_bytes=49 * 1024
            )


class TestRunKernel:
    def test_functional(self, allocator):
        out = make_device_array(allocator, np.zeros(100, dtype=np.float32))
        stats = run_kernel(write_tid, 4, 32, (out, 100), gpu=TESLA_V100)
        assert np.array_equal(out.to_host(), np.arange(100, dtype=np.float32))
        assert stats.threads == 128
        assert stats.warps == 4

    def test_coerces_launch_config(self, allocator):
        out = make_device_array(allocator, np.zeros(64, dtype=np.float32))
        stats = run_kernel(write_tid, (2,), (32,), (out, 64), gpu=TESLA_V100)
        assert stats.grid == Dim3(2)

    def test_guard_rail(self, allocator):
        out = make_device_array(allocator, np.zeros(4, dtype=np.float32))
        with pytest.raises(LaunchConfigError):
            run_kernel(
                write_tid, 1 << 20, 1024, (out, 4),
                gpu=TESLA_V100, max_sim_threads=1 << 10,
            )

    def test_name_override(self, allocator):
        out = make_device_array(allocator, np.zeros(32, dtype=np.float32))
        stats = run_kernel(write_tid, 1, 32, (out, 32), gpu=TESLA_V100, name="custom")
        assert stats.name == "custom"

    def test_shared_mem_flows_to_stats(self, allocator):
        @kernel
        def uses_shared(ctx):
            ctx.shared_array(128, np.float32)

        stats = run_kernel(uses_shared, 1, 32, (), gpu=TESLA_V100)
        assert stats.shared_mem_per_block == 512

    def test_registers_flow_to_stats(self, allocator):
        @kernel(registers=48)
        def k(ctx):
            pass

        stats = run_kernel(k, 1, 32, (), gpu=TESLA_V100)
        assert stats.registers_per_thread == 48

    def test_unbalanced_mask_detected(self):
        @kernel
        def bad(ctx):
            ctx.push_mask(ctx.mask.copy())

        with pytest.raises(KernelRuntimeError):
            run_kernel(bad, 1, 32, (), gpu=TESLA_V100)


class TestKernelDecorator:
    def test_bare(self):
        @kernel
        def f(ctx):
            pass

        assert isinstance(f, KernelDef)
        assert f.name == "f"
        assert f.registers == 32

    def test_with_options(self):
        @kernel(name="other", registers=64, note="x")
        def f(ctx):
            pass

        assert f.name == "other"
        assert f.registers == 64
        assert f.meta == {"note": "x"}

    def test_bad_registers(self):
        with pytest.raises(ValueError):
            KernelDef(func=lambda ctx: None, name="x", registers=0)

    def test_callable(self):
        calls = []

        @kernel
        def f(ctx, a):
            calls.append(a)

        f(None, 42)
        assert calls == [42]
