"""Thread context: geometry, masks, divergence, loops, intrinsics."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.common.errors import KernelRuntimeError
from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3


def ctx_for(grid=2, block=64):
    return ThreadContext(TESLA_V100, Dim3.of(grid), Dim3.of(block), name="t")


class TestGeometry:
    def test_lane_layout_1d(self):
        c = ctx_for(grid=2, block=64)
        assert c.total_lanes == 128
        assert np.array_equal(c.thread_idx_x.data[:64], np.arange(64))
        assert np.all(c.block_idx_x.data[:64] == 0)
        assert np.all(c.block_idx_x.data[64:] == 1)

    def test_global_tid(self):
        c = ctx_for(grid=3, block=32)
        assert np.array_equal(c.global_thread_id().data, np.arange(96))

    def test_2d_block(self):
        c = ctx_for(grid=1, block=(8, 4))
        assert np.array_equal(c.thread_idx_x.data[:8], np.arange(8))
        assert c.thread_idx_y.data[8] == 1
        assert c.thread_idx_y.data[31] == 3

    def test_2d_grid(self):
        c = ctx_for(grid=(2, 2), block=32)
        assert c.block_idx_x.data[32] == 1
        assert c.block_idx_y.data[64] == 1

    def test_3d(self):
        c = ctx_for(grid=(2, 2, 2), block=(4, 4, 2))
        assert c.thread_idx_z.data[16] == 1
        assert c.block_idx_z.data[-1] == 1

    def test_block_padded_to_warp(self):
        # 48-thread blocks occupy 2 warps each; warps never span blocks
        c = ctx_for(grid=2, block=48)
        assert c.padded_block_size == 64
        assert c.total_lanes == 128
        m = c.mask.reshape(-1, 32)
        assert m[0].all()          # warp 0: lanes 0-31 of block 0
        assert m[1][:16].all() and not m[1][16:].any()  # padding dead

    def test_lane_id(self):
        c = ctx_for(grid=1, block=64)
        assert np.array_equal(c.lane_id().data, np.arange(64) % 32)

    def test_total_threads(self):
        assert ctx_for(grid=4, block=128).total_threads() == 512


class TestMaskStack:
    def test_push_pop(self):
        c = ctx_for()
        base_active = c.active_lanes
        m = c.mask.copy()
        m[:64] = False
        c.push_mask(m)
        assert c.active_lanes == base_active - 64
        c.pop_mask()
        assert c.active_lanes == base_active

    def test_underflow_raises(self):
        with pytest.raises(KernelRuntimeError):
            ctx_for().pop_mask()

    def test_active_warps_counts_partial(self):
        c = ctx_for(grid=1, block=64)
        m = np.zeros(64, dtype=bool)
        m[0] = True  # one lane in warp 0
        c.push_mask(m)
        assert c.active_warps == 1
        assert c.active_lanes == 1


class TestBranch:
    def test_both_sides_execute_masked(self):
        c = ctx_for(grid=1, block=64)
        tid = c.global_thread_id()
        seen = {"then": 0, "else": 0}

        def then():
            seen["then"] = c.active_lanes

        def els():
            seen["else"] = c.active_lanes

        c.branch((tid % 2) == 0, then, els)
        assert seen == {"then": 32, "else": 32}

    def test_divergence_detected(self):
        c = ctx_for(grid=1, block=64)
        tid = c.global_thread_id()
        c.branch((tid % 2) == 0, lambda: None, lambda: None)
        assert c.stats.divergent_branches == 2
        assert c.stats.branches == 2

    def test_uniform_branch_not_divergent(self):
        c = ctx_for(grid=1, block=64)
        tid = c.global_thread_id()
        c.branch((tid // 32) % 2 == 0, lambda: None, lambda: None)
        assert c.stats.divergent_branches == 0
        assert c.stats.branches == 2

    def test_empty_side_skipped(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        called = []
        c.branch(tid < 0, lambda: called.append("then"), lambda: called.append("else"))
        assert called == ["else"]

    def test_mask_restored_after_exception(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        with pytest.raises(RuntimeError):
            c.branch(tid >= 0, lambda: (_ for _ in ()).throw(RuntimeError()), None)
        assert not c._mask_stack


class TestMaskedUpdate:
    def test_inactive_lanes_keep_old(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        old = c.zeros(np.float32)
        result = {}

        def body():
            result["v"] = c.masked(old, old + 1.0)

        c.if_active(tid < 10, body)
        assert result["v"].data[:10].sum() == 10
        assert result["v"].data[10:].sum() == 0


class TestSelect:
    def test_select(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        out = c.select(tid < 16, c.const(1.0), c.const(2.0))
        assert np.all(out.data[:16] == 1.0)
        assert np.all(out.data[16:] == 2.0)


class TestWhileActive:
    def test_iterates_until_all_done(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        count = c.zeros(np.int64)

        def body():
            nonlocal count
            count = c.masked(count, count + 1)
            return count < tid

        iters = c.while_active(count < tid, body)
        # lane k needs k iterations; the loop runs to the slowest lane
        assert iters == 31
        assert np.array_equal(count.data, np.arange(32))

    def test_never_active(self):
        c = ctx_for(grid=1, block=32)
        cond = c.const(0, np.int64) > 1
        iters = c.while_active(cond, lambda: cond)
        assert iters == 0

    def test_max_iterations_guard(self):
        c = ctx_for(grid=1, block=32)
        always = c.const(1, np.int64) > 0
        with pytest.raises(KernelRuntimeError):
            c.while_active(always, lambda: always, max_iterations=10)

    def test_mask_balanced(self):
        c = ctx_for(grid=1, block=32)
        cond = c.const(0, np.int64) > 1
        c.while_active(cond, lambda: cond)
        assert not c._mask_stack


class TestStridedRange:
    def test_uniform_trip(self):
        c = ctx_for(grid=1, block=32)
        total = []
        for j in c.strided_range(0, 4, 1):
            total.append(j.data[0])
        assert total == [0, 1, 2, 3]

    def test_per_lane_bounds(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        sums = np.zeros(32, dtype=np.int64)
        for j in c.strided_range(0, tid, 1):
            sums[c.mask] += 1
        assert np.array_equal(sums, np.arange(32))

    def test_cyclic_pattern(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        seen = []
        for j in c.strided_range(tid, 64, 32):
            seen.append(j.data.copy())
        assert len(seen) == 2
        assert np.array_equal(seen[1][:32], np.arange(32) + 32)

    def test_empty_range(self):
        c = ctx_for(grid=1, block=32)
        assert list(c.strided_range(5, 5, 1)) == []

    def test_mask_balanced_after(self):
        c = ctx_for(grid=1, block=32)
        tid = c.global_thread_id()
        for _ in c.strided_range(0, tid, 1):
            pass
        assert not c._mask_stack


class TestShuffles:
    def test_shfl_down(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(np.arange(32, dtype=np.int64))
        out = c.shfl_down(v, 16)
        assert np.array_equal(out.data[:16], np.arange(16) + 16)
        # out-of-range lanes keep their own value
        assert np.array_equal(out.data[16:], np.arange(16) + 16)

    def test_shfl_up(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(np.arange(32, dtype=np.int64))
        out = c.shfl_up(v, 1)
        assert out.data[0] == 0
        assert np.array_equal(out.data[1:], np.arange(31))

    def test_shfl_xor(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(np.arange(32, dtype=np.int64))
        out = c.shfl_xor(v, 1)
        assert out.data[0] == 1 and out.data[1] == 0

    def test_shfl_idx_broadcast(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(np.arange(32, dtype=np.int64))
        out = c.shfl_idx(v, 5)
        assert np.all(out.data == 5)

    def test_shfl_does_not_cross_warps(self):
        c = ctx_for(grid=1, block=64)
        v = c.as_lanevec(np.arange(64, dtype=np.int64))
        out = c.shfl_down(v, 16)
        # lane 16 of warp 1 (global 48): source lane 32 is out of the warp
        # -> keeps its own value; lane 0 of warp 1 reads its warp's lane 16
        assert out.data[48] == 48
        assert out.data[32] == 48

    def test_shfl_width_segments(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(np.arange(32, dtype=np.int64))
        out = c.shfl_down(v, 8, width=16)
        assert out.data[0] == 8
        assert out.data[8] == 8  # would cross the 16-lane segment -> self

    def test_shuffle_counted(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(np.arange(32, dtype=np.int64))
        c.shfl_down(v, 1)
        assert c.stats.shuffles == 1


class TestSyncthreads:
    def test_counts_barrier(self):
        c = ctx_for()
        c.syncthreads()
        assert c.stats.barriers == 1

    def test_divergent_sync_raises(self):
        c = ctx_for(grid=1, block=64)
        tid = c.global_thread_id()
        with pytest.raises(KernelRuntimeError):
            c.if_active(tid < 10, c.syncthreads)

    def test_divergent_sync_unsafe_allowed(self):
        c = ctx_for(grid=1, block=64)
        tid = c.global_thread_id()
        c.if_active(tid < 10, lambda: c.syncthreads(unsafe=True))
        assert c.stats.barriers == 1


class TestMathIntrinsics:
    def test_sqrt(self):
        c = ctx_for(grid=1, block=32)
        out = c.sqrt(c.const(4.0))
        assert np.all(out.data == 2.0)

    def test_rsqrt_exp_log_sin_cos(self):
        c = ctx_for(grid=1, block=32)
        assert np.allclose(c.rsqrt(c.const(4.0)).data, 0.5)
        assert np.allclose(c.exp(c.const(0.0)).data, 1.0)
        assert np.allclose(c.log(c.const(1.0)).data, 0.0)
        assert np.allclose(c.sin(c.const(0.0)).data, 0.0)
        assert np.allclose(c.cos(c.const(0.0)).data, 1.0)

    def test_fma(self):
        c = ctx_for(grid=1, block=32)
        out = c.fma(c.const(2.0), 3.0, 4.0)
        assert np.all(out.data == 10.0)

    def test_min_max(self):
        c = ctx_for(grid=1, block=32)
        assert np.all(c.min(c.const(2.0), 1.0).data == 1.0)
        assert np.all(c.max(c.const(2.0), 1.0).data == 2.0)

    def test_special_costs_more_than_fp32(self):
        c = ctx_for(grid=1, block=32)
        b = c.stats.issue_cycles
        c.sqrt(c.const(4.0))
        sqrt_cost = c.stats.issue_cycles - b
        b = c.stats.issue_cycles
        _ = c.const(4.0) * 2.0
        mul_cost = c.stats.issue_cycles - b
        assert sqrt_cost > mul_cost


class TestAsLaneVec:
    def test_scalar(self):
        c = ctx_for(grid=1, block=32)
        v = c.as_lanevec(3)
        assert v.data.shape == (32,)

    def test_wrong_shape_raises(self):
        c = ctx_for(grid=1, block=32)
        with pytest.raises(KernelRuntimeError):
            c.as_lanevec(np.zeros(7))
