"""Warp vote intrinsics: any/all/ballot/popc."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3


@pytest.fixture
def ctx():
    return ThreadContext(TESLA_V100, Dim3(1), Dim3(64), name="t")


class TestVoteAny:
    def test_true_when_one_lane_true(self, ctx):
        tid = ctx.global_thread_id()
        out = ctx.vote_any(tid == 5)
        assert out.data[:32].all()      # warp 0 contains lane 5
        assert not out.data[32:].any()  # warp 1 does not

    def test_false_when_none(self, ctx):
        tid = ctx.global_thread_id()
        out = ctx.vote_any(tid < 0)
        assert not out.data.any()

    def test_masked_lanes_dont_vote(self, ctx):
        tid = ctx.global_thread_id()
        result = {}

        def body():
            result["v"] = ctx.vote_any(tid >= 10)

        # only lanes 0..9 active; their predicate is false everywhere
        ctx.if_active(tid < 10, body)
        assert not result["v"].data[:32].any()


class TestVoteAll:
    def test_all_true(self, ctx):
        tid = ctx.global_thread_id()
        out = ctx.vote_all(tid >= 0)
        assert out.data.all()

    def test_one_false_breaks_warp(self, ctx):
        tid = ctx.global_thread_id()
        out = ctx.vote_all(tid != 40)
        assert out.data[:32].all()
        assert not out.data[32:].any()

    def test_inactive_lanes_ignored(self, ctx):
        tid = ctx.global_thread_id()
        result = {}

        def body():
            result["v"] = ctx.vote_all(tid < 10)

        ctx.if_active(tid < 10, body)
        assert result["v"].data[:32].all()


class TestBallot:
    def test_mask_bits(self, ctx):
        tid = ctx.global_thread_id()
        out = ctx.ballot((tid % 2) == 0)
        even_mask = sum(1 << i for i in range(0, 32, 2))
        assert np.all(out.data == even_mask)

    def test_empty_ballot(self, ctx):
        tid = ctx.global_thread_id()
        out = ctx.ballot(tid < 0)
        assert np.all(out.data == 0)

    def test_ballot_counts_with_popc(self, ctx):
        tid = ctx.global_thread_id()
        ones = ctx.popc(ctx.ballot(tid < 48))
        assert np.all(ones.data[:32] == 32)
        assert np.all(ones.data[32:] == 16)


class TestPopc:
    @pytest.mark.parametrize("value,expect", [(0, 0), (1, 1), (0xFF, 8), (2**31, 1)])
    def test_known_values(self, ctx, value, expect):
        out = ctx.popc(ctx.const(value, np.int64))
        assert np.all(out.data == expect)

    def test_matches_python(self, ctx, rng):
        vals = rng.integers(0, 2**62, size=64)
        out = ctx.popc(ctx.as_lanevec(vals))
        expect = np.array([bin(v).count("1") for v in vals])
        assert np.array_equal(out.data, expect)
