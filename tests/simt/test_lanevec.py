"""LaneVec operator semantics and issue charging."""

import numpy as np
import pytest

from repro.arch.presets import TESLA_V100
from repro.simt.context import ThreadContext
from repro.simt.dim3 import Dim3
from repro.simt.lanevec import cost_class_for


@pytest.fixture
def ctx():
    return ThreadContext(TESLA_V100, Dim3(2), Dim3(64), name="t")


def lv(ctx, values, dtype=np.float32):
    data = np.asarray(values, dtype=dtype)
    full = np.resize(data, ctx.total_lanes)
    from repro.simt.lanevec import LaneVec

    return LaneVec(ctx, full)


class TestArithmetic:
    def test_add(self, ctx):
        out = lv(ctx, [1.0]) + lv(ctx, [2.0])
        assert np.all(out.data == 3.0)

    def test_scalar_radd(self, ctx):
        out = 1.0 + lv(ctx, [2.0])
        assert np.all(out.data == 3.0)

    def test_sub_rsub(self, ctx):
        assert np.all((lv(ctx, [5.0]) - 2.0).data == 3.0)
        assert np.all((10.0 - lv(ctx, [4.0])).data == 6.0)

    def test_mul(self, ctx):
        assert np.all((3 * lv(ctx, [2.0])).data == 6.0)

    def test_div(self, ctx):
        assert np.all((lv(ctx, [6.0]) / 2.0).data == 3.0)
        assert np.all((6.0 / lv(ctx, [2.0])).data == 3.0)

    def test_div_by_zero_no_warning(self, ctx):
        out = lv(ctx, [1.0]) / lv(ctx, [0.0])
        assert np.isinf(out.data).all()

    def test_floordiv_mod(self, ctx):
        v = lv(ctx, [7], dtype=np.int64)
        assert np.all((v // 2).data == 3)
        assert np.all((v % 2).data == 1)
        assert np.all((7 // lv(ctx, [2], np.int64)).data == 3)
        assert np.all((7 % lv(ctx, [4], np.int64)).data == 3)

    def test_neg_abs(self, ctx):
        v = lv(ctx, [-2.0])
        assert np.all((-v).data == 2.0)
        assert np.all(abs(v).data == 2.0)

    def test_shift(self, ctx):
        v = lv(ctx, [4], dtype=np.int64)
        assert np.all((v << 1).data == 8)
        assert np.all((v >> 2).data == 1)


class TestComparisonsAndBits:
    def test_comparisons(self, ctx):
        v = lv(ctx, [3.0])
        assert np.all((v < 4).data)
        assert np.all((v <= 3).data)
        assert np.all((v > 2).data)
        assert np.all((v >= 3).data)
        assert np.all((v == 3).data)
        assert np.all((v != 4).data)

    def test_bool_combination(self, ctx):
        v = lv(ctx, [3.0])
        both = (v > 2) & (v < 4)
        assert np.all(both.data)
        either = (v > 10) | (v < 4)
        assert np.all(either.data)
        assert not np.any((~(v == 3)).data)

    def test_xor(self, ctx):
        a = lv(ctx, [True], dtype=bool)
        b = lv(ctx, [False], dtype=bool)
        assert np.all((a ^ b).data)

    def test_unhashable(self, ctx):
        with pytest.raises(TypeError):
            hash(lv(ctx, [1.0]))


class TestConversion:
    def test_astype(self, ctx):
        out = lv(ctx, [1.9]).astype(np.int64)
        assert out.dtype == np.int64
        assert np.all(out.data == 1)


class TestCharging:
    def test_each_op_charges(self, ctx):
        before = ctx.stats.warp_instructions
        _ = lv(ctx, [1.0]) + lv(ctx, [2.0])
        assert ctx.stats.warp_instructions == before + ctx.active_warps

    def test_fp32_cost(self, ctx):
        before = ctx.stats.issue_cycles
        _ = lv(ctx, [1.0]) * 2.0
        per_warp = TESLA_V100.op_cycles("fp32")
        assert ctx.stats.issue_cycles == pytest.approx(
            before + per_warp * ctx.active_warps
        )

    def test_fp64_costs_more(self, ctx):
        b1 = ctx.stats.issue_cycles
        _ = lv(ctx, [1.0], np.float64) * 2.0
        fp64_cost = ctx.stats.issue_cycles - b1
        b2 = ctx.stats.issue_cycles
        _ = lv(ctx, [1.0], np.float32) * np.float32(2.0)
        fp32_cost = ctx.stats.issue_cycles - b2
        assert fp64_cost > fp32_cost

    def test_div_costs_more_than_mul(self, ctx):
        b1 = ctx.stats.issue_cycles
        _ = lv(ctx, [1.0]) / lv(ctx, [2.0])
        div_cost = ctx.stats.issue_cycles - b1
        b2 = ctx.stats.issue_cycles
        _ = lv(ctx, [1.0]) * lv(ctx, [2.0])
        mul_cost = ctx.stats.issue_cycles - b2
        assert div_cost > mul_cost


class TestCostClassFor:
    def test_float_kinds(self):
        assert cost_class_for(np.dtype(np.float32), "arith") == "fp32"
        assert cost_class_for(np.dtype(np.float64), "arith") == "fp64"

    def test_int(self):
        assert cost_class_for(np.dtype(np.int64), "arith") == "int"

    def test_div_float_vs_int(self):
        assert cost_class_for(np.dtype(np.float32), "div") == "div"
        assert cost_class_for(np.dtype(np.int32), "div") == "int"

    def test_cmp_shift(self):
        assert cost_class_for(np.dtype(np.float32), "cmp") == "cmp"
        assert cost_class_for(np.dtype(np.int32), "shift") == "shift"
