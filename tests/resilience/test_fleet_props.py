"""Property: fleet results are byte-identical to serial, always.

For any worker count and any seeded chaos flavor, the merged payload
list must equal ``json.dumps`` of a serial ``run_jobs`` — worker
deaths, heartbeat stalls, lease corruption, and clock-skewed steals
may change *how much work happens*, never *what comes out*.

Examples spawn real worker processes, so the sweep is kept small: two
jobs, sub-second lease TTLs, and a handful of examples per worker
count (the CI profile derandomizes them).
"""

import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.resilience.fleet import FleetConfig, run_fleet
from repro.sched import JobSpec, run_jobs

SPECS = [
    JobSpec(benchmark="MemAlign", params={"n": 8192}),
    JobSpec(benchmark="MemAlign", params={"n": 16384}),
]

#: chaos flavors: kwargs for FaultPlan beyond the seed.  Faults are
#: armed only for epoch 0, so every steal/retry path terminates.
FLAVORS = {
    "none": {},
    "kill": {"fleet_kill_prob": 1.0, "sched_fault_attempts": 1},
    "stall": {"heartbeat_stall_prob": 1.0, "sched_fault_attempts": 1},
    "corrupt": {"lease_corrupt_prob": 1.0, "sched_fault_attempts": 1},
    "skew": {
        "heartbeat_stall_prob": 1.0,
        "lease_skew_s": 30.0,
        "sched_fault_attempts": 1,
    },
}


@functools.lru_cache(maxsize=1)
def expected_bytes() -> str:
    return json.dumps(run_jobs(SPECS))


@pytest.mark.parametrize("workers", [1, 2, 4])
class TestFleetByteIdentity:
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=7),
        flavor=st.sampled_from(sorted(FLAVORS)),
    )
    def test_matches_serial(self, workers, tmp_path_factory, seed, flavor):
        tmp_path = tmp_path_factory.mktemp("fleet-prop")
        chaos = FaultPlan(seed, **FLAVORS[flavor]) if FLAVORS[flavor] else None
        cfg = FleetConfig(
            run_id=f"prop-{workers}-{seed}-{flavor}",
            workers=workers,
            journal_root=tmp_path,
            lease_ttl_s=0.4,
            heartbeat_s=0.1,
            join_timeout_s=60.0,
            chaos=chaos,
        )
        payloads = run_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        assert cfg.telemetry.completed == len(SPECS)
