"""The supervised pool: crash isolation, timeouts, retries, degradation.

Chaos decisions are keyed on (seed, job ordinal, attempt), so every
injected schedule here is deterministic — a probability of 1.0 with
``sched_fault_attempts=1`` means "every job's first attempt fails, the
retry runs clean", which makes recovery behaviour exactly assertable.

Pool tests use real worker processes (hard exits, SIGTERM kills); the
job timeout below is kept far above the real job duration (~40 ms for
MemAlign n=16384) so only the *injected* hangs ever trip it.
"""

import pytest

from repro.common.errors import BackendDivergenceError, ReproError
from repro.prof.activity import ActivityHub
from repro.resilience import (
    JobTimeout,
    QuarantineError,
    ResilienceConfig,
    RunJournal,
    parse_chaos,
    run_supervised,
    wall_clock_limit,
)
from repro.sched import JobSpec, ResultCache, run_jobs

SPECS = [
    JobSpec(benchmark="MemAlign", params={"n": 16384}),
    JobSpec(benchmark="MemAlign", params={"n": 32768}),
]

#: generous against the ~40 ms real job, tight against the 60 s hang
TIMEOUT_S = 20.0


@pytest.fixture(scope="module")
def clean():
    return run_jobs(SPECS)


def supervised(specs, *, jobs=1, cache=None, **kw):
    config = ResilienceConfig(**kw)
    return run_supervised(specs, jobs=jobs, cache=cache, config=config), config


class TestCleanRuns:
    def test_serial_matches_unsupervised(self, clean):
        payloads, config = supervised(SPECS)
        assert payloads == clean
        assert config.telemetry.mode == "serial"
        assert config.telemetry.completed == 2
        assert not config.telemetry.degraded

    def test_pool_matches_serial(self, clean):
        payloads, config = supervised(SPECS, jobs=2)
        assert payloads == clean
        assert config.telemetry.mode == "pool"

    def test_single_job_stays_serial(self, clean):
        payloads, config = supervised(SPECS[:1], jobs=4)
        assert payloads == clean[:1]
        assert config.telemetry.mode == "serial"


class TestCrashIsolation:
    def test_serial_injected_crash_retries(self, clean):
        payloads, config = supervised(
            SPECS, chaos=parse_chaos("seed=3,crash=1.0,max-fault-attempts=1")
        )
        assert payloads == clean
        assert config.telemetry.crashes == 2
        assert config.telemetry.retries == 2

    def test_pool_real_crash_fails_only_its_job(self, clean):
        # every first attempt hard-exits (os._exit) in a real worker
        payloads, config = supervised(
            SPECS, jobs=2,
            chaos=parse_chaos("seed=3,crash=1.0,max-fault-attempts=1"),
        )
        assert payloads == clean
        assert config.telemetry.crashes == 2
        assert config.telemetry.completed == 2


class TestTimeouts:
    def test_pool_hang_killed_and_retried(self, clean):
        payloads, config = supervised(
            SPECS, jobs=2, job_timeout_s=TIMEOUT_S,
            chaos=parse_chaos("seed=2,hang=1.0,max-fault-attempts=1"),
        )
        assert payloads == clean
        assert config.telemetry.timeouts == 2
        assert config.telemetry.retries == 2

    def test_hang_chaos_without_timeout_gets_implicit_budget(self, clean):
        # a hang fault with no --job-timeout must not deadlock the run
        payloads, config = supervised(
            SPECS, jobs=2,
            chaos=parse_chaos("seed=2,hang=1.0,max-fault-attempts=1"),
        )
        assert payloads == clean
        assert config.telemetry.timeouts == 2


class TestPayloadCorruption:
    def test_corrupted_payload_retried(self, clean):
        payloads, config = supervised(
            SPECS, jobs=2,
            chaos=parse_chaos("seed=6,payload=1.0,max-fault-attempts=1"),
        )
        assert payloads == clean
        assert config.telemetry.payload_faults == 2


class TestQuarantine:
    def test_retry_exhaustion_quarantines(self):
        with pytest.raises(QuarantineError, match="quarantined"):
            supervised(
                SPECS, max_retries=1, chaos=parse_chaos("seed=3,crash=1.0")
            )

    def test_other_jobs_complete_before_raise(self, tmp_path, clean):
        # job 0 diverges forever on the reference backend -> generic
        # error -> quarantine; job 1 must still finish and journal
        config = ResilienceConfig(
            max_retries=1,
            chaos=parse_chaos("seed=3,crash=1.0"),
            journal=RunJournal.create(tmp_path, run_id="q1"),
        )
        chaos = config.chaos
        # disarm chaos for job 1 only: crash decisions are per-ordinal,
        # so quarantine job 0 by exhausting it while job 1 runs clean
        orig = chaos.worker_outcome
        chaos.worker_outcome = (
            lambda ordinal, attempt: "ok" if ordinal == 1 else orig(ordinal, attempt)
        )
        with pytest.raises(QuarantineError, match="q1"):
            run_supervised(SPECS, config=config)
        assert config.telemetry.quarantined[0]["job"] == 0
        assert config.telemetry.completed == 1
        config.journal.close()
        resumed = RunJournal.resume(tmp_path, "q1")
        assert len(resumed) == 1  # job 1's payload survived
        resumed.close()


class TestDivergenceFallback:
    def test_fast_divergence_reruns_on_reference(self, clean):
        specs = [
            JobSpec(benchmark="MemAlign", params={"n": 16384}, backend="fast")
        ]
        payloads, config = supervised(specs, chaos=parse_chaos("diverge=0"))
        assert payloads == clean[:1]
        assert config.telemetry.degraded
        fb = config.telemetry.fallbacks[0]
        assert fb["from"] == "fast" and fb["to"] == "reference"

    def test_reference_divergence_is_a_plain_failure(self, monkeypatch):
        # only the fast backend has an oracle to fall back to: the same
        # error from a reference job retries and quarantines instead
        import repro.sched.runner as runner

        def boom(spec):
            raise BackendDivergenceError("oracle disagreed with itself")

        monkeypatch.setattr(runner, "execute_job", boom)
        with pytest.raises(QuarantineError):
            supervised(
                [JobSpec(benchmark="MemAlign", params={"n": 16384})],
                max_retries=0,
            )


class TestSerialFallbackLadder:
    def test_repeated_deaths_degrade_to_serial(self, clean):
        payloads, config = supervised(
            SPECS, jobs=2, serial_fallback_after=1,
            chaos=parse_chaos("seed=7,crash=1.0,max-fault-attempts=1"),
        )
        assert payloads == clean
        assert config.telemetry.mode == "serial-fallback"
        assert config.telemetry.degraded

    def test_pool_creation_failure_degrades(self, clean, monkeypatch):
        import multiprocessing

        ctx = multiprocessing.get_context()

        def broken_process(*args, **kwargs):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(type(ctx), "Process", broken_process)
        payloads, config = supervised(SPECS, jobs=2)
        assert payloads == clean
        assert config.telemetry.mode == "serial-fallback"


class TestJournalIntegration:
    def test_cache_hits_are_journaled(self, tmp_path, clean):
        cache = ResultCache(tmp_path / "cache")
        run_jobs(SPECS, cache=cache)
        journal = RunJournal.create(tmp_path, run_id="r1")
        payloads, config = supervised(SPECS, cache=cache, journal=journal)
        assert payloads == clean
        assert cache.hits == 2
        assert len(journal.completed) == 2
        journal.close()

    def test_resume_skips_journaled_jobs(self, tmp_path, clean):
        journal = RunJournal.create(tmp_path, run_id="r1")
        supervised(SPECS[:1], journal=journal)
        journal.close()
        resumed = RunJournal.resume(tmp_path, "r1")
        payloads, config = supervised(SPECS, journal=resumed)
        assert payloads == clean
        assert config.telemetry.resume_skips == 1
        assert config.telemetry.completed == 1
        resumed.close()


class TestHealthEvents:
    def test_sched_records_through_hub(self, clean):
        hub = ActivityHub()
        records = []
        hub.subscribe(records.append, kinds=["sched"])
        payloads, config = supervised(
            SPECS, hub=hub,
            chaos=parse_chaos("seed=3,crash=1.0,max-fault-attempts=1"),
        )
        assert payloads == clean
        names = [r.name for r in records]
        assert "worker-crash" in names and "retry" in names
        crash = next(r for r in records if r.name == "worker-crash")
        assert crash.kind == "sched"
        assert crash.args["benchmark"] == "MemAlign"

    def test_no_subscriber_no_records(self, clean):
        hub = ActivityHub()
        payloads, _ = supervised(SPECS, hub=hub)
        assert payloads == clean  # wants() gate: nothing to assert but no crash


class TestWallClockLimit:
    def test_block_past_budget_raises(self):
        import time

        with pytest.raises(JobTimeout, match="wall clock"):
            with wall_clock_limit(0.05, "unit"):
                time.sleep(1.0)

    def test_fast_block_passes(self):
        with wall_clock_limit(5.0, "unit"):
            x = sum(range(100))
        assert x == 4950

    def test_none_budget_is_noop(self):
        with wall_clock_limit(None):
            pass
