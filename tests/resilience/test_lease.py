"""Atomic lease files: O_EXCL claims, heartbeats, rename-based steals.

Every test drives the staleness clock through the injectable ``now``
callable, so no test sleeps for a real TTL.
"""

import json

import pytest

from repro.resilience.lease import LEASE_SCHEMA, Lease, LeaseDir

FP = "a" * 16   # a job fingerprint; leases never parse it


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def leases(tmp_path, clock) -> LeaseDir:
    return LeaseDir(tmp_path / "leases", ttl_s=5.0, now=clock)


class TestAcquire:
    def test_first_acquire_wins(self, leases):
        lease = leases.acquire(FP, "w1")
        assert lease is not None
        assert lease.owner == "w1"
        assert lease.epoch == 0
        assert leases.path(FP).exists()

    def test_second_acquire_loses(self, leases):
        assert leases.acquire(FP, "w1") is not None
        assert leases.acquire(FP, "w2") is None

    def test_lease_body_roundtrips(self, leases):
        leases.acquire(FP, "w1")
        body = json.loads(leases.path(FP).read_text())
        assert body["schema"] == LEASE_SCHEMA
        got = leases.read(FP)
        assert got is not None and got.owner == "w1"

    def test_read_absent_is_none(self, leases):
        assert leases.read(FP) is None

    def test_torn_write_leaves_corrupt_lease(self, leases):
        leases.acquire(FP, "w1", torn=True)
        with pytest.raises(ValueError):
            leases.read(FP)


class TestClaimAndSteal:
    def test_claim_fresh_job(self, leases):
        lease = leases.claim(FP, "w1")
        assert lease is not None and lease.epoch == 0

    def test_live_lease_is_not_stolen(self, leases, clock):
        leases.claim(FP, "w1")
        clock.advance(4.0)           # within TTL
        assert leases.claim(FP, "w2") is None

    def test_stale_lease_is_stolen_with_epoch_bump(self, leases, clock):
        leases.claim(FP, "w1")
        clock.advance(6.0)           # past TTL
        stolen = leases.claim(FP, "w2")
        assert stolen is not None
        assert stolen.epoch == 1
        assert stolen.stolen_from == "w1"
        # the old lease was quarantined, not deleted in place
        assert list((leases.root / "stolen").glob("*.lease"))

    def test_corrupt_lease_is_stolen_immediately(self, leases):
        leases.acquire(FP, "w1", torn=True)
        stolen = leases.claim(FP, "w2")
        assert stolen is not None
        assert stolen.epoch == 1
        assert stolen.stolen_from == "<corrupt>"

    def test_clock_skew_makes_steals_premature(self, tmp_path, clock):
        skewed = LeaseDir(
            tmp_path / "leases", ttl_s=5.0, skew_s=10.0, now=clock
        )
        skewed.claim(FP, "w1")
        clock.advance(0.1)           # fresh by a fair clock
        stolen = skewed.claim(FP, "w2")
        assert stolen is not None and stolen.epoch == 1

    def test_evict_race_single_winner(self, leases, clock):
        leases.claim(FP, "w1")
        clock.advance(6.0)
        assert leases._evict(FP) is True
        assert leases._evict(FP) is False   # the loser of the rename race


class TestHeartbeat:
    def test_heartbeat_refreshes_staleness(self, leases, clock):
        lease = leases.claim(FP, "w1")
        clock.advance(4.0)
        assert leases.heartbeat(lease) is True
        clock.advance(4.0)           # 8s since acquire, 4s since beat
        assert leases.claim(FP, "w2") is None

    def test_heartbeat_after_steal_is_lost(self, leases, clock):
        lease = leases.claim(FP, "w1")
        clock.advance(6.0)
        assert leases.claim(FP, "w2") is not None
        assert leases.heartbeat(lease) is False
        current = leases.read(FP)
        assert current is not None and current.owner == "w2"

    def test_release_after_steal_reports_loss(self, leases, clock):
        lease = leases.claim(FP, "w1")
        clock.advance(6.0)
        leases.claim(FP, "w2")
        assert leases.release(lease) is False

    def test_release_drops_the_file(self, leases):
        lease = leases.claim(FP, "w1")
        assert leases.release(lease) is True
        assert not leases.path(FP).exists()


class TestSweepStale:
    def test_sweeps_expired_and_remnants(self, leases, clock):
        leases.claim("a" * 16, "w1")
        leases.claim("b" * 16, "w1")
        clock.advance(6.0)
        live = leases.claim("c" * 16, "w2")   # fresh, must survive
        (leases.root / "junk.tmp").write_text("")
        swept = leases.sweep_stale()
        assert swept["evicted"] == 2
        assert swept["remnants"] == 2         # the two evicted files
        assert leases.read(live.job).owner == "w2"
        assert not list(leases.root.glob("*.tmp"))

    def test_corrupt_lease_counts_as_stale(self, leases):
        leases.acquire(FP, "w1", torn=True)
        assert leases.sweep_stale()["evicted"] == 1
