"""The work-stealing fleet: byte-identity, steals, duplicates, merge.

The invariant under test everywhere: the merged payload list is
byte-for-byte the serial ``run_jobs`` result, regardless of worker
count, chaos-injected deaths and stalls, or duplicate completions.
"""

import functools
import json

import pytest

from repro.common.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.resilience import QuarantineError, RunJournal
from repro.resilience.fleet import (
    FleetConfig,
    FleetMergeError,
    ensure_manifest,
    fleet_dir,
    join_fleet,
    merge_fleet,
    run_fleet,
)
from repro.resilience.journal import job_fingerprint
from repro.sched import JobSpec, run_jobs
from repro.sched.cache import ResultCache

SPECS = [
    JobSpec(benchmark="MemAlign", params={"n": 8192}),
    JobSpec(benchmark="MemAlign", params={"n": 16384}),
    JobSpec(benchmark="MemAlign", params={"n": 32768}),
]


@functools.lru_cache(maxsize=1)
def expected_bytes() -> str:
    return json.dumps(run_jobs(SPECS))


def make_cfg(tmp_path, **kw) -> FleetConfig:
    kw.setdefault("run_id", "ftest")
    kw.setdefault("journal_root", tmp_path)
    kw.setdefault("lease_ttl_s", 0.5)
    kw.setdefault("heartbeat_s", 0.1)
    kw.setdefault("join_timeout_s", 60.0)
    return FleetConfig(**kw)


class TestCleanFleet:
    def test_two_workers_match_serial(self, tmp_path):
        cfg = make_cfg(tmp_path, workers=2)
        payloads = run_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        tele = cfg.telemetry
        assert tele.mode == "fleet"
        assert tele.completed == len(SPECS)
        # >= not ==: a worker may claim a job a peer completed moments
        # earlier (its resolved-set snapshot was stale), which is a
        # benign, checksum-validated duplicate acquire
        assert tele.leases_acquired >= len(SPECS)
        assert not tele.degraded

    def test_join_single_worker_matches_serial(self, tmp_path):
        cfg = make_cfg(tmp_path, workers=0)
        payloads = join_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        assert cfg.telemetry.resume_skips == 0

    def test_join_of_complete_run_is_pure_merge(self, tmp_path):
        run_fleet(SPECS, make_cfg(tmp_path, workers=2))
        cfg = make_cfg(tmp_path, workers=0)
        payloads = join_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        # nothing left to claim: every job replayed from fleet journals
        assert cfg.telemetry.resume_skips == len(SPECS)

    def test_merge_is_idempotent(self, tmp_path):
        cfg = make_cfg(tmp_path, workers=2)
        first = run_fleet(SPECS, cfg)
        again = merge_fleet(
            fleet_dir(tmp_path, "ftest"), SPECS, cfg=make_cfg(tmp_path)
        )
        assert json.dumps(again) == json.dumps(first)

    def test_merge_populates_and_validates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cfg = make_cfg(tmp_path, workers=2)
        payloads = run_fleet(SPECS, cfg, cache=cache)
        assert cache.stores == len(SPECS)
        # a second merge against the warm cache cross-validates quietly
        again = merge_fleet(
            fleet_dir(tmp_path, "ftest"), SPECS,
            cfg=make_cfg(tmp_path), cache=cache,
        )
        assert json.dumps(again) == json.dumps(payloads)


class TestChaosFleet:
    def test_killed_workers_are_stolen_from(self, tmp_path):
        # every epoch-0 claim dies; epoch-1 steals are past the armed
        # window, so the surviving worker finishes everything
        chaos = FaultPlan(3, fleet_kill_prob=1.0, sched_fault_attempts=1)
        cfg = make_cfg(tmp_path, workers=4, chaos=chaos)
        payloads = run_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        assert cfg.telemetry.leases_stolen >= 1

    def test_stalled_heartbeats_cause_validated_duplicates(self, tmp_path):
        chaos = FaultPlan(5, heartbeat_stall_prob=1.0, sched_fault_attempts=1)
        cfg = make_cfg(tmp_path, workers=2, chaos=chaos)
        payloads = run_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        assert cfg.telemetry.leases_stolen >= 1

    def test_all_workers_dead_falls_back_in_process(self, tmp_path):
        # one worker, dies on its first claim, nobody left to steal:
        # the coordinator finishes in-process with lethal chaos off
        chaos = FaultPlan(7, fleet_kill_prob=1.0, sched_fault_attempts=1)
        cfg = make_cfg(tmp_path, workers=1, chaos=chaos)
        payloads = run_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()
        tele = cfg.telemetry
        assert tele.mode == "fleet-fallback"
        assert tele.degraded
        assert tele.fallbacks and tele.fallbacks[0]["from"] == "fleet"

    def test_corrupt_leases_still_merge_identically(self, tmp_path):
        chaos = FaultPlan(11, lease_corrupt_prob=1.0, sched_fault_attempts=1)
        cfg = make_cfg(tmp_path, workers=2, chaos=chaos)
        payloads = run_fleet(SPECS, cfg)
        assert json.dumps(payloads) == expected_bytes()

    def test_poisoned_job_quarantines_the_run(self, tmp_path):
        chaos = FaultPlan(2, worker_crash_prob=1.0)   # every attempt crashes
        cfg = make_cfg(tmp_path, workers=0, chaos=chaos, max_retries=1)
        with pytest.raises(QuarantineError, match="quarantined"):
            join_fleet(SPECS, cfg)


class TestMergeValidation:
    def _publish(self, tmp_path, worker: str, payload_by_fp: dict) -> None:
        run_dir = fleet_dir(tmp_path, "ftest")
        journal = RunJournal.attach(
            run_dir / "journals", run_id=worker, meta={}
        )
        for fp, payload in payload_by_fp.items():
            journal.record(fp, payload)
        journal.close()

    def test_disagreeing_journals_refuse_to_merge(self, tmp_path):
        run_dir = fleet_dir(tmp_path, "ftest")
        ensure_manifest(run_dir, SPECS, run_id="ftest", command="test")
        fps = [job_fingerprint(s) for s in SPECS]
        good = {fp: {"kind": "run", "result": {"v": i}}
                for i, fp in enumerate(fps)}
        self._publish(tmp_path, "w-a", good)
        evil = dict(good)
        evil[fps[1]] = {"kind": "run", "result": {"v": "tampered"}}
        self._publish(tmp_path, "w-b", evil)
        with pytest.raises(FleetMergeError, match="disagree"):
            merge_fleet(run_dir, SPECS, cfg=make_cfg(tmp_path))

    def test_cache_disagreement_refuses_to_merge(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_fleet(SPECS, make_cfg(tmp_path, workers=2), cache=cache)
        # poison one cache entry behind the fleet's back
        from repro.sched.runner import _cache_key

        key = _cache_key(cache, SPECS[0])
        cache.put(key, {"kind": "run", "result": {"v": "poisoned"}})
        with pytest.raises(FleetMergeError, match="result cache"):
            merge_fleet(
                fleet_dir(tmp_path, "ftest"), SPECS,
                cfg=make_cfg(tmp_path), cache=cache,
            )

    def test_incomplete_run_refuses_to_merge(self, tmp_path):
        run_dir = fleet_dir(tmp_path, "ftest")
        ensure_manifest(run_dir, SPECS, run_id="ftest", command="test")
        with pytest.raises(ReproError, match="incomplete"):
            merge_fleet(run_dir, SPECS, cfg=make_cfg(tmp_path))


class TestManifest:
    def test_mismatched_job_list_fails_loudly(self, tmp_path):
        run_dir = fleet_dir(tmp_path, "ftest")
        ensure_manifest(run_dir, SPECS, run_id="ftest", command="test")
        other = [JobSpec(benchmark="MemAlign", params={"n": 1024})]
        with pytest.raises(ReproError, match="different job list"):
            ensure_manifest(run_dir, other, run_id="ftest", command="test")

    def test_same_job_list_validates(self, tmp_path):
        run_dir = fleet_dir(tmp_path, "ftest")
        first = ensure_manifest(run_dir, SPECS, run_id="ftest", command="t")
        second = ensure_manifest(run_dir, SPECS, run_id="ftest", command="t")
        assert first["jobs"] == second["jobs"]


class TestConfigValidation:
    def test_heartbeat_must_beat_faster_than_ttl(self, tmp_path):
        with pytest.raises(ReproError, match="heartbeat"):
            make_cfg(tmp_path, heartbeat_s=1.0, lease_ttl_s=0.5)

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ReproError, match="TTL"):
            make_cfg(tmp_path, lease_ttl_s=0.0)
