"""Checkpoint/resume: replay + remaining work == uninterrupted run.

The core guarantee: payloads are the JSON-ready dicts the result types
round-trip through, so a journal replay, a cache replay, and a fresh
computation are byte-for-byte interchangeable — an interrupted run
resumed under chaos still produces exactly the bytes of a clean run.
"""

import functools
import json
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.resilience import ResilienceConfig, RunJournal, run_supervised
from repro.sched import JobSpec, run_jobs

SPECS = [
    JobSpec(benchmark="MemAlign", params={"n": 8192}),
    JobSpec(benchmark="MemAlign", params={"n": 16384}),
    JobSpec(benchmark="MemAlign", params={"n": 32768}),
]


@functools.lru_cache(maxsize=1)
def expected_bytes() -> str:
    return json.dumps(run_jobs(SPECS))


class TestInterruptResume:
    def test_chaos_interrupt_checkpoints_then_resumes(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="r1")
        config = ResilienceConfig(
            journal=journal, chaos=FaultPlan(0, interrupt_after_jobs=1)
        )
        with pytest.raises(KeyboardInterrupt):
            run_supervised(SPECS, config=config)
        assert config.telemetry.completed == 1
        journal.close()

        resumed = RunJournal.resume(tmp_path, "r1")
        config2 = ResilienceConfig(journal=resumed)
        payloads = run_supervised(SPECS, config=config2)
        resumed.close()
        assert json.dumps(payloads) == expected_bytes()
        assert config2.telemetry.resume_skips == 1
        assert config2.telemetry.completed == 2

    def test_pool_interrupt_resumes_in_pool_mode(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="r1")
        config = ResilienceConfig(
            journal=journal, chaos=FaultPlan(0, interrupt_after_jobs=1)
        )
        with pytest.raises(KeyboardInterrupt):
            run_supervised(SPECS, jobs=2, config=config)
        saved = config.telemetry.completed
        assert saved >= 1
        journal.close()

        resumed = RunJournal.resume(tmp_path, "r1")
        config2 = ResilienceConfig(journal=resumed)
        payloads = run_supervised(SPECS, jobs=2, config=config2)
        resumed.close()
        assert json.dumps(payloads) == expected_bytes()
        assert config2.telemetry.resume_skips == saved

    def test_fully_journaled_run_executes_nothing(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="r1")
        run_supervised(SPECS, config=ResilienceConfig(journal=journal))
        journal.close()

        resumed = RunJournal.resume(tmp_path, "r1")
        config = ResilienceConfig(journal=resumed)
        payloads = run_supervised(SPECS, config=config)
        resumed.close()
        assert json.dumps(payloads) == expected_bytes()
        assert config.telemetry.resume_skips == 3
        assert config.telemetry.completed == 0

    def test_code_change_invalidates_fingerprint(self, tmp_path):
        # a journal from different specs replays nothing (params are
        # part of the fingerprint closure)
        journal = RunJournal.create(tmp_path, run_id="r1")
        run_supervised(
            [JobSpec(benchmark="MemAlign", params={"n": 4096})],
            config=ResilienceConfig(journal=journal),
        )
        journal.close()

        resumed = RunJournal.resume(tmp_path, "r1")
        config = ResilienceConfig(journal=resumed)
        run_supervised(SPECS[:1], config=config)
        resumed.close()
        assert config.telemetry.resume_skips == 0
        assert config.telemetry.completed == 1


class TestReplayProperty:
    @given(
        k=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
        crash=st.sampled_from([0.0, 1.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_replay_plus_remaining_is_byte_identical(self, k, seed, crash):
        """Interrupt after k jobs, resume under crash chaos: the final
        payload list is byte-identical to the uninterrupted run."""
        with tempfile.TemporaryDirectory() as root:
            journal = RunJournal.create(root, run_id="prop")
            config = ResilienceConfig(
                journal=journal,
                chaos=FaultPlan(seed, interrupt_after_jobs=k),
            )
            with pytest.raises(KeyboardInterrupt):
                run_supervised(SPECS, config=config)
            journal.close()

            resumed = RunJournal.resume(root, "prop")
            config2 = ResilienceConfig(
                journal=resumed,
                chaos=FaultPlan(
                    seed,
                    worker_crash_prob=crash,
                    sched_fault_attempts=1,
                ),
            )
            payloads = run_supervised(SPECS, config=config2)
            resumed.close()
            assert json.dumps(payloads) == expected_bytes()
            assert config2.telemetry.resume_skips == k
