"""The append-only NDJSON run journal and job fingerprints."""

import json

import pytest

from repro.common.errors import ReproError
from repro.resilience import JOURNAL_SCHEMA, RunJournal, job_fingerprint, new_run_id
from repro.sched import JobSpec


class TestLifecycle:
    def test_create_writes_header(self, tmp_path):
        with RunJournal.create(tmp_path, run_id="r1", meta={"command": "sweep"}) as j:
            assert j.run_id == "r1"
        header = json.loads((tmp_path / "r1.ndjson").read_text().splitlines()[0])
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["run_id"] == "r1"
        assert header["command"] == "sweep"

    def test_create_refuses_existing_run_id(self, tmp_path):
        RunJournal.create(tmp_path, run_id="r1").close()
        with pytest.raises(ReproError, match="--resume r1"):
            RunJournal.create(tmp_path, run_id="r1")

    def test_record_and_resume(self, tmp_path):
        with RunJournal.create(tmp_path, run_id="r1") as j:
            j.record("fp-a", {"x": 1.5}, meta={"benchmark": "Shmem"})
            j.record("fp-b", {"x": 2.5})
        resumed = RunJournal.resume(tmp_path, "r1")
        assert len(resumed) == 2
        assert resumed.completed["fp-a"] == {"x": 1.5}
        assert resumed.completed["fp-b"] == {"x": 2.5}
        resumed.close()

    def test_resume_missing_run_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="no journal"):
            RunJournal.resume(tmp_path, "nope")

    def test_resume_wrong_schema_rejected(self, tmp_path):
        (tmp_path / "r1.ndjson").write_text(
            json.dumps({"schema": "other/9", "run_id": "r1"}) + "\n"
        )
        with pytest.raises(ReproError, match="schema"):
            RunJournal.resume(tmp_path, "r1")

    def test_unwritable_dir_is_repro_error(self, tmp_path):
        blocker = tmp_path / "journal"
        blocker.write_text("not a directory")
        with pytest.raises(ReproError, match="not writable"):
            RunJournal.create(blocker, run_id="r1")

    def test_new_run_ids_unique(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64


class TestTornTail:
    def test_torn_final_line_tolerated(self, tmp_path):
        with RunJournal.create(tmp_path, run_id="r1") as j:
            j.record("fp-a", {"x": 1})
        path = tmp_path / "r1.ndjson"
        with path.open("a") as fh:
            fh.write('{"job": "fp-b", "payl')  # killed mid-append
        resumed = RunJournal.resume(tmp_path, "r1")
        assert set(resumed.completed) == {"fp-a"}
        # the reopened journal still appends cleanly after the torn tail
        resumed.record("fp-c", {"x": 3})
        resumed.close()
        again = RunJournal.resume(tmp_path, "r1")
        assert set(again.completed) == {"fp-a", "fp-c"}
        again.close()

    def test_garbage_lines_skipped(self, tmp_path):
        with RunJournal.create(tmp_path, run_id="r1") as j:
            j.record("fp-a", {"x": 1})
        path = tmp_path / "r1.ndjson"
        text = path.read_text().splitlines()
        text.insert(1, "not json at all")
        path.write_text("\n".join(text) + "\n")
        resumed = RunJournal.resume(tmp_path, "r1")
        assert set(resumed.completed) == {"fp-a"}
        resumed.close()

    def test_float_payloads_roundtrip_exactly(self, tmp_path):
        payload = {"t": 0.1 + 0.2, "x": 1e-17}
        with RunJournal.create(tmp_path, run_id="r1") as j:
            j.record("fp", payload)
        resumed = RunJournal.resume(tmp_path, "r1")
        assert resumed.completed["fp"] == payload
        resumed.close()


class TestFingerprint:
    def test_stable_for_same_spec(self):
        spec = JobSpec(benchmark="Shmem", params={"n": 64})
        assert job_fingerprint(spec) == job_fingerprint(spec)

    def test_params_change_fingerprint(self):
        a = JobSpec(benchmark="Shmem", params={"n": 64})
        b = JobSpec(benchmark="Shmem", params={"n": 128})
        assert job_fingerprint(a) != job_fingerprint(b)

    def test_backend_changes_fingerprint(self):
        a = JobSpec(benchmark="Shmem", params={"n": 64})
        b = JobSpec(benchmark="Shmem", params={"n": 64}, backend="fast")
        assert job_fingerprint(a) != job_fingerprint(b)

    def test_differs_from_cache_key(self, tmp_path):
        # domain separation: a journal line can never alias a cache entry
        from repro.sched import ResultCache
        from repro.sched.runner import _cache_key

        spec = JobSpec(benchmark="Shmem", params={"n": 64})
        cache = ResultCache(tmp_path / "cache")
        assert job_fingerprint(spec) != _cache_key(cache, spec)
