"""The --chaos grammar and the scheduler-layer FaultPlan extensions."""

import pytest

from repro.common.errors import ReproError
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.resilience import parse_chaos


class TestParseChaos:
    def test_full_spec(self):
        plan = parse_chaos(
            "seed=7,crash=0.4,hang=0.2,payload=0.3,cache=0.5,"
            "max-fault-attempts=2,interrupt-after=1,diverge=0;2"
        )
        assert plan.seed == 7
        assert plan.worker_crash_prob == 0.4
        assert plan.worker_hang_prob == 0.2
        assert plan.payload_corrupt_prob == 0.3
        assert plan.cache_corrupt_prob == 0.5
        assert plan.sched_fault_attempts == 2
        assert plan.interrupt_after_jobs == 1
        assert plan.divergence_jobs == (0, 2)

    def test_defaults(self):
        plan = parse_chaos("seed=3")
        assert plan.worker_crash_prob == 0.0
        assert plan.divergence_jobs == ()
        assert plan.sched_fault_attempts is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError, match="unknown"):
            parse_chaos("seed=1,explode=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(ReproError):
            parse_chaos("crash=lots")

    def test_bad_item_rejected(self):
        with pytest.raises(ReproError):
            parse_chaos("seed")

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ReproError):
            parse_chaos("crash=1.5")


class TestSchedFaultDecisions:
    def test_keyed_decisions_are_order_independent(self):
        a = FaultPlan(9, worker_crash_prob=0.5)
        b = FaultPlan(9, worker_crash_prob=0.5)
        order_a = [a.worker_outcome(i, 0) for i in range(8)]
        order_b = [b.worker_outcome(i, 0) for i in reversed(range(8))]
        assert order_a == list(reversed(order_b))

    def test_crash_and_hang_partition(self):
        plan = FaultPlan(3, worker_crash_prob=0.5, worker_hang_prob=0.5)
        outcomes = {plan.worker_outcome(i, 0) for i in range(16)}
        assert outcomes <= {"crash", "hang"}
        assert len(outcomes) == 2  # both fire at these odds

    def test_crash_plus_hang_over_one_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(0, worker_crash_prob=0.7, worker_hang_prob=0.7)

    def test_fault_attempts_bound_disarms_retries(self):
        plan = FaultPlan(1, worker_crash_prob=1.0, sched_fault_attempts=1)
        assert plan.worker_outcome(0, 0) == "crash"
        assert plan.worker_outcome(0, 1) == "ok"

    def test_payload_outcomes(self):
        plan = FaultPlan(2, payload_corrupt_prob=1.0)
        assert {plan.payload_outcome(i, 0) for i in range(8)} <= {
            "truncate", "corrupt"
        }
        assert FaultPlan(2).payload_outcome(0, 0) == "ok"

    def test_divergence_jobs(self):
        plan = FaultPlan(0, divergence_jobs=(1, 3))
        assert [plan.job_diverges(i) for i in range(4)] == [
            False, True, False, True,
        ]

    def test_interrupts_after(self):
        plan = FaultPlan(0, interrupt_after_jobs=2)
        assert not plan.interrupts_after(1)
        assert plan.interrupts_after(2)
        assert plan.interrupts_after(3)
        assert not FaultPlan(0).interrupts_after(100)

    def test_interrupt_after_zero_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(0, interrupt_after_jobs=0)

    def test_retry_jitter_uniform_and_deterministic(self):
        plan = FaultPlan(4)
        draws = [plan.retry_jitter(i, a) for i in range(4) for a in range(2)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert draws == [
            FaultPlan(4).retry_jitter(i, a) for i in range(4) for a in range(2)
        ]

    def test_cache_read_corrupts_keyed_on_read_ordinal(self):
        plan = FaultPlan(5, cache_corrupt_prob=1.0)
        assert plan.cache_read_corrupts(0)
        assert not FaultPlan(5).cache_read_corrupts(0)


class TestRetryPolicyJitter:
    def test_zero_jitter_reproduces_schedule(self):
        policy = RetryPolicy(backoff_s=1e-4, multiplier=2.0)
        assert policy.backoff(0) == pytest.approx(1e-4)
        assert policy.backoff(2) == pytest.approx(4e-4)

    def test_jitter_scales_with_u(self):
        policy = RetryPolicy(backoff_s=1e-4, jitter_frac=0.5)
        assert policy.backoff(0, 0.0) == pytest.approx(1e-4)
        assert policy.backoff(0, 1.0) == pytest.approx(1.5e-4)
        assert policy.backoff(0, 0.5) == pytest.approx(1.25e-4)
