"""Resilient scheduling: supervision, journal/resume, chaos."""
