"""Journal-directory tools: ``list_runs``, ``gc_runs``, ``attach``.

These back ``repro journal ls/show/gc``; the CLI wrappers are covered
in ``tests/test_cli.py``.
"""

import os
import time

from repro.resilience import RunJournal, gc_runs, list_runs
from repro.resilience.fleet import ensure_manifest, fleet_dir
from repro.resilience.lease import LeaseDir
from repro.sched import JobSpec

SPEC = JobSpec(benchmark="MemAlign", params={"n": 8192})


def _make_run(root, run_id: str, jobs: int = 2) -> None:
    journal = RunJournal.create(root, run_id=run_id, meta={"command": "sweep"})
    for i in range(jobs):
        journal.record(f"fp{i:02d}", {"kind": "run", "result": {"i": i}})
    journal.close()


def _make_fleet_run(root, run_id: str) -> None:
    run_dir = fleet_dir(root, run_id)
    ensure_manifest(run_dir, [SPEC], run_id=run_id, command="sweep")
    journal = RunJournal.attach(run_dir / "journals", run_id="w-1", meta={})
    journal.record("fp00", {"kind": "run", "result": {}})
    journal.close()


def _backdate(path, days: float) -> None:
    old = time.time() - days * 86400.0
    for p in [path, *path.rglob("*")] if path.is_dir() else [path]:
        os.utime(p, (old, old))


class TestListRuns:
    def test_empty_dir(self, tmp_path):
        assert list_runs(tmp_path) == []
        assert list_runs(tmp_path / "missing") == []

    def test_lists_runs_and_fleets(self, tmp_path):
        _make_run(tmp_path, "r1")
        _make_fleet_run(tmp_path, "f1")
        runs = {e["run_id"]: e for e in list_runs(tmp_path)}
        assert runs["r1"]["kind"] == "run"
        assert runs["r1"]["jobs"] == 2
        assert runs["f1"]["kind"] == "fleet"
        assert runs["f1"]["jobs"] == 1
        assert runs["f1"]["total"] == 1

    def test_sorted_newest_first(self, tmp_path):
        _make_run(tmp_path, "old")
        _backdate(tmp_path / "old.ndjson", 3)
        _make_run(tmp_path, "new")
        assert [e["run_id"] for e in list_runs(tmp_path)] == ["new", "old"]


class TestGcRuns:
    def test_age_based_removal(self, tmp_path):
        _make_run(tmp_path, "old")
        _backdate(tmp_path / "old.ndjson", 10)
        _make_run(tmp_path, "new")
        summary = gc_runs(tmp_path, older_than_days=7)
        assert [e["run_id"] for e in summary["removed"]] == ["old"]
        assert summary["kept"] == 1
        assert not (tmp_path / "old.ndjson").exists()
        assert (tmp_path / "new.ndjson").exists()

    def test_dry_run_touches_nothing(self, tmp_path):
        _make_run(tmp_path, "old")
        _backdate(tmp_path / "old.ndjson", 10)
        summary = gc_runs(tmp_path, older_than_days=7, dry_run=True)
        assert summary["dry_run"] is True
        assert [e["run_id"] for e in summary["removed"]] == ["old"]
        assert (tmp_path / "old.ndjson").exists()

    def test_removes_old_fleet_dirs(self, tmp_path):
        _make_fleet_run(tmp_path, "oldfleet")
        _backdate(fleet_dir(tmp_path, "oldfleet"), 10)
        summary = gc_runs(tmp_path, older_than_days=7)
        assert [e["run_id"] for e in summary["removed"]] == ["oldfleet"]
        assert not fleet_dir(tmp_path, "oldfleet").exists()

    def test_sweeps_stale_leases_of_surviving_fleets(self, tmp_path):
        _make_fleet_run(tmp_path, "f1")
        lease_root = fleet_dir(tmp_path, "f1") / "leases"
        # an expired lease: heartbeat far in the past
        stale_clock = lambda: time.time() - 3600.0  # noqa: E731
        LeaseDir(lease_root, now=stale_clock).acquire("dead0", "w-gone")
        (fleet_dir(tmp_path, "f1") / "journals" / "x.tmp").write_text("")
        summary = gc_runs(tmp_path)
        assert summary["removed"] == []
        assert summary["stale_leases_evicted"] == 1
        assert summary["steal_remnants_removed"] == 1
        assert summary["tmp_files_removed"] >= 1

    def test_no_cutoff_keeps_everything(self, tmp_path):
        _make_run(tmp_path, "old")
        _backdate(tmp_path / "old.ndjson", 100)
        summary = gc_runs(tmp_path)
        assert summary["removed"] == []
        assert summary["kept"] == 1


class TestAttach:
    def test_attach_creates_then_resumes(self, tmp_path):
        j1 = RunJournal.attach(tmp_path, run_id="w1", meta={"command": "x"})
        j1.record("fp00", {"kind": "run", "result": {}})
        j1.close()
        j2 = RunJournal.attach(tmp_path, run_id="w1")
        assert "fp00" in j2.completed
        j2.record("fp01", {"kind": "run", "result": {}})
        j2.close()
        _, completed = RunJournal._load(tmp_path / "w1.ndjson")
        assert set(completed) == {"fp00", "fp01"}
