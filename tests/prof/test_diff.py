"""Run-to-run diffing: thresholds, direction, and the report verdict."""

import pytest

from repro.common.errors import ReproError
from repro.prof.diff import DiffReport, diff_metrics


def doc(kernels):
    return {"schema": "repro-prof-metrics/1", "kernels": kernels}


def entry(time_avg=1e-3, **metrics):
    return {"time_avg_s": time_avg, "metrics": metrics}


class TestTimeThreshold:
    def test_within_tolerance_ok(self):
        r = diff_metrics(
            doc({"k": entry(time_avg=1e-3)}),
            doc({"k": entry(time_avg=1.05e-3)}),
        )
        assert r.ok

    def test_beyond_tolerance_regresses(self):
        r = diff_metrics(
            doc({"k": entry(time_avg=1e-3)}),
            doc({"k": entry(time_avg=1.2e-3)}),
        )
        assert not r.ok
        assert r.regressions[0].quantity == "time_avg_s"

    def test_custom_tolerance(self):
        before = doc({"k": entry(time_avg=1e-3)})
        after = doc({"k": entry(time_avg=1.2e-3)})
        assert diff_metrics(before, after, time_tolerance=0.5).ok

    def test_improvement_never_regresses(self):
        r = diff_metrics(
            doc({"k": entry(time_avg=1e-3)}),
            doc({"k": entry(time_avg=0.5e-3)}),
        )
        assert r.ok
        assert len(r.changed()) == 1


class TestMetricThresholds:
    def test_efficiency_drop_regresses(self):
        r = diff_metrics(
            doc({"k": entry(gld_efficiency=1.0)}),
            doc({"k": entry(gld_efficiency=0.5)}),
        )
        assert not r.ok

    def test_small_efficiency_drop_tolerated(self):
        r = diff_metrics(
            doc({"k": entry(warp_execution_efficiency=1.0)}),
            doc({"k": entry(warp_execution_efficiency=0.97)}),
        )
        assert r.ok

    def test_transactions_growth_regresses(self):
        r = diff_metrics(
            doc({"k": entry(transactions_per_request=1.0)}),
            doc({"k": entry(transactions_per_request=8.0)}),
        )
        assert not r.ok

    def test_neutral_metric_never_regresses(self):
        r = diff_metrics(
            doc({"k": entry(some_other_metric=1.0)}),
            doc({"k": entry(some_other_metric=99.0)}),
        )
        assert r.ok
        assert len(r.changed()) == 1


class TestKernelSets:
    def test_added_and_removed(self):
        r = diff_metrics(doc({"a": entry(), "b": entry()}), doc({"b": entry(), "c": entry()}))
        assert r.added_kernels == ["c"]
        assert r.removed_kernels == ["a"]
        assert r.ok  # presence changes alone are not regressions

    def test_identical_docs_no_changes(self):
        d = doc({"k": entry(gld_efficiency=0.8)})
        r = diff_metrics(d, d)
        assert r.ok and not r.changed()


class TestRender:
    def test_report_mentions_regression(self):
        r = diff_metrics(
            doc({"k": entry(time_avg=1e-3)}),
            doc({"k": entry(time_avg=2e-3)}),
            before_label="base.json",
            after_label="head.json",
        )
        out = r.render()
        assert "base.json" in out and "head.json" in out
        assert "REGRESSED" in out
        assert "1 regression(s)" in out

    def test_clean_report_says_ok(self):
        d = doc({"k": entry()})
        out = diff_metrics(d, d).render()
        assert "verdict: OK" in out
        assert "no per-kernel changes" in out

    def test_rel_delta_infinite_from_zero(self):
        r = diff_metrics(doc({"k": entry(time_avg=0.0)}), doc({"k": entry(time_avg=1.0)}))
        e = r.entries[0]
        assert e.rel_delta == float("inf")
        assert isinstance(r, DiffReport)


def bench_doc(rows):
    return {
        "schema": "repro-prof-bench/1",
        "results": [
            {
                "benchmark": name,
                "baseline_time_s": base,
                "optimized_time_s": opt,
                "speedup": base / opt,
                "verified": True,
            }
            for name, base, opt in rows
        ],
    }


class TestBenchDocuments:
    """Regression: bench documents used to diff to an empty OK report."""

    def test_added_and_removed_benchmarks_reported(self):
        r = diff_metrics(
            bench_doc([("A", 1.0, 0.5), ("B", 1.0, 0.5)]),
            bench_doc([("B", 1.0, 0.5), ("C", 1.0, 0.5)]),
        )
        assert r.added_benchmarks == ["C"]
        assert r.removed_benchmarks == ["A"]
        assert "benchmarks only in after: C" in r.render()
        assert "benchmarks only in before: A" in r.render()

    def test_presence_changes_alone_are_not_regressions(self):
        r = diff_metrics(bench_doc([("A", 1.0, 0.5)]), bench_doc([("B", 1.0, 0.5)]))
        assert r.ok

    def test_speedup_drop_regresses(self):
        r = diff_metrics(
            bench_doc([("A", 1.0, 0.5)]),   # speedup 2.0
            bench_doc([("A", 1.0, 0.8)]),   # speedup 1.25
        )
        assert not r.ok
        quantities = {e.quantity for e in r.regressions}
        assert "speedup" in quantities

    def test_speedup_within_tolerance_ok(self):
        r = diff_metrics(
            bench_doc([("A", 1.0, 0.50)]),
            bench_doc([("A", 1.0, 0.52)]),   # 2.0 -> 1.92, inside 10%
        )
        assert r.ok

    def test_speedup_improvement_never_regresses(self):
        r = diff_metrics(bench_doc([("A", 1.0, 0.5)]), bench_doc([("A", 1.0, 0.25)]))
        assert r.ok

    def test_baseline_time_growth_regresses(self):
        before = bench_doc([("A", 1.0, 0.5)])
        after = bench_doc([("A", 2.0, 1.0)])   # same speedup, slower overall
        r = diff_metrics(before, after)
        assert not r.ok
        assert {e.quantity for e in r.regressions} == {
            "baseline_time_s",
            "optimized_time_s",
        }

    def test_identical_bench_docs_clean(self):
        d = bench_doc([("A", 1.0, 0.5), ("B", 2.0, 0.5)])
        r = diff_metrics(d, d)
        assert r.ok and not r.changed()
        assert not r.added_benchmarks and not r.removed_benchmarks


class TestMalformedDocuments:
    """Hardening: malformed inputs raise pointed errors, not KeyError."""

    def test_non_dict_document(self):
        with pytest.raises(ReproError, match="before.*JSON object.*list"):
            diff_metrics([1, 2], doc({}))

    def test_non_dict_after_document_names_label(self):
        with pytest.raises(ReproError, match="candidate.*JSON object"):
            diff_metrics(doc({}), "nope", after_label="candidate")

    def test_non_dict_kernels_section(self):
        bad = {"schema": "repro-prof-metrics/1", "kernels": ["k1", "k2"]}
        with pytest.raises(ReproError, match="'kernels' must be a JSON object"):
            diff_metrics(bad, doc({}))

    def test_null_kernels_section_reads_empty(self):
        r = diff_metrics(
            {"schema": "repro-prof-metrics/1", "kernels": None}, doc({})
        )
        assert r.ok and not r.entries

    def test_non_dict_kernel_entry(self):
        with pytest.raises(ReproError, match="kernel 'k' entry must be"):
            diff_metrics(doc({"k": "fast"}), doc({"k": entry()}))

    def test_non_numeric_time(self):
        with pytest.raises(ReproError, match="time_avg_s must be a number"):
            diff_metrics(
                doc({"k": {"time_avg_s": "quick", "metrics": {}}}),
                doc({"k": entry()}),
            )

    def test_non_numeric_metric_value_names_side(self):
        before = doc({"k": entry(gld_efficiency=0.9)})
        after = doc({"k": {"time_avg_s": 1e-3,
                           "metrics": {"gld_efficiency": None}}})
        with pytest.raises(
            ReproError, match="after: kernel 'k' metric gld_efficiency"
        ):
            diff_metrics(before, after)

    def test_non_dict_metrics_section(self):
        bad = doc({"k": {"time_avg_s": 1e-3, "metrics": [0.9]}})
        with pytest.raises(ReproError, match="'metrics' must be a JSON object"):
            diff_metrics(bad, doc({"k": entry()}))

    def test_non_numeric_speedup_in_bench_doc(self):
        before = bench_doc([("B", 2.0, 1.0)])
        after = {
            "schema": "repro-prof-bench/1",
            "results": [{"benchmark": "B", "speedup": "fast"}],
        }
        with pytest.raises(ReproError, match="benchmark 'B' speedup"):
            diff_metrics(before, after)


class TestBackendStamp:
    def _stamped(self, backend, time_avg=1e-3):
        d = doc({"k": entry(time_avg=time_avg)})
        d["execution"] = {"backend": backend}
        return d

    def test_document_backend_reads_execution_section(self):
        from repro.prof.diff import document_backend

        assert document_backend(self._stamped("jit")) == "jit"

    def test_document_backend_reads_top_level(self):
        from repro.prof.diff import document_backend

        assert document_backend({"backend": "fast"}) == "fast"
        # execution section wins over a top-level stamp
        d = {"backend": "fast", "execution": {"backend": "jit"}}
        assert document_backend(d) == "jit"

    def test_document_backend_none_for_old_layouts(self):
        from repro.prof.diff import document_backend

        assert document_backend(doc({"k": entry()})) is None

    def test_same_backend_diffs_and_reports(self):
        r = diff_metrics(self._stamped("jit"), self._stamped("jit"))
        assert (r.before_backend, r.after_backend) == ("jit", "jit")
        assert "backend: jit -> jit" in r.render()
        assert "MISMATCH" not in r.render()

    def test_cross_backend_refused(self):
        with pytest.raises(ReproError, match="refusing to diff across"):
            diff_metrics(self._stamped("reference"), self._stamped("jit"))

    def test_cross_backend_allowed_by_flag(self):
        r = diff_metrics(
            self._stamped("reference"),
            self._stamped("jit"),
            allow_backend_mismatch=True,
        )
        assert (r.before_backend, r.after_backend) == ("reference", "jit")
        assert "backend: reference -> jit  (MISMATCH allowed by flag)" in r.render()

    def test_unstamped_doc_diffs_against_anything(self):
        diff_metrics(doc({"k": entry()}), self._stamped("jit"))
        diff_metrics(self._stamped("fast"), doc({"k": entry()}))
