"""Golden baselines: every committed result document validates and wins.

The repo commits the regenerated figure/table documents under
``benchmarks/results/`` plus the Table I summary at the repo root.
These tests pin them: each must pass :func:`validate_document`, and the
Table I rows must show the paper's direction (speedup > 1) for all
fourteen benchmarks.
"""

import json
from pathlib import Path

import pytest

from repro.core.registry import list_benchmarks
from repro.prof.metrics import BENCH_SCHEMA, load_metrics, validate_document

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS = sorted((REPO_ROOT / "benchmarks" / "results").glob("*.json"))
TABLE1 = REPO_ROOT / "BENCH_table1.json"


@pytest.mark.parametrize("path", RESULTS, ids=lambda p: p.name)
def test_committed_results_validate(path):
    doc = load_metrics(path)
    problems = validate_document(doc)
    assert not problems, f"{path.name}: {problems}"


def test_results_directory_not_empty():
    assert RESULTS, "no committed baseline documents found"


class TestTable1Baseline:
    @pytest.fixture(scope="class")
    def doc(self):
        return json.loads(TABLE1.read_text())

    def test_validates(self, doc):
        assert doc["schema"] == BENCH_SCHEMA
        assert validate_document(doc) == []

    def test_all_fourteen_present(self, doc):
        names = [r["benchmark"] for r in doc["results"]]
        assert sorted(names) == sorted(list_benchmarks())

    def test_every_optimization_wins(self, doc):
        losers = {
            r["benchmark"]: r["speedup"]
            for r in doc["results"]
            if not r["speedup"] > 1.0
        }
        assert not losers, f"Table I rows without a speedup: {losers}"

    def test_all_verified(self, doc):
        assert doc["all_verified"] is True
        assert all(r["verified"] for r in doc["results"])


def test_validate_rejects_unknown_schema():
    assert validate_document({"schema": "bogus/1"}) != []
    assert validate_document([1, 2]) != []


def test_validate_flags_truncated_series():
    doc = {
        "schema": BENCH_SCHEMA,
        "sweep": {"x_name": "n", "x_values": [1, 2], "series": {"s": [0.5]}},
    }
    assert any("series" in p for p in validate_document(doc))


class TestJitGoldenDocument:
    """The committed jit-produced metrics document stays valid.

    ``benchmarks/results/jit_memalign_metrics.json`` was produced by
    ``repro profile MemAlign --backend jit --json ...`` and pins the
    third backend's export format: the backend stamp, the jit life-cycle
    counters, and compatibility with the offline conformance audit.
    """

    PATH = REPO_ROOT / "benchmarks" / "results" / "jit_memalign_metrics.json"

    @pytest.fixture(scope="class")
    def doc(self):
        return load_metrics(self.PATH)

    def test_backend_stamped_jit(self, doc):
        from repro.prof import document_backend

        assert document_backend(doc) == "jit"

    def test_jit_lifecycle_counters_present(self, doc):
        execution = doc["execution"]
        for key in ("jit_traced", "jit_compiled", "jit_replayed",
                    "jit_bailouts", "jit_untraceable"):
            assert key in execution, f"missing {key}"
        assert execution["jit_traced"] > 0
        assert execution["jit_compiled"] > 0
        assert execution["jit_bailouts"] == 0

    def test_offline_check_passes(self):
        from repro.__main__ import main

        assert main(["check", "--doc", str(self.PATH)]) == 0
