"""Activity records, the hub's subscribe/emit gating, and the log."""

import pytest

from repro.prof.activity import KINDS, ActivityHub, ActivityLog, ActivityRecord


class TestActivityRecord:
    def test_timed(self):
        r = ActivityRecord("kernel", "k", start=1.0, end=2.5)
        assert r.timed
        assert r.duration == pytest.approx(1.5)

    def test_driver_phase_untimed(self):
        r = ActivityRecord("launch", "k")
        assert not r.timed
        assert r.duration == 0.0

    def test_frozen(self):
        r = ActivityRecord("kernel", "k")
        with pytest.raises(AttributeError):
            r.name = "other"


class TestHubGating:
    def test_no_subscribers_wants_nothing(self):
        hub = ActivityHub()
        assert all(not hub.wants(k) for k in KINDS)

    def test_emit_without_subscriber_returns_none(self):
        hub = ActivityHub()
        assert hub.emit("kernel", "k") is None

    def test_subscribe_all(self):
        hub = ActivityHub()
        hub.subscribe(lambda r: None)
        assert all(hub.wants(k) for k in KINDS)

    def test_subscribe_subset(self):
        hub = ActivityHub()
        hub.subscribe(lambda r: None, kinds=("kernel", "memcpy"))
        assert hub.wants("kernel") and hub.wants("memcpy")
        assert not hub.wants("counter")

    def test_unknown_kind_rejected(self):
        hub = ActivityHub()
        with pytest.raises(ValueError, match="unknown activity kind"):
            hub.subscribe(lambda r: None, kinds=("kernel", "bogus"))

    def test_unsubscribe_restores_gate(self):
        hub = ActivityHub()
        sid = hub.subscribe(lambda r: None, kinds=("fault",))
        assert hub.wants("fault")
        hub.unsubscribe(sid)
        assert not hub.wants("fault")
        assert hub.subscriber_count == 0


class TestDispatch:
    def test_routes_by_kind(self):
        hub = ActivityHub()
        kernels, everything = ActivityLog(), ActivityLog()
        hub.subscribe(kernels, kinds=("kernel",))
        hub.subscribe(everything)
        hub.emit("kernel", "k", track="s1", start=0.0, end=1.0)
        hub.emit("memcpy", "h2d", track="copy", start=1.0, end=2.0, nbytes=64)
        assert len(kernels) == 1
        assert len(everything) == 2
        assert everything.records[1].args["nbytes"] == 64

    def test_seq_monotonic(self):
        hub = ActivityHub()
        log = ActivityLog()
        hub.subscribe(log)
        for i in range(5):
            hub.emit("launch", f"k{i}")
        seqs = [r.seq for r in log.records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_log_by_kind_and_clear(self):
        hub = ActivityHub()
        log = ActivityLog()
        hub.subscribe(log)
        hub.emit("kernel", "k", start=0.0, end=1.0)
        hub.emit("fault", "h2d-fail")
        assert [r.name for r in log.by_kind("fault")] == ["h2d-fail"]
        log.clear()
        assert len(log) == 0
