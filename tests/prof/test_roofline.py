"""Roofline classification: ridge, bound, efficiency, rendering."""

import numpy as np
import pytest

from repro.prof.roofline import classify_kernel, peak_lane_ops, render_roofline
from repro.simt.kernel import kernel
from repro.timing.model import estimate_kernel_time


@kernel
def streaming(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) + 1.0))


@kernel
def compute_heavy(ctx, x, n):
    i = ctx.global_thread_id()

    def body():
        v = ctx.load(x, i)
        for _ in range(64):
            v = v * 1.0001 + 0.5
        ctx.store(x, i, v)

    ctx.if_active(i < n, body)


def _classify(rt, kern, n=1 << 16):
    x = rt.to_device(np.ones(n, dtype=np.float32))
    stats = rt.launch(kern, n // 256, 256, x, n)
    rt.synchronize()
    timing = estimate_kernel_time(stats, rt.gpu, launch_kind="none")
    dram = timing.traffic.dram_bytes if timing.traffic else None
    return classify_kernel(stats, rt.gpu, exec_s=timing.exec_s, dram_bytes=dram)


class TestClassification:
    def test_streaming_kernel_memory_bound(self, rt):
        p = _classify(rt, streaming)
        assert p.bound == "memory"
        assert p.intensity < p.ridge

    def test_compute_heavy_kernel_compute_bound(self, rt):
        p = _classify(rt, compute_heavy)
        assert p.bound == "compute"
        assert p.intensity > p.ridge

    def test_efficiency_bounded(self, rt):
        p = _classify(rt, streaming)
        assert 0 < p.efficiency <= 1.0 + 1e-9

    def test_ridge_from_gpu_peaks(self, rt):
        p = _classify(rt, streaming)
        assert p.peak_ops == pytest.approx(peak_lane_ops(rt.gpu))
        assert p.ridge == pytest.approx(p.peak_ops / rt.gpu.dram_bandwidth)

    def test_no_traffic_is_infinite_intensity(self, rt):
        _classify(rt, streaming)  # populates rt.kernel_log
        stats = rt.kernel_log[-1][0]
        q = classify_kernel(stats, rt.gpu, exec_s=1e-6, dram_bytes=0.0)
        assert q.intensity == float("inf")
        assert q.bound == "compute"
        assert q.roof_ops == q.peak_ops

    def test_as_dict_keys(self, rt):
        d = _classify(rt, streaming).as_dict()
        assert {"bound", "intensity_ops_per_byte", "ridge_ops_per_byte",
                "roof_efficiency"} <= set(d)


class TestRender:
    def test_table_has_kernels_and_bounds(self, rt):
        points = [_classify(rt, streaming), _classify(rt, compute_heavy)]
        out = render_roofline(points, title="demo roofline")
        assert "demo roofline" in out
        assert "streaming" in out and "compute_heavy" in out
        assert "memory" in out and "compute" in out
