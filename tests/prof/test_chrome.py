"""Chrome Trace Event Format conformance of the exporter (spec checks)."""

import json

import pytest

from repro.prof.activity import ActivityHub, ActivityLog
from repro.prof.chrome import DEVICE_PID, DRIVER_PID, chrome_trace, write_chrome_trace

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


@pytest.fixture
def records():
    hub = ActivityHub()
    log = ActivityLog()
    hub.subscribe(log)
    hub.emit("launch", "axpy", track="driver", grid=[4, 1, 1])
    hub.emit("kernel", "axpy", track="stream 1", start=0.0, end=2e-6, granted_sms=80)
    hub.emit("memcpy", "h2d", track="copy H2D", start=0.0, end=1e-6, nbytes=4096)
    hub.emit("kernel", "axpy", track="stream 1", start=2e-6, end=5e-6)
    hub.emit(
        "counter", "axpy", track="stream 1", end=2e-6,
        achieved_occupancy=0.5, gld_efficiency=1.0, note="not-a-number",
    )
    hub.emit("sanitizer", "memcheck:global-oob-write", track="sanitizer", severity="critical")
    return log.records


@pytest.fixture
def doc(records):
    return chrome_trace(records, device_name="Tesla V100")


class TestSpecConformance:
    def test_every_event_has_required_keys(self, doc):
        assert len(doc["traceEvents"]) > 0
        for ev in doc["traceEvents"]:
            for key in REQUIRED_KEYS:
                assert key in ev, f"event {ev} missing required key {key!r}"

    def test_phases_are_known(self, doc):
        assert {ev["ph"] for ev in doc["traceEvents"]} <= {"M", "X", "C", "i"}

    def test_timestamps_monotonic_per_track(self, doc):
        by_track = {}
        for ev in doc["traceEvents"]:
            by_track.setdefault((ev["pid"], ev["tid"]), []).append(ev["ts"])
        for track, ts in by_track.items():
            assert ts == sorted(ts), f"track {track} not monotonic: {ts}"

    def test_duration_events_have_nonnegative_dur(self, doc):
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert len(xs) == 3
        assert all(ev["dur"] >= 0 for ev in xs)

    def test_counter_events_carry_numeric_args(self, doc):
        cs = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        # one C event per *numeric* metric; the string arg is dropped
        assert sorted(ev["name"] for ev in cs) == [
            "achieved_occupancy", "gld_efficiency",
        ]
        for ev in cs:
            assert ev["args"], "counter event must carry an args series"
            assert all(isinstance(v, (int, float)) for v in ev["args"].values())

    def test_instant_events_on_driver_pid(self, doc):
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert len(instants) == 2  # launch + sanitizer finding
        assert all(ev["pid"] == DRIVER_PID for ev in instants)
        assert all(ev["s"] == "t" for ev in instants)

    def test_metadata_names_processes_and_tracks(self, doc):
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        procs = {ev["args"]["name"] for ev in meta if ev["name"] == "process_name"}
        tracks = {ev["args"]["name"] for ev in meta if ev["name"] == "thread_name"}
        assert procs == {"Tesla V100", "driver"}
        assert {"stream 1", "copy H2D", "sanitizer"} <= tracks

    def test_timestamps_in_microseconds(self, doc):
        axpy = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "axpy"
        ]
        assert axpy[0]["ts"] == pytest.approx(0.0)
        assert axpy[0]["dur"] == pytest.approx(2.0)  # 2e-6 s -> 2 us

    def test_args_json_safe(self, doc):
        json.dumps(doc)  # must not raise

    def test_device_tids_stable(self, doc):
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        tids = {ev["tid"] for ev in xs if ev["pid"] == DEVICE_PID}
        assert tids == {1, 2}  # stream 1 + copy H2D, numbered by first start


class TestWriter:
    def test_round_trip(self, tmp_path, records):
        path = write_chrome_trace(tmp_path / "sub" / "t.json", records)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["generator"] == "repro.prof"
        assert len(doc["traceEvents"]) > 0

    def test_empty_records_still_valid(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", [])
        doc = json.loads(path.read_text())
        # only the two process_name metadata events
        assert [ev["ph"] for ev in doc["traceEvents"]] == ["M", "M"]
