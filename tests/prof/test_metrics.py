"""Metrics documents: collect, merge, write/load, and the NDJSON log."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.prof.metrics import (
    METRICS_SCHEMA,
    collect_metrics,
    load_metrics,
    merge_metrics,
    write_metrics,
)
from repro.prof.ndjson import read_ndjson, write_ndjson
from repro.prof.session import Profiler, profile_session
from repro.simt.kernel import kernel


@kernel
def scale(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) * 2.0))


@pytest.fixture
def profiled_rt(rt):
    prof = Profiler()
    prof.attach(rt)
    x = rt.to_device(np.ones(1024, dtype=np.float32))
    rt.launch(scale, 4, 256, x, 1024)
    rt.launch(scale, 4, 256, x, 1024)
    rt.synchronize()
    return rt, prof


class TestCollect:
    def test_document_shape(self, profiled_rt):
        rt, _ = profiled_rt
        doc = collect_metrics(rt, benchmark="demo", params={"n": 1024})
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["benchmark"] == "demo"
        assert doc["gpu"]["name"] == rt.gpu.name
        entry = doc["kernels"]["scale"]
        assert entry["calls"] == 2
        assert entry["time_avg_s"] > 0
        assert entry["time_total_s"] == pytest.approx(2 * entry["time_avg_s"])
        assert 0 < entry["metrics"]["warp_execution_efficiency"] <= 1.0
        assert entry["counters"]["threads"] == 1024
        assert entry["roofline"]["bound"] in ("compute", "memory", "balanced")
        assert entry["limiter"] in entry["bounds_s"]

    def test_activity_collected(self, profiled_rt):
        _, prof = profiled_rt
        kinds = {r.kind for r in prof.records}
        assert "kernel" in kinds and "launch" in kinds and "counter" in kinds

    def test_session_collects_internal_runtimes(self):
        from repro.core.registry import get_benchmark

        with profile_session() as prof:
            get_benchmark("MemAlign").run(n=1 << 14)
        assert prof.runtimes, "session should have observed internal runtimes"
        doc = prof.metrics(benchmark="MemAlign")
        assert doc["kernels"]
        assert len(prof.records) > 0

    def test_unprofiled_runtime_emits_nothing(self, rt):
        # opt-in: no hub attached -> no hub on any producer
        assert rt.hub is None and rt.engine.hub is None


class TestMerge:
    def test_sums_calls_and_times(self, profiled_rt):
        rt, _ = profiled_rt
        doc = collect_metrics(rt)
        merged = merge_metrics([doc, doc])
        entry = merged["kernels"]["scale"]
        assert entry["calls"] == 4
        assert entry["time_total_s"] == pytest.approx(2 * doc["kernels"]["scale"]["time_total_s"])
        assert entry["time_avg_s"] == pytest.approx(doc["kernels"]["scale"]["time_avg_s"])

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            merge_metrics([])


class TestWriteLoad:
    def test_round_trip(self, tmp_path, profiled_rt):
        rt, _ = profiled_rt
        path = write_metrics(tmp_path / "m.json", collect_metrics(rt))
        doc = load_metrics(path)
        assert doc["schema"] == METRICS_SCHEMA
        assert "scale" in doc["kernels"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_metrics(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_metrics(p)

    def test_wrong_schema(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text('{"schema": "something-else/9"}')
        with pytest.raises(ReproError, match="not a repro.prof"):
            load_metrics(p)


class TestNdjson:
    def test_round_trip(self, tmp_path, profiled_rt):
        _, prof = profiled_rt
        path = write_ndjson(tmp_path / "log.ndjson", prof.records)
        rows = read_ndjson(path)
        assert len(rows) == len(prof.records)
        assert all({"seq", "kind", "name", "track", "args"} <= set(r) for r in rows)
        kernel_rows = [r for r in rows if r["kind"] == "kernel"]
        assert all(r["dur_s"] is not None and r["dur_s"] > 0 for r in kernel_rows)
