"""The performance doctor detects each microbenchmark's pathology."""

import numpy as np
import pytest

from repro.arch.presets import FORNAX
from repro.host.doctor import diagnose
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_block, axpy_cyclic, axpy_misaligned
from repro.kernels.matadd import matadd_constant_scatter
from repro.kernels.reduction import reduce_interleaved_bc, reduce_sequential
from repro.core.warpdiv import wd_kernel


def rules(findings):
    return {f.rule for f in findings}


@pytest.fixture
def data(rng):
    n = 1 << 18
    return rng.random(n, dtype=np.float32), rng.random(n, dtype=np.float32), n


class TestDetection:
    def test_uncoalesced_flagged(self, rt, data):
        hx, hy, n = data
        x, y = rt.to_device(hx), rt.to_device(hy)
        stats = rt.launch(axpy_block, 64, 256, x, y, n, 2.0)
        rt.synchronize()
        found = diagnose(stats, rt.gpu)
        assert "uncoalesced-access" in rules(found)
        assert any(f.severity == "critical" for f in found)
        assert any(f.benchmark.startswith("CoMem") for f in found)

    def test_clean_kernel_mostly_quiet(self, rt, data):
        hx, hy, n = data
        x, y = rt.to_device(hx), rt.to_device(hy)
        stats = rt.launch(axpy_cyclic, 1024, 256, x, y, n, 2.0)
        rt.synchronize()
        found = diagnose(stats, rt.gpu)
        assert "uncoalesced-access" not in rules(found)
        assert "warp-divergence" not in rules(found)

    def test_misalignment_flagged(self, rt, data):
        hx, hy, n = data
        x = rt.to_device(hx, offset=4)
        y = rt.to_device(hy, offset=4)
        stats = rt.launch(axpy_misaligned, n // 256, 256, x, y, n, 2.0)
        rt.synchronize()
        assert "misaligned-access" in rules(diagnose(stats, rt.gpu))

    def test_divergence_flagged(self, rt, data):
        hx, hy, n = data
        x, y, z = rt.to_device(hx), rt.to_device(hy), rt.malloc(n)
        stats = rt.launch(wd_kernel, n // 256, 256, x, y, z)
        rt.synchronize()
        found = diagnose(stats, rt.gpu)
        assert "warp-divergence" in rules(found)
        assert any("WarpDivRedux" in f.benchmark for f in found)

    def test_bank_conflicts_flagged(self, rt, rng):
        n = 1 << 16
        x = rt.to_device(rng.random(n, dtype=np.float32))
        r = rt.malloc(n // 256)
        s_bc = rt.launch(reduce_interleaved_bc, n // 256, 256, x, r)
        s_ok = rt.launch(reduce_sequential, n // 256, 256, x, r)
        rt.synchronize()
        assert "shared-bank-conflicts" in rules(diagnose(s_bc, rt.gpu))
        assert "shared-bank-conflicts" not in rules(diagnose(s_ok, rt.gpu))

    def test_constant_scatter_flagged(self, rt, rng):
        n = 1024
        ha = rng.random(n, dtype=np.float32)
        a_const = rt.const_array(ha)
        b, c = rt.to_device(ha), rt.malloc(n)
        stats = rt.launch(matadd_constant_scatter, n // 256, 256, a_const, b, c, n)
        rt.synchronize()
        assert "constant-scatter" in rules(diagnose(stats, rt.gpu))

    def test_undersized_grid_flagged(self, rt, data):
        hx, hy, n = data
        x, y = rt.to_device(hx), rt.to_device(hy)
        stats = rt.launch(axpy_cyclic, 4, 256, x, y, n, 2.0)
        rt.synchronize()
        assert "undersized-grid" in rules(diagnose(stats, rt.gpu))

    def test_kepler_read_path_flagged(self, rng):
        rt = CudaLite(FORNAX)
        n = 1 << 16
        x = rt.to_device(rng.random(n, dtype=np.float32))
        y = rt.to_device(rng.random(n, dtype=np.float32))
        stats = rt.launch(axpy_cyclic, 64, 256, x, y, n, 2.0)
        rt.synchronize()
        assert "uncached-read-path" in rules(diagnose(stats, rt.gpu))

    def test_findings_sorted_by_severity(self, rt, data):
        hx, hy, n = data
        x, y = rt.to_device(hx), rt.to_device(hy)
        stats = rt.launch(axpy_block, 4, 256, x, y, n, 2.0)
        rt.synchronize()
        found = diagnose(stats, rt.gpu)
        sev_rank = {"critical": 0, "warning": 1, "info": 2}
        ranks = [sev_rank[f.severity] for f in found]
        assert ranks == sorted(ranks)

    def test_str_mentions_benchmark(self, rt, data):
        hx, hy, n = data
        x, y = rt.to_device(hx), rt.to_device(hy)
        stats = rt.launch(axpy_block, 64, 256, x, y, n, 2.0)
        rt.synchronize()
        text = str(diagnose(stats, rt.gpu)[0])
        assert "CoMem" in text or "uncoalesced" in text
