"""Profiler report and per-kernel metrics."""

import numpy as np
import pytest

from repro.host.profiler import build_report, kernel_metrics
from repro.simt.dim3 import Dim3
from repro.simt.kernel import kernel
from repro.simt.stats import KernelStats


def make_stats(name="synthetic", blocks=4, block=256, **overrides):
    """A hand-built stats record (no launch), for edge-case inputs."""
    stats = KernelStats(
        name=name,
        grid=Dim3(blocks, 1, 1),
        block=Dim3(block, 1, 1),
        threads=blocks * block,
        warps=blocks * block // 32,
    )
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


@kernel
def divergent(ctx, x, n):
    tid = ctx.global_thread_id()
    ctx.branch(
        (tid % 2) == 0,
        lambda: ctx.store(x, tid, 1.0),
        lambda: ctx.store(x, tid, 2.0),
    )


@kernel
def clean(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, 1.0))


class TestKernelMetrics:
    def test_divergent_kernel_flagged(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        stats = rt.launch(divergent, 4, 256, x, 1024)
        rt.synchronize()
        m = kernel_metrics(stats, rt.gpu)
        assert m["warp_execution_efficiency"] < 1.0
        assert m["branch_efficiency"] == 0.0

    def test_clean_kernel_full_efficiency(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        stats = rt.launch(clean, 4, 256, x, 1024)
        rt.synchronize()
        m = kernel_metrics(stats, rt.gpu)
        assert m["warp_execution_efficiency"] == 1.0
        assert m["transactions_per_request"] == pytest.approx(1.0)
        assert 0 < m["achieved_occupancy"] <= 1.0


class TestBuildReport:
    def test_aggregates_calls(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        for _ in range(3):
            rt.launch(clean, 4, 256, x, 1024)
        rt.synchronize()
        report = build_report(rt.kernel_log, rt.gpu)
        line = [l for l in report.splitlines() if l.startswith("clean")][0]
        assert " 3 " in f" {line} "

    def test_multiple_kernels_sorted(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        rt.launch(divergent, 4, 256, x, 1024)
        rt.launch(clean, 4, 256, x, 1024)
        rt.synchronize()
        report = build_report(rt.kernel_log, rt.gpu)
        assert report.index("clean") < report.index("divergent")

    def test_empty_log(self, rt):
        report = build_report([], rt.gpu)
        assert "kernel" in report

    def test_untimed_entries_render_dash_avg(self, rt):
        # a stats-only entry (op completed without timing info) must not
        # divide by zero in the avg column
        report = build_report([(make_stats(), _untimed_op())], rt.gpu)
        line = [l for l in report.splitlines() if l.startswith("synthetic")][0]
        assert " - " in f" {line} "


class _untimed_op:
    duration = None


class TestMetricEdgeCases:
    def test_zero_global_requests(self, rt):
        """A compute-only kernel: no loads/stores, no division by zero."""
        stats = make_stats(warp_instructions=10.0, thread_instructions=320.0)
        m = kernel_metrics(stats, rt.gpu)
        assert m["transactions_per_request"] == 0.0
        assert m["gld_efficiency"] == 1.0
        assert m["shared_efficiency"] == 1.0

    def test_zero_warps(self, rt):
        """Degenerate empty launch: efficiencies default to 1, not NaN."""
        stats = make_stats(blocks=1, block=32)
        stats.warps = 0
        stats.threads = 0
        m = kernel_metrics(stats, rt.gpu)
        assert m["warp_execution_efficiency"] == 1.0
        assert m["branch_efficiency"] == 1.0
        assert all(v == v for v in m.values())  # no NaN anywhere

    def test_counters_block_json_safe(self):
        import json

        c = make_stats(transactions=7.0, atomics=3.0).counters()
        json.dumps(c)
        assert c["transactions"] == 7.0
        assert c["global_read_bytes"] == 0.0


class TestMergeChild:
    def test_counters_sum(self):
        parent = make_stats("parent", global_requests=4.0, transactions=8.0,
                            thread_instructions=100.0)
        child = make_stats("child", global_requests=2.0, transactions=2.0,
                           thread_instructions=50.0, branches=3,
                           divergent_branches=1)
        parent.merge_child(child)
        assert parent.global_requests == 6.0
        assert parent.transactions == 10.0
        assert parent.thread_instructions == 150.0
        assert parent.branches == 3 and parent.divergent_branches == 1

    def test_device_launch_count(self):
        parent = make_stats("parent")
        child = make_stats("child", device_launches=2)
        parent.merge_child(child)
        # the child itself plus its own nested launches
        assert parent.device_launches == 3

    def test_metrics_after_merge_still_finite(self, rt):
        parent = make_stats("parent")
        parent.merge_child(make_stats("child", global_requests=1.0,
                                      transactions=32.0))
        m = kernel_metrics(parent, rt.gpu)
        assert m["transactions_per_request"] == pytest.approx(32.0)
