"""Profiler report and per-kernel metrics."""

import numpy as np
import pytest

from repro.host.profiler import build_report, kernel_metrics
from repro.simt.kernel import kernel


@kernel
def divergent(ctx, x, n):
    tid = ctx.global_thread_id()
    ctx.branch(
        (tid % 2) == 0,
        lambda: ctx.store(x, tid, 1.0),
        lambda: ctx.store(x, tid, 2.0),
    )


@kernel
def clean(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, 1.0))


class TestKernelMetrics:
    def test_divergent_kernel_flagged(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        stats = rt.launch(divergent, 4, 256, x, 1024)
        rt.synchronize()
        m = kernel_metrics(stats, rt.gpu)
        assert m["warp_execution_efficiency"] < 1.0
        assert m["branch_efficiency"] == 0.0

    def test_clean_kernel_full_efficiency(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        stats = rt.launch(clean, 4, 256, x, 1024)
        rt.synchronize()
        m = kernel_metrics(stats, rt.gpu)
        assert m["warp_execution_efficiency"] == 1.0
        assert m["transactions_per_request"] == pytest.approx(1.0)
        assert 0 < m["achieved_occupancy"] <= 1.0


class TestBuildReport:
    def test_aggregates_calls(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        for _ in range(3):
            rt.launch(clean, 4, 256, x, 1024)
        rt.synchronize()
        report = build_report(rt.kernel_log, rt.gpu)
        line = [l for l in report.splitlines() if l.startswith("clean")][0]
        assert " 3 " in f" {line} "

    def test_multiple_kernels_sorted(self, rt):
        x = rt.to_device(np.zeros(1024, dtype=np.float32))
        rt.launch(divergent, 4, 256, x, 1024)
        rt.launch(clean, 4, 256, x, 1024)
        rt.synchronize()
        report = build_report(rt.kernel_log, rt.gpu)
        assert report.index("clean") < report.index("divergent")

    def test_empty_log(self, rt):
        report = build_report([], rt.gpu)
        assert "kernel" in report
