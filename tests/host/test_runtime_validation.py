"""Launch-validation error paths through the CudaLite front door.

The executor-level checks have their own tests; these exercise the same
rejections end-to-end through :meth:`CudaLite.launch`, the way user
code hits them.
"""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.common.errors import LaunchConfigError, cuda_error_name
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_1per_thread
from repro.simt.kernel import kernel


@pytest.fixture
def xy(rt):
    x = rt.to_device(np.ones(256, dtype=np.float32))
    y = rt.to_device(np.ones(256, dtype=np.float32))
    return x, y


class TestDimValidation:
    def test_zero_grid_dim(self, rt, xy):
        with pytest.raises(LaunchConfigError):
            rt.launch(axpy_1per_thread, 0, 256, *xy, 256, 2.0)

    def test_zero_block_dim(self, rt, xy):
        with pytest.raises(LaunchConfigError):
            rt.launch(axpy_1per_thread, 1, 0, *xy, 256, 2.0)

    def test_negative_grid_dim(self, rt, xy):
        with pytest.raises(LaunchConfigError):
            rt.launch(axpy_1per_thread, -1, 256, *xy, 256, 2.0)

    def test_negative_block_axis(self, rt, xy):
        with pytest.raises(LaunchConfigError):
            rt.launch(axpy_1per_thread, 1, (16, -2), *xy, 256, 2.0)

    def test_config_errors_are_not_sticky(self, rt, xy):
        with pytest.raises(LaunchConfigError):
            rt.launch(axpy_1per_thread, 1, 0, *xy, 256, 2.0)
        rt.launch(axpy_1per_thread, 1, 256, *xy, 256, 2.0)
        rt.synchronize()


class TestArchitectureLimits:
    def test_block_over_thread_limit(self, rt, xy):
        limit = rt.gpu.max_threads_per_block
        with pytest.raises(LaunchConfigError, match=str(limit)):
            rt.launch(axpy_1per_thread, 1, limit + 1, *xy, 256, 2.0)

    def test_block_axis_over_limit(self, rt, xy):
        zmax = rt.gpu.max_block_dim[2]
        with pytest.raises(LaunchConfigError, match="blockDim.z"):
            rt.launch(axpy_1per_thread, 1, (1, 1, zmax + 1), *xy, 256, 2.0)

    def test_grid_axis_over_limit(self, rt, xy):
        ymax = rt.gpu.max_grid_dim[1]
        with pytest.raises(LaunchConfigError, match="gridDim.y"):
            rt.launch(axpy_1per_thread, (1, ymax + 1, 1), 32, *xy, 256, 2.0)

    def test_shared_mem_over_capacity(self, rt):
        cap = rt.gpu.shared_mem_per_block

        @kernel
        def hog(ctx):
            ctx.shared_array(cap // 4 + 64, np.float32)

        with pytest.raises(LaunchConfigError, match="shared memory"):
            rt.launch(hog, 1, 32)

    def test_simulation_guard_rail(self, rt, xy):
        from repro.simt.executor import MAX_SIM_THREADS

        blocks = MAX_SIM_THREADS // 256 + 1
        if blocks <= rt.gpu.max_grid_dim[0]:
            with pytest.raises(LaunchConfigError, match="guard rail"):
                rt.launch(axpy_1per_thread, blocks, 256, *xy, 256, 2.0)

    def test_launch_config_error_name(self):
        assert (
            cuda_error_name(LaunchConfigError("x")) == "cudaErrorInvalidConfiguration"
        )
