"""cudaMemAdvise(read_mostly): the paper's future-work UM optimization."""

import numpy as np
import pytest

from repro.common.errors import MemoryError_
from repro.simt.kernel import kernel


@kernel
def read_sum(ctx, x, out, n):
    """Reads x, writes only the tiny out array."""
    i = ctx.global_thread_id()

    def body():
        v = ctx.load(x, i)
        ctx.if_active((i % ctx.block.x) == 0, lambda: ctx.store(out, i // ctx.block.x, v))

    ctx.if_active(i < n, body)


def migrations(rt):
    return [e for e in rt.timeline.events if e.kind == "migrate"]


class TestReadMostly:
    def test_no_remigration_after_host_read(self, rt, rng):
        n = 1 << 18
        hx = rng.random(n, dtype=np.float32)
        x = rt.malloc_managed(n)
        x.fill_from(hx)
        out = rt.malloc_managed(n // 256)
        rt.mem_advise(x, "read_mostly")

        rt.launch(read_sum, n // 256, 256, x, out, n)
        rt.managed_to_host(x)   # host reads x between launches
        rt.synchronize()
        rt.reset()
        rt.launch(read_sum, n // 256, 256, x, out, n)
        rt.synchronize()
        # x's pages stayed duplicated: only `out` pages migrate again
        moved = sum(e for e in [m.duration for m in migrations(rt)])
        page = rt.gpu.um_page_bytes
        assert all("1p" in m.name or "->dev" in m.name for m in migrations(rt))
        x_pages = x.nbytes // page
        total_pages = sum(int(m.name.split("p")[0].split()[-1]) for m in migrations(rt))
        assert total_pages < x_pages / 4
        assert moved >= 0

    def test_without_advice_remigrates(self, rt, rng):
        n = 1 << 18
        x = rt.malloc_managed(n)
        x.fill_from(rng.random(n, dtype=np.float32))
        out = rt.malloc_managed(n // 256)
        rt.launch(read_sum, n // 256, 256, x, out, n)
        rt.managed_to_host(x)
        rt.synchronize()
        rt.reset()
        rt.launch(read_sum, n // 256, 256, x, out, n)
        rt.synchronize()
        page = rt.gpu.um_page_bytes
        total_pages = sum(int(m.name.split("p")[0].split()[-1]) for m in migrations(rt))
        assert total_pages >= x.nbytes // page  # x faulted back over

    def test_written_pages_lose_duplication(self, rt, rng):
        from repro.core.unimem import UniMem  # noqa: F401 (doc pointer)

        n = 1 << 16
        x = rt.malloc_managed(n)
        rt.mem_advise(x, "read_mostly")

        @kernel
        def write_all(ctx, x, n):
            i = ctx.global_thread_id()
            ctx.if_active(i < n, lambda: ctx.store(x, i, 1.0))

        rt.launch(write_all, n // 256, 256, x, n)
        rt.managed_to_host(x)  # dirty pages come back AND drop duplication
        rt.synchronize()
        rt.reset()
        rt.launch(write_all, n // 256, 256, x, n)
        rt.synchronize()
        assert migrations(rt)  # pages had to fault over again

    def test_unset(self, rt):
        x = rt.malloc_managed(1024)
        rt.mem_advise(x, "read_mostly")
        rt.mem_advise(x, "unset_read_mostly")
        assert not rt._managed[x.alloc.addr].read_mostly

    def test_guards(self, rt):
        plain = rt.malloc(64)
        with pytest.raises(MemoryError_):
            rt.mem_advise(plain, "read_mostly")
        managed = rt.malloc_managed(64)
        with pytest.raises(MemoryError_):
            rt.mem_advise(managed, "make_fast")
