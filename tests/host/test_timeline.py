"""Timeline log and ASCII rendering."""

import pytest

from repro.host.timeline import Timeline


@pytest.fixture
def tl():
    t = Timeline()
    t.add("k1", "kernel", "stream 1", 0.0, 1.0)
    t.add("k2", "kernel", "stream 2", 0.5, 1.5)
    t.add("c", "h2d", "copy H2D", 0.0, 0.25)
    return t


class TestBookkeeping:
    def test_span(self, tl):
        assert tl.span == (0.0, 1.5)

    def test_empty_span(self):
        assert Timeline().span == (0.0, 0.0)

    def test_lanes_order(self, tl):
        assert tl.lanes() == ["stream 1", "stream 2", "copy H2D"]

    def test_invalid_event(self):
        with pytest.raises(ValueError):
            Timeline().add("x", "kernel", "s", 1.0, 0.5)

    def test_clear(self, tl):
        tl.clear()
        assert tl.events == []


class TestBusyTime:
    def test_single_lane(self, tl):
        assert tl.busy_time("stream 1") == pytest.approx(1.0)

    def test_merges_overlaps(self):
        t = Timeline()
        t.add("a", "kernel", "s", 0.0, 1.0)
        t.add("b", "kernel", "s", 0.5, 2.0)
        assert t.busy_time("s") == pytest.approx(2.0)

    def test_gaps_not_counted(self):
        t = Timeline()
        t.add("a", "kernel", "s", 0.0, 1.0)
        t.add("b", "kernel", "s", 3.0, 4.0)
        assert t.busy_time("s") == pytest.approx(2.0)

    def test_all_lanes_union(self, tl):
        assert tl.busy_time() == pytest.approx(1.5)


class TestRender:
    def test_ascii_has_all_lanes(self, tl):
        out = tl.render_ascii(40)
        assert "stream 1" in out and "copy H2D" in out

    def test_overlap_visible(self, tl):
        out = tl.render_ascii(40)
        lines = {l.split("|")[0].strip(): l for l in out.splitlines() if "|" in l}
        s1 = lines["stream 1"].split("|")[1]
        s2 = lines["stream 2"].split("|")[1]
        # stream 1 busy at the start, stream 2 not yet
        assert s1[0] == "#" and s2[0] == " "

    def test_empty(self):
        assert Timeline().render_ascii() == "(empty timeline)"

    def test_short_event_visible(self):
        t = Timeline()
        t.add("long", "kernel", "s", 0.0, 100.0)
        t.add("tiny", "kernel", "t", 0.0, 1e-6)
        out = t.render_ascii(50)
        tiny_line = [l for l in out.splitlines() if l.startswith("t")][0]
        assert "|" in tiny_line.split("|", 1)[1] or "#" in tiny_line

    def test_summary(self, tl):
        out = tl.summary()
        assert "3 events" in out
        assert "stream 1" in out

    def test_zero_span_renders_markers(self):
        # only zero-duration events: span collapses but render must not
        # divide by zero; each event shows as a marker at the origin
        t = Timeline()
        t.add("e1", "event", "s", 1.0, 1.0)
        t.add("e2", "event", "t", 1.0, 1.0)
        out = t.render_ascii(40)
        assert "|" in out
        assert "s" in out and "t" in out


class TestOrderedLanes:
    def test_sorted_by_first_start(self):
        t = Timeline()
        t.add("late", "kernel", "lane B", 5.0, 6.0)
        t.add("early", "kernel", "lane A", 0.0, 1.0)
        assert t.lanes() == ["lane B", "lane A"]  # insertion order kept
        assert t.ordered_lanes() == ["lane A", "lane B"]

    def test_ties_broken_by_name(self):
        t = Timeline()
        t.add("b", "kernel", "zeta", 0.0, 1.0)
        t.add("a", "kernel", "alpha", 0.0, 1.0)
        assert t.ordered_lanes() == ["alpha", "zeta"]

    def test_earliest_event_wins_not_first_logged(self):
        t = Timeline()
        t.add("x1", "kernel", "x", 4.0, 5.0)
        t.add("y1", "kernel", "y", 2.0, 3.0)
        t.add("x0", "kernel", "x", 0.0, 1.0)  # retroactively earliest
        assert t.ordered_lanes() == ["x", "y"]

    def test_render_uses_deterministic_order(self):
        t = Timeline()
        t.add("late", "kernel", "lane B", 5.0, 6.0)
        t.add("early", "kernel", "lane A", 0.0, 1.0)
        out = t.render_ascii(40)
        assert out.index("lane A") < out.index("lane B")

    def test_empty(self):
        assert Timeline().ordered_lanes() == []
