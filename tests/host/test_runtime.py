"""CudaLite runtime: memory API, copies, launches, streams, UM, graphs."""

import numpy as np
import pytest

from repro.arch.presets import FORNAX, TESLA_V100
from repro.common.errors import (
    GraphError,
    LaunchConfigError,
    MemoryError_,
    StreamError,
)
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel


@kernel
def double_it(ctx, x, n):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, 2.0 * ctx.load(x, i)))


@kernel
def touch_strided(ctx, x, n, stride):
    i = ctx.global_thread_id() * stride
    ctx.if_active(i < n, lambda: ctx.store(x, i, ctx.load(x, i) + 1.0))


class TestMemoryAPI:
    def test_malloc_shapes(self, rt):
        a = rt.malloc((4, 8), np.float64)
        assert a.shape == (4, 8)
        assert a.dtype == np.float64

    def test_to_device_roundtrip(self, rt, rng):
        h = rng.random(100, dtype=np.float32)
        d = rt.to_device(h)
        assert np.array_equal(d.to_host(), h)

    def test_free(self, rt):
        a = rt.malloc(16)
        rt.free(a)
        assert rt.allocator.live_allocations == 0

    def test_const_array_limit(self, rt):
        rt.const_array(np.zeros(16000, dtype=np.float32))  # 64000 B
        with pytest.raises(MemoryError_):
            rt.const_array(np.zeros(1024, dtype=np.float32))

    def test_texture_1d_requires_1d(self, rt):
        with pytest.raises(MemoryError_):
            rt.texture_1d(np.zeros((4, 4), dtype=np.float32))

    def test_texture_2d_requires_2d(self, rt):
        with pytest.raises(MemoryError_):
            rt.texture_2d(np.zeros(4, dtype=np.float32))

    def test_texture_2d_content(self, rt, rng):
        h = rng.random((16, 16), dtype=np.float32)
        view = rt.texture_2d(h)
        yy, xx = np.mgrid[0:16, 0:16]
        idx = view.flat_index_2d(xx.ravel(), yy.ravel())
        assert np.array_equal(view.storage.to_host()[idx], h.ravel())


class TestCopies:
    def test_h2d_functional_and_timed(self, rt, rng):
        h = rng.random(1024, dtype=np.float32)
        d = rt.malloc(1024)
        with rt.timer() as t:
            rt.memcpy_h2d(d, h, pinned=True)
        assert np.array_equal(d.to_host(), h)
        assert t.elapsed >= rt.link.transfer_time(4096)

    def test_d2h_returns_copy(self, rt, rng):
        h = rng.random(64, dtype=np.float32)
        d = rt.to_device(h)
        out = rt.memcpy_d2h(d)
        rt.synchronize()
        assert np.array_equal(out, h)

    def test_d2d(self, rt, rng):
        h = rng.random(64, dtype=np.float32)
        a = rt.to_device(h)
        b = rt.malloc(64)
        rt.memcpy_d2d(b, a)
        rt.synchronize()
        assert np.array_equal(b.to_host(), h)

    def test_d2d_size_mismatch(self, rt):
        with pytest.raises(MemoryError_):
            rt.memcpy_d2d(rt.malloc(8), rt.malloc(16))

    def test_pageable_slower_than_pinned(self, rt, rng):
        h = rng.random(1 << 20, dtype=np.float32)
        d = rt.malloc(1 << 20)
        with rt.timer() as t_pin:
            rt.memcpy_h2d(d, h, pinned=True)
        with rt.timer() as t_page:
            rt.memcpy_h2d(d, h, pinned=False)
        assert t_page.elapsed > t_pin.elapsed


class TestLaunch:
    def test_functional(self, rt, rng):
        h = rng.random(512, dtype=np.float32)
        d = rt.to_device(h)
        rt.launch(double_it, 2, 256, d, 512)
        rt.synchronize()
        assert np.allclose(d.to_host(), 2 * h)

    def test_stats_returned(self, rt):
        d = rt.to_device(np.zeros(64, dtype=np.float32))
        stats = rt.launch(double_it, 2, 32, d, 64)
        assert stats.threads == 64

    def test_invalid_config_raises(self, rt):
        d = rt.to_device(np.zeros(64, dtype=np.float32))
        with pytest.raises(LaunchConfigError):
            rt.launch(double_it, 1, 2048, d, 64)

    def test_kernel_log_grows(self, rt):
        d = rt.to_device(np.zeros(64, dtype=np.float32))
        rt.launch(double_it, 2, 32, d, 64)
        rt.launch(double_it, 2, 32, d, 64)
        assert len(rt.kernel_log) == 2

    def test_dynamic_parallelism_gate(self):
        rt = CudaLite(FORNAX)
        d = rt.to_device(np.zeros(64, dtype=np.float32))
        # K80 supports dynamic parallelism (CC 3.7): should work
        rt.launch_from_device(double_it, 2, 32, d, 64)

    def test_timer_measures_kernel(self, rt):
        d = rt.to_device(np.zeros(1 << 16, dtype=np.float32))
        with rt.timer() as t:
            rt.launch(double_it, 256, 256, d, 1 << 16)
        assert t.elapsed > rt.gpu.kernel_launch_overhead_s


class TestStreamsAndEvents:
    def test_streams_overlap(self, rt):
        n = 64 * 256
        bufs = [rt.to_device(np.ones(n, dtype=np.float32)) for _ in range(2)]
        with rt.timer() as t_serial:
            for b in bufs:
                rt.launch(double_it, 8, 256, b, n)
        streams = [rt.stream() for _ in range(2)]
        with rt.timer() as t_conc:
            for b, s in zip(bufs, streams):
                rt.launch(double_it, 8, 256, b, n, stream=s)
        assert t_conc.elapsed < t_serial.elapsed

    def test_event_elapsed(self, rt):
        d = rt.to_device(np.zeros(1 << 14, dtype=np.float32))
        e1, e2 = rt.event("a"), rt.event("b")
        rt.record_event(e1)
        rt.launch(double_it, 64, 256, d, 1 << 14)
        rt.record_event(e2)
        rt.synchronize()
        assert e2.elapsed_since(e1) > 0

    def test_elapsed_on_unrecorded_raises(self, rt):
        e1, e2 = rt.event(), rt.event()
        with pytest.raises(StreamError):
            e2.elapsed_since(e1)

    def test_cross_stream_wait(self, rt):
        n = 1 << 14
        d = rt.to_device(np.ones(n, dtype=np.float32))
        s1, s2 = rt.stream("a"), rt.stream("b")
        ev = rt.event()
        rt.launch(double_it, 64, 256, d, n, stream=s1)
        rt.record_event(ev, stream=s1)
        rt.wait_event(ev, stream=s2)
        rt.launch(double_it, 64, 256, d, n, stream=s2)
        rt.synchronize()
        k1, k2 = [op for _, op in rt.kernel_log]
        assert k2.start_time >= k1.end_time


class TestUnifiedMemory:
    def test_managed_roundtrip(self, rt, rng):
        h = rng.random(1 << 16, dtype=np.float32)
        d = rt.malloc_managed(1 << 16)
        d.fill_from(h)
        rt.launch(double_it, 256, 256, d, 1 << 16)
        out = rt.managed_to_host(d)
        rt.synchronize()
        assert np.allclose(out, 2 * h)

    def test_migration_ops_scheduled(self, rt):
        d = rt.malloc_managed(1 << 16)
        rt.launch(double_it, 256, 256, d, 1 << 16)
        rt.synchronize()
        migrations = [e for e in rt.timeline.events if e.kind == "migrate"]
        assert migrations

    def test_sparse_touch_migrates_less(self, rt):
        n = 1 << 20
        stride = rt.gpu.um_page_bytes  # in elements: touches 1/page-ish
        d1 = rt.malloc_managed(n)
        with rt.timer() as t_dense:
            rt.launch(touch_strided, (n + 255) // 256, 256, d1, n, 1)
        d2 = rt.malloc_managed(n)
        threads = -(-n // stride)
        with rt.timer() as t_sparse:
            rt.launch(touch_strided, (threads + 255) // 256, 256, d2, n, stride)
        assert t_sparse.elapsed < t_dense.elapsed

    def test_prefetch_avoids_faults(self, rt):
        n = 1 << 18
        d = rt.malloc_managed(n)
        rt.prefetch(d)
        rt.synchronize()
        rt.reset()
        with rt.timer():
            rt.launch(double_it, (n + 255) // 256, 256, d, n)
        assert not [e for e in rt.timeline.events if e.kind == "migrate"]

    def test_managed_api_guards(self, rt):
        plain = rt.malloc(64)
        with pytest.raises(MemoryError_):
            rt.managed_to_host(plain)
        with pytest.raises(MemoryError_):
            rt.prefetch(plain)


class TestGraphs:
    def test_capture_and_launch(self, rt):
        d = rt.to_device(np.ones(1024, dtype=np.float32))
        rt.graph_capture_begin()
        for _ in range(3):
            rt.launch(double_it, 4, 256, d, 1024)
        g = rt.graph_capture_end().instantiate()
        assert len(g) == 3
        with rt.timer() as t:
            rt.graph_launch(g)
        assert t.elapsed > 0
        graph_events = [e for e in rt.timeline.events if "[graph]" in e.name]
        assert len(graph_events) == 3

    def test_graph_cheaper_than_launches(self, rt):
        d = rt.to_device(np.ones(1024, dtype=np.float32))
        with rt.timer() as t_launch:
            for _ in range(8):
                rt.launch(double_it, 4, 256, d, 1024)
        rt.graph_capture_begin()
        for _ in range(8):
            rt.launch(double_it, 4, 256, d, 1024)
        g = rt.graph_capture_end().instantiate()
        with rt.timer() as t_graph:
            rt.graph_launch(g)
        assert t_graph.elapsed < t_launch.elapsed

    def test_capture_nesting_rejected(self, rt):
        rt.graph_capture_begin()
        with pytest.raises(GraphError):
            rt.graph_capture_begin()
        rt.graph_capture_end()

    def test_end_without_begin(self, rt):
        with pytest.raises(GraphError):
            rt.graph_capture_end()

    def test_sync_during_capture_rejected(self, rt):
        rt.graph_capture_begin()
        with pytest.raises(StreamError):
            rt.synchronize()
        rt.graph_capture_end()

    def test_empty_graph_rejected(self, rt):
        rt.graph_capture_begin()
        g = rt.graph_capture_end()
        with pytest.raises(GraphError):
            g.instantiate()

    def test_launch_uninstantiated_rejected(self, rt):
        rt.graph_capture_begin()
        d = rt.to_device(np.ones(64, dtype=np.float32))
        rt.launch(double_it, 2, 32, d, 64)
        g = rt.graph_capture_end()
        with pytest.raises(GraphError):
            rt.graph_launch(g)  # TaskGraph, not ExecGraph

    def test_k80_graphs_unsupported(self):
        rt = CudaLite(FORNAX)
        with pytest.raises(GraphError):
            rt.graph_capture_begin()

    def test_add_after_instantiate_rejected(self, rt):
        d = rt.to_device(np.ones(64, dtype=np.float32))
        rt.graph_capture_begin()
        rt.launch(double_it, 2, 32, d, 64)
        g = rt.graph_capture_end()
        g.instantiate()
        from repro.host.graph import GraphNode

        with pytest.raises(GraphError):
            g.add(GraphNode(kind="kernel", name="x", submit=lambda s: None))


class TestProfiler:
    def test_report_contains_kernels(self, rt):
        d = rt.to_device(np.zeros(1024, dtype=np.float32))
        rt.launch(double_it, 4, 256, d, 1024)
        rt.synchronize()
        report = rt.profile_report()
        assert "double_it" in report
        assert "occupancy" in report

    def test_reset(self, rt):
        d = rt.to_device(np.zeros(1024, dtype=np.float32))
        rt.launch(double_it, 4, 256, d, 1024)
        rt.synchronize()
        rt.reset()
        assert rt.kernel_log == []
        assert rt.timeline.events == []


class TestGPUSpecConstructor:
    def test_bare_gpu_spec_accepted(self):
        rt = CudaLite(TESLA_V100)
        assert rt.gpu is TESLA_V100
        assert rt.link is not None
