"""Discrete-event engine: ordering, engines, concurrency, deadlock."""

import pytest

from repro.arch.presets import CARINA
from repro.common.errors import StreamError
from repro.host.engine import DeviceEngine
from repro.host.stream import Event, Op, Stream
from repro.host.timeline import Timeline


@pytest.fixture
def engine():
    return DeviceEngine(CARINA, Timeline())


def stream(engine, name=None):
    s = Stream(None, name=name)
    engine.register_stream(s)
    return s


def kernel_op(s, name="k", dur=1e-3, sm_demand=80):
    return Op(kind="kernel", name=name, stream=s, duration=dur, sm_demand=sm_demand)


def copy_op(s, kind="h2d", name="c", dur=1e-3):
    return Op(kind=kind, name=name, stream=s, duration=dur, nbytes=0)


class TestInOrder:
    def test_same_stream_serializes(self, engine):
        s = stream(engine)
        ops = [kernel_op(s, f"k{i}") for i in range(3)]
        for op in ops:
            engine.submit(op)
        total = engine.run_until_idle()
        assert total == pytest.approx(3e-3)
        assert ops[0].end_time <= ops[1].start_time <= ops[2].start_time

    def test_copy_then_kernel_ordered(self, engine):
        s = stream(engine)
        c = copy_op(s)
        k = kernel_op(s)
        engine.submit(c)
        engine.submit(k)
        engine.run_until_idle()
        assert k.start_time >= c.end_time


class TestConcurrency:
    def test_streams_overlap_kernels(self, engine):
        s1, s2 = stream(engine), stream(engine)
        k1 = kernel_op(s1, sm_demand=10)
        k2 = kernel_op(s2, sm_demand=10)
        engine.submit(k1)
        engine.submit(k2)
        total = engine.run_until_idle()
        assert total == pytest.approx(1e-3)

    def test_sm_exhaustion_serializes(self, engine):
        s1, s2 = stream(engine), stream(engine)
        k1 = kernel_op(s1, sm_demand=80)
        k2 = kernel_op(s2, sm_demand=80)
        engine.submit(k1)
        engine.submit(k2)
        engine.run_until_idle()
        # second kernel gets the leftover... none: starts after k1
        assert k2.start_time >= k1.end_time or k2.granted_sms < 80

    def test_partial_grant(self, engine):
        granted = {}

        def timing_fn(g):
            granted["g"] = g
            return 1e-3

        s1, s2 = stream(engine), stream(engine)
        engine.submit(kernel_op(s1, sm_demand=60))
        engine.submit(
            Op(kind="kernel", name="k2", stream=s2, timing_fn=timing_fn, sm_demand=60)
        )
        engine.run_until_idle()
        assert granted["g"] == 20  # leftover SMs

    def test_max_concurrent_kernels(self, engine):
        streams = [stream(engine) for _ in range(40)]
        ops = [kernel_op(s, sm_demand=1) for s in streams]
        for op in ops:
            engine.submit(op)
        engine.run_until_idle()
        cap = CARINA.gpu.max_concurrent_kernels
        first_wave = sum(1 for op in ops if op.start_time == 0.0)
        assert first_wave == cap


class TestCopyEngines:
    def test_h2d_d2h_overlap(self, engine):
        s1, s2 = stream(engine), stream(engine)
        c1 = copy_op(s1, "h2d")
        c2 = copy_op(s2, "d2h")
        engine.submit(c1)
        engine.submit(c2)
        assert engine.run_until_idle() == pytest.approx(1e-3)

    def test_same_direction_serializes(self, engine):
        s1, s2 = stream(engine), stream(engine)
        engine.submit(copy_op(s1, "h2d"))
        engine.submit(copy_op(s2, "h2d"))
        assert engine.run_until_idle() == pytest.approx(2e-3)

    def test_single_engine_mode(self):
        system = CARINA.evolve(gpu=CARINA.gpu.evolve(copy_engines=1))
        engine = DeviceEngine(system, Timeline())
        s1 = Stream(None)
        s2 = Stream(None)
        engine.register_stream(s1)
        engine.register_stream(s2)
        engine.submit(copy_op(s1, "h2d"))
        engine.submit(copy_op(s2, "d2h"))
        assert engine.run_until_idle() == pytest.approx(2e-3)

    def test_copy_and_kernel_overlap(self, engine):
        s1, s2 = stream(engine), stream(engine)
        engine.submit(copy_op(s1, "h2d", dur=2e-3))
        engine.submit(kernel_op(s2, dur=2e-3))
        assert engine.run_until_idle() == pytest.approx(2e-3)


class TestEvents:
    def test_record_and_wait(self, engine):
        s1, s2 = stream(engine), stream(engine)
        ev = Event("e")
        k1 = kernel_op(s1, "producer")
        engine.submit(k1)
        ev.recorded = True
        engine.submit(Op(kind="event_record", name="rec", stream=s1, event=ev))
        engine.submit(Op(kind="event_wait", name="wait", stream=s2, event=ev))
        k2 = kernel_op(s2, "consumer")
        engine.submit(k2)
        engine.run_until_idle()
        assert ev.done_time == pytest.approx(1e-3)
        assert k2.start_time >= k1.end_time

    def test_wait_on_unrecorded_event_passes(self, engine):
        s = stream(engine)
        ev = Event("never")
        engine.submit(Op(kind="event_wait", name="w", stream=s, event=ev))
        k = kernel_op(s)
        engine.submit(k)
        engine.run_until_idle()
        assert k.done

    def test_deadlock_detected(self, engine):
        s1, s2 = stream(engine), stream(engine)
        e1, e2 = Event("a"), Event("b")
        e1.recorded = e2.recorded = True
        # each stream waits on the event the other records afterwards
        engine.submit(Op(kind="event_wait", name="w1", stream=s1, event=e2))
        engine.submit(Op(kind="event_record", name="r1", stream=s1, event=e1))
        engine.submit(Op(kind="event_wait", name="w2", stream=s2, event=e1))
        engine.submit(Op(kind="event_record", name="r2", stream=s2, event=e2))
        with pytest.raises(StreamError):
            engine.run_until_idle()


class TestTimelineIntegration:
    def test_events_logged(self, engine):
        s = stream(engine, "s")
        engine.submit(kernel_op(s))
        engine.submit(copy_op(s))
        engine.run_until_idle()
        kinds = {e.kind for e in engine.timeline.events}
        assert kinds == {"kernel", "h2d"}

    def test_drop_completed(self, engine):
        s = stream(engine)
        engine.submit(kernel_op(s))
        engine.run_until_idle()
        engine.drop_completed()
        assert s.queue == []

    def test_clock_monotonic_across_batches(self, engine):
        s = stream(engine)
        engine.submit(kernel_op(s))
        t1 = engine.run_until_idle()
        engine.submit(kernel_op(s))
        t2 = engine.run_until_idle()
        assert t2 == pytest.approx(t1 + 1e-3)
