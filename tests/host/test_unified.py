"""Unified-memory residency and migration model."""

import numpy as np
import pytest

from repro.arch.presets import CARINA
from repro.common.errors import MemoryError_
from repro.host.unified import (
    ManagedState,
    contiguous_groups,
    migration_time,
    UM_FAULT_CONCURRENCY,
)
from repro.mem.allocator import DeviceAllocator

GPU = CARINA.gpu
LINK = CARINA.link
PAGE = GPU.um_page_bytes


@pytest.fixture
def state():
    alloc = DeviceAllocator(1 << 30).malloc(64 * PAGE, managed=True)
    return ManagedState(alloc, PAGE)


class TestContiguousGroups:
    def test_empty(self):
        assert contiguous_groups(np.array([], dtype=np.int64)) == 0

    def test_single_run(self):
        assert contiguous_groups(np.arange(10)) == 1

    def test_isolated(self):
        assert contiguous_groups(np.array([0, 2, 4, 6])) == 4

    def test_mixed(self):
        assert contiguous_groups(np.array([0, 1, 2, 10, 11, 50])) == 3

    def test_unsorted_input(self):
        assert contiguous_groups(np.array([5, 1, 2, 0])) == 2


class TestMigrationTime:
    def test_zero_pages_free(self):
        assert migration_time(0, 0, PAGE, LINK, GPU) == 0.0

    def test_scales_with_bytes(self):
        t1 = migration_time(10, 1, PAGE, LINK, GPU)
        t2 = migration_time(20, 1, PAGE, LINK, GPU)
        assert t2 > t1

    def test_groups_add_fault_overhead(self):
        dense = migration_time(64, 1, PAGE, LINK, GPU)
        sparse = migration_time(64, 64, PAGE, LINK, GPU)
        rounds = -(-64 // UM_FAULT_CONCURRENCY)
        assert sparse - dense == pytest.approx(
            (rounds - 1) * GPU.um_fault_overhead_s
        )


class TestManagedState:
    def test_requires_managed_alloc(self):
        alloc = DeviceAllocator(1 << 20).malloc(PAGE)
        with pytest.raises(MemoryError_):
            ManagedState(alloc, PAGE)

    def test_first_touch_migrates(self, state):
        plan = state.plan_device_access(
            np.array([0, 1, 2]), np.array([], dtype=np.int64), LINK, GPU
        )
        assert plan.n_pages == 3
        assert plan.direction == "h2d"
        assert plan.nbytes == 3 * PAGE

    def test_second_touch_free(self, state):
        pages = np.array([0, 1, 2])
        none = np.array([], dtype=np.int64)
        state.plan_device_access(pages, none, LINK, GPU)
        plan = state.plan_device_access(pages, none, LINK, GPU)
        assert plan.empty

    def test_writes_marked_dirty(self, state):
        state.plan_device_access(
            np.array([], dtype=np.int64), np.array([3, 4]), LINK, GPU
        )
        back = state.plan_host_access(LINK, GPU)
        assert back.n_pages == 2
        assert back.direction == "d2h"

    def test_clean_pages_not_copied_back(self, state):
        state.plan_device_access(np.array([0, 1]), np.array([], np.int64), LINK, GPU)
        back = state.plan_host_access(LINK, GPU)
        assert back.empty

    def test_host_access_resets_residency(self, state):
        pages = np.array([0, 1])
        none = np.array([], dtype=np.int64)
        state.plan_device_access(pages, none, LINK, GPU)
        state.plan_host_access(LINK, GPU)
        plan = state.plan_device_access(pages, none, LINK, GPU)
        assert plan.n_pages == 2  # faulted over again

    def test_page_out_of_range(self, state):
        with pytest.raises(MemoryError_):
            state.plan_device_access(
                np.array([10_000]), np.array([], np.int64), LINK, GPU
            )

    def test_prefetch_all(self, state):
        plan = state.prefetch_all(LINK, GPU)
        assert plan.n_pages == state.n_pages
        assert plan.n_groups == 1
        # everything resident afterwards
        assert state.plan_device_access(
            np.arange(4), np.array([], np.int64), LINK, GPU
        ).empty

    def test_prefetch_after_touch_moves_rest(self, state):
        state.plan_device_access(np.array([0]), np.array([], np.int64), LINK, GPU)
        plan = state.prefetch_all(LINK, GPU)
        assert plan.n_pages == state.n_pages - 1

    def test_sparse_touch_cheaper_than_dense(self, state):
        none = np.array([], dtype=np.int64)
        sparse = state.plan_device_access(np.arange(0, 64, 8), none, LINK, GPU)
        state2 = ManagedState(
            DeviceAllocator(1 << 30).malloc(64 * PAGE, managed=True), PAGE
        )
        dense = state2.plan_device_access(np.arange(64), none, LINK, GPU)
        assert sparse.nbytes < dense.nbytes
