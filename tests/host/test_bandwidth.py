"""bandwidthTest utility sanity."""

import pytest

from repro.host.bandwidth import measure_bandwidth


class TestBandwidthTest:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.host.runtime import CudaLite
        from repro.arch.presets import CARINA

        return measure_bandwidth(CudaLite(CARINA))

    def test_asymptote_approaches_link_speed(self, report):
        from repro.arch.presets import CARINA

        assert report.h2d_pinned[-1] == pytest.approx(
            CARINA.link.pinned_bandwidth, rel=0.15
        )

    def test_small_transfers_latency_bound(self, report):
        # small copies achieve a small fraction of peak
        assert report.h2d_pinned[0] < report.h2d_pinned[-1] / 2

    def test_pageable_slower(self, report):
        assert all(
            g < p for g, p in zip(report.h2d_pageable, report.h2d_pinned)
        )

    def test_d2d_fastest(self, report):
        assert report.d2d[-1] > 10 * report.h2d_pinned[-1]

    def test_monotone_with_size(self, report):
        assert report.h2d_pinned == sorted(report.h2d_pinned)

    def test_render(self, report):
        out = report.render()
        assert "H2D pinned" in out
        assert "GB/s" in out
