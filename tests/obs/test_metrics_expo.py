"""Prometheus text exposition: rendering, parsing, sample builders."""

import pytest

from repro.common.errors import ReproError
from repro.obs import (
    Sample,
    fleet_samples,
    parse_prometheus_text,
    prometheus_text,
    telemetry_samples,
    write_metrics_text,
)
from repro.resilience.supervisor import SchedTelemetry


class TestSample:
    def test_bad_metric_name_rejected(self):
        with pytest.raises(ReproError, match="invalid metric name"):
            Sample("bad name", 1.0)

    def test_bad_label_name_rejected(self):
        with pytest.raises(ReproError, match="invalid label name"):
            Sample("ok", 1.0, {"bad-label": "x"})

    def test_reserved_label_rejected(self):
        with pytest.raises(ReproError, match="invalid label name"):
            Sample("ok", 1.0, {"__reserved": "x"})


class TestRender:
    def test_help_type_and_sample_lines(self):
        text = prometheus_text([
            Sample("repro_x_total", 3, help="Things.", type="counter"),
        ])
        assert "# HELP repro_x_total Things." in text
        assert "# TYPE repro_x_total counter" in text
        assert "repro_x_total 3" in text
        assert text.endswith("\n")

    def test_labels_rendered_and_escaped(self):
        text = prometheus_text([
            Sample("repro_info", 1, {"run": 'a"b\\c'}),
        ])
        assert r'run="a\"b\\c"' in text

    def test_family_grouped_once(self):
        text = prometheus_text([
            Sample("repro_w", 1, {"worker": "a"}, type="counter"),
            Sample("repro_w", 2, {"worker": "b"}, type="counter"),
        ])
        assert text.count("# TYPE repro_w counter") == 1

    def test_value_formats(self):
        text = prometheus_text([
            Sample("a", 2.0), Sample("b", 0.25),
            Sample("c", float("nan")), Sample("d", float("inf")),
        ])
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert lines == ["a 2", "b 0.25", "c NaN", "d +Inf"]


class TestParse:
    def test_round_trip(self):
        samples = [
            Sample("repro_run_info", 1, {"run_id": "r1"}, help="h", type="gauge"),
            Sample("repro_jobs_completed_total", 4, type="counter"),
        ]
        back = parse_prometheus_text(prometheus_text(samples))
        assert [(s.name, s.value, dict(s.labels)) for s in back] == [
            (s.name, s.value, dict(s.labels)) for s in samples
        ]

    def test_rejects_garbage_line(self):
        with pytest.raises(ReproError, match="line 1"):
            parse_prometheus_text("!!! not metrics\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ReproError, match="unknown metric type"):
            parse_prometheus_text("# TYPE x widget\nx 1\n")

    def test_rejects_non_contiguous_family(self):
        with pytest.raises(ReproError, match="not contiguous"):
            parse_prometheus_text("a 1\nb 2\na 3\n")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ReproError, match="non-numeric"):
            parse_prometheus_text("a one\n")


class TestTelemetrySamples:
    def test_registry_prefix_and_core_names(self):
        tele = SchedTelemetry(mode="pool", completed=3, retries=1)
        samples = telemetry_samples(
            tele, run_id="r1", command="sweep", jobs_total=4
        )
        names = {s.name for s in samples}
        assert all(n.startswith("repro_") for n in names)
        assert {
            "repro_run_info", "repro_jobs_completed_total",
            "repro_retries_total", "repro_jobs_total",
            "repro_jobs_remaining", "repro_run_degraded",
        } <= names

    def test_fleet_counters_gated_on_workers(self):
        lean = telemetry_samples(SchedTelemetry())
        full = telemetry_samples(SchedTelemetry(fleet_workers=2))
        assert "repro_fleet_workers" not in {s.name for s in lean}
        assert "repro_fleet_workers" in {s.name for s in full}

    def test_cache_and_flight_sections(self):
        samples = telemetry_samples(
            SchedTelemetry(),
            cache_stats={"hits": 2, "misses": 1, "stores": 1, "quarantines": 0},
            flight_dumps=3,
        )
        by_name = {s.name: s.value for s in samples}
        assert by_name["repro_cache_hits_total"] == 2
        assert by_name["repro_flight_dumps_total"] == 3

    def test_output_is_valid_exposition(self):
        tele = SchedTelemetry(mode="pool", completed=1)
        parse_prometheus_text(prometheus_text(telemetry_samples(tele)))


class TestFleetSamples:
    def test_missing_run_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no fleet run directory"):
            fleet_samples(tmp_path / "ghost.fleet", run_id="ghost")


class TestWrite:
    def test_write_creates_parents(self, tmp_path):
        path = write_metrics_text(
            tmp_path / "deep" / "m.prom", [Sample("repro_x", 1)]
        )
        assert path.read_text() == prometheus_text([Sample("repro_x", 1)])
