"""Deterministic trace identity: same run id, same ids, always."""

import dataclasses

import pytest

from repro.obs import ROOT_SPAN_KEY, TraceContext, job_span_key, trace_id_for_run


class TestTraceIds:
    def test_trace_id_is_deterministic(self):
        assert trace_id_for_run("r1") == trace_id_for_run("r1")
        assert trace_id_for_run("r1") != trace_id_for_run("r2")

    def test_trace_id_shape(self):
        tid = trace_id_for_run("abc")
        assert len(tid) == 32
        int(tid, 16)  # hex

    def test_job_span_key(self):
        assert job_span_key(0) == "job:0"
        assert job_span_key(7) == "job:7"


class TestTraceContext:
    def test_root_has_no_parent(self):
        root = TraceContext.root("r1")
        assert root.is_root
        assert root.parent_span_id is None
        assert root.trace_id == trace_id_for_run("r1")

    def test_child_links_to_parent(self):
        root = TraceContext.root("r1")
        child = root.child("phase:merge")
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert not child.is_root

    def test_job_is_child_keyed_by_ordinal(self):
        root = TraceContext.root("r1")
        assert root.job(3) == root.child(job_span_key(3))

    def test_same_key_same_span(self):
        root = TraceContext.root("r1")
        assert root.job(0).span_id == root.job(0).span_id
        assert root.job(0).span_id != root.job(1).span_id

    def test_any_process_mints_identical_ids(self):
        # the property fleet workers rely on: no shared state needed
        a = TraceContext.root("runx").job(2)
        b = TraceContext.root("runx").job(2)
        assert a == b

    def test_span_id_shape(self):
        span = TraceContext.root("r1").job(0).span_id
        assert len(span) == 16
        int(span, 16)

    def test_frozen(self):
        root = TraceContext.root("r1")
        with pytest.raises(dataclasses.FrozenInstanceError):
            root.trace_id = "nope"


class TestDictRoundTrip:
    def test_as_dict_keys(self):
        d = TraceContext.root("r1").job(1).as_dict()
        assert set(d) == {"trace_id", "span_id", "parent_span_id"}

    def test_round_trip(self):
        ctx = TraceContext.root("r1").job(1)
        assert TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_from_dict_tolerates_missing(self):
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"benchmark": "CoMem"}) is None

    def test_from_dict_root(self):
        root = TraceContext.root("r1")
        assert TraceContext.from_dict(root.as_dict()) == root

    def test_root_key_stable(self):
        # ROOT_SPAN_KEY is part of the persisted-trace contract
        assert ROOT_SPAN_KEY == "run"
