"""fleet_status / render_fleet_status: the read-only repro top view."""

import json

import pytest

from repro.common.errors import ReproError
from repro.obs import fleet_status, render_fleet_status

NOW = 1_000_000.0


def event(name, t):
    return json.dumps({"event": name, "t": t})


@pytest.fixture()
def run_dir(tmp_path):
    """Synthetic in-flight fleet: w0 done, w1 live, w2 stale."""
    d = tmp_path / "r1.fleet"
    (d / "journals").mkdir(parents=True)
    (d / "events").mkdir()
    (d / "manifest.json").write_text(json.dumps({
        "run_id": "r1", "command": "sweep",
        "jobs": ["fp0", "fp1", "fp2", "fp3"],
    }))
    header = json.dumps({"schema": "repro-journal/1", "run_id": "r1"})
    (d / "journals" / "w0.ndjson").write_text(
        header + "\n"
        + json.dumps({"job": "fp0", "payload": {}}) + "\n"
        + json.dumps({"job": "fp1", "payload": {}}) + "\n"
    )
    (d / "journals" / "w1.ndjson").write_text(
        header + "\n" + json.dumps({"job": "fp2", "payload": {}}) + "\n"
    )
    (d / "events" / "w0.ndjson").write_text("\n".join([
        event("lease-acquire", NOW - 30),
        event("heartbeat", NOW - 29),
        event("worker-exit", NOW - 28),
    ]) + "\n")
    (d / "events" / "w1.ndjson").write_text("\n".join([
        event("lease-acquire", NOW - 3),
        event("lease-steal", NOW - 2),
        event("heartbeat", NOW - 1),
    ]) + "\n")
    (d / "events" / "w2.ndjson").write_text(
        event("lease-acquire", NOW - 120) + "\n"
    )
    return d


class TestFleetStatus:
    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no fleet run directory"):
            fleet_status(tmp_path / "ghost.fleet")

    def test_progress_counts(self, run_dir):
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        assert status["run_id"] == "r1"
        assert status["jobs_total"] == 4
        assert status["jobs_completed"] == 3
        assert status["jobs_remaining"] == 1

    def test_worker_health_states(self, run_dir):
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        states = {w["worker"]: w["state"] for w in status["workers"]}
        assert states == {"w0": "done", "w1": "live", "w2": "stale"}

    def test_event_counters_aggregated(self, run_dir):
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        assert status["leases_acquired"] == 3
        assert status["leases_stolen"] == 1
        assert status["heartbeats"] == 2

    def test_eta_from_completion_rate(self, run_dir):
        # 3 jobs in 120s of observed history -> 1 remaining ~= 40s out
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        assert status["eta_s"] == pytest.approx(40.0, rel=0.01)

    def test_corrupt_lease_surfaced_not_fatal(self, run_dir):
        (run_dir / "leases").mkdir()
        (run_dir / "leases" / "fp0.lease").write_text("not json {{")
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        assert status["active_leases"] == [{
            "job": "fp0", "owner": "<corrupt>", "epoch": None,
            "age_s": None, "stale": True,
        }]

    def test_quarantine_and_flight_counted(self, run_dir):
        (run_dir / "quarantine").mkdir()
        (run_dir / "quarantine" / "fp3.json").write_text("{}")
        (run_dir / "flightrec").mkdir()
        (run_dir / "flightrec" / "w2-crash.json").write_text("{}")
        (run_dir / "flightrec" / ".w2-crash.tmp").write_text("")
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        assert status["quarantined"] == 1
        assert status["flight_dumps"] == 1
        # quarantined jobs no longer count as remaining
        assert status["jobs_remaining"] == 0

    def test_read_only(self, run_dir):
        before = sorted(p for p in run_dir.rglob("*") if p.is_file())
        mtimes = [p.stat().st_mtime_ns for p in before]
        fleet_status(run_dir, ttl_s=5.0, now=NOW)
        after = sorted(p for p in run_dir.rglob("*") if p.is_file())
        assert after == before
        assert [p.stat().st_mtime_ns for p in after] == mtimes


class TestRender:
    def test_screen_contents(self, run_dir):
        status = fleet_status(run_dir, ttl_s=5.0, now=NOW)
        screen = render_fleet_status(status)
        assert "fleet r1" in screen
        assert "3/4 jobs (75%)" in screen
        assert "w0" in screen and "stale" in screen and "done" in screen
        assert "3 acquired, 1 stolen, 2 heartbeats" in screen

    def test_empty_run_renders(self, tmp_path):
        d = tmp_path / "empty.fleet"
        d.mkdir()
        screen = render_fleet_status(fleet_status(d, now=NOW))
        assert "0/0 jobs" in screen
