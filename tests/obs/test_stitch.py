"""Activity capture + cross-process trace stitching."""

import json

import pytest

from repro.common.errors import ReproError
from repro.obs import (
    ActivitySink,
    TraceContext,
    fleet_chrome_trace,
    journal_chrome_trace,
    read_journal_entries,
    read_worker_activity,
    write_fleet_trace,
)
from repro.prof.activity import ActivityHub

HEADER = {"schema": "repro-journal/1", "run_id": "r1", "command": "sweep"}


def write_journal(path, fps, run_id="r1", metas=None):
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({**HEADER, "run_id": run_id})]
    for i, fp in enumerate(fps):
        entry = {"job": fp, "payload": {"ok": True}}
        if metas is not None:
            entry["meta"] = metas[i]
        lines.append(json.dumps(entry))
    path.write_text("\n".join(lines) + "\n")


def make_fleet_dir(tmp_path, *, activity=True):
    """A minimal finished 2-worker fleet run: w0 won job 0, w1 job 1."""
    run_dir = tmp_path / "r1.fleet"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text(json.dumps({
        "run_id": "r1",
        "command": "sweep",
        "jobs": ["fp0", "fp1"],
        "specs": [{"benchmark": "MemAlign"}, {"benchmark": "CoMem"}],
    }))
    write_journal(run_dir / "journals" / "w0.ndjson", ["fp0"])
    write_journal(run_dir / "journals" / "w1.ndjson", ["fp1"])
    if activity:
        adir = run_dir / "activity"
        adir.mkdir()
        (adir / "w0.ndjson").write_text(json.dumps({
            "worker": "w0", "job": 0, "seq": 1, "kind": "kernel",
            "name": "copy_k", "track": "stream0",
            "start_s": 0.0, "end_s": 0.001, "dur_s": 0.001, "args": {},
        }) + "\n")
        (adir / "w1.ndjson").write_text(json.dumps({
            "worker": "w1", "job": 1, "seq": 1, "kind": "launch",
            "name": "launch_k", "track": "driver",
            "start_s": None, "end_s": None, "dur_s": None, "args": {},
        }) + "\n")
    return run_dir


def spans(trace):
    return [e for e in trace["traceEvents"] if e.get("cat") == "span"]


class TestActivitySink:
    def test_commit_publishes_only_buffered_job(self, tmp_path):
        path = tmp_path / "w0.ndjson"
        hub = ActivityHub()
        sink = ActivitySink(path, worker="w0")
        hub.subscribe(sink)
        hub.emit("kernel", "outside")          # before begin: dropped
        sink.begin(0)
        hub.emit("kernel", "inside")
        sink.commit()
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["name"] for l in lines] == ["inside"]
        assert lines[0]["worker"] == "w0"
        assert lines[0]["job"] == 0

    def test_abort_drops_failed_attempt(self, tmp_path):
        path = tmp_path / "w0.ndjson"
        hub = ActivityHub()
        sink = ActivitySink(path, worker="w0")
        hub.subscribe(sink)
        sink.begin(0)
        hub.emit("kernel", "doomed")
        sink.abort()                           # failed attempt
        sink.begin(0)
        hub.emit("kernel", "winner")
        sink.commit()
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["name"] for l in lines] == ["winner"]

    def test_commit_without_begin_is_noop(self, tmp_path):
        path = tmp_path / "w0.ndjson"
        sink = ActivitySink(path, worker="w0")
        sink.commit()
        sink.close()
        assert path.read_text() == ""


class TestReadWorkerActivity:
    def test_missing_dir_is_empty(self, tmp_path):
        assert read_worker_activity(tmp_path) == {}

    def test_torn_tail_skipped(self, tmp_path):
        adir = tmp_path / "activity"
        adir.mkdir()
        good = json.dumps({"worker": "w0", "job": 0, "name": "k"})
        (adir / "w0.ndjson").write_text(good + "\n" + '{"torn": ')
        lines = read_worker_activity(tmp_path)["w0"]
        assert [l["name"] for l in lines] == ["k"]


class TestReadJournalEntries:
    def test_header_and_meta_preserved(self, tmp_path):
        path = tmp_path / "r1.ndjson"
        write_journal(path, ["fp0"], metas=[{"benchmark": "MemAlign", "job": 0}])
        header, entries = read_journal_entries(path)
        assert header["run_id"] == "r1"
        assert entries[0]["meta"]["benchmark"] == "MemAlign"

    def test_duplicate_fingerprint_first_wins(self, tmp_path):
        path = tmp_path / "r1.ndjson"
        path.write_text(
            json.dumps(HEADER) + "\n"
            + json.dumps({"job": "fp0", "payload": {"v": 1}}) + "\n"
            + json.dumps({"job": "fp0", "payload": {"v": 2}}) + "\n"
        )
        _, entries = read_journal_entries(path)
        assert len(entries) == 1
        assert entries[0]["payload"] == {"v": 1}

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no journal"):
            read_journal_entries(tmp_path / "ghost.ndjson")


class TestFleetStitch:
    def test_one_lane_per_worker(self, tmp_path):
        trace = fleet_chrome_trace(make_fleet_dir(tmp_path))
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {1, 10, 11}  # run lane + two worker lanes

    def test_exactly_one_root_span(self, tmp_path):
        trace = fleet_chrome_trace(make_fleet_dir(tmp_path))
        roots = [
            e for e in spans(trace)
            if "parent_span_id" not in e["args"]
        ]
        assert len(roots) == 1
        assert roots[0]["args"]["trace_id"] == TraceContext.root("r1").trace_id

    def test_job_spans_parent_to_root(self, tmp_path):
        trace = fleet_chrome_trace(make_fleet_dir(tmp_path))
        root = TraceContext.root("r1")
        jobs = [e for e in spans(trace) if "parent_span_id" in e["args"]]
        assert len(jobs) == 2
        assert all(e["args"]["parent_span_id"] == root.span_id for e in jobs)
        assert {e["args"]["span_id"] for e in jobs} == {
            root.job(0).span_id, root.job(1).span_id,
        }

    def test_device_records_land_in_winner_lane(self, tmp_path):
        trace = fleet_chrome_trace(make_fleet_dir(tmp_path))
        kernel = [
            e for e in trace["traceEvents"] if e.get("cat") == "kernel"
        ]
        assert len(kernel) == 1 and kernel[0]["pid"] == 10  # w0's lane

    def test_restitch_is_byte_identical(self, tmp_path):
        run_dir = make_fleet_dir(tmp_path)
        a = json.dumps(fleet_chrome_trace(run_dir))
        b = json.dumps(fleet_chrome_trace(run_dir))
        assert a == b

    def test_no_activity_still_stitches(self, tmp_path):
        trace = fleet_chrome_trace(make_fleet_dir(tmp_path, activity=False))
        assert len(spans(trace)) == 3  # root + 2 wrapper spans

    def test_missing_manifest_raises(self, tmp_path):
        run_dir = tmp_path / "bad.fleet"
        run_dir.mkdir()
        with pytest.raises(ReproError, match="manifest"):
            fleet_chrome_trace(run_dir)

    def test_unjournaled_job_raises(self, tmp_path):
        run_dir = make_fleet_dir(tmp_path)
        (run_dir / "manifest.json").write_text(json.dumps({
            "run_id": "r1", "jobs": ["fp0", "fp1", "fp-never"],
        }))
        with pytest.raises(ReproError, match="never journaled"):
            fleet_chrome_trace(run_dir)

    def test_write_fleet_trace(self, tmp_path):
        run_dir = make_fleet_dir(tmp_path)
        out = write_fleet_trace(run_dir, tmp_path / "out" / "trace.json")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["run_id"] == "r1"


class TestJournalTrace:
    def test_spans_ordered_by_meta_ordinal(self, tmp_path):
        path = tmp_path / "r1.ndjson"
        # journaled out of order: ordinal 1 first (resume replay order)
        write_journal(path, ["fpB", "fpA"], metas=[
            {"benchmark": "CoMem", "job": 1},
            {"benchmark": "MemAlign", "job": 0},
        ])
        trace = journal_chrome_trace(path)
        jobs = [e for e in spans(trace) if "job" in e["args"]]
        assert [e["args"]["benchmark"] for e in jobs] == ["MemAlign", "CoMem"]
        assert jobs[0]["ts"] < jobs[1]["ts"]

    def test_trace_ignores_unstable_fields(self, tmp_path):
        a_path, b_path = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        write_journal(a_path, ["fp0"], metas=[{"benchmark": "X", "job": 0}])
        write_journal(
            b_path, ["fp0"],
            metas=[{"benchmark": "X", "job": 0, "attempts": 7, "source": "resume"}],
        )
        assert json.dumps(journal_chrome_trace(a_path)) == \
            json.dumps(journal_chrome_trace(b_path))

    def test_one_root_span(self, tmp_path):
        path = tmp_path / "r1.ndjson"
        write_journal(path, ["fp0", "fp1"])
        roots = [
            e for e in spans(journal_chrome_trace(path))
            if "parent_span_id" not in e["args"]
        ]
        assert len(roots) == 1
        assert roots[0]["args"]["run_id"] == "r1"
