"""MetricsServer: the --metrics-port scrape endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsServer, Sample, parse_prometheus_text


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


@pytest.fixture()
def server():
    samples = [Sample("repro_jobs_total", 4, help="Jobs.", type="gauge")]
    with MetricsServer(lambda: samples, port=0) as srv:
        yield srv


class TestRoutes:
    def test_metrics_scrape_parses(self, server):
        status, headers, body = fetch(server.url)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus_text(body)
        assert [(s.name, s.value) for s in parsed] == [("repro_jobs_total", 4.0)]

    def test_root_serves_metrics_too(self, server):
        status, _, body = fetch(f"http://{server.host}:{server.port}/")
        assert status == 200
        assert "repro_jobs_total" in body

    def test_healthz_204(self, server):
        status, _, body = fetch(f"http://{server.host}:{server.port}/healthz")
        assert status == 204
        assert body == ""

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(f"http://{server.host}:{server.port}/nope")
        assert exc.value.code == 404


class TestSnapshotFailure:
    def test_snapshot_exception_is_500_not_crash(self):
        def boom():
            raise RuntimeError("simulated")

        with MetricsServer(boom, port=0) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(srv.url)
            assert exc.value.code == 500
            # the server survives a failed snapshot
            with pytest.raises(urllib.error.HTTPError):
                fetch(srv.url)


class TestLifecycle:
    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert server.url.endswith("/metrics")

    def test_live_snapshot_reflects_updates(self):
        samples = [Sample("repro_jobs_completed_total", 0)]
        with MetricsServer(lambda: samples, port=0) as srv:
            _, _, before = fetch(srv.url)
            samples[0] = Sample("repro_jobs_completed_total", 3)
            _, _, after = fetch(srv.url)
        assert "repro_jobs_completed_total 0" in before
        assert "repro_jobs_completed_total 3" in after

    def test_stop_is_idempotent(self):
        srv = MetricsServer(lambda: [], port=0).start()
        srv.stop()
        srv.stop()
