"""Property: stitched traces are well-formed and byte-stable, always.

For any worker count and any seeded chaos flavor, the Chrome trace
stitched from a finished fleet run directory must (a) contain exactly
one root span, (b) contain no span whose ``parent_span_id`` does not
resolve to a span in the same document, and (c) be byte-identical on
re-stitch — kills, stalls, lease corruption, and clock skew may change
who executes what, never what the trace says happened.

The pool analog: a run that is interrupted and ``--resume``\\ d must
yield a journal trace byte-identical to the same run finishing in one
go, because the trace is derived only from stable journal fields and
span ids are minted from the run id alone.

Examples spawn real worker processes, so the sweep stays small (two
jobs, sub-second lease TTLs, a handful of examples per worker count).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.faults.plan import FaultPlan
from repro.obs import fleet_chrome_trace, journal_chrome_trace
from repro.resilience.fleet import FleetConfig, fleet_dir, run_fleet
from repro.sched import JobSpec

SPECS = [
    JobSpec(benchmark="MemAlign", params={"n": 8192}),
    JobSpec(benchmark="MemAlign", params={"n": 16384}),
]

FLAVORS = {
    "none": {},
    "kill": {"fleet_kill_prob": 1.0, "sched_fault_attempts": 1},
    "stall": {"heartbeat_stall_prob": 1.0, "sched_fault_attempts": 1},
    "corrupt": {"lease_corrupt_prob": 1.0, "sched_fault_attempts": 1},
    "skew": {
        "heartbeat_stall_prob": 1.0,
        "lease_skew_s": 30.0,
        "sched_fault_attempts": 1,
    },
}


def assert_well_formed(trace: dict) -> None:
    """One root span; every parent_span_id resolves in-document."""
    events = trace["traceEvents"]
    spans = [e for e in events if e.get("cat") == "span"]
    roots = [e for e in spans if "parent_span_id" not in e["args"]]
    assert len(roots) == 1, f"expected 1 root span, got {len(roots)}"
    known = {
        e["args"]["span_id"]
        for e in events
        if isinstance(e.get("args"), dict) and "span_id" in e["args"]
    }
    orphans = [
        e["args"]["parent_span_id"]
        for e in events
        if isinstance(e.get("args"), dict)
        and e["args"].get("parent_span_id") not in known | {None}
    ]
    assert not orphans, f"unresolvable parent span ids: {orphans}"


@pytest.mark.parametrize("workers", [1, 2, 4])
class TestFleetTraceProps:
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=7),
        flavor=st.sampled_from(sorted(FLAVORS)),
    )
    def test_stitched_trace_well_formed_and_stable(
        self, workers, tmp_path_factory, seed, flavor
    ):
        tmp_path = tmp_path_factory.mktemp("trace-prop")
        run_id = f"tprop-{workers}-{seed}-{flavor}"
        chaos = FaultPlan(seed, **FLAVORS[flavor]) if FLAVORS[flavor] else None
        cfg = FleetConfig(
            run_id=run_id,
            workers=workers,
            journal_root=tmp_path,
            lease_ttl_s=0.4,
            heartbeat_s=0.1,
            join_timeout_s=60.0,
            chaos=chaos,
        )
        run_fleet(SPECS, cfg)
        run_dir = fleet_dir(tmp_path, run_id)
        trace = fleet_chrome_trace(run_dir)
        assert_well_formed(trace)
        # every manifest job got a span; each winner's lane holds its span
        job_spans = [
            e for e in trace["traceEvents"]
            if e.get("cat") == "span" and "job" in e.get("args", {})
        ]
        assert sorted(e["args"]["job"] for e in job_spans) == [0, 1]
        assert all(e["pid"] >= 10 for e in job_spans)
        # byte-identical re-stitch of the same finished run dir
        assert json.dumps(trace) == json.dumps(fleet_chrome_trace(run_dir))


class TestPoolResumeTraceIdentity:
    def test_interrupt_resume_trace_matches_uninterrupted(self, tmp_path, capsys):
        values = "8192,16384"
        base = ["sweep", "MemAlign", "--values", values, "--no-cache"]
        straight = tmp_path / "straight"
        resumed = tmp_path / "resumed"
        assert main(
            base + ["--journal-dir", str(straight), "--run-id", "r1"]
        ) == 0
        assert main(
            base + ["--journal-dir", str(resumed), "--run-id", "r1",
                    "--chaos", "interrupt-after=1"]
        ) == 4
        assert main(
            base + ["--journal-dir", str(resumed), "--resume", "r1"]
        ) == 0
        capsys.readouterr()
        a = json.dumps(journal_chrome_trace(straight / "r1.ndjson"))
        b = json.dumps(journal_chrome_trace(resumed / "r1.ndjson"))
        assert a == b
        assert_well_formed(json.loads(a))
