"""Flight recorder: bounded ring, atomic dumps, dump discovery."""

import json

import pytest

from repro.obs import (
    DEFAULT_CAPACITY,
    FLIGHT_FORMAT,
    FlightRecorder,
    list_flight_dumps,
    read_flight_dump,
)
from repro.prof.activity import ActivityHub, ActivityRecord


def rec(i, kind="kernel"):
    return ActivityRecord(kind=kind, name=f"k{i}", seq=i)


class TestRing:
    def test_keeps_only_last_capacity(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr(rec(i))
        assert len(fr) == 3
        assert [r.name for r in fr.records] == ["k7", "k8", "k9"]
        assert fr.dropped == 7

    def test_no_drops_under_capacity(self):
        fr = FlightRecorder(capacity=8)
        for i in range(5):
            fr(rec(i))
        assert fr.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_usable_as_hub_subscriber(self):
        hub = ActivityHub()
        fr = FlightRecorder(worker="w0")
        hub.subscribe(fr)
        hub.emit("kernel", "k0")
        hub.emit("sched", "k1")
        assert [r.name for r in fr.records] == ["k0", "k1"]


class TestDump:
    def test_dump_document(self, tmp_path):
        fr = FlightRecorder(worker="w2", run_id="r1", capacity=4)
        for i in range(6):
            fr(rec(i))
        path = fr.dump(tmp_path, reason="quarantine")
        assert path.name == "w2-quarantine.json"
        doc = read_flight_dump(path)
        assert doc["format"] == FLIGHT_FORMAT
        assert doc["worker"] == "w2"
        assert doc["run_id"] == "r1"
        assert doc["dropped"] == 2
        assert [r["name"] for r in doc["records"]] == ["k2", "k3", "k4", "k5"]

    def test_dump_creates_dir_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "flightrec" / "deep"
        FlightRecorder(worker="w0").dump(target, reason="crash")
        assert not list(target.glob(".*.tmp"))

    def test_anonymous_worker_gets_default_stem(self, tmp_path):
        path = FlightRecorder().dump(tmp_path, reason="exit")
        assert path.name == "worker-exit.json"


class TestRead:
    def test_rejects_wrong_format(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(ValueError, match=FLIGHT_FORMAT):
            read_flight_dump(bad)

    def test_rejects_non_object(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError, match=FLIGHT_FORMAT):
            read_flight_dump(bad)


class TestList:
    def test_missing_dir_is_empty(self, tmp_path):
        assert list_flight_dumps(tmp_path / "ghost") == []

    def test_sorted_and_filtered(self, tmp_path):
        (tmp_path / "b-crash.json").write_text("{}")
        (tmp_path / "a-exit.json").write_text("{}")
        (tmp_path / ".a-exit.tmp").write_text("")
        (tmp_path / "notes.txt").write_text("")
        assert [p.name for p in list_flight_dumps(tmp_path)] == [
            "a-exit.json", "b-crash.json",
        ]
