"""Property-based tests: allocator soundness under random op sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AllocationError
from repro.mem.allocator import DeviceAllocator

CAPACITY = 1 << 16


@st.composite
def op_sequences(draw):
    """A random interleaving of malloc/free operations."""
    n = draw(st.integers(1, 40))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("malloc", draw(st.integers(1, 4096)),
                        draw(st.sampled_from([1, 16, 256, 1024]))))
        else:
            ops.append(("free", draw(st.integers(0, 100)), 0))
    return ops


class TestAllocatorSoundness:
    @given(ops=op_sequences())
    @settings(max_examples=100, deadline=None)
    def test_no_overlap_and_accounting(self, ops):
        alloc = DeviceAllocator(CAPACITY)
        live = []
        expected_in_use = 0
        for kind, a, b in ops:
            if kind == "malloc":
                try:
                    al = alloc.malloc(a, align=b)
                except AllocationError:
                    continue
                assert al.addr % b == 0
                live.append(al)
                expected_in_use += a
            elif live:
                al = live.pop(a % len(live))
                alloc.free(al)
                expected_in_use -= al.nbytes
            # invariants after every operation
            assert alloc.bytes_in_use == expected_in_use
            spans = sorted((x.addr, x.end) for x in live)
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2, "allocations overlap"

    @given(sizes=st.lists(st.integers(1, 1024), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_free_all_restores_capacity(self, sizes):
        alloc = DeviceAllocator(CAPACITY)
        live = []
        for s in sizes:
            try:
                live.append(alloc.malloc(s, align=1))
            except AllocationError:
                break
        for al in live:
            alloc.free(al)
        assert alloc.bytes_in_use == 0
        # the arena coalesced back into one big hole
        big = alloc.malloc(CAPACITY, align=1)
        assert big.nbytes == CAPACITY

    @given(sizes=st.lists(st.integers(1, 512), min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_find_resolves_every_live_byte(self, sizes):
        alloc = DeviceAllocator(CAPACITY)
        live = []
        for s in sizes:
            try:
                live.append(alloc.malloc(s))
            except AllocationError:
                break
        for al in live:
            assert alloc.find(al.addr) is al
            assert alloc.find(al.end - 1) is al
