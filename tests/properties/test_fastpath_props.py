"""Property-based tests: the residue-class fast path vs the reference oracle.

For every randomly drawn affine access pattern (base offset x stride x
itemsize x grid size x warp-granular activity), the fast analyzers must
either decline (return ``None`` — never wrong, just ineligible) or
produce a summary equal to the reference analyzer's, field for field.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.fastpath import analyze_access_fast, analyze_shared_access_fast
from repro.mem.banks import analyze_shared_access
from repro.mem.coalesce import analyze_access

BASE = 0x100000

n_lanes = st.integers(1, 8).map(lambda w: w * 32)
strides = st.integers(-64, 64)
offsets = st.integers(0, 255)
itemsizes = st.sampled_from([1, 2, 4, 8, 16])


def affine_addrs(n, stride, itemsize, offset):
    return BASE + offset + np.arange(n, dtype=np.int64) * stride * itemsize


def warp_mask(data, n):
    """Whole warps on or off (the convergent shapes the fast path accepts)."""
    flags = data.draw(
        st.lists(st.booleans(), min_size=n // 32, max_size=n // 32)
    )
    return np.repeat(np.asarray(flags, dtype=bool), 32)


class TestGlobalFastPath:
    @given(n=n_lanes, stride=strides, itemsize=itemsizes, offset=offsets)
    @settings(max_examples=120, deadline=None)
    def test_affine_equals_reference(self, n, stride, itemsize, offset):
        addrs = affine_addrs(n, stride, itemsize, offset)
        fast = analyze_access_fast(addrs, None, itemsize)
        assert fast is not None, "affine access must be eligible"
        assert fast == analyze_access(addrs, None, itemsize)

    @given(
        data=st.data(), n=n_lanes, stride=strides, itemsize=itemsizes, offset=offsets
    )
    @settings(max_examples=80, deadline=None)
    def test_warp_granular_masks_equal_reference(
        self, data, n, stride, itemsize, offset
    ):
        addrs = affine_addrs(n, stride, itemsize, offset)
        mask = warp_mask(data, n)
        fast = analyze_access_fast(addrs, mask, itemsize)
        assert fast is not None
        assert fast == analyze_access(addrs, mask, itemsize)

    @given(data=st.data(), n=n_lanes, itemsize=itemsizes)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_patterns_never_wrong(self, data, n, itemsize):
        # unrestricted indices: fast may decline, but must not disagree
        idx = data.draw(
            st.lists(st.integers(0, 1 << 12), min_size=n, max_size=n)
        )
        addrs = BASE + np.asarray(idx, dtype=np.int64) * itemsize
        fast = analyze_access_fast(addrs, None, itemsize)
        if fast is not None:
            assert fast == analyze_access(addrs, None, itemsize)


class TestSharedFastPath:
    @given(n=n_lanes, stride=st.integers(0, 64), offset=st.integers(0, 127))
    @settings(max_examples=120, deadline=None)
    def test_affine_equals_reference(self, n, stride, offset):
        offs = offset + np.arange(n, dtype=np.int64) * stride * 4
        fast = analyze_shared_access_fast(offs, None)
        assert fast is not None
        assert fast == analyze_shared_access(offs, None)

    @given(data=st.data(), n=n_lanes, stride=st.integers(0, 33))
    @settings(max_examples=60, deadline=None)
    def test_warp_granular_masks_equal_reference(self, data, n, stride):
        offs = np.arange(n, dtype=np.int64) * stride * 4
        mask = warp_mask(data, n)
        fast = analyze_shared_access_fast(offs, mask)
        assert fast is not None
        assert fast == analyze_shared_access(offs, mask)
