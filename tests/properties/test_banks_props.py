"""Property-based tests: bank-conflict analysis vs a brute-force oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.banks import analyze_shared_access


def brute_force_degree(words, mask):
    """Max per-bank multiplicity of distinct words, per warp; summed."""
    passes = 0
    worst = 0
    warps = 0
    for w in range(0, len(words), 32):
        by_bank: dict[int, set[int]] = {}
        active = False
        for lane in range(w, min(w + 32, len(words))):
            if mask is None or mask[lane]:
                active = True
                word = int(words[lane])
                by_bank.setdefault(word % 32, set()).add(word)
        if not active:
            continue
        warps += 1
        degree = max((len(s) for s in by_bank.values()), default=1)
        passes += degree
        worst = max(worst, degree)
    return warps, passes, worst


words_strategy = st.lists(st.integers(0, 2048), min_size=1, max_size=200)


class TestAgainstOracle:
    @given(words=words_strategy)
    @settings(max_examples=80, deadline=None)
    def test_passes_match(self, words):
        offsets = np.asarray(words, dtype=np.int64) * 4
        s = analyze_shared_access(offsets, None)
        warps, passes, worst = brute_force_degree(words, None)
        assert s.n_warps == warps
        assert s.passes == passes
        assert s.max_degree == worst

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_masked_matches(self, data):
        words = data.draw(words_strategy)
        mask = np.array(
            data.draw(st.lists(st.booleans(), min_size=len(words), max_size=len(words)))
        )
        offsets = np.asarray(words, dtype=np.int64) * 4
        s = analyze_shared_access(offsets, mask)
        warps, passes, worst = brute_force_degree(words, mask)
        assert (s.n_warps, s.passes, s.max_degree) == (warps, passes, worst)


class TestInvariants:
    @given(words=words_strategy)
    @settings(max_examples=60, deadline=None)
    def test_degree_bounds(self, words):
        offsets = np.asarray(words, dtype=np.int64) * 4
        s = analyze_shared_access(offsets, None)
        assert s.n_warps <= s.passes <= s.n_warps * 32
        assert 0 <= s.conflict_extra == s.passes - s.n_warps
        assert s.max_degree <= 32

    @given(word=st.integers(0, 1000), n=st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_broadcast_always_free(self, word, n):
        offsets = np.full(n, word, dtype=np.int64) * 4
        s = analyze_shared_access(offsets, None)
        assert s.passes == 1

    @given(words=words_strategy)
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariant(self, words):
        words32 = (words * 32)[:32]
        offsets = np.asarray(words32, dtype=np.int64) * 4
        rng = np.random.default_rng(1)
        shuffled = offsets.copy()
        rng.shuffle(shuffled)
        a = analyze_shared_access(offsets, None)
        b = analyze_shared_access(shuffled, None)
        assert a.passes == b.passes
