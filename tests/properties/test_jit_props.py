"""Properties of the trace-JIT tier: equivalence is not negotiable.

Three laws, each over randomized parameters:

* jit ≡ reference for any benchmark run (the backend changes wall
  clock, never results);
* a warm artifact cache replays to exactly what the cold trace
  produced (sweep determinism across store states);
* a two-worker fleet running jit jobs merges to the serial jit run
  byte-for-byte (the PR 6 fleet law, lifted to the third backend).
"""

import functools
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import get_benchmark
from repro.exec import use_backend
from repro.jit import reset_jit_store
from repro.resilience.fleet import FleetConfig, run_fleet
from repro.sched import JobSpec, run_jobs

#: cheap, parameterizable subjects with distinct access shapes
#: (CoMem needs paper-scale n to populate its block distribution, so it
#: is covered by the differential matrix and the throughput bench)
SUBJECTS = ("MemAlign", "BankRedux", "Shuffle")

# multiples of the 256-thread block every subject launches with
sizes = st.sampled_from([1 << 12, 1 << 13, 1 << 14, 3 * 1024])


class _StoreDir:
    """Point the global jit store at a private directory, restore after."""

    def __init__(self, path):
        self.path = str(path)

    def __enter__(self):
        self._prev = os.environ.get("REPRO_JIT_CACHE_DIR")
        os.environ["REPRO_JIT_CACHE_DIR"] = self.path
        reset_jit_store()
        return self

    def __exit__(self, *exc):
        if self._prev is None:
            os.environ.pop("REPRO_JIT_CACHE_DIR", None)
        else:
            os.environ["REPRO_JIT_CACHE_DIR"] = self._prev
        reset_jit_store()
        return False


class TestJitEqualsReference:
    @settings(max_examples=8, deadline=None)
    @given(name=st.sampled_from(SUBJECTS), n=sizes)
    def test_run_identical(self, name, n):
        with use_backend("reference"):
            ref = get_benchmark(name).run(n=n).as_dict()
        with use_backend("jit"):
            jit = get_benchmark(name).run(n=n).as_dict()
        assert ref == jit

    @settings(max_examples=4, deadline=None)
    @given(n=st.sampled_from([256, 512]), density=st.integers(2, 4))
    def test_sparse_transfer_identical(self, n, density):
        # MiniTransfer gathers through a random CSR pattern: per-lane
        # data-dependent addresses, the jit's hardest case
        with use_backend("reference"):
            ref = get_benchmark("MiniTransfer").run(
                n=n, nnz=density * n
            ).as_dict()
        with use_backend("jit"):
            jit = get_benchmark("MiniTransfer").run(
                n=n, nnz=density * n
            ).as_dict()
        assert ref == jit


class TestWarmEqualsCold:
    @settings(max_examples=6, deadline=None)
    @given(name=st.sampled_from(SUBJECTS), n=sizes)
    def test_sweep_replay_identical(self, name, n, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("jit-prop")
        values = [n, 2 * n]
        with _StoreDir(store_dir):
            with use_backend("jit"):
                cold = get_benchmark(name).sweep(values).as_dict()
            # fresh process-alike store over the same directory: every
            # launch must come back from a persisted artifact
            reset_jit_store()
            with use_backend("jit"):
                warm = get_benchmark(name).sweep(values).as_dict()
        assert cold == warm


JIT_SPECS = [
    JobSpec(benchmark="MemAlign", params={"n": 8192}, backend="jit"),
    JobSpec(benchmark="MemAlign", params={"n": 16384}, backend="jit"),
]


@functools.lru_cache(maxsize=1)
def serial_jit_bytes() -> str:
    return json.dumps(run_jobs(JIT_SPECS))


class TestFleetJitByteIdentity:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=7))
    def test_two_worker_fleet_matches_serial(self, tmp_path_factory, seed):
        tmp_path = tmp_path_factory.mktemp("fleet-jit-prop")
        cfg = FleetConfig(
            run_id=f"jit-prop-{seed}",
            workers=2,
            journal_root=tmp_path,
            lease_ttl_s=0.4,
            heartbeat_s=0.1,
            join_timeout_s=60.0,
        )
        payloads = run_fleet(JIT_SPECS, cfg)
        assert json.dumps(payloads) == serial_jit_bytes()
        assert cfg.telemetry.completed == len(JIT_SPECS)
