"""Property-based tests: timing-model monotonicity invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import TESLA_V100
from repro.simt.executor import run_kernel
from repro.simt.kernel import kernel
from repro.timing.model import estimate_kernel_time
from repro.timing.occupancy import compute_occupancy
from tests.conftest import make_device_array
from repro.mem.allocator import DeviceAllocator


@kernel
def saxpy(ctx, x, y, n, a):
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))


def timed(n, block=256, gpu=TESLA_V100, **kw):
    alloc = DeviceAllocator(1 << 30)
    x = make_device_array(alloc, np.zeros(n, dtype=np.float32))
    y = make_device_array(alloc, np.zeros(n, dtype=np.float32))
    stats = run_kernel(saxpy, -(-n // block), block, (x, y, n, 2.0), gpu=gpu)
    return estimate_kernel_time(stats, gpu, **kw)


class TestTimingMonotonicity:
    @given(k=st.integers(12, 18))
    @settings(max_examples=7, deadline=None)
    def test_bigger_problem_never_faster(self, k):
        t1 = timed(1 << k).exec_s
        t2 = timed(1 << (k + 1)).exec_s
        assert t2 > t1

    @given(sms=st.integers(1, 80))
    @settings(max_examples=15, deadline=None)
    def test_fewer_sms_never_faster(self, sms):
        full = timed(1 << 16)
        limited = timed(1 << 16, sm_limit=sms)
        assert limited.exec_s >= full.exec_s * 0.999

    @given(beta=st.floats(0.0, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_beta_monotone(self, beta):
        base = timed(1 << 14, beta=0.0)
        more = timed(1 << 14, beta=beta)
        assert more.exec_s >= base.exec_s * 0.999

    @given(block=st.sampled_from([32, 64, 128, 256, 512, 1024]))
    @settings(max_examples=6, deadline=None)
    def test_block_size_insensitive_for_streaming(self, block):
        """Coalesced streaming time shouldn't swing wildly with block size."""
        ref = timed(1 << 16, block=256).exec_s
        t = timed(1 << 16, block=block).exec_s
        assert 0.4 < t / ref < 2.5

    @given(k=st.integers(12, 20))
    @settings(max_examples=9, deadline=None)
    def test_bandwidth_never_exceeds_peak(self, k):
        n = 1 << k
        t = timed(n)
        bw = 3 * n * 4 / t.exec_s
        assert bw <= TESLA_V100.dram_bandwidth * 1.001


class TestOccupancyProperties:
    @given(
        threads=st.integers(1, 1024),
        regs=st.integers(16, 128),
        smem=st.integers(0, 48 * 1024),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_within_bounds(self, threads, regs, smem):
        from repro.common.errors import LaunchConfigError

        try:
            occ = compute_occupancy(
                TESLA_V100,
                threads,
                registers_per_thread=regs,
                shared_mem_per_block=smem,
            )
        except LaunchConfigError:
            return
        assert 1 <= occ.blocks_per_sm <= TESLA_V100.max_blocks_per_sm
        assert occ.warps_per_sm <= TESLA_V100.warps_per_sm
        assert 0 < occ.occupancy <= 1.0
        # resources actually fit
        assert occ.blocks_per_sm * max(smem, 1) <= TESLA_V100.shared_mem_per_sm + 256 * occ.blocks_per_sm
        assert occ.waves >= 1

    @given(threads=st.integers(1, 1024))
    @settings(max_examples=30, deadline=None)
    def test_more_registers_never_increases_occupancy(self, threads):
        from repro.common.errors import LaunchConfigError

        lo = compute_occupancy(TESLA_V100, threads, registers_per_thread=32)
        try:
            hi_blocks = compute_occupancy(
                TESLA_V100, threads, registers_per_thread=128
            ).blocks_per_sm
        except LaunchConfigError:
            hi_blocks = 0  # cannot even be resident
        assert hi_blocks <= lo.blocks_per_sm
