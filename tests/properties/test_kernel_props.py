"""Property-based tests: kernel results match NumPy references."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arch.presets import CARINA
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_1per_thread, axpy_cyclic
from repro.kernels.reduction import reduce_sequential, reduce_shuffle
from repro.sparse.csr import CSRMatrix

floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, width=32
)


def f32_arrays(n):
    return arrays(np.float32, n, elements=floats)


class TestAxpyProperties:
    @given(
        hx=f32_arrays(256),
        hy=f32_arrays(256),
        a=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_numpy(self, hx, hy, a):
        rt = CudaLite(CARINA)
        x, y = rt.to_device(hx), rt.to_device(hy)
        rt.launch(axpy_1per_thread, 1, 256, x, y, 256, np.float32(a))
        rt.synchronize()
        assert np.allclose(
            y.to_host(), hy + np.float32(a) * hx, rtol=1e-5, atol=1e-4
        )

    @given(hx=f32_arrays(512), hy=f32_arrays(512))
    @settings(max_examples=15, deadline=None)
    def test_distributions_equivalent(self, hx, hy):
        rt = CudaLite(CARINA)
        x = rt.to_device(hx)
        y1 = rt.to_device(hy)
        rt.launch(axpy_1per_thread, 2, 256, x, y1, 512, 2.0)
        y2 = rt.to_device(hy)
        rt.launch(axpy_cyclic, 1, 128, x, y2, 512, 2.0)
        rt.synchronize()
        assert np.array_equal(y1.to_host(), y2.to_host())


class TestReductionProperties:
    @given(hx=f32_arrays(512))
    @settings(max_examples=20, deadline=None)
    def test_sum_preserved(self, hx):
        rt = CudaLite(CARINA)
        x = rt.to_device(hx)
        r = rt.malloc(512 // 64)
        rt.launch(reduce_sequential, 512 // 64, 64, x, r)
        rt.synchronize()
        assert np.allclose(
            r.to_host(), hx.reshape(-1, 64).sum(axis=1), rtol=1e-3, atol=1e-2
        )

    @given(hx=f32_arrays(256))
    @settings(max_examples=20, deadline=None)
    def test_shuffle_equals_sequential(self, hx):
        rt = CudaLite(CARINA)
        x = rt.to_device(hx)
        r1 = rt.malloc(256 // 128)
        r2 = rt.malloc(256 // 128)
        rt.launch(reduce_sequential, 2, 128, x, r1)
        rt.launch(reduce_shuffle, 2, 128, x, r2)
        rt.synchronize()
        assert np.allclose(r1.to_host(), r2.to_host(), rtol=1e-4, atol=1e-3)


class TestCSRProperties:
    @given(
        dense=arrays(
            np.float32,
            (12, 12),
            elements=st.one_of(st.just(0.0), floats),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_from_dense_roundtrip(self, dense):
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.to_dense(), dense)
        assert csr.nnz == int((dense != 0).sum())

    @given(
        dense=arrays(
            np.float32,
            (10, 10),
            elements=st.one_of(st.just(0.0), floats),
        ),
        x=f32_arrays(10),
    )
    @settings(max_examples=40, deadline=None)
    def test_spmv_matches_dense(self, dense, x):
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.spmv(x), dense @ x, rtol=1e-3, atol=1e-2)

    @given(
        dense=arrays(
            np.float32,
            (8, 8),
            elements=st.one_of(st.just(0.0), floats),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_transpose_roundtrip(self, dense):
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.transpose().to_dense(), dense)
