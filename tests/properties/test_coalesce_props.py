"""Property-based tests: coalescing analysis vs a brute-force oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.coalesce import analyze_access

BASE = 0x100000


def brute_force_counts(addrs, mask, itemsize, seg):
    """Reference implementation: per-warp distinct segments, via sets."""
    total = 0
    for w in range(0, len(addrs), 32):
        segs = set()
        for lane in range(w, min(w + 32, len(addrs))):
            if mask is None or mask[lane]:
                a = int(addrs[lane])
                segs.add(a // seg)
                segs.add((a + itemsize - 1) // seg)
        total += len(segs)
    return total


indices = st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200)
masks = st.lists(st.booleans(), min_size=1, max_size=200)
itemsizes = st.sampled_from([1, 2, 4, 8, 16])


class TestAgainstOracle:
    @given(idx=indices, itemsize=itemsizes)
    @settings(max_examples=60, deadline=None)
    def test_transactions_match_brute_force(self, idx, itemsize):
        addrs = BASE + np.asarray(idx, dtype=np.int64) * itemsize
        s = analyze_access(addrs, None, itemsize)
        assert s.transactions == brute_force_counts(addrs, None, itemsize, 128)

    @given(idx=indices, itemsize=itemsizes)
    @settings(max_examples=60, deadline=None)
    def test_sectors_match_brute_force(self, idx, itemsize):
        addrs = BASE + np.asarray(idx, dtype=np.int64) * itemsize
        s = analyze_access(addrs, None, itemsize)
        assert s.sectors == brute_force_counts(addrs, None, itemsize, 32)

    @given(data=st.data(), itemsize=itemsizes)
    @settings(max_examples=40, deadline=None)
    def test_masked_matches_brute_force(self, data, itemsize):
        idx = data.draw(indices)
        mask = np.array(
            data.draw(
                st.lists(st.booleans(), min_size=len(idx), max_size=len(idx))
            )
        )
        addrs = BASE + np.asarray(idx, dtype=np.int64) * itemsize
        s = analyze_access(addrs, mask, itemsize)
        assert s.transactions == brute_force_counts(addrs, mask, itemsize, 128)


class TestInvariants:
    @given(idx=indices, itemsize=itemsizes)
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, idx, itemsize):
        addrs = BASE + np.asarray(idx, dtype=np.int64) * itemsize
        s = analyze_access(addrs, None, itemsize)
        n_warps = -(-len(idx) // 32)
        assert s.n_warps == n_warps
        # at least 1, at most lanes x 2 (straddles) transactions per warp
        assert n_warps <= s.transactions <= 2 * len(idx)
        # sector count >= transaction count never holds in general, but
        # sectors fit within transactions x sectors-per-transaction
        assert s.sectors <= s.transactions * 4 + len(idx)
        assert 1.0 <= s.dram_burst_factor <= 2.0

    @given(idx=indices)
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariant(self, idx):
        """Shuffling lanes within one warp cannot change the counts."""
        idx = (idx * 32)[:32]  # one full warp
        addrs = BASE + np.asarray(idx, dtype=np.int64) * 4
        rng = np.random.default_rng(0)
        shuffled = addrs.copy()
        rng.shuffle(shuffled)
        a = analyze_access(addrs, None, 4)
        b = analyze_access(shuffled, None, 4)
        assert a.transactions == b.transactions
        assert a.sectors == b.sectors

    @given(idx=indices)
    @settings(max_examples=40, deadline=None)
    def test_widening_mask_monotone(self, idx):
        """More active lanes can never reduce the transaction count."""
        addrs = BASE + np.asarray(idx, dtype=np.int64) * 4
        half = np.zeros(len(idx), dtype=bool)
        half[: len(idx) // 2] = True
        full = np.ones(len(idx), dtype=bool)
        a = analyze_access(addrs, half, 4)
        b = analyze_access(addrs, full, 4)
        assert b.transactions >= a.transactions
