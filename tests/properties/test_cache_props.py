"""Property-based tests: LRU cache invariants."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import LRUCache

streams = st.lists(st.integers(0, 64), min_size=1, max_size=300)


def oracle_fully_associative(stream, capacity):
    """Reference fully-associative LRU."""
    lru: OrderedDict[int, None] = OrderedDict()
    hits = 0
    for line in stream:
        if line in lru:
            hits += 1
            lru.move_to_end(line)
        else:
            if len(lru) >= capacity:
                lru.popitem(last=False)
            lru[line] = None
    return hits


class TestOracle:
    @given(stream=streams, capacity=st.integers(1, 32))
    @settings(max_examples=80, deadline=None)
    def test_fully_associative_matches(self, stream, capacity):
        c = LRUCache(capacity, ways=capacity)
        c.access_many(stream)
        assert c.hits == oracle_fully_associative(stream, capacity)


class TestInvariants:
    @given(stream=streams, capacity=st.integers(0, 64), ways=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_counts_consistent(self, stream, capacity, ways):
        c = LRUCache(capacity, ways=ways)
        c.access_many(stream)
        assert c.hits + c.misses == len(stream)
        assert len(c) <= capacity if capacity else len(c) == 0
        assert c.evictions <= c.misses

    @given(stream=streams, capacity=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_bigger_cache_never_worse(self, stream, capacity):
        """LRU inclusion property: more capacity, same ways ratio -> >= hits."""
        small = LRUCache(capacity, ways=capacity)
        big = LRUCache(capacity * 2, ways=capacity * 2)
        small.access_many(stream)
        big.access_many(stream)
        assert big.hits >= small.hits

    @given(stream=streams)
    @settings(max_examples=60, deadline=None)
    def test_dirtied_bounded_by_distinct_writes(self, stream):
        c = LRUCache(16)
        c.access_many(stream, write=True)
        assert c.lines_dirtied >= len(set(stream))
        assert c.lines_dirtied <= len(stream)

    @given(stream=streams)
    @settings(max_examples=40, deadline=None)
    def test_infinite_cache_misses_equal_distinct(self, stream):
        c = LRUCache(1 << 20, ways=16)
        c.access_many(stream)
        # with a huge hashed cache, conflict misses are absent
        assert c.misses == len(set(stream))
