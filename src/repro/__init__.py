"""CUDAMicroBench reproduction.

A SIMT GPU performance simulator in pure Python/NumPy plus the fourteen
CUDA performance microbenchmarks of

    Yi, Yan, Stokes, Liao — "CUDAMicroBench: Microbenchmarks to Assist
    CUDA Performance Programming", IPDPS Workshops 2021.

Quickstart::

    import numpy as np
    from repro import CudaLite, kernel, CARINA

    rt = CudaLite(CARINA)                       # a V100 system

    @kernel
    def axpy(ctx, x, y, n, a):
        i = ctx.global_thread_id()
        ctx.if_active(i < n,
                      lambda: ctx.store(y, i, a * ctx.load(x, i) + ctx.load(y, i)))

    n = 1 << 20
    x = rt.to_device(np.random.rand(n).astype(np.float32))
    y = rt.to_device(np.ones(n, dtype=np.float32))
    with rt.timer() as t:
        rt.launch(axpy, (n + 255) // 256, 256, x, y, n, 2.0)
    print(f"simulated kernel time: {t.elapsed * 1e6:.1f} us")
    print(rt.profile_report())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-simulated results of every table and figure.
"""

from repro.arch import (
    A100,
    CARINA,
    FORNAX,
    RTX3080_SYSTEM,
    RTX_3080,
    TESLA_K80,
    TESLA_V100,
    GPUSpec,
    LinkSpec,
    SystemSpec,
    get_gpu,
    get_system,
)
from repro.core import (
    ALL_BENCHMARKS,
    BenchResult,
    Microbenchmark,
    SweepResult,
    get_benchmark,
    list_benchmarks,
    run_suite,
    table1,
)
from repro.host import CudaLite, Event, Stream, Timeline
from repro.mem import DeviceArray
from repro.simt import Dim3, KernelDef, KernelStats, TextureView, kernel, run_kernel
from repro.timing import KernelTiming, Occupancy, compute_occupancy, estimate_kernel_time

__version__ = "1.0.0"

__all__ = [
    "A100",
    "CARINA",
    "FORNAX",
    "RTX3080_SYSTEM",
    "RTX_3080",
    "TESLA_K80",
    "TESLA_V100",
    "GPUSpec",
    "LinkSpec",
    "SystemSpec",
    "get_gpu",
    "get_system",
    "ALL_BENCHMARKS",
    "BenchResult",
    "Microbenchmark",
    "SweepResult",
    "get_benchmark",
    "list_benchmarks",
    "run_suite",
    "table1",
    "CudaLite",
    "Event",
    "Stream",
    "Timeline",
    "DeviceArray",
    "Dim3",
    "KernelDef",
    "KernelStats",
    "TextureView",
    "kernel",
    "run_kernel",
    "KernelTiming",
    "Occupancy",
    "compute_occupancy",
    "estimate_kernel_time",
    "__version__",
]
