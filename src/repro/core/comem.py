"""CoMem (paper §IV-B, Fig. 8/9).

Block vs. cyclic distribution of a data-parallel loop: with a *block*
distribution each thread owns a contiguous chunk, so the 32 lanes of a
warp touch addresses a chunk apart — every request explodes into many
memory transactions.  A *cyclic* distribution gives consecutive
elements to consecutive lanes: one transaction per warp.  The paper
measures ~18x with ``<<<1024, 256>>>`` on a V100 (Fig. 9).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_block, axpy_cyclic
from repro.timing.model import estimate_kernel_time

__all__ = ["CoMem"]


class CoMem(Microbenchmark):
    """Coalesce global accesses via cyclic loop distribution."""

    name = "CoMem"
    category = "gpu-memory"
    pattern = "Strided/random access across threads (uncoalesced)"
    technique = "Consecutive memory access across threads"
    paper_speedup = "18 (average)"
    programmability = 3

    #: the paper's kernel configuration for Fig. 9
    GRID = 1024
    BLOCK = 256

    def run(self, n: int = 1 << 22, a: float = 2.0, **_: Any) -> BenchResult:
        rt = CudaLite(self.system)
        rng = make_rng(label="comem")
        hx = rng.random(n, dtype=np.float32)
        hy = rng.random(n, dtype=np.float32)
        x = rt.to_device(hx)
        expect = hy + a * hx

        y = rt.to_device(hy)
        s_block = rt.launch(axpy_block, self.GRID, self.BLOCK, x, y, n, a)
        ok_block = np.allclose(y.to_host(), expect, rtol=1e-5)

        y.fill_from(hy)
        s_cyclic = rt.launch(axpy_cyclic, self.GRID, self.BLOCK, x, y, n, a)
        ok_cyclic = np.allclose(y.to_host(), expect, rtol=1e-5)
        rt.synchronize()

        gpu = self.system.gpu
        t_block = estimate_kernel_time(s_block, gpu).exec_s
        t_cyclic = estimate_kernel_time(s_cyclic, gpu).exec_s
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="BLOCK",
            optimized_name="CYCLIC",
            baseline_time=t_block,
            optimized_time=t_cyclic,
            verified=ok_block and ok_cyclic,
            params={"n": n, "grid": self.GRID, "block": self.BLOCK},
            metrics={
                "block_transactions_per_request": (
                    s_block.transactions / s_block.global_requests
                ),
                "cyclic_transactions_per_request": (
                    s_cyclic.transactions / s_cyclic.global_requests
                ),
                "block_gld_efficiency": s_block.gld_efficiency,
                "cyclic_gld_efficiency": s_cyclic.gld_efficiency,
            },
        )

    def sweep(self, values: Sequence[int] | None = None, **_: Any) -> SweepResult:
        """Fig. 9: BLOCK vs CYCLIC kernel time over problem sizes."""
        sizes = list(values or [1 << k for k in range(18, 23)])
        block_t: list[float] = []
        cyclic_t: list[float] = []
        for n in sizes:
            res = self.run(n=n)
            block_t.append(res.baseline_time)
            cyclic_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"BLOCK": block_t, "CYCLIC": cyclic_t},
            title="Fig. 9: AXPY block vs cyclic distribution",
        )
