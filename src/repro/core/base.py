"""The microbenchmark framework (the paper's Table I rows).

Every CUDAMicroBench entry pairs a *naive* kernel exhibiting one
performance pathology with an *optimized* kernel applying the fix.  A
:class:`Microbenchmark` subclass implements both, verifies that they
compute the same answer, and reports a :class:`BenchResult` with the
simulated times; :meth:`Microbenchmark.sweep` regenerates the paper
figure's series.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.arch.presets import CARINA
from repro.arch.spec import SystemSpec
from repro.common.tables import render_series

__all__ = ["BenchResult", "SweepResult", "Microbenchmark"]

#: The paper's three guidelines (section III, IV, V).
CATEGORIES = {
    "parallelism": "Optimizing kernels to saturate the massive parallel capability",
    "gpu-memory": "Effectively leveraging the deep memory hierarchy inside GPU",
    "data-movement": "Properly arranging data movement between CPU and GPU",
}


@dataclass
class BenchResult:
    """Outcome of one naive-vs-optimized comparison."""

    benchmark: str
    system: str
    baseline_name: str
    optimized_name: str
    baseline_time: float
    optimized_time: float
    verified: bool            #: both versions produced the same answer
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    @property
    def speedup(self) -> float:
        if self.optimized_time <= 0:
            return float("inf")
        return self.baseline_time / self.optimized_time

    def __str__(self) -> str:
        mark = "ok" if self.verified else "MISMATCH"
        return (
            f"{self.benchmark} on {self.system}: {self.baseline_name} "
            f"{self.baseline_time:.3e}s vs {self.optimized_name} "
            f"{self.optimized_time:.3e}s -> {self.speedup:.2f}x [{mark}]"
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready projection for the metrics exporters."""
        return {
            "benchmark": self.benchmark,
            "system": self.system,
            "baseline_name": self.baseline_name,
            "optimized_name": self.optimized_name,
            "baseline_time_s": self.baseline_time,
            "optimized_time_s": self.optimized_time,
            "speedup": self.speedup,
            "verified": self.verified,
            "params": dict(self.params),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "BenchResult":
        """Inverse of :meth:`as_dict` (cache replay); exact round-trip —
        ``speedup`` is recomputed from the same floats.

        Times are validated: a cached or hand-edited document with NaN
        or negative times would silently poison every downstream
        speedup, so it is rejected here at the trust boundary.
        """
        from repro.common.errors import ReproError

        times = {}
        for key in ("baseline_time_s", "optimized_time_s"):
            try:
                value = float(d[key])
            except (KeyError, TypeError, ValueError):
                raise ReproError(
                    f"BenchResult document for {d.get('benchmark')!r} has "
                    f"non-numeric {key}: {d.get(key)!r}"
                ) from None
            if not math.isfinite(value) or value < 0.0:
                raise ReproError(
                    f"BenchResult document for {d.get('benchmark')!r} has "
                    f"invalid {key} = {value!r} (must be finite and >= 0)"
                )
            times[key] = value
        return cls(
            benchmark=d["benchmark"],
            system=d["system"],
            baseline_name=d["baseline_name"],
            optimized_name=d["optimized_name"],
            baseline_time=times["baseline_time_s"],
            optimized_time=times["optimized_time_s"],
            verified=d["verified"],
            params=dict(d.get("params", {})),
            metrics=dict(d.get("metrics", {})),
        )


@dataclass
class SweepResult:
    """A figure: one x-axis, several named time series."""

    benchmark: str
    system: str
    x_name: str
    x_values: list[Any]
    series: dict[str, list[float]]
    title: str = ""

    def speedups(self, baseline: str, optimized: str) -> list[float]:
        b = self.series[baseline]
        o = self.series[optimized]
        return [bi / oi if oi else float("inf") for bi, oi in zip(b, o)]

    def render(self) -> str:
        return render_series(
            self.x_name,
            self.x_values,
            self.series,
            title=self.title or f"{self.benchmark} on {self.system}",
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready projection for the metrics exporters."""
        return {
            "benchmark": self.benchmark,
            "system": self.system,
            "x_name": self.x_name,
            "x_values": list(self.x_values),
            "series": {k: list(v) for k, v in self.series.items()},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any], *, title: str = "") -> "SweepResult":
        """Inverse of :meth:`as_dict` (cache replay / parallel merge)."""
        return cls(
            benchmark=d["benchmark"],
            system=d["system"],
            x_name=d["x_name"],
            x_values=list(d["x_values"]),
            series={k: list(v) for k, v in d["series"].items()},
            title=title,
        )


class Microbenchmark(abc.ABC):
    """Base class for the fourteen CUDAMicroBench entries.

    Class attributes mirror the columns of the paper's Table I.
    """

    #: short name, as in Table I (e.g. "CoMem")
    name: str = "?"
    #: one of :data:`CATEGORIES`
    category: str = "?"
    #: "Pattern of Performance Inefficiency" column
    pattern: str = ""
    #: "Optimization techniques" column
    technique: str = ""
    #: "Speedup" column, as printed in the paper
    paper_speedup: str = ""
    #: "Programmability" column (1 easy .. 5 hard)
    programmability: int = 0
    #: default system the paper measured this benchmark on
    default_system: SystemSpec = CARINA

    def __init__(self, system: SystemSpec | None = None) -> None:
        self.system = system or self.default_system

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, **params: Any) -> BenchResult:
        """Run the default comparison and return the result."""

    def sweep(self, values: Sequence[Any] | None = None, **params: Any) -> SweepResult:
        """Regenerate the paper figure's sweep.

        Subclasses with a figure override this; the default runs
        :meth:`run` per value of the subclass's ``sweep_param``.
        """
        raise NotImplementedError(f"{self.name} has no sweep/figure")

    # ------------------------------------------------------------------
    @classmethod
    def table1_row(cls) -> list[str]:
        return [
            cls.name,
            cls.pattern,
            cls.technique,
            cls.paper_speedup,
            str(cls.programmability),
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(system={self.system.name!r})"
