"""Registry of the fourteen microbenchmarks, in Table I order."""

from __future__ import annotations

from repro.arch.spec import SystemSpec
from repro.common.errors import ReproError
from repro.core.bankredux import BankRedux
from repro.core.base import Microbenchmark
from repro.core.comem import CoMem
from repro.core.conkernels import Conkernels
from repro.core.dynparallel import DynParallel
from repro.core.gsoverlap import GSOverlap
from repro.core.hdoverlap import HDOverlap
from repro.core.memalign import MemAlign
from repro.core.minitransfer import MiniTransfer
from repro.core.readonly import ReadOnlyMem
from repro.core.shmem import Shmem
from repro.core.shuffle import Shuffle
from repro.core.taskgraph import TaskGraphBench
from repro.core.unimem import UniMem
from repro.core.warpdiv import WarpDivRedux

__all__ = ["ALL_BENCHMARKS", "get_benchmark", "list_benchmarks"]

#: Table I order: parallelism, GPU memory, data movement.
ALL_BENCHMARKS: tuple[type[Microbenchmark], ...] = (
    WarpDivRedux,
    DynParallel,
    Conkernels,
    TaskGraphBench,
    Shmem,
    CoMem,
    MemAlign,
    GSOverlap,
    Shuffle,
    BankRedux,
    HDOverlap,
    ReadOnlyMem,
    UniMem,
    MiniTransfer,
)

_BY_NAME = {cls.name.lower(): cls for cls in ALL_BENCHMARKS}


def list_benchmarks() -> list[str]:
    return [cls.name for cls in ALL_BENCHMARKS]


def get_benchmark(name: str, system: SystemSpec | None = None) -> Microbenchmark:
    """Instantiate a microbenchmark by its Table I name."""
    try:
        cls = _BY_NAME[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {', '.join(list_benchmarks())}"
        ) from None
    return cls(system)
