"""BankRedux (paper §IV-F, Fig. 12/13).

The interleaved-addressing reduction doubles its stride every step, so
step *s* has lanes hitting the same shared-memory bank ``2s`` words
apart — a 2-way, then 4-way, ... conflict that serializes the access.
Sequential addressing maps lanes to consecutive words: conflict-free.
The paper measures ~1.3x, growing with array size (Fig. 13).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.reduction import reduce_interleaved_bc, reduce_sequential
from repro.timing.model import estimate_kernel_time

__all__ = ["BankRedux", "run_block_reduction"]


def run_block_reduction(system, kernel_def, host_x: np.ndarray, block: int):
    """Launch a per-block reduction; returns (stats, partials, expected)."""
    n = host_x.shape[0]
    if n % block:
        raise ValueError("array length must be a multiple of the block size")
    rt = CudaLite(system)
    x = rt.to_device(host_x)
    r = rt.malloc(n // block)
    stats = rt.launch(kernel_def, n // block, block, x, r)
    rt.synchronize()
    return stats, r.to_host(), host_x.reshape(-1, block).sum(axis=1)


class BankRedux(Microbenchmark):
    """Avoid shared-memory bank conflicts via sequential addressing."""

    name = "BankRedux"
    category = "gpu-memory"
    pattern = "Threads access different locations of the same bank"
    technique = "Change the algorithm to avoid bank conflicts"
    paper_speedup = "1.3 (average)"
    programmability = 5

    def run(self, n: int = 1 << 20, block: int = 256, **_: Any) -> BenchResult:
        hx = make_rng(label="bankredux").random(n, dtype=np.float32)
        s_bc, r_bc, expect = run_block_reduction(
            self.system, reduce_interleaved_bc, hx, block
        )
        s_seq, r_seq, _ = run_block_reduction(self.system, reduce_sequential, hx, block)
        ok = np.allclose(r_bc, expect, rtol=1e-4) and np.allclose(
            r_seq, expect, rtol=1e-4
        )
        gpu = self.system.gpu
        t_bc = estimate_kernel_time(s_bc, gpu).exec_s
        t_seq = estimate_kernel_time(s_seq, gpu).exec_s
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="interleaved (conflicts)",
            optimized_name="sequential (conflict-free)",
            baseline_time=t_bc,
            optimized_time=t_seq,
            verified=ok,
            params={"n": n, "block": block},
            metrics={
                "bc_shared_efficiency": s_bc.shared_efficiency,
                "seq_shared_efficiency": s_seq.shared_efficiency,
                "bc_conflict_extra_passes": s_bc.bank_conflict_extra,
            },
        )

    def sweep(
        self, values: Sequence[int] | None = None, block: int = 256, **_: Any
    ) -> SweepResult:
        """Fig. 13: reduction time with and without bank conflicts."""
        sizes = list(values or [1 << k for k in range(16, 22)])
        bc_t: list[float] = []
        seq_t: list[float] = []
        for n in sizes:
            res = self.run(n=n, block=block)
            bc_t.append(res.baseline_time)
            seq_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"with conflicts": bc_t, "without conflicts": seq_t},
            title="Fig. 13: reduction with and without bank conflicts",
        )
