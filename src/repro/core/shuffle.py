"""Shuffle (paper §IV-E, Fig. 11).

Once a block reduction is down to a single warp, the remaining steps
can exchange partial sums directly between registers with
``__shfl_down_sync`` instead of bouncing through shared memory with a
barrier per step.  The paper measures ~25% at N = 2^27, growing with
problem size.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.core.bankredux import run_block_reduction
from repro.kernels.reduction import reduce_sequential, reduce_shuffle
from repro.timing.model import estimate_kernel_time

__all__ = ["Shuffle"]


class Shuffle(Microbenchmark):
    """Exchange data between warp lanes via registers."""

    name = "Shuffle"
    category = "gpu-memory"
    pattern = "Data exchange between threads"
    technique = "Warp shuffle shares results between registers"
    paper_speedup = "1.25 (average)"
    programmability = 5

    def run(self, n: int = 1 << 22, block: int = 256, **_: Any) -> BenchResult:
        hx = make_rng(label="shuffle").random(n, dtype=np.float32)
        s_seq, r_seq, expect = run_block_reduction(
            self.system, reduce_sequential, hx, block
        )
        s_shfl, r_shfl, _ = run_block_reduction(self.system, reduce_shuffle, hx, block)
        ok = np.allclose(r_seq, expect, rtol=1e-4) and np.allclose(
            r_shfl, expect, rtol=1e-4
        )
        gpu = self.system.gpu
        t_seq = estimate_kernel_time(s_seq, gpu).exec_s
        t_shfl = estimate_kernel_time(s_shfl, gpu).exec_s
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="shared-memory reduction",
            optimized_name="shuffle reduction",
            baseline_time=t_seq,
            optimized_time=t_shfl,
            verified=ok,
            params={"n": n, "block": block},
            metrics={
                "seq_barriers": float(s_seq.barriers),
                "shfl_barriers": float(s_shfl.barriers),
                "shfl_ops": s_shfl.shuffles,
                "seq_shared_requests": s_seq.shared_requests,
                "shfl_shared_requests": s_shfl.shared_requests,
            },
        )

    def sweep(
        self, values: Sequence[int] | None = None, block: int = 256, **_: Any
    ) -> SweepResult:
        """Fig. 11: reduction time, shared-memory vs shuffle tail."""
        sizes = list(values or [1 << k for k in range(16, 23)])
        seq_t: list[float] = []
        shfl_t: list[float] = []
        for n in sizes:
            res = self.run(n=n, block=block)
            seq_t.append(res.baseline_time)
            shfl_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"traditional": seq_t, "shuffle": shfl_t},
            title="Fig. 11: reduction using shuffle",
        )
