"""MemAlign (paper §IV-C, Fig. 10).

A warp reading 32 consecutive floats needs two 128-byte transactions
when the base address is transaction-aligned, three when it is offset —
50% more transaction slots for the same useful bytes.  On cached
architectures the extra segments are shared with neighbouring warps,
so the end-to-end cost is small (~3% on V100); on L1-less parts it is
larger.  The deliberately misaligned allocation uses the simulator's
``offset`` malloc, standing in for the paper's unaligned pointer.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_aligned, axpy_misaligned
from repro.timing.model import estimate_kernel_time

__all__ = ["MemAlign"]


class MemAlign(Microbenchmark):
    """Keep warp accesses aligned to transaction boundaries."""

    name = "MemAlign"
    category = "gpu-memory"
    pattern = "Memory allocated at unaligned addresses"
    technique = "Use aligned malloc"
    paper_speedup = "1.1 (average)"
    programmability = 1

    def run(self, n: int = 1 << 22, a: float = 2.0, block: int = 256, **_: Any) -> BenchResult:
        rt = CudaLite(self.system)
        rng = make_rng(label="memalign")
        hx = rng.random(n, dtype=np.float32)
        hy = rng.random(n, dtype=np.float32)
        grid = -(-n // block)
        tid = np.arange(n)

        # aligned: arrays on 256B boundaries, kernel skips element 0
        x = rt.to_device(hx)
        y = rt.to_device(hy)
        s_al = rt.launch(axpy_aligned, grid, block, x, y, n, a)
        exp_al = np.where((tid > 0) & (tid < n), hy + a * hx, hy)
        ok_al = np.allclose(y.to_host(), exp_al, rtol=1e-5)

        # misaligned: same arithmetic, arrays deliberately offset by one
        # element from any transaction boundary
        xm = rt.to_device(hx, offset=4)
        ym = rt.to_device(hy, offset=4)
        s_mis = rt.launch(axpy_misaligned, grid, block, xm, ym, n, a)
        exp_mis = np.where(tid >= 1, hy + a * hx, hy)
        ok_mis = np.allclose(ym.to_host(), exp_mis, rtol=1e-5)
        rt.synchronize()

        gpu = self.system.gpu
        t_al = estimate_kernel_time(s_al, gpu).exec_s
        t_mis = estimate_kernel_time(s_mis, gpu).exec_s
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="misaligned",
            optimized_name="aligned",
            baseline_time=t_mis,
            optimized_time=t_al,
            verified=ok_al and ok_mis,
            params={"n": n, "block": block},
            metrics={
                "aligned_transactions_per_request": (
                    s_al.transactions / s_al.global_requests
                ),
                "misaligned_transactions_per_request": (
                    s_mis.transactions / s_mis.global_requests
                ),
            },
        )

    def sweep(self, values: Sequence[int] | None = None, **_: Any) -> SweepResult:
        sizes = list(values or [1 << k for k in range(18, 23)])
        mis_t: list[float] = []
        al_t: list[float] = []
        for n in sizes:
            res = self.run(n=n)
            mis_t.append(res.baseline_time)
            al_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"misaligned": mis_t, "aligned": al_t},
            title="MemAlign: aligned vs misaligned AXPY",
        )
