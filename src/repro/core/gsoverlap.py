"""GSOverlap (paper §IV-D).

Copying global memory into shared memory classically stages through
registers: a global load writes a register, a shared store reads it.
Ampere's ``memcpy_async`` (``cp.async``) moves the data directly,
skipping the register round trip and letting the copy pipeline with
computation.  The paper measures a modest 1.04x on an RTX 3080 for an
AXPY that stages x through shared memory.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.arch.presets import RTX3080_SYSTEM
from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_shared_async, axpy_shared_staged
from repro.timing.model import estimate_kernel_time

__all__ = ["GSOverlap"]


class GSOverlap(Microbenchmark):
    """Accelerate global->shared copies with memcpy_async."""

    name = "GSOverlap"
    category = "gpu-memory"
    pattern = "Global->shared memory copy takes much time"
    technique = "CUDA 11 memcpy_async for the data transfer"
    paper_speedup = "1.04 (best)"
    programmability = 3
    default_system = RTX3080_SYSTEM

    def run(self, n: int = 1 << 22, a: float = 2.0, block: int = 256, **_: Any) -> BenchResult:
        rt = CudaLite(self.system)
        rng = make_rng(label="gsoverlap")
        hx = rng.random(n, dtype=np.float32)
        hy = rng.random(n, dtype=np.float32)
        x = rt.to_device(hx)
        grid = -(-n // block)
        expect = hy + a * hx

        y = rt.to_device(hy)
        s_sync = rt.launch(axpy_shared_staged, grid, block, x, y, n, a)
        ok_sync = np.allclose(y.to_host(), expect, rtol=1e-5)

        y.fill_from(hy)
        s_async = rt.launch(axpy_shared_async, grid, block, x, y, n, a)
        ok_async = np.allclose(y.to_host(), expect, rtol=1e-5)
        rt.synchronize()

        gpu = self.system.gpu
        t_sync = estimate_kernel_time(s_sync, gpu).exec_s
        t_async = estimate_kernel_time(s_async, gpu).exec_s
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="register-staged copy",
            optimized_name="memcpy_async",
            baseline_time=t_sync,
            optimized_time=t_async,
            verified=ok_sync and ok_async,
            params={"n": n, "block": block},
            metrics={
                "sync_issue_cycles": s_sync.issue_cycles,
                "async_issue_cycles": s_async.issue_cycles,
                "async_copy_bytes": s_async.async_copy_bytes,
            },
        )

    def sweep(self, values: Sequence[int] | None = None, **kw: Any) -> SweepResult:
        sizes = list(values or [1 << k for k in range(18, 23)])
        sync_t: list[float] = []
        async_t: list[float] = []
        for n in sizes:
            res = self.run(n=n, **kw)
            sync_t.append(res.baseline_time)
            async_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"register-staged": sync_t, "memcpy_async": async_t},
            title="GSOverlap: shared-memory staging with memcpy_async",
        )
