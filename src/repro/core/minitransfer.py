"""MiniTransfer (paper §V-D, Fig. 17).

The wrong data layout moves useless bytes: offloading SpMV with the
matrix in dense row-major form ships every zero across PCIe (and
multiplies by it).  Storing the matrix as CSR ships three small
vectors.  The paper's 10240^2 sweep shows the CSR advantage growing as
the matrix gets sparser — up to 190x at the sparsest point, transfer-
dominated throughout.

The simulated sweep uses a scaled matrix order (default 1024) with the
same density range; the dense transfer volume scales as n^2 and the CSR
volume as nnz, so the ratio shape is preserved.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.spmv import spmv_csr, spmv_dense_row
from repro.sparse.csr import CSRMatrix, random_sparse

__all__ = ["MiniTransfer"]


class MiniTransfer(Microbenchmark):
    """Avoid useless transfers with a compressed data layout."""

    name = "MiniTransfer"
    category = "data-movement"
    pattern = "Wrong data layout causes useless CPU-GPU transfer"
    technique = "Compressed (CSR) layout avoids useless transfer"
    paper_speedup = "190 (best)"
    programmability = 5

    def _offload_dense(self, csr: CSRMatrix, hx: np.ndarray, block: int):
        n = csr.n_rows
        dense = csr.to_dense()
        rt = CudaLite(self.system)
        a = rt.malloc(n * n)
        x = rt.malloc(n)
        y = rt.malloc(n)
        with rt.timer() as t:
            rt.memcpy_h2d(a, dense.ravel(), pinned=True)
            rt.memcpy_h2d(x, hx, pinned=True)
            rt.launch(spmv_dense_row, -(-n // block), block, a, x, y, n)
            out = rt.memcpy_d2h(y, pinned=True)
        return t.elapsed, out

    def _offload_csr(self, csr: CSRMatrix, hx: np.ndarray, block: int):
        n = csr.n_rows
        rt = CudaLite(self.system)
        vals = rt.malloc(max(csr.nnz, 1), np.float32)
        cols = rt.malloc(max(csr.nnz, 1), np.int32)
        rptr = rt.malloc(n + 1, np.int32)
        x = rt.malloc(n)
        y = rt.malloc(n)
        with rt.timer() as t:
            rt.memcpy_h2d(vals, csr.values, pinned=True)
            rt.memcpy_h2d(cols, csr.col_idx, pinned=True)
            rt.memcpy_h2d(rptr, csr.row_ptr, pinned=True)
            rt.memcpy_h2d(x, hx, pinned=True)
            rt.launch(spmv_csr, -(-n // block), block, vals, cols, rptr, x, y, n)
            out = rt.memcpy_d2h(y, pinned=True)
        return t.elapsed, out

    def run(self, n: int = 1024, nnz: int = 4096, block: int = 256, **_: Any) -> BenchResult:
        csr = random_sparse(n, nnz, label="minitransfer")
        hx = make_rng(label="minitransfer-x").random(n, dtype=np.float32)
        expect = csr.spmv(hx)

        t_dense, out_dense = self._offload_dense(csr, hx, block)
        t_csr, out_csr = self._offload_csr(csr, hx, block)
        ok = np.allclose(out_dense, expect, rtol=1e-3, atol=1e-4) and np.allclose(
            out_csr, expect, rtol=1e-3, atol=1e-4
        )
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="dense layout",
            optimized_name="CSR layout",
            baseline_time=t_dense,
            optimized_time=t_csr,
            verified=ok,
            params={"n": n, "nnz": nnz},
            metrics={
                "dense_transfer_bytes": float(n * n * 4 + n * 8),
                "csr_transfer_bytes": float(csr.nbytes + n * 8),
                "density": csr.density,
            },
        )

    def sweep(
        self, values: Sequence[int] | None = None, n: int = 2048, **kw: Any
    ) -> SweepResult:
        """Fig. 17: dense vs CSR offload as nnz decreases."""
        nnzs = list(values or [n * 64, n * 16, n * 4, n, n // 4])
        dense_t: list[float] = []
        csr_t: list[float] = []
        for nnz in nnzs:
            res = self.run(n=n, nnz=int(nnz), **kw)
            dense_t.append(res.baseline_time)
            csr_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="nnz",
            x_values=[int(v) for v in nnzs],
            series={"dense": dense_t, "CSR": csr_t},
            title="Fig. 17: SpMV dense vs CSR offload",
        )
