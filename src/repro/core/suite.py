"""Suite runner: regenerate the paper's Table I.

Runs all fourteen microbenchmarks with their default (scaled)
parameters on their default systems and renders a summary table with
the measured speedup beside the paper's reported figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.arch.spec import SystemSpec
from repro.common.tables import render_table
from repro.core.base import CATEGORIES, BenchResult
from repro.core.registry import ALL_BENCHMARKS

__all__ = ["SuiteReport", "run_suite", "table1"]


@dataclass
class SuiteReport:
    """Results of a full suite run."""

    results: list[BenchResult] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.results)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready projection for the metrics exporters."""
        return {
            "schema": "repro-prof-bench/1",
            "all_verified": self.all_verified,
            "results": [r.as_dict() for r in self.results],
        }

    def render(self) -> str:
        rows = []
        by_name = {r.benchmark: r for r in self.results}
        for cls in ALL_BENCHMARKS:
            r = by_name.get(cls.name)
            measured = f"{r.speedup:.2f}x" if r else "-"
            verified = ("yes" if r.verified else "NO") if r else "-"
            rows.append(
                [cls.name, CATEGORIES[cls.category].split()[0].lower(),
                 cls.paper_speedup, measured, verified,
                 str(cls.programmability)]
            )
        return render_table(
            ["benchmark", "guideline", "paper speedup", "measured", "verified", "prog."],
            rows,
            title="Table I: CUDAMicroBench summary (simulated)",
        )


def run_suite(
    overrides: dict[str, dict[str, Any]] | None = None,
    system: SystemSpec | None = None,
) -> SuiteReport:
    """Run every microbenchmark; ``overrides[name]`` supplies run kwargs.

    ``system=None`` keeps each benchmark's paper-faithful default
    (Carina/V100 for most, Fornax/K80 for ReadOnlyMem, RTX 3080 for
    DynParallel and GSOverlap).
    """
    overrides = overrides or {}
    report = SuiteReport()
    for cls in ALL_BENCHMARKS:
        bench = cls(system)
        kwargs = overrides.get(cls.name, {})
        report.results.append(bench.run(**kwargs))
    return report


def table1(**kwargs: Any) -> str:
    """Convenience: run the suite and render Table I."""
    return run_suite(**kwargs).render()
