"""Shmem (paper §IV-A).

Matrix multiplication has high data reuse: each operand element
participates in ``n`` products.  Staging 16x16 tiles in shared memory
turns ``n`` global reads per element into ``n/16``; on a V100 the paper
reports ~20-25% end-to-end because the L1/L2 already capture part of
the naive kernel's reuse.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.matmul import matmul_grid_for, matmul_naive, matmul_tiled
from repro.timing.model import estimate_kernel_time

__all__ = ["Shmem"]


class Shmem(Microbenchmark):
    """Cache repeatedly-accessed data in shared memory."""

    name = "Shmem"
    category = "gpu-memory"
    pattern = "The data needs to be accessed several times"
    technique = "Use shared memory for repeatedly accessed data"
    paper_speedup = "1.25 (average)"
    programmability = 2

    def run(self, n: int = 256, **_: Any) -> BenchResult:
        rt = CudaLite(self.system)
        rng = make_rng(label="shmem")
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        ref = ha @ hb
        a = rt.to_device(ha.ravel())
        b = rt.to_device(hb.ravel())
        grid, block = matmul_grid_for(n)

        c1 = rt.malloc(n * n)
        s_naive = rt.launch(matmul_naive, grid, block, a, b, c1, n)
        ok_naive = np.allclose(c1.to_host().reshape(n, n), ref, rtol=1e-3, atol=1e-3)

        c2 = rt.malloc(n * n)
        s_tiled = rt.launch(matmul_tiled, grid, block, a, b, c2, n)
        ok_tiled = np.allclose(c2.to_host().reshape(n, n), ref, rtol=1e-3, atol=1e-3)
        rt.synchronize()

        gpu = self.system.gpu
        t_naive = estimate_kernel_time(s_naive, gpu)
        t_tiled = estimate_kernel_time(s_tiled, gpu)
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="global-only",
            optimized_name="shared-tiled",
            baseline_time=t_naive.exec_s,
            optimized_time=t_tiled.exec_s,
            verified=ok_naive and ok_tiled,
            params={"n": n},
            metrics={
                "naive_dram_bytes": t_naive.traffic.dram_bytes,
                "tiled_dram_bytes": t_tiled.traffic.dram_bytes,
                "tiled_shared_bytes": s_tiled.shared_bytes,
            },
        )

    def sweep(self, values: Sequence[int] | None = None, **_: Any) -> SweepResult:
        sizes = list(values or [64, 128, 256, 384])
        naive_t: list[float] = []
        tiled_t: list[float] = []
        for n in sizes:
            res = self.run(n=n)
            naive_t.append(res.baseline_time)
            tiled_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="matrix order",
            x_values=sizes,
            series={"global-only": naive_t, "shared-tiled": tiled_t},
            title="Shmem: matmul with and without shared-memory tiling",
        )
