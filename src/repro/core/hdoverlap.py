"""HDOverlap (paper §V-A, Fig. 14).

Chunking an offloaded computation across streams with
``cudaMemcpyAsync`` overlaps data movement with kernel execution.
AXPY has a 1:1 movement-to-compute ratio, so transfers dominate and the
overlap hides only the (small) kernel time — the paper measures just
1.036x and includes the benchmark precisely to demonstrate that the
benefit depends on the compute/transfer balance.

``compute_rounds`` scales the kernel's arithmetic per element so the
crossover toward larger wins can be explored.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel

__all__ = ["HDOverlap", "axpy_rounds"]


@kernel(name="axpy_rounds")
def axpy_rounds(ctx, x, y, n, a, rounds):
    """AXPY with adjustable arithmetic intensity."""
    i = ctx.global_thread_id()

    def body():
        v = ctx.load(x, i)
        acc = ctx.load(y, i)
        for _ in ctx.range_uniform(rounds):
            acc = ctx.fma(v, a, acc)
        ctx.store(y, i, acc)

    ctx.if_active(i < n, body)


def _reference(hx: np.ndarray, hy: np.ndarray, a: float, rounds: int) -> np.ndarray:
    acc = hy.copy()
    for _ in range(rounds):
        acc = (hx * np.float32(a) + acc).astype(np.float32)
    return acc


class HDOverlap(Microbenchmark):
    """Overlap host-device copies with kernel execution via streams."""

    name = "HDOverlap"
    category = "data-movement"
    pattern = "Host-device memory copy takes much time"
    technique = "cudaMemcpyAsync + streams to overlap the transfer"
    paper_speedup = "1.036 (best)"
    programmability = 1

    def run(
        self,
        n: int = 1 << 22,
        a: float = 2.0,
        rounds: int = 1,
        n_chunks: int = 4,
        block: int = 256,
        **_: Any,
    ) -> BenchResult:
        rng = make_rng(label="hdoverlap")
        hx = rng.random(n, dtype=np.float32)
        hy = rng.random(n, dtype=np.float32)
        expect = _reference(hx, hy, a, rounds)

        # baseline: one synchronous copy-in, kernel, copy-out
        rt1 = CudaLite(self.system)
        x1 = rt1.malloc(n)
        y1 = rt1.malloc(n)
        with rt1.timer() as t_sync:
            rt1.memcpy_h2d(x1, hx, pinned=True)
            rt1.memcpy_h2d(y1, hy, pinned=True)
            rt1.launch(axpy_rounds, -(-n // block), block, x1, y1, n, a, rounds)
            out_sync = rt1.memcpy_d2h(y1, pinned=True)
        ok_sync = np.allclose(out_sync, expect, rtol=1e-4)

        # optimized: chunked async pipeline across streams
        rt2 = CudaLite(self.system)
        x2 = rt2.malloc(n)
        y2 = rt2.malloc(n)
        chunk = n // n_chunks
        streams = [rt2.stream(f"stream {i + 1}") for i in range(n_chunks)]
        with rt2.timer() as t_async:
            outs = []
            for c, s in enumerate(streams):
                lo = c * chunk
                hi = n if c == n_chunks - 1 else lo + chunk
                m = hi - lo
                xv = _sub(x2, lo, m)
                yv = _sub(y2, lo, m)
                rt2.memcpy_h2d(xv, hx[lo:hi], stream=s, pinned=True,
                               name=f"H2D x[{c}]")
                rt2.memcpy_h2d(yv, hy[lo:hi], stream=s, pinned=True,
                               name=f"H2D y[{c}]")
                rt2.launch(axpy_rounds, -(-m // block), block, xv, yv, m, a, rounds,
                           stream=s)
                outs.append(rt2.memcpy_d2h(yv, stream=s, pinned=True,
                                           name=f"D2H y[{c}]"))
        ok_async = np.allclose(np.concatenate(outs), expect, rtol=1e-4)

        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="synchronous copy",
            optimized_name=f"{n_chunks}-stream async pipeline",
            baseline_time=t_sync.elapsed,
            optimized_time=t_async.elapsed,
            verified=ok_sync and ok_async,
            params={"n": n, "rounds": rounds, "n_chunks": n_chunks},
        )

    def sweep(self, values: Sequence[int] | None = None, **kw: Any) -> SweepResult:
        """Fig. 14: sync vs async offload over problem sizes."""
        sizes = list(values or [1 << k for k in range(18, 23)])
        sync_t: list[float] = []
        async_t: list[float] = []
        for n in sizes:
            res = self.run(n=n, **kw)
            sync_t.append(res.baseline_time)
            async_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"synchronous": sync_t, "async streams": async_t},
            title="Fig. 14: overlapping copies with computation",
        )


def _sub(arr, start: int, length: int):
    """A DeviceArray view of ``arr[start : start+length]``."""
    return arr.slice(start, length)
