"""The paper's contribution: the fourteen CUDAMicroBench microbenchmarks."""

from repro.core.bankredux import BankRedux
from repro.core.base import CATEGORIES, BenchResult, Microbenchmark, SweepResult
from repro.core.comem import CoMem
from repro.core.conkernels import Conkernels
from repro.core.dynparallel import DynParallel, MandelView, mariani_silver
from repro.core.gsoverlap import GSOverlap
from repro.core.hdoverlap import HDOverlap
from repro.core.memalign import MemAlign
from repro.core.minitransfer import MiniTransfer
from repro.core.readonly import ReadOnlyMem
from repro.core.registry import ALL_BENCHMARKS, get_benchmark, list_benchmarks
from repro.core.shmem import Shmem
from repro.core.shuffle import Shuffle
from repro.core.suite import SuiteReport, run_suite, table1
from repro.core.taskgraph import TaskGraphBench
from repro.core.unimem import UniMem
from repro.core.warpdiv import WarpDivRedux

__all__ = [
    "BankRedux",
    "CATEGORIES",
    "BenchResult",
    "Microbenchmark",
    "SweepResult",
    "CoMem",
    "Conkernels",
    "DynParallel",
    "MandelView",
    "mariani_silver",
    "GSOverlap",
    "HDOverlap",
    "MemAlign",
    "MiniTransfer",
    "ReadOnlyMem",
    "ALL_BENCHMARKS",
    "get_benchmark",
    "list_benchmarks",
    "Shmem",
    "Shuffle",
    "SuiteReport",
    "run_suite",
    "table1",
    "TaskGraphBench",
    "UniMem",
    "WarpDivRedux",
]
