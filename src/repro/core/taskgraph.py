"""TaskGraph (paper §III-D).

CUDA graphs submit a pre-defined DAG of operations with one host call,
replacing per-operation launch overhead with a much smaller per-node
cost.  The paper includes the feature for programmability and does not
report a speedup figure; this microbenchmark quantifies the launch-
overhead reduction for the canonical use case — a short chain of small
kernels executed repeatedly — and demonstrates capture / instantiate /
launch.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel

__all__ = ["TaskGraphBench", "scale_kernel"]


@kernel(name="scale")
def scale_kernel(ctx, x, n, a, b):
    """A short kernel: ``x = a*x + b`` (graph-node-sized work)."""
    i = ctx.global_thread_id()
    ctx.if_active(i < n, lambda: ctx.store(x, i, a * ctx.load(x, i) + b))


class TaskGraphBench(Microbenchmark):
    """Submit repeated work through an instantiated task graph."""

    name = "TaskGraph"
    category = "parallelism"
    pattern = "A more effective model for submitting repeated work"
    technique = "Pre-define the task graph; run repeatedly"
    paper_speedup = "programmability (no perf study in the paper)"
    programmability = 3

    def run(
        self,
        chain_len: int = 8,
        iterations: int = 50,
        n: int = 4096,
        block: int = 256,
        **_: Any,
    ) -> BenchResult:
        rng = make_rng(label="taskgraph")
        hx = rng.random(n, dtype=np.float32)
        grid = -(-n // block)

        # baseline: each iteration re-issues chain_len kernel launches
        rt1 = CudaLite(self.system)
        x1 = rt1.to_device(hx)
        with rt1.timer() as t_launches:
            for _ in range(iterations):
                for _ in range(chain_len):
                    rt1.launch(scale_kernel, grid, block, x1, n, 1.0001, 0.0)

        # graph: capture the chain once, launch the instantiated graph
        rt2 = CudaLite(self.system)
        x2 = rt2.to_device(hx)
        rt2.graph_capture_begin()
        for _ in range(chain_len):
            rt2.launch(scale_kernel, grid, block, x2, n, 1.0001, 0.0)
        graph = rt2.graph_capture_end().instantiate()
        with rt2.timer() as t_graph:
            for _ in range(iterations):
                rt2.graph_launch(graph)

        # functional note: capture executed the chain once; replays reuse
        # the captured statistics (timing study), so verify the baseline
        # against the reference and the captured chain against one pass.
        ref_one_pass = hx.copy()
        for _ in range(chain_len):
            ref_one_pass = (np.float32(1.0001) * ref_one_pass).astype(np.float32)
        ref_full = hx.copy()
        for _ in range(iterations * chain_len):
            ref_full = (np.float32(1.0001) * ref_full).astype(np.float32)
        ok = np.allclose(x1.to_host(), ref_full, rtol=1e-4) and np.allclose(
            x2.to_host(), ref_one_pass, rtol=1e-4
        )

        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="per-kernel launches",
            optimized_name="instantiated graph",
            baseline_time=t_launches.elapsed,
            optimized_time=t_graph.elapsed,
            verified=ok,
            params={"chain_len": chain_len, "iterations": iterations, "n": n},
            metrics={
                "launch_overhead_per_kernel": self.system.gpu.kernel_launch_overhead_s,
                "graph_node_overhead": self.system.gpu.graph_node_overhead_s,
                "graph_nodes": float(len(graph)),
            },
            notes=(
                "replays reuse captured statistics; per-replay functional "
                "re-execution is available via graph_launch(functional=True) "
                "semantics in examples"
            ),
        )

    def sweep(self, values: Sequence[int] | None = None, **kw: Any) -> SweepResult:
        """Launch-bound speedup vs chain length."""
        lens = list(values or [2, 4, 8, 16, 32])
        base_t: list[float] = []
        graph_t: list[float] = []
        for c in lens:
            res = self.run(chain_len=c, **kw)
            base_t.append(res.baseline_time)
            graph_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="chain length",
            x_values=lens,
            series={"launches": base_t, "graph": graph_t},
            title="TaskGraph: repeated short chains",
        )
