"""Conkernels (paper §III-C, Fig. 6).

Kernels that cannot fill the GPU on their own (few blocks, memory-bound
phases) leave SMs idle.  Launching several such kernels into separate
streams lets the hardware co-schedule them; the paper's CUDA-Samples
experiment shows ~7x with 8 concurrently-launched kernels against
serial launching, visualized as overlapping nvvp timeline bars.

The microbenchmark launches ``n_kernels`` copies of a small
compute-heavy kernel — serially in one stream, then one-per-stream —
and renders the two timelines.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel

__all__ = ["clock_burn", "Conkernels"]


@kernel(name="clock_burn")
def clock_burn(ctx, x, n, rounds):
    """A compute-bound kernel occupying few blocks (CUDA-Samples style)."""
    i = ctx.global_thread_id()

    def body():
        v = ctx.load(x, i)
        for _ in ctx.range_uniform(rounds):
            v = ctx.fma(v, 1.0000001, 0.0000001)
        ctx.store(x, i, v)

    ctx.if_active(i < n, body)


def _burn_reference(x: np.ndarray, rounds: int) -> np.ndarray:
    v = x.astype(np.float32).copy()
    for _ in range(rounds):
        v = (v * np.float32(1.0000001) + np.float32(0.0000001)).astype(np.float32)
    return v


class Conkernels(Microbenchmark):
    """Overlap under-utilizing kernels with concurrent execution."""

    name = "Conkernels"
    category = "parallelism"
    pattern = "Multiple kernel instances launched on one GPU"
    technique = "Concurrent kernels via streams"
    paper_speedup = "7 (average)"
    programmability = 4

    def run(
        self,
        n_kernels: int = 8,
        blocks_each: int = 10,
        block: int = 256,
        rounds: int = 64,
        **_: Any,
    ) -> BenchResult:
        n = blocks_each * block
        rng = make_rng(label="conkernels")
        hosts = [rng.random(n, dtype=np.float32) for _ in range(n_kernels)]
        expect = [_burn_reference(h, rounds) for h in hosts]

        # serial: all launches into the default stream
        rt1 = CudaLite(self.system)
        bufs1 = [rt1.to_device(h) for h in hosts]
        with rt1.timer() as t_serial:
            for b in bufs1:
                rt1.launch(clock_burn, blocks_each, block, b, n, rounds)
        ok_serial = all(
            np.allclose(b.to_host(), e, rtol=1e-5) for b, e in zip(bufs1, expect)
        )
        serial_timeline = rt1.timeline.render_ascii()

        # concurrent: one stream per kernel
        rt2 = CudaLite(self.system)
        bufs2 = [rt2.to_device(h) for h in hosts]
        streams = [rt2.stream(f"stream {i + 1}") for i in range(n_kernels)]
        with rt2.timer() as t_conc:
            for b, s in zip(bufs2, streams):
                rt2.launch(clock_burn, blocks_each, block, b, n, rounds, stream=s)
        ok_conc = all(
            np.allclose(b.to_host(), e, rtol=1e-5) for b, e in zip(bufs2, expect)
        )
        conc_timeline = rt2.timeline.render_ascii()

        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="serial launching",
            optimized_name="concurrent kernels",
            baseline_time=t_serial.elapsed,
            optimized_time=t_conc.elapsed,
            verified=ok_serial and ok_conc,
            params={
                "n_kernels": n_kernels,
                "blocks_each": blocks_each,
                "block": block,
                "rounds": rounds,
            },
            notes=(
                "Fig. 6(b) serial timeline:\n" + serial_timeline +
                "\n\nFig. 6(a) concurrent timeline:\n" + conc_timeline
            ),
        )

    def sweep(self, values: Sequence[int] | None = None, **kw: Any) -> SweepResult:
        """Speedup vs number of concurrently launched kernels."""
        counts = list(values or [1, 2, 4, 8, 16])
        serial_t: list[float] = []
        conc_t: list[float] = []
        for k in counts:
            res = self.run(n_kernels=k, **kw)
            serial_t.append(res.baseline_time)
            conc_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="kernels",
            x_values=counts,
            series={"serial": serial_t, "concurrent": conc_t},
            title="Fig. 6: concurrent kernel execution",
        )
