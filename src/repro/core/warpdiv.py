"""WarpDivRedux (paper §III-A, Fig. 2/3).

Threads that take different branches of an ``if`` within one warp force
the lock-step hardware to execute *both* branch bodies for the whole
warp.  The ``WD`` kernel branches on thread parity, so every warp
diverges; ``noWD`` branches on ``(tid / warpSize) % 2``, which is
warp-uniform, and reaches 100% warp execution efficiency (the paper
reports 85.71% vs 100% from nvprof, and ~1.1x average speedup — the
kernel is memory-bound, so doubled issue work costs little).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel
from repro.timing.model import estimate_kernel_time

__all__ = ["wd_kernel", "nowd_kernel", "WarpDivRedux"]


@kernel(name="WD")
def wd_kernel(ctx, x, y, z):
    """Divergent: even/odd lanes take different branches (paper Fig. 2)."""
    tid = ctx.global_thread_id()
    ctx.branch(
        (tid % 2) == 0,
        lambda: ctx.store(z, tid, 2 * ctx.load(x, tid) + 3 * ctx.load(y, tid)),
        lambda: ctx.store(z, tid, 3 * ctx.load(x, tid) + 2 * ctx.load(y, tid)),
    )


@kernel(name="noWD")
def nowd_kernel(ctx, x, y, z):
    """Warp-uniform: the branch condition is constant within a warp."""
    tid = ctx.global_thread_id()
    warp = ctx.warp_size
    ctx.branch(
        ((tid // warp) % 2) == 0,
        lambda: ctx.store(z, tid, 2 * ctx.load(x, tid) + 3 * ctx.load(y, tid)),
        lambda: ctx.store(z, tid, 3 * ctx.load(x, tid) + 2 * ctx.load(y, tid)),
    )


def _reference(x: np.ndarray, y: np.ndarray, swap_parity: bool) -> np.ndarray:
    tid = np.arange(x.shape[0])
    cond = (tid % 2 == 0) if not swap_parity else ((tid // 32) % 2 == 0)
    return np.where(cond, 2 * x + 3 * y, 3 * x + 2 * y).astype(np.float32)


class WarpDivRedux(Microbenchmark):
    """Remove warp divergence by branching at warp granularity."""

    name = "WarpDivRedux"
    category = "parallelism"
    pattern = "Threads enter different branches at control flow statements"
    technique = "Change the algorithm: take the warp size as the step"
    paper_speedup = "1.1 (average)"
    programmability = 3

    def run(self, n: int = 1 << 20, block: int = 256, **_: Any) -> BenchResult:
        rt = CudaLite(self.system)
        rng = make_rng(label="warpdiv")
        hx = rng.random(n, dtype=np.float32)
        hy = rng.random(n, dtype=np.float32)
        x = rt.to_device(hx)
        y = rt.to_device(hy)
        z1 = rt.malloc(n)
        z2 = rt.malloc(n)
        grid = -(-n // block)

        s_wd = rt.launch(wd_kernel, grid, block, x, y, z1)
        s_nowd = rt.launch(nowd_kernel, grid, block, x, y, z2)
        rt.synchronize()

        ok = np.allclose(z1.to_host(), _reference(hx, hy, False)) and np.allclose(
            z2.to_host(), _reference(hx, hy, True)
        )
        gpu = self.system.gpu
        t_wd = estimate_kernel_time(s_wd, gpu).exec_s
        t_nowd = estimate_kernel_time(s_nowd, gpu).exec_s
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="WD",
            optimized_name="noWD",
            baseline_time=t_wd,
            optimized_time=t_nowd,
            verified=ok,
            params={"n": n, "block": block},
            metrics={
                "wd_warp_execution_efficiency": s_wd.warp_execution_efficiency,
                "nowd_warp_execution_efficiency": s_nowd.warp_execution_efficiency,
                "wd_branch_efficiency": s_wd.branch_efficiency,
                "nowd_branch_efficiency": s_nowd.branch_efficiency,
            },
        )

    def sweep(
        self, values: Sequence[int] | None = None, block: int = 256, **_: Any
    ) -> SweepResult:
        """Fig. 3: WD vs noWD execution time over problem sizes."""
        sizes = list(values or [1 << k for k in range(16, 23)])
        wd_times: list[float] = []
        nowd_times: list[float] = []
        for n in sizes:
            res = self.run(n=n, block=block)
            wd_times.append(res.baseline_time)
            nowd_times.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="n",
            x_values=sizes,
            series={"WD": wd_times, "noWD": nowd_times},
            title="Fig. 3: warp divergence kernel time",
        )
