"""ReadOnlyMem (paper §V-B, Fig. 15).

Read-only data can live in constant or texture memory.  On Kepler-class
GPUs (Tesla K80) ordinary global loads bypass the L1 entirely, so
routing read-only operands through the texture path — which has its own
per-SM cache — speeds the paper's 2-D matrix addition up by ~4x.  On
Volta (V100) the texture cache is unified with the L1, so the gap
disappears; the paper uses exactly this pair of measurements to show
that data-placement advice is architecture-dependent.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.arch.presets import FORNAX
from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.matadd import (
    matadd_global,
    matadd_tex1d,
    matadd_tex2d,
)
from repro.timing.model import estimate_kernel_time

__all__ = ["ReadOnlyMem"]


class ReadOnlyMem(Microbenchmark):
    """Place read-only data in texture/constant memory."""

    name = "ReadOnlyMem"
    category = "data-movement"
    pattern = "Large amount of read-only data"
    technique = "Constant/texture memory for read-only data"
    paper_speedup = "4.3 (best)"
    programmability = 1
    default_system = FORNAX  # the effect shows on the K80

    BLOCK = (16, 16)

    def _launch_all(self, n: int):
        rt = CudaLite(self.system)
        rng = make_rng(label="readonly")
        ha = rng.random((n, n), dtype=np.float32)
        hb = rng.random((n, n), dtype=np.float32)
        ref = ha + hb
        grid = (-(-n // 16), -(-n // 16))

        a = rt.to_device(ha.ravel())
        b = rt.to_device(hb.ravel())
        c1 = rt.malloc(n * n)
        s_glob = rt.launch(matadd_global, grid, self.BLOCK, a, b, c1, n)
        ok = np.allclose(c1.to_host().reshape(n, n), ref)

        t1a = rt.texture_1d(ha.ravel())
        t1b = rt.texture_1d(hb.ravel())
        c2 = rt.malloc(n * n)
        s_t1 = rt.launch(matadd_tex1d, grid, self.BLOCK, t1a, t1b, c2, n)
        ok = ok and np.allclose(c2.to_host().reshape(n, n), ref)

        t2a = rt.texture_2d(ha)
        t2b = rt.texture_2d(hb)
        c3 = rt.malloc(n * n)
        s_t2 = rt.launch(matadd_tex2d, grid, self.BLOCK, t2a, t2b, c3, n)
        ok = ok and np.allclose(c3.to_host().reshape(n, n), ref)
        rt.synchronize()

        gpu = self.system.gpu
        return (
            estimate_kernel_time(s_glob, gpu).exec_s,
            estimate_kernel_time(s_t1, gpu).exec_s,
            estimate_kernel_time(s_t2, gpu).exec_s,
            ok,
        )

    def run(self, n: int = 1024, **_: Any) -> BenchResult:
        t_glob, t_t1, t_t2, ok = self._launch_all(n)
        best_tex = min(t_t1, t_t2)
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="global memory",
            optimized_name="texture memory",
            baseline_time=t_glob,
            optimized_time=best_tex,
            verified=ok,
            params={"n": n},
            metrics={"tex1d_time": t_t1, "tex2d_time": t_t2},
            notes=(
                "On V100-class systems the texture and global paths share "
                "the unified L1, so the speedup collapses to ~1x."
            ),
        )

    def sweep(self, values: Sequence[int] | None = None, **_: Any) -> SweepResult:
        """Fig. 15: global vs 1-D vs 2-D texture over matrix sizes."""
        sizes = list(values or [256, 512, 1024, 1536])
        glob: list[float] = []
        tex1: list[float] = []
        tex2: list[float] = []
        for n in sizes:
            g, t1, t2, _ = self._launch_all(n)
            glob.append(g)
            tex1.append(t1)
            tex2.append(t2)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="matrix order",
            x_values=sizes,
            series={"global": glob, "tex1D": tex1, "tex2D": tex2},
            title="Fig. 15: read-only data placement",
        )
