"""DynParallel (paper §III-B, Fig. 4/5).

Dynamic parallelism lets a running kernel launch child kernels, which
suits adaptive algorithms.  The paper's example is the Mariani–Silver
Mandelbrot renderer: compute the dwell only on a rectangle's *border*;
if the border dwell is uniform, fill the rectangle without computing
its interior, otherwise subdivide and recurse — each step a device-side
launch.  Against the escape-time baseline (every pixel computed) the
paper reports 3.26x at 16000^2, shrinking (and inverting) as the image
gets small and per-launch overhead dominates.

The simulator executes the recursion as a host-side driver that fuses
each recursion level's work into aggregate kernels for vectorized
execution, while charging one device-launch overhead per rectangle
kernel the real algorithm would have launched — the accounting the
feature is about.  Image sizes are scaled down from the paper's
(16000^2 exceeds the interpreter's comfortable range); the
overhead-vs-saved-work crossover reproduces at proportionally smaller
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.arch.presets import RTX3080_SYSTEM
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.host.stream import Op
from repro.kernels.mandelbrot import (
    dwell_host_reference,
    fill_indexed,
    mandel_escape,
    mandel_points,
)

from repro.timing.model import DEVICE_LAUNCH_CONCURRENCY

__all__ = ["DynParallel", "mariani_silver", "MandelView", "DEVICE_LAUNCH_CONCURRENCY"]


@dataclass(frozen=True)
class MandelView:
    """The complex-plane window being rendered."""

    x0: float = -2.0
    y0: float = -1.5
    span: float = 3.0

    def steps(self, w: int, h: int) -> tuple[float, float]:
        return self.span / w, self.span / h


def _border_coords(rects: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pixel coordinates of every rectangle's border, concatenated.

    ``rects`` is an (n, 4) int array of (x0, y0, w, h).  Returns
    (xs, ys, rect_id) arrays.
    """
    xs_parts: list[np.ndarray] = []
    ys_parts: list[np.ndarray] = []
    ids: list[np.ndarray] = []
    for i, (x0, y0, w, h) in enumerate(rects):
        top_x = np.arange(x0, x0 + w)
        left_y = np.arange(y0 + 1, y0 + h - 1)
        xs = np.concatenate(
            [top_x, top_x, np.full(left_y.size, x0), np.full(left_y.size, x0 + w - 1)]
        )
        ys = np.concatenate(
            [np.full(w, y0), np.full(w, y0 + h - 1), left_y, left_y]
        )
        xs_parts.append(xs)
        ys_parts.append(ys)
        ids.append(np.full(xs.size, i))
    return (
        np.concatenate(xs_parts),
        np.concatenate(ys_parts),
        np.concatenate(ids),
    )


def mariani_silver(
    rt: CudaLite,
    out,
    w: int,
    h: int,
    *,
    view: MandelView = MandelView(),
    max_dwell: int = 512,
    init_subdiv: int = 4,
    subdiv: int = 4,
    min_size: int = 16,
    max_depth: int = 6,
    block: int = 256,
) -> dict[str, float]:
    """Render via Mariani–Silver; returns work/launch statistics.

    Each recursion level runs three fused kernels (border dwell, fills,
    per-pixel leaves) and submits one device-launch-overhead charge per
    rectangle the device-side recursion would have launched.
    """
    gpu = rt.gpu
    dx, dy = view.steps(w, h)
    step_x, step_y = w // init_subdiv, h // init_subdiv
    rects = np.array(
        [
            (i * step_x, j * step_y, step_x, step_y)
            for j in range(init_subdiv)
            for i in range(init_subdiv)
        ],
        dtype=np.int64,
    )
    device_launches = init_subdiv * init_subdiv
    pixels_computed = 0
    pixels_filled = 0

    for depth in range(max_depth + 1):
        if rects.size == 0:
            break
        xs, ys, rect_id = _border_coords(rects)
        n_pts = xs.size
        dxs = rt.to_device(xs.astype(np.int64))
        dys = rt.to_device(ys.astype(np.int64))
        dd = rt.malloc(n_pts, np.int64)
        rt.launch(
            mandel_points,
            -(-n_pts // block),
            block,
            dxs, dys, dd, n_pts, view.x0, view.y0, dx, dy, max_dwell,
            launch_kind="device",
            name="ms_border_dwell",
        )
        pixels_computed += n_pts
        dwells = dd.to_host()

        # classify rectangles
        fill_idx_parts: list[np.ndarray] = []
        fill_val_parts: list[np.ndarray] = []
        leaf_rects: list[np.ndarray] = []
        children: list[np.ndarray] = []
        for i, (x0, y0, rw, rh) in enumerate(rects):
            d = dwells[rect_id == i]
            if d.size and (d == d[0]).all():
                yy, xx = np.mgrid[y0 : y0 + rh, x0 : x0 + rw]
                fill_idx_parts.append((yy * w + xx).ravel())
                fill_val_parts.append(np.full(rw * rh, d[0], dtype=np.int64))
                pixels_filled += rw * rh
            elif min(rw, rh) // subdiv < min_size or depth == max_depth:
                leaf_rects.append(np.array([x0, y0, rw, rh]))
            else:
                # subdivide SUBDIV x SUBDIV, like the CUDA sample
                xs_edges = np.linspace(x0, x0 + rw, subdiv + 1, dtype=np.int64)
                ys_edges = np.linspace(y0, y0 + rh, subdiv + 1, dtype=np.int64)
                for cy0, cy1 in zip(ys_edges[:-1], ys_edges[1:]):
                    for cx0, cx1 in zip(xs_edges[:-1], xs_edges[1:]):
                        children.append(
                            np.array([cx0, cy0, cx1 - cx0, cy1 - cy0])
                        )

        # fused fill of all uniform rectangles (one fill launch per rect
        # in the device-side algorithm)
        if fill_idx_parts:
            idxs = np.concatenate(fill_idx_parts)
            vals = np.concatenate(fill_val_parts)
            di = rt.to_device(idxs.astype(np.int64))
            dv = rt.to_device(vals)
            rt.launch(
                fill_indexed,
                -(-idxs.size // block),
                block,
                out, di, dv, idxs.size,
                launch_kind="device",
                name="ms_fill",
            )
            device_launches += len(fill_idx_parts)

        # fused per-pixel evaluation of leaf rectangles
        if leaf_rects:
            coords = []
            for x0, y0, rw, rh in leaf_rects:
                yy, xx = np.mgrid[y0 : y0 + rh, x0 : x0 + rw]
                coords.append((xx.ravel(), yy.ravel()))
            lx = np.concatenate([c[0] for c in coords])
            ly = np.concatenate([c[1] for c in coords])
            dlx = rt.to_device(lx.astype(np.int64))
            dly = rt.to_device(ly.astype(np.int64))
            dld = rt.malloc(lx.size, np.int64)
            rt.launch(
                mandel_points,
                -(-lx.size // block),
                block,
                dlx, dly, dld, lx.size, view.x0, view.y0, dx, dy, max_dwell,
                launch_kind="device",
                name="ms_leaf_pixels",
            )
            pixels_computed += lx.size
            # scatter results into the image
            dli = rt.to_device((ly * w + lx).astype(np.int64))
            rt.launch(
                fill_indexed,
                -(-lx.size // block),
                block,
                out, dli, dld, lx.size,
                launch_kind="device",
                name="ms_leaf_store",
            )
            device_launches += len(leaf_rects)

        # write the border dwells themselves
        dbi = rt.to_device((ys * w + xs).astype(np.int64))
        rt.launch(
            fill_indexed,
            -(-n_pts // block),
            block,
            out, dbi, dd, n_pts,
            launch_kind="device",
            name="ms_border_store",
        )

        device_launches += len(children)
        rects = np.array(children, dtype=np.int64) if children else np.empty((0, 4), np.int64)

    # Charge the device-launch overheads the fused kernels absorbed:
    # the real recursion pays one launch per rectangle kernel, but
    # launches from different blocks overlap in the pending-launch pool.
    fused_launches = len(rt.kernel_log)
    extra = max(device_launches - fused_launches, 0)
    if extra:
        rt.engine.submit(
            Op(
                kind="kernel",
                name=f"device-launch overhead x{extra}",
                stream=rt.default_stream,
                duration=extra * gpu.device_launch_overhead_s
                / DEVICE_LAUNCH_CONCURRENCY,
                sm_demand=1,
            )
        )
    return {
        "device_launches": float(device_launches),
        "pixels_computed": float(pixels_computed),
        "pixels_filled": float(pixels_filled),
    }


class DynParallel(Microbenchmark):
    """Let the GPU generate its own work for adaptive algorithms."""

    name = "DynParallel"
    category = "parallelism"
    pattern = "Nested parallelism, e.g. adaptive grids"
    technique = "Dynamic parallelism: the GPU generates its own work"
    paper_speedup = "3.26 (best)"
    programmability = 4
    default_system = RTX3080_SYSTEM

    def run(
        self,
        size: int = 512,
        max_dwell: int = 512,
        min_mismatch_frac: float = 0.01,
        **_: Any,
    ) -> BenchResult:
        w = h = size
        view = MandelView()
        dx, dy = view.steps(w, h)
        ref = dwell_host_reference(w, h, view.x0, view.y0, dx, dy, max_dwell)

        # escape-time baseline
        rt1 = CudaLite(self.system)
        out1 = rt1.malloc(w * h, np.int64)
        with rt1.timer() as t_escape:
            rt1.launch(
                mandel_escape,
                (-(-w // 16), -(-h // 16)),
                (16, 16),
                out1, w, h, view.x0, view.y0, dx, dy, max_dwell,
            )
        ok_escape = np.array_equal(out1.to_host().reshape(h, w), ref)

        # Mariani-Silver with dynamic parallelism
        rt2 = CudaLite(self.system)
        out2 = rt2.malloc(w * h, np.int64)
        with rt2.timer() as t_ms:
            info = mariani_silver(rt2, out2, w, h, view=view, max_dwell=max_dwell)
        ms_img = out2.to_host().reshape(h, w)
        mismatch = float((ms_img != ref).mean())

        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="escape time",
            optimized_name="Mariani-Silver (dyn. parallelism)",
            baseline_time=t_escape.elapsed,
            optimized_time=t_ms.elapsed,
            verified=ok_escape and mismatch <= min_mismatch_frac,
            params={"size": size, "max_dwell": max_dwell},
            metrics={
                "pixel_fraction_computed": info["pixels_computed"] / (w * h),
                "device_launches": info["device_launches"],
                "fill_fraction": info["pixels_filled"] / (w * h),
                "image_mismatch_fraction": mismatch,
            },
        )

    def sweep(self, values: Sequence[int] | None = None, **kw: Any) -> SweepResult:
        """Fig. 5: escape vs Mariani-Silver over image sizes."""
        sizes = list(values or [128, 256, 512, 1024])
        esc: list[float] = []
        ms: list[float] = []
        for s in sizes:
            res = self.run(size=s, **kw)
            esc.append(res.baseline_time)
            ms.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="image size",
            x_values=sizes,
            series={"escape time": esc, "Mariani-Silver": ms},
            title="Fig. 5: dynamic parallelism (Mandelbrot)",
        )
