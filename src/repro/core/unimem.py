"""UniMem (paper §V-C, Fig. 16).

*Memory access density* is the fraction of transferred data the kernel
actually uses.  An explicit ``cudaMemcpy`` always ships whole buffers;
unified memory migrates only the touched pages.  Striding AXPY controls
the density: at stride 1 the paging machinery makes unified memory a
bit slower, but once the stride exceeds a page the migrated volume
shrinks proportionally and unified memory wins (~3x average in the
paper).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.rng import make_rng
from repro.core.base import BenchResult, Microbenchmark, SweepResult
from repro.host.runtime import CudaLite
from repro.kernels.axpy import axpy_strided

__all__ = ["UniMem"]


class UniMem(Microbenchmark):
    """Migrate only the needed pages with unified memory."""

    name = "UniMem"
    category = "data-movement"
    pattern = "Low memory access density"
    technique = "Unified memory copies only the necessary pages"
    paper_speedup = "3 (average)"
    programmability = 3

    def _offload_explicit(self, hx, hy, n, a, stride, block):
        """Full-buffer copies + kernel + copy-back."""
        rt = CudaLite(self.system)
        x = rt.malloc(n)
        y = rt.malloc(n)
        threads = -(-n // stride)
        with rt.timer() as t:
            rt.memcpy_h2d(x, hx, pinned=True)
            rt.memcpy_h2d(y, hy, pinned=True)
            rt.launch(axpy_strided, -(-threads // block), block, x, y, n, a, stride)
            out = rt.memcpy_d2h(y, pinned=True)
        return t.elapsed, out

    def _offload_managed(self, hx, hy, n, a, stride, block):
        """Managed allocations: pages fault over on demand."""
        rt = CudaLite(self.system)
        x = rt.malloc_managed(n)
        y = rt.malloc_managed(n)
        x.fill_from(hx)  # host-side initialization (untimed, both versions)
        y.fill_from(hy)
        threads = -(-n // stride)
        with rt.timer() as t:
            rt.launch(axpy_strided, -(-threads // block), block, x, y, n, a, stride)
            out = rt.managed_to_host(y)
        return t.elapsed, out

    def run(
        self,
        n: int = 1 << 22,
        a: float = 2.0,
        stride: int = 1 << 15,
        block: int = 256,
        **_: Any,
    ) -> BenchResult:
        rng = make_rng(label="unimem")
        hx = rng.random(n, dtype=np.float32)
        hy = rng.random(n, dtype=np.float32)
        idx = np.arange(0, n, stride)
        expect = hy.copy()
        expect[idx] = hy[idx] + a * hx[idx]

        t_exp, out_exp = self._offload_explicit(hx, hy, n, a, stride, block)
        t_um, out_um = self._offload_managed(hx, hy, n, a, stride, block)
        ok = np.allclose(out_exp, expect, rtol=1e-5) and np.allclose(
            out_um, expect, rtol=1e-5
        )
        page = self.system.gpu.um_page_bytes
        touched_pages = np.unique(idx * 4 // page).size
        return BenchResult(
            benchmark=self.name,
            system=self.system.name,
            baseline_name="explicit full copies",
            optimized_name="unified memory",
            baseline_time=t_exp,
            optimized_time=t_um,
            verified=ok,
            params={"n": n, "stride": stride},
            metrics={
                "explicit_bytes": 3.0 * n * 4,
                "um_touched_pages_per_array": float(touched_pages),
                "access_density": 1.0 / stride,
            },
        )

    def sweep(self, values: Sequence[int] | None = None, n: int = 1 << 22, **kw: Any) -> SweepResult:
        """Fig. 16: explicit vs unified memory over access density."""
        strides = list(values or [1, 1 << 4, 1 << 8, 1 << 12, 1 << 14, 1 << 16])
        exp_t: list[float] = []
        um_t: list[float] = []
        for s in strides:
            res = self.run(n=n, stride=s, **kw)
            exp_t.append(res.baseline_time)
            um_t.append(res.optimized_time)
        return SweepResult(
            benchmark=self.name,
            system=self.system.name,
            x_name="stride (1/density)",
            x_values=strides,
            series={"explicit copy": exp_t, "unified memory": um_t},
            title="Fig. 16: memory access density",
        )
