"""CUDA occupancy calculation.

Occupancy — the fraction of an SM's warp slots actually resident —
determines how much latency the warp scheduler can hide.  Resident
blocks per SM are limited by four resources, exactly as in NVIDIA's
occupancy calculator: warp slots, the block-count limit, shared memory,
and the register file.  The timing model uses the result both for
latency hiding (Little's-law bound) and for each warp's fair share of
the L1 in the cache model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import GPUSpec
from repro.common.errors import LaunchConfigError

__all__ = ["Occupancy", "compute_occupancy"]

#: Register allocation granularity (per-warp, in registers).
_REG_ALLOC_UNIT = 256
#: Shared-memory allocation granularity in bytes.
_SMEM_ALLOC_UNIT = 256


def _round_up(v: int, unit: int) -> int:
    return -(-v // unit) * unit


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel on one GPU."""

    blocks_per_sm: int
    warps_per_block: int
    n_blocks: int
    sm_count: int
    max_warps_per_sm: int
    limiter: str  #: which resource capped residency

    @property
    def warps_per_sm(self) -> int:
        """Resident warps per SM at the residency limit."""
        return self.blocks_per_sm * self.warps_per_block

    @property
    def occupancy(self) -> float:
        """Resident warps / warp slots (the headline occupancy %)."""
        return self.warps_per_sm / self.max_warps_per_sm

    @property
    def waves(self) -> int:
        """Full rounds of block scheduling needed for the whole grid."""
        per_round = self.blocks_per_sm * self.sm_count
        return -(-self.n_blocks // per_round)

    @property
    def active_sms(self) -> int:
        """SMs that receive at least one block."""
        return min(self.sm_count, self.n_blocks)


def compute_occupancy(
    gpu: GPUSpec,
    block_threads: int,
    *,
    shared_mem_per_block: int = 0,
    registers_per_thread: int = 32,
    n_blocks: int = 1,
) -> Occupancy:
    """Resident blocks/warps per SM for a launch configuration."""
    if block_threads <= 0:
        raise LaunchConfigError("block must have at least one thread")
    if block_threads > gpu.max_threads_per_block:
        raise LaunchConfigError(
            f"{block_threads} threads/block exceeds {gpu.max_threads_per_block}"
        )
    if registers_per_thread > gpu.max_registers_per_thread:
        raise LaunchConfigError(
            f"{registers_per_thread} registers/thread exceeds "
            f"{gpu.max_registers_per_thread}"
        )
    warps_per_block = -(-block_threads // gpu.warp_size)
    max_warps = gpu.warps_per_sm

    limits = {"warps": max_warps // warps_per_block, "blocks": gpu.max_blocks_per_sm}

    if shared_mem_per_block > 0:
        if shared_mem_per_block > gpu.shared_mem_per_block:
            raise LaunchConfigError(
                f"{shared_mem_per_block} B shared/block exceeds "
                f"{gpu.shared_mem_per_block}"
            )
        smem = _round_up(shared_mem_per_block, _SMEM_ALLOC_UNIT)
        limits["shared"] = gpu.shared_mem_per_sm // smem

    regs_per_warp = _round_up(registers_per_thread * gpu.warp_size, _REG_ALLOC_UNIT)
    regs_per_block = regs_per_warp * warps_per_block
    limits["registers"] = gpu.registers_per_sm // regs_per_block

    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = limits[limiter]
    if blocks_per_sm < 1:
        raise LaunchConfigError(
            f"kernel cannot be resident on {gpu.name}: limited by {limiter}"
        )
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        warps_per_block=warps_per_block,
        n_blocks=max(int(n_blocks), 1),
        sm_count=gpu.sm_count,
        max_warps_per_sm=max_warps,
        limiter=limiter,
    )
