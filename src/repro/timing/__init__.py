"""Analytic timing: occupancy, launch overheads, the roofline model."""

from repro.timing.model import (
    MEM_PARALLELISM_PER_WARP,
    MODEL_BETA,
    KernelTiming,
    estimate_kernel_time,
    launch_overhead,
)
from repro.timing.occupancy import Occupancy, compute_occupancy

__all__ = [
    "MEM_PARALLELISM_PER_WARP",
    "MODEL_BETA",
    "KernelTiming",
    "estimate_kernel_time",
    "launch_overhead",
    "Occupancy",
    "compute_occupancy",
]
