"""The analytic kernel-timing model.

Converts one launch's :class:`~repro.simt.stats.KernelStats` into a
simulated execution time via a multi-bound roofline:

* **issue** — total pipeline issue-cycles spread over the active SMs
  (includes ALU work, LSU transaction slots, shared-memory passes, so
  divergence, uncoalesced transactions, and bank conflicts all inflate
  it);
* **l2** — sector traffic arriving at L2 against L2 bandwidth;
* **dram** — post-cache DRAM bytes against DRAM bandwidth, with the
  uncached (L1-bypass) read portion derated by
  ``GPUSpec.uncached_path_efficiency`` (Kepler behaviour);
* **latency** — a Little's-law floor: each warp can keep only a few
  memory requests in flight, so low-occupancy or tiny launches cannot
  saturate bandwidth.

The bounds are combined as ``T = max + beta * (sum - max)``: the
dominant resource sets the time, and ``beta`` models the imperfect
overlap of the others.  ``beta`` is the model's single global
calibration constant; it is what lets mostly-memory-bound effects like
MemAlign's ~3% and WarpDivRedux's ~10% (paper Table I) show through
without dominating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spec import GPUSpec
from repro.common.errors import SpecError
from repro.mem.hierarchy import TrafficReport, resolve_traffic
from repro.simt.stats import KernelStats
from repro.timing.occupancy import Occupancy, compute_occupancy

__all__ = [
    "KernelTiming",
    "estimate_kernel_time",
    "launch_overhead",
    "MODEL_BETA",
    "MEM_PARALLELISM_PER_WARP",
    "DEVICE_LAUNCH_CONCURRENCY",
]

#: Overlap-imperfection coefficient (see module docstring).
MODEL_BETA = 0.25
#: Outstanding memory requests one warp sustains (MSHR/ILP budget).
MEM_PARALLELISM_PER_WARP = 4.0
#: Device-side launches issue from many blocks concurrently into the
#: hardware's pending-launch pool; their overhead is latency rather than
#: serialized time.  Average number in flight (calibration).
DEVICE_LAUNCH_CONCURRENCY = 32


def launch_overhead(gpu: GPUSpec, kind: str) -> float:
    """Fixed launch cost by mechanism.

    ``host`` is a CPU-initiated ``<<< >>>`` launch, ``device`` a
    dynamic-parallelism launch from a running kernel, ``graph`` the
    per-node cost inside an instantiated CUDA graph, and ``none`` is
    used when a caller accounts overhead itself.
    """
    if kind == "host":
        return gpu.kernel_launch_overhead_s
    if kind == "device":
        return gpu.device_launch_overhead_s
    if kind == "graph":
        return gpu.graph_node_overhead_s
    if kind == "none":
        return 0.0
    raise SpecError(f"unknown launch kind {kind!r}")


@dataclass
class KernelTiming:
    """Timing breakdown for one kernel launch."""

    time_s: float                  #: total = overhead + execution
    exec_s: float                  #: execution time (no launch overhead)
    overhead_s: float
    bounds: dict[str, float] = field(default_factory=dict)
    limiter: str = ""              #: name of the binding bound
    occupancy: Occupancy | None = None
    traffic: TrafficReport | None = None

    def bound_fraction(self, name: str) -> float:
        """A bound's share of the binding bound (diagnostics)."""
        m = max(self.bounds.values(), default=0.0)
        return self.bounds.get(name, 0.0) / m if m else 0.0


def estimate_kernel_time(
    stats: KernelStats,
    gpu: GPUSpec,
    *,
    launch_kind: str = "host",
    sm_limit: int | None = None,
    beta: float = MODEL_BETA,
    mem_parallelism: float = MEM_PARALLELISM_PER_WARP,
) -> KernelTiming:
    """Estimate one launch's execution time from its statistics.

    ``sm_limit`` caps the SMs available to this launch — the
    discrete-event engine passes the grant a kernel received when other
    kernels run concurrently (paper §III-C).
    """
    occ = compute_occupancy(
        gpu,
        stats.block.size,
        shared_mem_per_block=stats.shared_mem_per_block,
        registers_per_thread=stats.registers_per_thread,
        n_blocks=stats.blocks,
    )
    traffic = resolve_traffic(stats.trace, gpu, resident_warps_per_sm=occ.warps_per_sm)

    active_sms = occ.active_sms
    if sm_limit is not None:
        active_sms = max(1, min(active_sms, int(sm_limit)))
    clock = gpu.clock_hz
    bounds: dict[str, float] = {}

    # -- issue: all pipeline cycles, spread over the SMs actually used.
    bounds["issue"] = stats.issue_cycles / (active_sms * clock)

    # -- L2 bandwidth.
    l2_bytes = traffic.l2_sectors * gpu.sector_bytes
    bounds["l2"] = l2_bytes / gpu.l2_bandwidth

    # -- DRAM bandwidth, with the uncached read path derated.
    eff = gpu.uncached_path_efficiency
    cached_reads = traffic.dram_read_bytes - traffic.dram_uncached_read_bytes
    dram_t = (cached_reads + traffic.dram_write_bytes) / gpu.dram_bandwidth
    if traffic.dram_uncached_read_bytes:
        dram_t += traffic.dram_uncached_read_bytes / (gpu.dram_bandwidth * eff)
    bounds["dram"] = dram_t

    # -- latency floor (Little's law): requests / sustainable request rate.
    if stats.global_requests:
        warps_in_grid = max(stats.warps, 1)
        resident = min(occ.warps_per_sm, -(-warps_in_grid // active_sms))
        in_flight = active_sms * resident * mem_parallelism
        lat_s = traffic.avg_load_latency_cycles / clock
        bounds["latency"] = stats.global_requests * lat_s / in_flight

    m = max(bounds.values())
    limiter = max(bounds, key=lambda k: bounds[k])
    exec_s = m + beta * (sum(bounds.values()) - m)
    overhead = launch_overhead(gpu, launch_kind)
    if stats.device_launches:
        overhead += (
            stats.device_launches
            * gpu.device_launch_overhead_s
            / DEVICE_LAUNCH_CONCURRENCY
        )
    return KernelTiming(
        time_s=overhead + exec_s,
        exec_s=exec_s,
        overhead_s=overhead,
        bounds=bounds,
        limiter=limiter,
        occupancy=occ,
        traffic=traffic,
    )
