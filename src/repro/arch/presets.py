"""Preset architecture specifications.

The three GPUs the paper evaluates on — Tesla V100 ("Carina"), Tesla K80
("Fornax") and GeForce RTX 3080 — plus an A100 preset for headroom
studies.  Geometry and bandwidth figures come from NVIDIA datasheets and
the CUDA C Programming Guide occupancy tables; latency figures and launch
overheads are calibrations in the range reported by published
microbenchmarking studies (Jia et al., "Dissecting the NVIDIA
Volta/Turing GPU architecture", and the original CUDA SDK timings) and
are marked below.
"""

from __future__ import annotations

from repro.arch.spec import DEFAULT_OP_THROUGHPUT, GPUSpec, LinkSpec, SystemSpec
from repro.common.errors import SpecError

__all__ = [
    "TESLA_V100",
    "TESLA_K80",
    "RTX_3080",
    "A100",
    "PCIE3_X16",
    "PCIE4_X16",
    "CARINA",
    "FORNAX",
    "RTX3080_SYSTEM",
    "get_gpu",
    "get_system",
    "list_gpus",
]

# --------------------------------------------------------------------------
# Tesla V100 (Volta, SM 7.0) — the paper's primary platform ("Carina").
TESLA_V100 = GPUSpec(
    name="Tesla V100",
    compute_capability=(7, 0),
    sm_count=80,
    clock_hz=1.38e9,
    schedulers_per_sm=4,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=48 * 1024,
    l1_size=128 * 1024,          # unified L1/tex/shared 128 KiB
    l2_size=6 * 1024 * 1024,
    dram_size=16 * 1024 ** 3,
    dram_bandwidth=900e9,
    l2_bandwidth=2500e9,          # calibration: ~2.7x DRAM (Jia et al.)
    dram_latency_cycles=450,      # calibration
    l2_latency_cycles=200,        # calibration
    global_loads_cached_in_l1=True,
    texture_cache_dedicated=False,
    copy_engines=2,
    supports_memcpy_async=False,  # cp.async is Ampere+
    op_throughput={**DEFAULT_OP_THROUGHPUT, "fp32": 64.0, "fp64": 32.0},
)

# --------------------------------------------------------------------------
# Tesla K80 (Kepler GK210, SM 3.7) — one logical GPU of the dual-die board
# ("Fornax").  The key behavioural differences from Volta:
#   * ordinary global loads are NOT cached in L1 (L1 serves local memory
#     only); the read-only/texture path has its own 48 KiB cache, so
#     read-only data placement matters a lot (paper Fig. 15);
#   * fewer resident blocks, smaller L2, far lower DRAM bandwidth.
TESLA_K80 = GPUSpec(
    name="Tesla K80",
    compute_capability=(3, 7),
    sm_count=13,
    clock_hz=0.875e9,
    schedulers_per_sm=4,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=131072,      # GK210 doubled register file
    shared_mem_per_sm=112 * 1024,
    shared_mem_per_block=48 * 1024,
    l1_size=16 * 1024,
    l2_size=1536 * 1024,
    texture_cache_size=48 * 1024,
    dram_size=12 * 1024 ** 3,
    dram_bandwidth=240e9,
    l2_bandwidth=600e9,           # calibration
    dram_latency_cycles=600,      # calibration: Kepler DRAM latency higher
    l2_latency_cycles=220,        # calibration
    global_loads_cached_in_l1=False,
    uncached_path_efficiency=0.25,  # calibration to paper Fig. 15 (~4x)
    texture_cache_dedicated=True,
    copy_engines=2,
    kernel_launch_overhead_s=8e-6,
    supports_memcpy_async=False,
    supports_task_graphs=False,   # CUDA graphs require newer driver paths
    op_throughput={
        **DEFAULT_OP_THROUGHPUT,
        "fp32": 192.0,            # Kepler SMX: 192 FP32 lanes
        "fp64": 64.0,             # GK210
        "int": 160.0,
        "shfl": 32.0,
        "ldst_issue": 32.0,
    },
)

# --------------------------------------------------------------------------
# GeForce RTX 3080 (Ampere GA102, SM 8.6) — used for DynParallel (Fig. 5)
# and the memcpy_async experiment (§IV-D).
RTX_3080 = GPUSpec(
    name="RTX 3080",
    compute_capability=(8, 6),
    sm_count=68,
    clock_hz=1.71e9,
    schedulers_per_sm=4,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    shared_mem_per_sm=100 * 1024,
    shared_mem_per_block=48 * 1024,
    l1_size=128 * 1024,
    l2_size=5 * 1024 * 1024,
    dram_size=10 * 1024 ** 3,
    dram_bandwidth=760e9,
    l2_bandwidth=2000e9,          # calibration
    dram_latency_cycles=470,      # calibration
    l2_latency_cycles=210,        # calibration
    global_loads_cached_in_l1=True,
    texture_cache_dedicated=False,
    copy_engines=2,
    supports_memcpy_async=True,   # Ampere cp.async
    device_launch_overhead_s=2.0e-6,
    op_throughput={
        **DEFAULT_OP_THROUGHPUT,
        "fp32": 128.0,            # Ampere doubled FP32
        "fp64": 2.0,
        "int": 64.0,
    },
)

# --------------------------------------------------------------------------
# A100 (Ampere GA100, SM 8.0) — not in the paper's evaluation but described
# in its Section II; included for forward-looking studies.
A100 = GPUSpec(
    name="A100",
    compute_capability=(8, 0),
    sm_count=108,
    clock_hz=1.41e9,
    schedulers_per_sm=4,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=164 * 1024,
    shared_mem_per_block=48 * 1024,
    l1_size=192 * 1024,
    l2_size=40 * 1024 * 1024,
    dram_size=40 * 1024 ** 3,
    dram_bandwidth=1555e9,
    l2_bandwidth=4000e9,          # calibration
    dram_latency_cycles=480,      # calibration
    l2_latency_cycles=200,        # calibration
    global_loads_cached_in_l1=True,
    texture_cache_dedicated=False,
    copy_engines=2,
    supports_memcpy_async=True,
    op_throughput={**DEFAULT_OP_THROUGHPUT, "fp32": 64.0, "fp64": 32.0},
)

# --------------------------------------------------------------------------
# Interconnects.  Effective (not theoretical) bandwidths: PCIe gen3 x16
# sustains ~12 GB/s pinned, ~6 GB/s pageable through the staging copy.
PCIE3_X16 = LinkSpec(
    name="PCIe 3.0 x16",
    pinned_bandwidth=12e9,
    pageable_bandwidth=6e9,
    latency_s=10e-6,
)
PCIE4_X16 = LinkSpec(
    name="PCIe 4.0 x16",
    pinned_bandwidth=24e9,
    pageable_bandwidth=9e9,
    latency_s=9e-6,
)

# The paper's two test systems plus the RTX 3080 box.
CARINA = SystemSpec(name="Carina (Xeon 6230N + V100)", gpu=TESLA_V100, link=PCIE3_X16)
FORNAX = SystemSpec(name="Fornax (Xeon E5-2699v3 + K80)", gpu=TESLA_K80, link=PCIE3_X16)
RTX3080_SYSTEM = SystemSpec(name="RTX 3080 workstation", gpu=RTX_3080, link=PCIE4_X16)

_GPUS = {
    "v100": TESLA_V100,
    "k80": TESLA_K80,
    "rtx3080": RTX_3080,
    "a100": A100,
}
_SYSTEMS = {
    "carina": CARINA,
    "fornax": FORNAX,
    "rtx3080": RTX3080_SYSTEM,
}


def list_gpus() -> list[str]:
    """Names accepted by :func:`get_gpu`."""
    return sorted(_GPUS)


def get_gpu(name: str) -> GPUSpec:
    """Look up a preset GPU by short name (``v100``, ``k80``, ...)."""
    try:
        return _GPUS[name.lower()]
    except KeyError:
        raise SpecError(
            f"unknown GPU {name!r}; available: {', '.join(list_gpus())}"
        ) from None


def get_system(name: str) -> SystemSpec:
    """Look up a preset system by short name (``carina``, ``fornax``, ...)."""
    try:
        return _SYSTEMS[name.lower()]
    except KeyError:
        raise SpecError(
            f"unknown system {name!r}; available: {', '.join(sorted(_SYSTEMS))}"
        ) from None
