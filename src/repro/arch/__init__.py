"""Simulated GPU / system architecture specifications."""

from repro.arch.presets import (
    A100,
    CARINA,
    FORNAX,
    PCIE3_X16,
    PCIE4_X16,
    RTX3080_SYSTEM,
    RTX_3080,
    TESLA_K80,
    TESLA_V100,
    get_gpu,
    get_system,
    list_gpus,
)
from repro.arch.spec import DEFAULT_OP_THROUGHPUT, GPUSpec, LinkSpec, SystemSpec

__all__ = [
    "A100",
    "CARINA",
    "FORNAX",
    "PCIE3_X16",
    "PCIE4_X16",
    "RTX3080_SYSTEM",
    "RTX_3080",
    "TESLA_K80",
    "TESLA_V100",
    "get_gpu",
    "get_system",
    "list_gpus",
    "DEFAULT_OP_THROUGHPUT",
    "GPUSpec",
    "LinkSpec",
    "SystemSpec",
]
