"""Architecture specifications for simulated devices.

A :class:`GPUSpec` captures everything the timing model and the memory
hierarchy need to know about a GPU: geometry (SMs, schedulers, lane
counts), the cache/shared-memory organisation, DRAM and interconnect
bandwidths, feature flags (dynamic parallelism, ``memcpy_async``,
Kepler's "global loads bypass L1" behaviour), and launch-overhead
constants.  :class:`LinkSpec` models the host↔device interconnect and
:class:`SystemSpec` ties a GPU and a link together into the machine a
benchmark runs on.

The numbers in :mod:`repro.arch.presets` come from public NVIDIA
datasheets and programming-guide tables; where a value is a calibration
rather than a datasheet figure it is commented as such at the preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import SpecError

__all__ = ["GPUSpec", "LinkSpec", "SystemSpec", "DEFAULT_OP_THROUGHPUT"]

#: Default per-SM operation throughput table, in *lanes per cycle*.
#: A warp-wide (32-lane) operation of class ``c`` occupies an SM for
#: ``32 / throughput[c]`` cycles.  The values follow the Volta column of
#: the CUDA C Programming Guide's arithmetic-throughput table; presets
#: override individual entries where architectures differ.
DEFAULT_OP_THROUGHPUT: dict[str, float] = {
    "fp32": 64.0,     # FP32 FMA/add/mul lanes per SM per cycle
    "fp64": 32.0,
    "int": 64.0,
    "mul24": 64.0,
    "div": 8.0,       # slow ops: divide, sqrt, transcendental
    "special": 16.0,  # SFU ops
    "cmp": 64.0,
    "shift": 64.0,
    "cvt": 16.0,
    "branch": 64.0,
    "shfl": 32.0,     # one warp shuffle per scheduler per cycle
    "ldst_issue": 16.0,  # LSU address-generation lanes
}


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU.

    All sizes are bytes, all rates bytes/second, all clocks hertz.
    Instances are immutable; use :meth:`evolve` to derive variants.
    """

    name: str
    compute_capability: tuple[int, int]

    # --- geometry -------------------------------------------------------
    sm_count: int
    clock_hz: float
    warp_size: int = 32
    schedulers_per_sm: int = 4
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    max_grid_dim: tuple[int, int, int] = (2147483647, 65535, 65535)
    max_block_dim: tuple[int, int, int] = (1024, 1024, 64)

    # --- on-chip memory -------------------------------------------------
    shared_mem_per_sm: int = 96 * 1024
    shared_mem_per_block: int = 48 * 1024
    shared_banks: int = 32
    shared_bank_bytes: int = 4
    l1_size: int = 128 * 1024
    l2_size: int = 6 * 1024 * 1024
    constant_cache_size: int = 64 * 1024
    texture_cache_size: int = 64 * 1024

    # --- memory behaviour flags ----------------------------------------
    #: Kepler-class GPUs do not cache ordinary global loads in L1; the
    #: read-only/texture path is the only way to get on-SM caching.
    global_loads_cached_in_l1: bool = True
    #: Effective DRAM-bandwidth fraction achieved by loads that bypass
    #: the on-SM cache (1.0 when loads are L1-cached).  Calibrated to
    #: reproduce the read-only-memory gap the paper measures on Kepler
    #: (Fig. 15): the L2-only path sustains far less of peak bandwidth.
    uncached_path_efficiency: float = 1.0
    #: Whether the texture unit has its own cache (Kepler) or shares the
    #: L1 data cache (Volta and newer).
    texture_cache_dedicated: bool = False
    #: L1/transaction segment size and DRAM sector granularity.
    transaction_bytes: int = 128
    sector_bytes: int = 32

    # --- off-chip memory ------------------------------------------------
    dram_size: int = 16 * 1024 ** 3
    dram_bandwidth: float = 900e9
    l2_bandwidth: float = 2500e9
    dram_latency_cycles: int = 450
    l2_latency_cycles: int = 200
    shared_latency_cycles: int = 25

    # --- host interaction -----------------------------------------------
    copy_engines: int = 2
    kernel_launch_overhead_s: float = 6e-6
    device_launch_overhead_s: float = 2.5e-6
    graph_launch_overhead_s: float = 8e-6
    graph_node_overhead_s: float = 0.6e-6
    #: Unified-memory page-migration model: fault-group granularity and
    #: the driver overhead charged per migrated page group.
    um_page_bytes: int = 64 * 1024
    um_fault_overhead_s: float = 20e-6

    # --- feature flags ----------------------------------------------------
    supports_dynamic_parallelism: bool = True
    supports_concurrent_kernels: bool = True
    supports_task_graphs: bool = True
    supports_memcpy_async: bool = False
    max_concurrent_kernels: int = 32

    # --- instruction throughput ------------------------------------------
    op_throughput: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_OP_THROUGHPUT)
    )

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise SpecError(f"{self.name}: sm_count must be positive")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise SpecError(f"{self.name}: warp_size must be a power of two")
        if self.clock_hz <= 0:
            raise SpecError(f"{self.name}: clock_hz must be positive")
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise SpecError(
                f"{self.name}: block thread limit exceeds SM thread limit"
            )
        if self.shared_mem_per_block > self.shared_mem_per_sm:
            raise SpecError(
                f"{self.name}: per-block shared memory exceeds per-SM capacity"
            )
        if self.transaction_bytes % self.sector_bytes:
            raise SpecError(
                f"{self.name}: transaction size must be a multiple of sector size"
            )
        missing = set(DEFAULT_OP_THROUGHPUT) - set(self.op_throughput)
        if missing:
            raise SpecError(
                f"{self.name}: op_throughput missing classes {sorted(missing)}"
            )

    # ------------------------------------------------------------------
    @property
    def warps_per_sm(self) -> int:
        """Maximum resident warps on one SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def total_thread_capacity(self) -> int:
        """Threads resident device-wide at full occupancy."""
        return self.sm_count * self.max_threads_per_sm

    @property
    def peak_fp32_flops(self) -> float:
        """Peak FP32 FLOP/s counting each FMA lane as two FLOPs."""
        return 2.0 * self.sm_count * self.op_throughput["fp32"] * self.clock_hz

    @property
    def sectors_per_transaction(self) -> int:
        return self.transaction_bytes // self.sector_bytes

    def op_cycles(self, op_class: str, width: int | None = None) -> float:
        """SM-cycles one warp-wide operation of ``op_class`` occupies."""
        try:
            lanes = self.op_throughput[op_class]
        except KeyError:
            raise SpecError(f"unknown op class {op_class!r}") from None
        w = self.warp_size if width is None else width
        return w / lanes

    def evolve(self, **changes: Any) -> "GPUSpec":
        """Return a copy with ``changes`` applied (for what-if studies)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class LinkSpec:
    """Host↔device interconnect (PCIe or NVLink) model.

    ``latency_s`` is the fixed per-transfer setup cost (driver + DMA
    programming); ``pinned_bandwidth`` applies to page-locked buffers and
    async copies, ``pageable_bandwidth`` to ordinary host allocations
    which require a staging copy.
    """

    name: str
    pinned_bandwidth: float
    pageable_bandwidth: float
    latency_s: float = 10e-6
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.pinned_bandwidth <= 0 or self.pageable_bandwidth <= 0:
            raise SpecError(f"{self.name}: bandwidths must be positive")
        if self.pageable_bandwidth > self.pinned_bandwidth:
            raise SpecError(
                f"{self.name}: pageable bandwidth cannot exceed pinned"
            )

    def transfer_time(self, nbytes: int, *, pinned: bool = True) -> float:
        """Time to move ``nbytes`` across the link in one transfer."""
        if nbytes < 0:
            raise SpecError("negative transfer size")
        bw = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        return self.latency_s + nbytes / bw


@dataclass(frozen=True)
class SystemSpec:
    """A complete simulated machine: one GPU behind one link."""

    name: str
    gpu: GPUSpec
    link: LinkSpec

    def evolve(self, **changes: Any) -> "SystemSpec":
        return replace(self, **changes)
