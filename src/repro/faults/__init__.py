"""Deterministic fault injection: plans, logs, retry policies."""

from repro.faults.plan import FaultLog, FaultPlan, RetryPolicy

__all__ = ["FaultLog", "FaultPlan", "RetryPolicy"]
