"""Deterministic fault injection for the host runtime.

A :class:`FaultPlan` decides — reproducibly, from a seed — which
operations of a run fail and how: allocations once a byte budget is
exhausted, H2D/D2H transfers (transient failure or silent bit
corruption), a kernel launch that aborts, periodic stream stalls, and
the watchdog budget for runaway kernels.  Every decision is drawn from
a counter-keyed Philox stream, so the *N*-th decision of a domain is a
pure function of ``(seed, domain, N)``: two runs with the same seed and
the same operation sequence inject exactly the same faults, which is
what makes fault-handling behaviour assertable in tests and CI.

The plan only *decides*; :class:`~repro.host.runtime.CudaLite` applies
the outcomes (retrying transient transfer faults with backoff, going
sticky on kernel aborts) and records what happened in a
:class:`FaultLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ReproError

__all__ = ["FaultPlan", "FaultLog", "RetryPolicy"]

#: Domain tags keying the per-decision RNG streams.
_DOMAINS = {
    "h2d": 1,
    "d2h": 2,
    "corrupt": 3,
    "stall": 5,
    "worker": 7,
    "payload": 11,
    "cache": 13,
    "jitter": 17,
    "fleet": 19,
    "lease": 23,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff (with optional jitter) for retries.

    Used for transient transfer faults at the runtime layer and for
    failed jobs at the scheduler layer.  ``jitter_frac`` spreads the
    backoff by up to that fraction of its nominal value; the caller
    supplies the uniform draw ``u`` so jitter stays deterministic
    (the scheduler keys it on ``(seed, job, retry)``).
    """

    max_attempts: int = 4          #: total tries, including the first
    backoff_s: float = 100e-6      #: simulated delay before retry 1
    multiplier: float = 2.0        #: backoff growth per retry
    jitter_frac: float = 0.0       #: max extra fraction added per retry

    def backoff(self, retry: int, u: float = 0.0) -> float:
        """Backoff delay before the given retry (0-based).

        ``u`` is a uniform [0, 1) draw scaling the jitter term; the
        default 0.0 reproduces the jitterless schedule.
        """
        base = self.backoff_s * self.multiplier**retry
        return base * (1.0 + self.jitter_frac * u)


@dataclass
class FaultLog:
    """What the runtime actually injected and how it recovered."""

    events: list[tuple[str, str]] = field(default_factory=list)
    #: optional activity hub; each recorded fault is forwarded as a
    #: driver-phase ``fault`` activity record
    hub: object = field(default=None, repr=False, compare=False)

    def record(self, kind: str, detail: str = "") -> None:
        self.events.append((kind, detail))
        hub = self.hub
        if hub is not None and hub.wants("fault"):
            hub.emit("fault", kind, track="faults", detail=detail)

    def count(self, kind: str) -> int:
        return sum(1 for k, _ in self.events if k == kind)

    def render(self) -> str:
        if not self.events:
            return "fault log: no faults injected"
        lines = ["fault log:"]
        lines += [f"  {k}: {d}" if d else f"  {k}" for k, d in self.events]
        return "\n".join(lines)


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Parameters
    ----------
    seed:
        Root of every random decision; same seed + same operation
        sequence = same faults.
    alloc_fail_after_bytes:
        Allocations succeed until the cumulative requested bytes exceed
        this; afterwards every allocation fails (OOM analog).
    h2d_fail_prob, d2h_fail_prob:
        Per-transfer probability of a *transient* failure (the runtime
        retries these with backoff).
    corrupt_prob:
        Per-transfer probability that the copy succeeds but one bit of
        the payload flips (silent data corruption).
    kernel_abort_at:
        0-based launch ordinal that aborts mid-flight, poisoning the
        context (sticky error).
    max_transfer_failures:
        Cap on injected transfer failures across the run; once reached,
        would-be failures succeed instead.  ``h2d_fail_prob=1.0,
        max_transfer_failures=1`` deterministically fails the first
        attempt and recovers on the retry.
    stall_every, stall_seconds:
        Every N-th submitted stream operation is preceded by a stall of
        the given simulated duration (jammed-DMA/preemption analog).
    watchdog_cycles:
        Issue-cycle budget per kernel; exceeded → WatchdogTimeout.
        (Also settable directly on the runtime.)
    worker_crash_prob, worker_hang_prob:
        Scheduler-layer chaos: per-attempt probability that a sweep
        worker crashes (hard exit, no result) or hangs (sleeps past any
        job timeout).  Decisions are keyed on ``(job ordinal, attempt)``
        so they are independent of pool completion order.
    payload_corrupt_prob:
        Per-attempt probability the worker's result payload arrives
        truncated or corrupted (torn-IPC analog); the supervisor
        discards it and retries.
    cache_corrupt_prob:
        Per-read probability that a result-cache entry is torn on disk
        before the read (the quarantine-and-recompute path).
    sched_fault_attempts:
        Scheduler chaos only fires on attempt indices below this bound,
        so ``worker_crash_prob=1.0, sched_fault_attempts=1``
        deterministically crashes the first attempt of every job and
        lets the retry succeed.  ``None`` leaves every attempt eligible
        (retry exhaustion → quarantine).
    interrupt_after_jobs:
        Raise ``KeyboardInterrupt`` in the scheduler after this many
        completed (journaled) jobs — the deterministic SIGINT analog
        used by the interrupt-and-resume tests.
    divergence_jobs:
        0-based job ordinals whose fast-backend execution raises
        :class:`~repro.common.errors.BackendDivergenceError`, driving
        the automatic re-run on the reference backend.
    fleet_kill_prob:
        Fleet-layer chaos: per-claim probability that the worker
        process holding a job's lease hard-exits mid-lease (``SIGKILL``
        analog).  Keyed on ``(job ordinal, lease epoch)``, so the
        worker that *steals* the dead worker's lease draws a fresh
        decision; ``sched_fault_attempts`` bounds the eligible epochs
        exactly as it bounds pool-mode attempts.
    heartbeat_stall_prob:
        Per-claim probability that the lease owner stops heartbeating
        and stalls past the lease TTL before executing, so a healthy
        peer steals the lease mid-run and the original completion
        arrives as a duplicate (first-write-wins merge path).
    lease_corrupt_prob:
        Per-claim probability that the lease file is written torn
        (truncated JSON); peers treat an unreadable lease as
        immediately steal-eligible and quarantine the remnant.
    lease_skew_s:
        Clock-skew analog: stealers judge lease staleness as if their
        clock ran this many seconds ahead, forcing premature steals.
        Results must stay byte-identical — a skewed steal only costs a
        duplicate completion.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        alloc_fail_after_bytes: int | None = None,
        h2d_fail_prob: float = 0.0,
        d2h_fail_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        kernel_abort_at: int | None = None,
        max_transfer_failures: int | None = None,
        stall_every: int | None = None,
        stall_seconds: float = 1e-3,
        watchdog_cycles: float | None = None,
        worker_crash_prob: float = 0.0,
        worker_hang_prob: float = 0.0,
        payload_corrupt_prob: float = 0.0,
        cache_corrupt_prob: float = 0.0,
        sched_fault_attempts: int | None = None,
        interrupt_after_jobs: int | None = None,
        divergence_jobs: tuple[int, ...] | list[int] | None = None,
        fleet_kill_prob: float = 0.0,
        heartbeat_stall_prob: float = 0.0,
        lease_corrupt_prob: float = 0.0,
        lease_skew_s: float = 0.0,
    ) -> None:
        for name, p in (
            ("h2d_fail_prob", h2d_fail_prob),
            ("d2h_fail_prob", d2h_fail_prob),
            ("corrupt_prob", corrupt_prob),
            ("worker_crash_prob", worker_crash_prob),
            ("worker_hang_prob", worker_hang_prob),
            ("payload_corrupt_prob", payload_corrupt_prob),
            ("cache_corrupt_prob", cache_corrupt_prob),
            ("fleet_kill_prob", fleet_kill_prob),
            ("heartbeat_stall_prob", heartbeat_stall_prob),
            ("lease_corrupt_prob", lease_corrupt_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {p}")
        if max(h2d_fail_prob, d2h_fail_prob) + corrupt_prob > 1.0:
            raise ReproError("fail probability + corrupt_prob must not exceed 1")
        if worker_crash_prob + worker_hang_prob > 1.0:
            raise ReproError("worker crash + hang probability must not exceed 1")
        if fleet_kill_prob + heartbeat_stall_prob > 1.0:
            raise ReproError(
                "fleet kill + heartbeat-stall probability must not exceed 1"
            )
        if lease_skew_s < 0.0:
            raise ReproError(f"lease_skew_s must be >= 0, got {lease_skew_s}")
        if stall_every is not None and stall_every <= 0:
            raise ReproError(f"stall_every must be positive, got {stall_every}")
        if interrupt_after_jobs is not None and interrupt_after_jobs <= 0:
            raise ReproError(
                f"interrupt_after_jobs must be positive, got {interrupt_after_jobs}"
            )
        self.seed = int(seed)
        self.alloc_fail_after_bytes = alloc_fail_after_bytes
        self.h2d_fail_prob = h2d_fail_prob
        self.d2h_fail_prob = d2h_fail_prob
        self.corrupt_prob = corrupt_prob
        self.kernel_abort_at = kernel_abort_at
        self.max_transfer_failures = max_transfer_failures
        self.stall_every = stall_every
        self.stall_seconds = stall_seconds
        self.watchdog_cycles = watchdog_cycles
        self.worker_crash_prob = worker_crash_prob
        self.worker_hang_prob = worker_hang_prob
        self.payload_corrupt_prob = payload_corrupt_prob
        self.cache_corrupt_prob = cache_corrupt_prob
        self.sched_fault_attempts = sched_fault_attempts
        self.interrupt_after_jobs = interrupt_after_jobs
        self.divergence_jobs = tuple(divergence_jobs or ())
        self.fleet_kill_prob = fleet_kill_prob
        self.heartbeat_stall_prob = heartbeat_stall_prob
        self.lease_corrupt_prob = lease_corrupt_prob
        self.lease_skew_s = lease_skew_s
        self.reset()

    def reset(self) -> None:
        """Rewind all decision counters; a replay sees identical faults."""
        self._counters: dict[str, int] = {}
        self._alloc_bytes = 0
        self._failures_injected = 0

    # ------------------------------------------------------------------
    def _draw(self, domain: str) -> float:
        """The next uniform [0,1) draw of a domain's decision stream."""
        n = self._counters.get(domain, 0)
        self._counters[domain] = n + 1
        return float(
            np.random.default_rng([self.seed, _DOMAINS[domain], n]).random()
        )

    # ------------------------------------------------------------------
    def alloc_should_fail(self, nbytes: int) -> bool:
        """Decide the fate of an allocation of ``nbytes``."""
        self._alloc_bytes += int(nbytes)
        return (
            self.alloc_fail_after_bytes is not None
            and self._alloc_bytes > self.alloc_fail_after_bytes
        )

    def transfer_outcome(self, direction: str) -> str:
        """``"ok"`` | ``"fail"`` (transient) | ``"corrupt"`` for one attempt."""
        p_fail = self.h2d_fail_prob if direction == "h2d" else self.d2h_fail_prob
        if p_fail == 0.0 and self.corrupt_prob == 0.0:
            return "ok"
        u = self._draw(direction)
        if u < p_fail:
            if (
                self.max_transfer_failures is not None
                and self._failures_injected >= self.max_transfer_failures
            ):
                return "ok"
            self._failures_injected += 1
            return "fail"
        if u < p_fail + self.corrupt_prob:
            return "corrupt"
        return "ok"

    def corruption_site(self, nbytes: int) -> tuple[int, int]:
        """(byte offset, bit index) to flip in a corrupted payload."""
        n = self._counters.get("corrupt", 0)
        self._counters["corrupt"] = n + 1
        rng = np.random.default_rng([self.seed, _DOMAINS["corrupt"], n])
        return int(rng.integers(max(nbytes, 1))), int(rng.integers(8))

    def kernel_aborts(self, ordinal: int) -> bool:
        """Does the launch with this 0-based ordinal abort?"""
        return self.kernel_abort_at is not None and ordinal == self.kernel_abort_at

    def stall_before(self, op_ordinal: int) -> float:
        """Stall duration (s) to inject before the N-th submitted op."""
        if self.stall_every and (op_ordinal + 1) % self.stall_every == 0:
            return self.stall_seconds
        return 0.0

    # -- scheduler-layer chaos -----------------------------------------
    # These decisions are *pure functions* of (seed, domain, job
    # ordinal, attempt) rather than draws from a sequential counter
    # stream: a supervised pool completes jobs in nondeterministic
    # order, and keying on the job keeps the injected fault schedule
    # identical across pool widths, serial fallback, and resumes.

    def _keyed(self, domain: str, ordinal: int, attempt: int) -> float:
        return float(
            np.random.default_rng(
                [self.seed, _DOMAINS[domain], ordinal, attempt]
            ).random()
        )

    def _sched_armed(self, attempt: int) -> bool:
        return (
            self.sched_fault_attempts is None
            or attempt < self.sched_fault_attempts
        )

    def worker_outcome(self, ordinal: int, attempt: int) -> str:
        """``"ok"`` | ``"crash"`` | ``"hang"`` for one job attempt."""
        if self.worker_crash_prob == 0.0 and self.worker_hang_prob == 0.0:
            return "ok"
        if not self._sched_armed(attempt):
            return "ok"
        u = self._keyed("worker", ordinal, attempt)
        if u < self.worker_crash_prob:
            return "crash"
        if u < self.worker_crash_prob + self.worker_hang_prob:
            return "hang"
        return "ok"

    def payload_outcome(self, ordinal: int, attempt: int) -> str:
        """``"ok"`` | ``"truncate"`` | ``"corrupt"`` for one result payload."""
        if self.payload_corrupt_prob == 0.0 or not self._sched_armed(attempt):
            return "ok"
        u = self._keyed("payload", ordinal, attempt)
        if u < self.payload_corrupt_prob:
            return "truncate" if u < self.payload_corrupt_prob / 2 else "corrupt"
        return "ok"

    def cache_read_corrupts(self, ordinal: int) -> bool:
        """Should the cache entry read for this job be torn on disk?"""
        if self.cache_corrupt_prob == 0.0:
            return False
        return self._keyed("cache", ordinal, 0) < self.cache_corrupt_prob

    def job_diverges(self, ordinal: int) -> bool:
        """Does the fast-backend execution of this job diverge?"""
        return ordinal in self.divergence_jobs

    def interrupts_after(self, completed_jobs: int) -> bool:
        """Simulated SIGINT once this many jobs have been journaled."""
        return (
            self.interrupt_after_jobs is not None
            and completed_jobs >= self.interrupt_after_jobs
        )

    def retry_jitter(self, ordinal: int, attempt: int) -> float:
        """Uniform [0,1) draw feeding :meth:`RetryPolicy.backoff` jitter."""
        return self._keyed("jitter", ordinal, attempt)

    # -- fleet-layer chaos ---------------------------------------------
    # Keyed on (job ordinal, lease epoch): epoch 0 is the first claim,
    # each steal increments it.  Like the scheduler-layer decisions,
    # these are pure functions of the key, so the same plan injects the
    # same faults regardless of which worker claims which job.

    def fleet_outcome(self, ordinal: int, epoch: int) -> str:
        """``"ok"`` | ``"kill"`` | ``"stall"`` for one lease claim.

        ``kill``: the claiming worker hard-exits mid-lease.  ``stall``:
        the claiming worker stops heartbeating and sleeps past the
        lease TTL before executing (duplicate-completion path).
        """
        if self.fleet_kill_prob == 0.0 and self.heartbeat_stall_prob == 0.0:
            return "ok"
        if not self._sched_armed(epoch):
            return "ok"
        u = self._keyed("fleet", ordinal, epoch)
        if u < self.fleet_kill_prob:
            return "kill"
        if u < self.fleet_kill_prob + self.heartbeat_stall_prob:
            return "stall"
        return "ok"

    def lease_write_corrupts(self, ordinal: int, epoch: int) -> bool:
        """Should this claim's lease file be written torn on disk?"""
        if self.lease_corrupt_prob == 0.0 or not self._sched_armed(epoch):
            return False
        return self._keyed("lease", ordinal, epoch) < self.lease_corrupt_prob

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(seed={self.seed})"
