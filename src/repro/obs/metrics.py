"""Prometheus text-format metrics exposition.

The scrape surface of one scheduler run: the supervisor/fleet counters
of :class:`~repro.resilience.supervisor.SchedTelemetry`, the
:class:`~repro.sched.cache.ResultCache` hit/miss/store/quarantine
counters, and — for a live fleet run — progress scanned read-only from
the shared coordination directory.  Rendered in the `Prometheus text
exposition format`_ (version 0.0.4: ``# HELP``/``# TYPE`` comment
lines, one ``name{labels} value`` sample per line), the format every
scraper, ``promtool``, and ``curl | grep`` already speak.

Written as a ``--metrics <path>`` sidecar at the end of a run, and
served live from the stdlib HTTP endpoint of
:mod:`repro.obs.server` during ``--metrics-port`` runs.

Metric name registry (all prefixed ``repro_``; see
``docs/observability.md``):

==================================  ==================================
``repro_run_info``                  1, labeled run/command/mode
``repro_jobs_total``                jobs in the run's manifest
``repro_jobs_completed_total``      jobs finished (journaled)
``repro_jobs_remaining``            manifest jobs not yet resolved
``repro_run_degraded``              1 when a fallback was taken
``repro_resume_skips_total``        jobs replayed from the journal
``repro_retries_total``             failed attempts retried
``repro_timeouts_total``            jobs past their wall-clock budget
``repro_worker_crashes_total``      worker processes that died
``repro_payload_faults_total``      corrupted result payloads
``repro_job_errors_total``          other per-attempt errors
``repro_quarantined_total``         jobs abandoned after retries
``repro_fallbacks_total``           degradation-ladder steps taken
``repro_fleet_workers``             cooperating worker processes
``repro_leases_acquired_total``     fresh job leases claimed
``repro_leases_stolen_total``       stale/corrupt leases stolen
``repro_heartbeats_total``          lease heartbeats written
``repro_duplicate_completions_total``  jobs finished by >1 worker
``repro_cache_hits_total``          result-cache hits
``repro_cache_misses_total``        result-cache misses
``repro_cache_stores_total``        result-cache writes
``repro_cache_quarantines_total``   corrupt cache entries quarantined
``repro_flight_dumps_total``        flight-recorder dumps on disk
==================================  ==================================

.. _Prometheus text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.common.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.supervisor import SchedTelemetry

__all__ = [
    "Sample",
    "prometheus_text",
    "parse_prometheus_text",
    "telemetry_samples",
    "fleet_samples",
    "write_metrics_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"'
)


@dataclass(frozen=True)
class Sample:
    """One exposition sample: a metric name, labels, and a value."""

    name: str
    value: float
    labels: Mapping[str, str] = field(default_factory=dict)
    help: str = ""
    type: str = "gauge"          #: "gauge" | "counter" | "untyped"

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ReproError(f"invalid metric name {self.name!r}")
        for key in self.labels:
            if not _NAME_RE.match(key) or key.startswith("__"):
                raise ReproError(
                    f"invalid label name {key!r} on metric {self.name}"
                )


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(samples: Iterable[Sample]) -> str:
    """Render samples as a text-exposition document.

    Samples sharing a metric name are grouped under one ``# HELP`` /
    ``# TYPE`` header (the format requires contiguous metric families);
    within a family, sample order is preserved.
    """
    families: dict[str, list[Sample]] = {}
    for s in samples:
        families.setdefault(s.name, []).append(s)
    lines: list[str] = []
    for name, group in families.items():
        head = group[0]
        if head.help:
            lines.append(f"# HELP {name} {head.help}")
        lines.append(f"# TYPE {name} {head.type}")
        for s in group:
            if s.labels:
                body = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in s.labels.items()
                )
                lines.append(f"{name}{{{body}}} {_format_value(s.value)}")
            else:
                lines.append(f"{name} {_format_value(s.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> list[Sample]:
    """Parse a text-exposition document back into samples.

    Strict enough to serve as the validity check CI runs on a live
    scrape: every non-comment line must match the sample grammar, every
    ``# TYPE`` must name a known type, and a sample line must follow
    its family's header block (no interleaving).  Raises
    :class:`~repro.common.errors.ReproError` on the first violation.
    """
    samples: list[Sample] = []
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    seen_families: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name = parts[2]
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in (
                    "gauge", "counter", "histogram", "summary", "untyped"
                ):
                    raise ReproError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if name in types:
                    raise ReproError(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                types[name] = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise ReproError(
                f"line {lineno}: not a valid exposition sample: {raw!r}"
            )
        name = m.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        labels: dict[str, str] = {}
        if m.group("labels"):
            body = m.group("labels").strip().rstrip(",")
            consumed = 0
            for lm in _LABEL_RE.finditer(body):
                labels[lm.group("key")] = lm.group("val")
                consumed = lm.end()
            leftover = body[consumed:].strip().strip(",").strip()
            if leftover:
                raise ReproError(
                    f"line {lineno}: malformed labels {body!r}"
                )
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ReproError(
                f"line {lineno}: non-numeric value {m.group('value')!r}"
            ) from None
        if not seen_families or seen_families[-1] != base:
            if base in seen_families:
                raise ReproError(
                    f"line {lineno}: samples of {base} are not contiguous"
                )
            seen_families.append(base)
        samples.append(
            Sample(
                name=name,
                value=value,
                labels=labels,
                help=helps.get(base, ""),
                type=types.get(base, "untyped"),
            )
        )
    return samples


# ----------------------------------------------------------------------
# sample builders

def _counter(name: str, value: float, help_: str, **labels: str) -> Sample:
    return Sample(name, float(value), labels, help=help_, type="counter")


def _gauge(name: str, value: float, help_: str, **labels: str) -> Sample:
    return Sample(name, float(value), labels, help=help_, type="gauge")


def telemetry_samples(
    tele: "SchedTelemetry",
    *,
    cache_stats: Mapping[str, Any] | None = None,
    run_id: str | None = None,
    command: str = "",
    jobs_total: int | None = None,
    flight_dumps: int | None = None,
) -> list[Sample]:
    """The standard sample set of one scheduler run."""
    run = run_id or tele.journal_run_id or ""
    out = [
        _gauge(
            "repro_run_info", 1.0,
            "Run identity; value is always 1.",
            run_id=run, command=command, mode=tele.mode,
        ),
        _gauge(
            "repro_run_degraded", 1.0 if tele.degraded else 0.0,
            "1 when the run finished only through a degradation fallback.",
        ),
        _counter(
            "repro_jobs_completed_total", tele.completed,
            "Jobs finished and journaled this run.",
        ),
        _counter(
            "repro_resume_skips_total", tele.resume_skips,
            "Jobs replayed from the run journal instead of executed.",
        ),
        _counter(
            "repro_retries_total", tele.retries,
            "Failed job attempts that were retried.",
        ),
        _counter(
            "repro_timeouts_total", tele.timeouts,
            "Jobs killed past their wall-clock budget.",
        ),
        _counter(
            "repro_worker_crashes_total", tele.crashes,
            "Worker processes that died without delivering a result.",
        ),
        _counter(
            "repro_payload_faults_total", tele.payload_faults,
            "Result payloads that arrived truncated or corrupted.",
        ),
        _counter(
            "repro_job_errors_total", tele.job_errors,
            "Per-attempt job errors outside the crash/timeout classes.",
        ),
        _counter(
            "repro_quarantined_total", len(tele.quarantined),
            "Jobs abandoned after retry exhaustion.",
        ),
        _counter(
            "repro_fallbacks_total", len(tele.fallbacks),
            "Degradation-ladder steps taken (serial/reference/fleet).",
        ),
    ]
    if jobs_total is not None:
        out.append(
            _gauge(
                "repro_jobs_total", jobs_total,
                "Jobs in this run's manifest.",
            )
        )
        out.append(
            _gauge(
                "repro_jobs_remaining",
                max(0, jobs_total - tele.completed - tele.resume_skips),
                "Manifest jobs not yet resolved.",
            )
        )
    if tele.fleet_workers:
        out.extend([
            _gauge(
                "repro_fleet_workers", tele.fleet_workers,
                "Worker processes cooperating on this fleet run.",
            ),
            _counter(
                "repro_leases_acquired_total", tele.leases_acquired,
                "Fresh job leases claimed.",
            ),
            _counter(
                "repro_leases_stolen_total", tele.leases_stolen,
                "Stale or corrupt leases stolen from peers.",
            ),
            _counter(
                "repro_heartbeats_total", tele.heartbeats,
                "Lease heartbeats written.",
            ),
            _counter(
                "repro_duplicate_completions_total",
                tele.duplicate_completions,
                "Jobs completed by more than one worker.",
            ),
        ])
    if cache_stats:
        for key in ("hits", "misses", "stores", "quarantines"):
            out.append(
                _counter(
                    f"repro_cache_{key}_total",
                    float(cache_stats.get(key, 0)),
                    f"Result-cache {key}.",
                )
            )
    if flight_dumps is not None:
        out.append(
            _counter(
                "repro_flight_dumps_total", flight_dumps,
                "Flight-recorder dumps written for this run.",
            )
        )
    return out


def fleet_samples(run_dir: Path, *, run_id: str, command: str = "") -> list[Sample]:
    """Live samples scanned read-only from a fleet coordination dir.

    The ``--metrics-port`` scrape surface of an in-flight fleet run:
    built entirely from the shared directory (manifest, journals,
    leases, quarantine, flight dumps), so serving a scrape never
    touches the run's own state.
    """
    from repro.obs.top import fleet_status

    status = fleet_status(run_dir)
    out = [
        _gauge(
            "repro_run_info", 1.0,
            "Run identity; value is always 1.",
            run_id=run_id, command=command or status.get("command", ""),
            mode="fleet",
        ),
        _gauge(
            "repro_jobs_total", status["jobs_total"],
            "Jobs in this run's manifest.",
        ),
        _counter(
            "repro_jobs_completed_total", status["jobs_completed"],
            "Jobs finished and journaled this run.",
        ),
        _gauge(
            "repro_jobs_remaining", status["jobs_remaining"],
            "Manifest jobs not yet resolved.",
        ),
        _counter(
            "repro_quarantined_total", status["quarantined"],
            "Jobs abandoned after retry exhaustion.",
        ),
        _gauge(
            "repro_fleet_workers", len(status["workers"]),
            "Worker processes observed on this fleet run.",
        ),
        _counter(
            "repro_leases_acquired_total", status["leases_acquired"],
            "Fresh job leases claimed.",
        ),
        _counter(
            "repro_leases_stolen_total", status["leases_stolen"],
            "Stale or corrupt leases stolen from peers.",
        ),
        _counter(
            "repro_heartbeats_total", status["heartbeats"],
            "Lease heartbeats written.",
        ),
        _counter(
            "repro_flight_dumps_total", status["flight_dumps"],
            "Flight-recorder dumps written for this run.",
        ),
    ]
    for w in status["workers"]:
        out.append(
            _counter(
                "repro_worker_jobs_completed_total", w["completed"],
                "Jobs completed per worker.",
                worker=w["worker"],
            )
        )
    return out


def write_metrics_text(path: str | Path, samples: Iterable[Sample]) -> Path:
    """Write an exposition document; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(samples))
    return path
