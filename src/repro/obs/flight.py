"""Flight recorder: a bounded ring of recent activity, dumped on death.

Modeled on an aircraft flight data recorder: every worker keeps the
last ``capacity`` :class:`~repro.prof.activity.ActivityRecord` s it saw
in a fixed-size ring (a deque — O(1) per record, bounded memory no
matter how long the run), and when the worker crashes, a job is
quarantined, or the process exits nonzero, the ring is **dumped
atomically** (tmp + fsync + rename) as a ``repro-flight/1`` JSON
document.  The dump answers the question post-mortems always start
with: *what was this worker doing in its last moments?*

Dump locations
--------------

* fleet workers → ``<run-id>.fleet/flightrec/<worker>-<reason>.json``
  (removed with the run dir by ``repro journal gc``);
* the supervised pool → ``<journal-dir>/flightrec/<run-id>/`` next to
  the run journal (swept by ``repro journal gc`` alongside it).

Dumps are listed by ``repro journal show <run-id>`` and counted in the
metrics exposition (``repro_flight_dumps_total``).

Document format (``repro-flight/1``)::

    {
      "format": "repro-flight/1",
      "worker": "w0",
      "reason": "quarantine",
      "run_id": "…",
      "capacity": 64,
      "dropped": 123,          // records that aged out of the ring
      "records": [ <NDJSON projection of each record> ]
    }
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Any

from repro.prof.activity import ActivityRecord
from repro.prof.ndjson import record_to_json

__all__ = [
    "FlightRecorder",
    "FLIGHT_FORMAT",
    "DEFAULT_CAPACITY",
    "read_flight_dump",
    "list_flight_dumps",
]

FLIGHT_FORMAT = "repro-flight/1"

#: ring size — enough to cover a job's full activity at the default
#: sweep sizes while keeping a dump comfortably under a few hundred KB
DEFAULT_CAPACITY = 64


class FlightRecorder:
    """A hub subscriber holding the last ``capacity`` records.

    Usable directly as a hub callback::

        rec = FlightRecorder(worker="w0", run_id=run_id)
        hub.subscribe(rec)                  # all kinds
        ...
        rec.dump(dump_dir, reason="crash")  # on the way down
    """

    def __init__(
        self,
        *,
        worker: str = "",
        run_id: str | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.worker = worker
        self.run_id = run_id
        self.capacity = capacity
        self.dropped = 0
        self._ring: deque[ActivityRecord] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    def __call__(self, rec: ActivityRecord) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(rec)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def records(self) -> list[ActivityRecord]:
        return list(self._ring)

    # ------------------------------------------------------------------
    def as_document(self, reason: str) -> dict[str, Any]:
        return {
            "format": FLIGHT_FORMAT,
            "worker": self.worker,
            "reason": reason,
            "run_id": self.run_id,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "records": [record_to_json(r) for r in self._ring],
        }

    def dump(self, dump_dir: str | Path, *, reason: str) -> Path:
        """Atomically write the ring as ``<worker>-<reason>.json``.

        tmp + fsync + rename, so a dump racing the process's death is
        either complete or absent — never a torn JSON document.
        """
        dump_dir = Path(dump_dir)
        dump_dir.mkdir(parents=True, exist_ok=True)
        stem = f"{self.worker or 'worker'}-{reason}"
        final = dump_dir / f"{stem}.json"
        tmp = dump_dir / f".{stem}.tmp"
        payload = json.dumps(self.as_document(reason), sort_keys=False)
        with tmp.open("w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        return final


# ----------------------------------------------------------------------
def read_flight_dump(path: str | Path) -> dict[str, Any]:
    """Load and validate one dump; raises ``ValueError`` when malformed."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("format") != FLIGHT_FORMAT:
        raise ValueError(
            f"{path}: not a {FLIGHT_FORMAT} document "
            f"(format={doc.get('format') if isinstance(doc, dict) else type(doc).__name__!r})"
        )
    return doc


def list_flight_dumps(dump_dir: str | Path) -> list[Path]:
    """The dumps under one directory, sorted by name (tmps excluded)."""
    dump_dir = Path(dump_dir)
    if not dump_dir.is_dir():
        return []
    return sorted(
        p for p in dump_dir.iterdir()
        if p.suffix == ".json" and not p.name.startswith(".")
    )
