"""Read-only live view over a running fleet (``repro top``).

``fleet_status`` scans the shared coordination directory — manifest,
per-worker journals, event logs, lease files, quarantine markers,
flight-recorder dumps — and reduces it to one status snapshot: overall
progress + ETA, per-worker health and counters, and the leases
currently held.  Every input is read with the same torn-tolerant
parsers the merge uses, and **nothing is ever written**: watching a
run cannot perturb it, so a monitored fleet's merged result stays
byte-identical to an unmonitored one (asserted by the CLI tests).

Worker health is judged from event recency against the lease TTL:

==========  ========================================================
``done``    the worker logged ``worker-exit``
``live``    last event younger than the TTL
``stale``   no event for longer than the TTL — crashed or wedged
            (its leases are what peers will steal)
==========  ========================================================
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.common.errors import ReproError

__all__ = ["fleet_status", "render_fleet_status"]

#: event names folded into per-worker counters
_COUNTED = {
    "lease-acquire": "leases",
    "lease-steal": "stolen",
    "heartbeat": "heartbeats",
    "retry": "retries",
    "job-error": "errors",
    "quarantine": "quarantined",
}


def _worker_row(worker: str) -> dict[str, Any]:
    return {
        "worker": worker,
        "completed": 0,
        "leases": 0,
        "stolen": 0,
        "heartbeats": 0,
        "retries": 0,
        "errors": 0,
        "quarantined": 0,
        "last_seen": None,       #: wall-clock of the newest event
        "state": "live",
    }


def fleet_status(
    run_dir: str | Path,
    *,
    ttl_s: float = 5.0,
    now: float | None = None,
) -> dict[str, Any]:
    """One read-only snapshot of a fleet run's shared directory."""
    from repro.resilience.journal import RunJournal
    from repro.resilience.lease import LeaseDir

    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise ReproError(f"no fleet run directory at {run_dir}")
    now = time.time() if now is None else now
    try:
        manifest = json.loads((run_dir / "manifest.json").read_text())
    except (OSError, json.JSONDecodeError):
        manifest = {}
    fingerprints: list[str] = manifest.get("jobs") or []

    workers: dict[str, dict[str, Any]] = {}
    completed_fps: set[str] = set()
    jdir = run_dir / "journals"
    if jdir.is_dir():
        for path in sorted(jdir.glob("*.ndjson")):
            _, done = RunJournal._load(path)
            row = workers.setdefault(path.stem, _worker_row(path.stem))
            row["completed"] = len(done)
            completed_fps.update(done)

    first_event_t: float | None = None
    edir = run_dir / "events"
    if edir.is_dir():
        for path in sorted(edir.glob("*.ndjson")):
            row = workers.setdefault(path.stem, _worker_row(path.stem))
            try:
                text = path.read_text()
            except OSError:
                continue
            for raw in text.splitlines():
                try:
                    ev = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                name = ev.get("event", "")
                if name in _COUNTED:
                    row[_COUNTED[name]] += 1
                t = ev.get("t")
                if isinstance(t, (int, float)):
                    row["last_seen"] = (
                        t if row["last_seen"] is None
                        else max(row["last_seen"], t)
                    )
                    first_event_t = (
                        t if first_event_t is None else min(first_event_t, t)
                    )
                if name == "worker-exit":
                    row["state"] = "done"
    for row in workers.values():
        if row["state"] == "done":
            continue
        seen = row["last_seen"]
        row["state"] = (
            "stale" if seen is not None and now - seen > ttl_s else "live"
        )

    leases: list[dict[str, Any]] = []
    ldir = run_dir / "leases"
    if ldir.is_dir():
        lease_dir = LeaseDir(ldir, ttl_s=ttl_s, now=lambda: now)
        for path in sorted(ldir.glob("*.lease")):
            job = path.name[: -len(".lease")]
            try:
                lease = lease_dir.read(job)
            except ValueError:
                leases.append({
                    "job": job[:12], "owner": "<corrupt>", "epoch": None,
                    "age_s": None, "stale": True,
                })
                continue
            if lease is None:
                continue
            try:
                ordinal = fingerprints.index(job)
            except ValueError:
                ordinal = None
            leases.append({
                "job": job[:12],
                "ordinal": ordinal,
                "owner": lease.owner,
                "epoch": lease.epoch,
                "age_s": max(0.0, now - lease.heartbeat_at),
                "stale": lease_dir.is_stale(lease),
            })

    quarantined = len(list((run_dir / "quarantine").glob("*.json"))) \
        if (run_dir / "quarantine").is_dir() else 0
    flight_dumps = len([
        p for p in (run_dir / "flightrec").glob("*.json")
        if not p.name.startswith(".")
    ]) if (run_dir / "flightrec").is_dir() else 0

    jobs_total = len(fingerprints)
    jobs_completed = len(
        completed_fps & set(fingerprints) if fingerprints else completed_fps
    )
    remaining = max(0, jobs_total - jobs_completed - quarantined)
    eta_s: float | None = None
    if remaining == 0 and jobs_total:
        eta_s = 0.0
    elif jobs_completed and first_event_t is not None:
        elapsed = max(1e-6, now - first_event_t)
        rate = jobs_completed / elapsed
        if rate > 0:
            eta_s = remaining / rate
    return {
        "run_id": manifest.get(
            "run_id", run_dir.name.removesuffix(".fleet")
        ),
        "command": manifest.get("command", ""),
        "jobs_total": jobs_total,
        "jobs_completed": jobs_completed,
        "jobs_remaining": remaining,
        "quarantined": quarantined,
        "flight_dumps": flight_dumps,
        "eta_s": eta_s,
        "leases_acquired": sum(w["leases"] for w in workers.values()),
        "leases_stolen": sum(w["stolen"] for w in workers.values()),
        "heartbeats": sum(w["heartbeats"] for w in workers.values()),
        "active_leases": leases,
        "workers": [workers[w] for w in sorted(workers)],
    }


# ----------------------------------------------------------------------
def _fmt_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return "?"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.1f}s"


def render_fleet_status(status: dict[str, Any]) -> str:
    """The ``repro top`` screen: header, worker table, lease table."""
    lines: list[str] = []
    total = status["jobs_total"]
    done = status["jobs_completed"]
    pct = (100.0 * done / total) if total else 0.0
    lines.append(
        f"fleet {status['run_id']}"
        + (f"  ({status['command']})" if status["command"] else "")
    )
    bar_w = 30
    filled = int(bar_w * pct / 100.0)
    lines.append(
        f"  [{'#' * filled}{'.' * (bar_w - filled)}] "
        f"{done}/{total} jobs ({pct:.0f}%)  eta {_fmt_eta(status['eta_s'])}"
    )
    lines.append(
        f"  leases: {status['leases_acquired']} acquired, "
        f"{status['leases_stolen']} stolen, "
        f"{status['heartbeats']} heartbeats"
        + (f"  quarantined: {status['quarantined']}"
           if status["quarantined"] else "")
        + (f"  flight-dumps: {status['flight_dumps']}"
           if status["flight_dumps"] else "")
    )
    lines.append("")
    lines.append(
        f"  {'WORKER':<24} {'STATE':<6} {'DONE':>5} {'LEASE':>6} "
        f"{'STEAL':>6} {'HB':>6} {'RETRY':>6} {'ERR':>4}  LAST SEEN"
    )
    for w in status["workers"]:
        seen = w["last_seen"]
        ago = f"{max(0.0, time.time() - seen):.1f}s ago" if seen else "-"
        lines.append(
            f"  {w['worker']:<24} {w['state']:<6} {w['completed']:>5} "
            f"{w['leases']:>6} {w['stolen']:>6} {w['heartbeats']:>6} "
            f"{w['retries']:>6} {w['errors']:>4}  {ago}"
        )
    if status["active_leases"]:
        lines.append("")
        lines.append(f"  {'LEASE':<14} {'JOB':>4} {'OWNER':<24} "
                     f"{'EPOCH':>5} {'AGE':>7}  STATE")
        for l in status["active_leases"]:
            age = f"{l['age_s']:.1f}s" if l["age_s"] is not None else "-"
            ordinal = l.get("ordinal")
            lines.append(
                f"  {l['job']:<14} {ordinal if ordinal is not None else '?':>4} "
                f"{l['owner']:<24} {l['epoch'] if l['epoch'] is not None else '?':>5} "
                f"{age:>7}  {'STALE' if l['stale'] else 'held'}"
            )
    return "\n".join(lines)
