"""Stdlib HTTP endpoint serving the metrics exposition during a run.

``MetricsServer`` wraps :class:`http.server.ThreadingHTTPServer` on a
daemon thread: ``--metrics-port`` starts it before the sweep and stops
it after, so a scraper (Prometheus, ``curl``, the CI ``obs-smoke``
job) can hit ``GET /metrics`` while jobs are still in flight.  The
handler calls a *snapshot function* per request — for fleet runs
that's a read-only scan of the coordination directory
(:func:`repro.obs.metrics.fleet_samples`), so serving a scrape never
mutates the run and cannot perturb its byte-identical merge.

Routes::

    GET /metrics   text exposition (version 0.0.4)
    GET /healthz   204 while the run is alive

Port 0 binds an ephemeral port; read the resolved one from ``.port``
(printed by the CLI as ``metrics: serving on :<port>``).  Serving is
built on the hardened stdlib base of :mod:`repro.common.httpd` —
``SO_REUSEADDR`` (restarts never hit ``EADDRINUSE``), bounded request
lines and headers, per-connection read timeouts — shared with the
full ``repro serve`` daemon of :mod:`repro.serve`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.common.httpd import HardenedHandler, HardenedHTTPServer
from repro.obs.metrics import Sample, prometheus_text

__all__ = ["MetricsServer"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(HardenedHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            try:
                body = prometheus_text(self.server.snapshot()).encode()
            except Exception as exc:  # noqa: BLE001 - never kill the run
                self.send_error(500, explain=f"snapshot failed: {exc}")
                return
            self.send_response(200)
            self.send_header("Content-Type", _CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            self.send_response(204)
            self.end_headers()
        else:
            self.send_error(404)


class _Server(HardenedHTTPServer):
    snapshot: Callable[[], Iterable[Sample]]


class MetricsServer:
    """Serve ``snapshot()`` as ``GET /metrics`` on a daemon thread.

    Context-manager friendly::

        with MetricsServer(lambda: samples, port=0) as srv:
            print(srv.port)
            ... run the sweep ...
    """

    def __init__(
        self,
        snapshot: Callable[[], Iterable[Sample]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _Server((host, port), _Handler)
        self._server.snapshot = snapshot
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5)
        self._server.server_close()
        self._thread = None

    def close(self) -> None:
        """Close the socket even if ``start`` was never called."""
        if self._thread is not None:
            self.stop()
        else:
            self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
