"""Cross-process trace stitching: worker activity → one Chrome trace.

Two halves:

* **capture** — :class:`ActivitySink`, the per-worker subscriber fleet
  workers attach to their local :class:`~repro.prof.activity.ActivityHub`.
  It buffers the records of the job in flight and publishes them to the
  worker's NDJSON file under ``<run-id>.fleet/activity/`` only when the
  job *succeeds* — failed attempts never land, so the published
  activity of a job is a deterministic function of its spec alone, no
  matter how many retries, steals, or duplicate executions happened on
  the way.  (The flight recorder, not the sink, is where failed-attempt
  activity goes to be seen.)

* **stitch** — :func:`fleet_chrome_trace` reads the *finished* run
  directory (manifest + journals + activity) and lays every worker out
  as its own process lane in one Trace Event Format document: per-job
  wrapper spans carrying span identity, the device records inside
  them, flow arrows linking the run's root span to every job span.
  The winner of each job is the same first-write-wins choice the
  payload merge makes, and every timestamp is derived from the
  simulated device clock plus fixed padding — so re-stitching the same
  run directory is **byte-identical**, which is what lets the trace
  property tests assert equality across ``--resume`` and repeated
  merges.

:func:`journal_chrome_trace` is the pool-run analog: it has no device
activity to stitch (pool workers report payloads, not records), so it
renders one synthetic span per journaled job from the journal's stable
fields only (benchmark/kind/backend/ordinal + span identity —
*not* attempt counts), making an interrupted-then-resumed run's trace
byte-identical to an uninterrupted one under the same run id.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.common.errors import ReproError
from repro.obs.trace import TraceContext
from repro.prof.activity import ActivityRecord
from repro.prof.ndjson import record_to_json

__all__ = [
    "ActivitySink",
    "read_worker_activity",
    "read_journal_entries",
    "fleet_chrome_trace",
    "write_fleet_trace",
    "journal_chrome_trace",
    "write_journal_trace",
]

#: pid of the run lane (root span + flow sources)
RUN_PID = 1
#: worker lanes get ``WORKER_PID_BASE + index`` in sorted-worker order
WORKER_PID_BASE = 10

_S_TO_US = 1e6
#: padding between consecutive job spans in one worker lane
_JOB_GAP_US = 50.0
#: rendered width of a job that produced no timed records
_EMPTY_JOB_US = 10.0
#: spacing of driver-phase instants inside a job span
_INSTANT_TICK_US = 1.0


# ----------------------------------------------------------------------
# capture

class ActivitySink:
    """Publish the activity of *successful* jobs to a worker NDJSON file.

    Hub callback + commit protocol::

        sink = ActivitySink(path, worker="w0")
        hub.subscribe(sink)
        sink.begin(ordinal)      # before each attempt: reset the buffer
        ...                      # records buffer during execution
        sink.commit()            # after journaling the success

    Lines are the standard NDJSON record projection prefixed with
    ``worker`` and ``job`` keys.  The publish is append + flush +
    fsync, matching the journal's crash-durability.
    """

    def __init__(self, path: str | Path, *, worker: str) -> None:
        self.worker = worker
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = path.open("a")
        self._job: int | None = None
        self._buf: list[ActivityRecord] = []

    # -- hub callback --------------------------------------------------
    def __call__(self, rec: ActivityRecord) -> None:
        if self._job is not None:
            self._buf.append(rec)

    # -- commit protocol -----------------------------------------------
    def begin(self, ordinal: int) -> None:
        """Start buffering for job ``ordinal`` (drops any prior buffer)."""
        self._job = ordinal
        self._buf = []

    def commit(self) -> None:
        """Publish the buffered records; clears the buffer."""
        if self._job is None:
            return
        for rec in self._buf:
            line = {"worker": self.worker, "job": self._job}
            line.update(record_to_json(rec))
            self._fh.write(json.dumps(line, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._job = None
        self._buf = []

    def abort(self) -> None:
        """Drop the buffer without publishing (failed attempt)."""
        self._job = None
        self._buf = []

    def close(self) -> None:
        self._fh.close()


def read_worker_activity(run_dir: str | Path) -> dict[str, list[dict[str, Any]]]:
    """worker -> its published activity lines, in append order.

    Tolerates a torn tail (a worker killed mid-publish) the same way
    the journal loader does: unparsable lines are skipped.
    """
    out: dict[str, list[dict[str, Any]]] = {}
    adir = Path(run_dir) / "activity"
    if not adir.is_dir():
        return out
    for path in sorted(adir.glob("*.ndjson")):
        lines: list[dict[str, Any]] = []
        try:
            text = path.read_text()
        except OSError:
            continue
        for raw in text.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError:
                continue
        out[path.stem] = lines
    return out


# ----------------------------------------------------------------------
# stitch helpers

def _meta(name: str, pid: int, tid: int, label: str) -> dict[str, Any]:
    return {
        "name": name, "ph": "M", "ts": 0, "pid": pid, "tid": tid,
        "args": {"name": label},
    }


def _trace_args(obj: dict[str, Any], ctx: TraceContext) -> dict[str, Any]:
    """Span identity for one stitched event: the record's own ids when
    it was stamped, the job span's otherwise."""
    if obj.get("trace_id"):
        out = {"trace_id": obj["trace_id"], "span_id": obj["span_id"]}
        if obj.get("parent_span_id"):
            out["parent_span_id"] = obj["parent_span_id"]
        return out
    out = {"trace_id": ctx.trace_id, "span_id": ctx.span_id}
    if ctx.parent_span_id:
        out["parent_span_id"] = ctx.parent_span_id
    return out


def _load_manifest(run_dir: Path) -> dict[str, Any]:
    path = run_dir / "manifest.json"
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"cannot stitch fleet run: manifest {path} unreadable: {exc}"
        ) from None
    if not isinstance(doc.get("jobs"), list):
        raise ReproError(f"fleet manifest {path} has no job list")
    return doc


def _scan_winners(run_dir: Path) -> dict[str, str]:
    """fingerprint -> winning worker, the merge's first-write-wins pick."""
    from repro.resilience.journal import RunJournal

    winners: dict[str, str] = {}
    for path in sorted((run_dir / "journals").glob("*.ndjson")):
        _, completed = RunJournal._load(path)
        for fp in completed:
            winners.setdefault(fp, path.stem)
    return winners


# ----------------------------------------------------------------------
# fleet stitch

def fleet_chrome_trace(run_dir: str | Path) -> dict[str, Any]:
    """One Chrome trace for a finished fleet run, one lane per worker.

    Deterministic in the run directory's contents: sorted workers, jobs
    in manifest (ordinal) order, device-clock timestamps offset by
    fixed padding, span ids derived from the run id.  Jobs whose winner
    published no activity (pre-observability runs, torn activity
    files) still get their wrapper span, so the span tree is complete
    whenever the payload merge would succeed.
    """
    run_dir = Path(run_dir)
    manifest = _load_manifest(run_dir)
    run_id = manifest.get("run_id", run_dir.name.removesuffix(".fleet"))
    fingerprints: list[str] = manifest["jobs"]
    spec_meta: list[dict[str, Any]] = manifest.get("specs") or [
        {} for _ in fingerprints
    ]
    winners = _scan_winners(run_dir)
    missing = [fp for fp in fingerprints if fp not in winners]
    if missing:
        raise ReproError(
            f"cannot stitch fleet run {run_id!r}: "
            f"{len(missing)}/{len(fingerprints)} job(s) never journaled"
        )
    activity = read_worker_activity(run_dir)
    by_worker_job: dict[tuple[str, int], list[dict[str, Any]]] = {}
    for worker, lines in activity.items():
        for obj in lines:
            try:
                ordinal = int(obj.get("job"))
            except (TypeError, ValueError):
                continue
            by_worker_job.setdefault((worker, ordinal), []).append(obj)

    root = TraceContext.root(run_id)
    workers = sorted(set(winners.values()) | set(activity))
    pid_of = {w: WORKER_PID_BASE + i for i, w in enumerate(workers)}

    events: list[dict[str, Any]] = [
        _meta("process_name", RUN_PID, 0, "run"),
        _meta("thread_name", RUN_PID, 1, "run"),
    ]
    #: per-worker display state: jobs lane is tid 1, tracks come after
    tids: dict[str, dict[str, int]] = {}
    for w in workers:
        events.append(_meta("process_name", pid_of[w], 0, f"worker {w}"))
        events.append(_meta("thread_name", pid_of[w], 1, "jobs"))
        tids[w] = {}

    def track_tid(worker: str, track: str) -> int:
        lanes = tids[worker]
        if track not in lanes:
            lanes[track] = len(lanes) + 2
            events.append(
                _meta("thread_name", pid_of[worker], lanes[track], track)
            )
        return lanes[track]

    lane_clock = {w: 0.0 for w in workers}
    for ordinal, fp in enumerate(fingerprints):
        worker = winners[fp]
        pid = pid_of[worker]
        ctx = root.job(ordinal)
        recs = by_worker_job.get((worker, ordinal), [])
        timed = [
            r for r in recs
            if r.get("start_s") is not None and r.get("end_s") is not None
            and r.get("kind") != "counter"
        ]
        untimed = [r for r in recs if r not in timed]
        base = lane_clock[worker]
        if timed:
            t0 = min(r["start_s"] for r in timed)
            span_us = (max(r["end_s"] for r in timed) - t0) * _S_TO_US
        else:
            t0 = 0.0
            span_us = 0.0
        span_us = max(
            span_us, _EMPTY_JOB_US, len(untimed) * _INSTANT_TICK_US
        )
        benchmark = (
            spec_meta[ordinal].get("benchmark", "?")
            if ordinal < len(spec_meta) else "?"
        )
        events.append({
            "name": f"job {ordinal}: {benchmark}",
            "cat": "span",
            "ph": "X",
            "ts": base,
            "dur": span_us,
            "pid": pid,
            "tid": 1,
            "args": {
                "job": ordinal,
                "benchmark": benchmark,
                "fingerprint": fp[:12],
                "worker": worker,
                **_trace_args({}, ctx),
            },
        })
        # flow arrow: root span -> this job span
        events.append({
            "name": "span", "cat": "trace", "ph": "s",
            "id": ordinal + 1, "ts": base, "pid": RUN_PID, "tid": 1,
        })
        events.append({
            "name": "span", "cat": "trace", "ph": "f", "bp": "e",
            "id": ordinal + 1, "ts": base, "pid": pid, "tid": 1,
        })
        for rec in timed:
            events.append({
                "name": rec.get("name", "?"),
                "cat": rec.get("kind", "kernel"),
                "ph": "X",
                "ts": base + (rec["start_s"] - t0) * _S_TO_US,
                "dur": max(0.0, (rec["end_s"] - rec["start_s"]) * _S_TO_US),
                "pid": pid,
                "tid": track_tid(worker, rec.get("track") or "device"),
                "args": {**(rec.get("args") or {}), **_trace_args(rec, ctx)},
            })
        for i, rec in enumerate(untimed):
            events.append({
                "name": rec.get("name", "?"),
                "cat": rec.get("kind", "launch"),
                "ph": "i",
                "s": "t",
                "ts": base + i * _INSTANT_TICK_US,
                "pid": pid,
                "tid": track_tid(worker, "driver"),
                "args": {**(rec.get("args") or {}), **_trace_args(rec, ctx)},
            })
        lane_clock[worker] = base + span_us + _JOB_GAP_US
    total_us = max(lane_clock.values(), default=_JOB_GAP_US)
    events.append({
        "name": f"run {run_id}",
        "cat": "span",
        "ph": "X",
        "ts": 0.0,
        "dur": total_us,
        "pid": RUN_PID,
        "tid": 1,
        "args": {
            "run_id": run_id,
            "command": manifest.get("command", ""),
            "jobs": len(fingerprints),
            "workers": len(workers),
            **_trace_args({}, root),
        },
    })
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "run_id": run_id},
    }


def write_fleet_trace(run_dir: str | Path, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fleet_chrome_trace(run_dir)))
    return path


# ----------------------------------------------------------------------
# pool-journal trace

#: synthetic geometry of pool-journal spans (no device clock to use)
_JOURNAL_SLOT_US = 1000.0
_JOURNAL_SPAN_US = 800.0


def read_journal_entries(
    journal_path: str | Path,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """``(header, entries)`` of one journal file, keeping ``meta``.

    Unlike :meth:`RunJournal._load` — which keeps only the payloads the
    scheduler replays — this preserves each entry's full record (``job``
    fingerprint, ``payload``, ``meta`` with benchmark/ordinal/span
    identity), which is what ``repro journal show`` and the trace
    stitcher render.  Duplicate fingerprints keep the first record (the
    merge's first-write-wins pick); torn lines are skipped.
    """
    journal_path = Path(journal_path)
    if not journal_path.exists():
        raise ReproError(f"no journal at {journal_path}")
    header: dict[str, Any] = {}
    entries: list[dict[str, Any]] = []
    seen: set[str] = set()
    with journal_path.open() as fh:
        for i, raw in enumerate(fh):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if (i == 0 or "schema" in obj) and not header:
                header = obj
            elif "job" in obj and obj["job"] not in seen:
                seen.add(obj["job"])
                entries.append(obj)
    return header, entries


def journal_chrome_trace(journal_path: str | Path) -> dict[str, Any]:
    """A synthetic span tree from one pool run's journal.

    Spans are built from *stable* journal fields only — benchmark,
    kind, backend, job ordinal, span identity — and jobs are laid out
    by ordinal, so the trace of ``run → interrupt → --resume`` is
    byte-identical to the trace of the same run finishing in one go.
    """
    journal_path = Path(journal_path)
    header, entries = read_journal_entries(journal_path)
    run_id = header.get("run_id", journal_path.stem)
    root = TraceContext.root(run_id)

    def ordinal_of(idx: int, entry: dict[str, Any]) -> int:
        meta = entry.get("meta") or {}
        return meta["job"] if isinstance(meta.get("job"), int) else idx

    ordered = sorted(
        (
            (ordinal_of(i, e), e["job"], e.get("meta") or {})
            for i, e in enumerate(entries)
        ),
        key=lambda t: (t[0], t[1]),
    )
    events: list[dict[str, Any]] = [
        _meta("process_name", RUN_PID, 0, "run"),
        _meta("thread_name", RUN_PID, 1, "run"),
        _meta("thread_name", RUN_PID, 2, "jobs"),
    ]
    for ordinal, fp, meta in ordered:
        ctx = TraceContext.from_dict(meta) or root.job(ordinal)
        label = meta.get("benchmark", "?")
        if meta.get("kind"):
            label = f"{label} [{meta['kind']}]"
        args: dict[str, Any] = {"job": ordinal, "fingerprint": fp[:12]}
        for key in ("benchmark", "kind", "backend"):
            if meta.get(key):
                args[key] = meta[key]
        args.update(_trace_args({}, ctx))
        events.append({
            "name": label,
            "cat": "span",
            "ph": "X",
            "ts": ordinal * _JOURNAL_SLOT_US,
            "dur": _JOURNAL_SPAN_US,
            "pid": RUN_PID,
            "tid": 2,
            "args": args,
        })
        events.append({
            "name": "span", "cat": "trace", "ph": "s",
            "id": ordinal + 1, "ts": ordinal * _JOURNAL_SLOT_US,
            "pid": RUN_PID, "tid": 1,
        })
        events.append({
            "name": "span", "cat": "trace", "ph": "f", "bp": "e",
            "id": ordinal + 1, "ts": ordinal * _JOURNAL_SLOT_US,
            "pid": RUN_PID, "tid": 2,
        })
    total = (
        (max(o for o, _, _ in ordered) + 1) * _JOURNAL_SLOT_US
        if ordered else _JOURNAL_SLOT_US
    )
    events.append({
        "name": f"run {run_id}",
        "cat": "span",
        "ph": "X",
        "ts": 0.0,
        "dur": total,
        "pid": RUN_PID,
        "tid": 1,
        "args": {
            "run_id": run_id,
            "command": header.get("command", ""),
            "jobs": len(ordered),
            **_trace_args({}, root),
        },
    })
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "run_id": run_id},
    }


def write_journal_trace(journal_path: str | Path, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(journal_chrome_trace(journal_path)))
    return path
