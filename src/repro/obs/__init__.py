"""``repro.obs`` — the cross-process observability plane.

Four pieces, built on the activity hub of :mod:`repro.prof` and the
run journals of :mod:`repro.resilience`:

* **distributed tracing** (:mod:`~repro.obs.trace`,
  :mod:`~repro.obs.stitch`) — deterministic
  :class:`~repro.obs.trace.TraceContext` ids minted per run, stamped
  onto every activity record, and stitched across fleet workers into
  one Chrome trace with per-worker lanes;
* **live monitoring** (:mod:`~repro.obs.top`) — ``repro top``, a
  read-only view over a running fleet's shared directory;
* **metrics exposition** (:mod:`~repro.obs.metrics`,
  :mod:`~repro.obs.server`) — Prometheus text-format samples over the
  scheduler telemetry, written as a ``--metrics`` sidecar or served
  live on ``--metrics-port``;
* **flight recorder** (:mod:`~repro.obs.flight`) — a bounded ring of
  recent activity per worker, dumped atomically on the way down.

See ``docs/observability.md`` for the trace model, the metric name
registry, and the flight-recorder dump format.
"""

from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FLIGHT_FORMAT,
    FlightRecorder,
    list_flight_dumps,
    read_flight_dump,
)
from repro.obs.metrics import (
    Sample,
    fleet_samples,
    parse_prometheus_text,
    prometheus_text,
    telemetry_samples,
    write_metrics_text,
)
from repro.obs.server import MetricsServer
from repro.obs.stitch import (
    ActivitySink,
    fleet_chrome_trace,
    journal_chrome_trace,
    read_journal_entries,
    read_worker_activity,
    write_fleet_trace,
    write_journal_trace,
)
from repro.obs.top import fleet_status, render_fleet_status
from repro.obs.trace import (
    ROOT_SPAN_KEY,
    TraceContext,
    job_span_key,
    trace_id_for_run,
)

__all__ = [
    # trace
    "TraceContext",
    "trace_id_for_run",
    "job_span_key",
    "ROOT_SPAN_KEY",
    # stitch
    "ActivitySink",
    "read_worker_activity",
    "read_journal_entries",
    "fleet_chrome_trace",
    "write_fleet_trace",
    "journal_chrome_trace",
    "write_journal_trace",
    # metrics
    "Sample",
    "prometheus_text",
    "parse_prometheus_text",
    "telemetry_samples",
    "fleet_samples",
    "write_metrics_text",
    "MetricsServer",
    # flight recorder
    "FlightRecorder",
    "FLIGHT_FORMAT",
    "DEFAULT_CAPACITY",
    "read_flight_dump",
    "list_flight_dumps",
    # live monitoring
    "fleet_status",
    "render_fleet_status",
]
