"""Distributed trace identity (``TraceContext``).

One *trace* is one scheduler run — a ``repro sweep``/``table1``/
``check`` invocation, however many processes end up executing it.  One
*span* is one unit of work inside that run: the run itself (the root
span), or one :class:`~repro.sched.runner.JobSpec` (a job span, child
of the root).  Every :class:`~repro.prof.activity.ActivityRecord`
emitted while a span is current carries the span's identity, so a
fleet merge can stitch activity produced by independent worker
processes back into one coherent tree.

Identities are **deterministic**, not random: the trace id is a hash
of the run id, and every span id is a hash of ``(trace id, parent
span id, span key)``.  Determinism is what makes the observability
plane compatible with the repo's byte-identity guarantees — a worker
joining from another machine mints exactly the ids the coordinator
minted, a ``--resume`` re-derives the ids of the original run, and a
re-merge of a finished fleet directory reproduces the previous trace
byte for byte.  Nothing needs to ship ids across processes, though
:class:`~repro.sched.runner.JobSpec` carries them anyway so journal
records and activity logs are self-describing.

Wire format (journal meta, NDJSON activity, ``--trace`` headers)::

    {"trace_id": "6fd1…", "span_id": "a3c2…", "parent_span_id": "09b7…"}
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TraceContext", "trace_id_for_run", "ROOT_SPAN_KEY", "job_span_key"]

#: span key of the run's root span
ROOT_SPAN_KEY = "run"

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16


def _digest(material: str, length: int) -> str:
    return hashlib.sha256(material.encode()).hexdigest()[:length]


def trace_id_for_run(run_id: str) -> str:
    """The deterministic trace id of one scheduler run."""
    return _digest(f"repro-trace:{run_id}", _TRACE_ID_HEX)


def job_span_key(ordinal: int) -> str:
    """The span key of job ``ordinal`` (spec-order position)."""
    return f"job:{ordinal}"


@dataclass(frozen=True)
class TraceContext:
    """One span's identity: (trace, span, parent span)."""

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    # ------------------------------------------------------------------
    @classmethod
    def root(cls, run_id: str) -> "TraceContext":
        """The root span of one run; same run id → same identity."""
        trace_id = trace_id_for_run(run_id)
        return cls(
            trace_id=trace_id,
            span_id=_digest(f"{trace_id}:{ROOT_SPAN_KEY}", _SPAN_ID_HEX),
            parent_span_id=None,
        )

    def child(self, key: str) -> "TraceContext":
        """A child span; same (parent, key) → same identity."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_digest(
                f"{self.trace_id}:{self.span_id}:{key}", _SPAN_ID_HEX
            ),
            parent_span_id=self.span_id,
        )

    def job(self, ordinal: int) -> "TraceContext":
        """The span of job ``ordinal`` under this span."""
        return self.child(job_span_key(ordinal))

    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent_span_id is None

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any] | None) -> "TraceContext | None":
        """Rebuild from a journal/NDJSON projection; None-tolerant."""
        if not obj or not obj.get("trace_id") or not obj.get("span_id"):
            return None
        return cls(
            trace_id=str(obj["trace_id"]),
            span_id=str(obj["span_id"]),
            parent_span_id=(
                str(obj["parent_span_id"])
                if obj.get("parent_span_id") else None
            ),
        )
