"""Backend selection for memory-analysis dispatch.

A *backend* decides how each warp-wide access is analyzed:

* ``reference`` — always the per-lane sort-based analyzers of
  :mod:`repro.mem` (the executable oracle);
* ``fast`` — try the residue-class fast path of
  :mod:`repro.exec.fastpath` first, falling back to the reference
  analyzers for accesses that are not affine;
* ``jit`` — the trace-JIT tier of :mod:`repro.jit`: record a launch
  once per trace key, compile the access summaries into generated
  Python, and replay later launches behind linear-time guards, bailing
  back to reference per kernel on any mismatch.

All three produce identical summaries (the differential suite in
``tests/differential/`` enforces this for every registered benchmark),
so the choice is purely a performance knob.  Selection follows the
session-ambient pattern used elsewhere in the runtime: an explicit
argument wins, then the innermost :func:`use_backend` context, then the
``REPRO_BACKEND`` environment variable, then ``"reference"``.

Each dispatcher instance carries an :class:`ExecCounters` describing
how many accesses took which path — exported to metrics documents as
the ``execution`` section, deliberately *outside* the kernel counters
so backend equivalence remains checkable on the counters themselves.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.common.errors import LaunchConfigError
from repro.exec.fastpath import analyze_access_fast, analyze_shared_access_fast
from repro.mem.banks import BankConflictSummary, analyze_shared_access
from repro.mem.coalesce import AccessSummary, analyze_access

__all__ = [
    "BACKENDS",
    "ExecCounters",
    "ReferenceDispatch",
    "FastDispatch",
    "use_backend",
    "current_backend_name",
    "make_dispatcher",
]

#: recognised backend names, in documentation order
BACKENDS = ("reference", "fast", "jit")

_ENV_VAR = "REPRO_BACKEND"
_ambient: list[str] = []


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise LaunchConfigError(
            f"unknown execution backend {name!r}; choose from {BACKENDS}"
        )
    return name


@contextmanager
def use_backend(name: str):
    """Select the execution backend for runtimes created in this scope."""
    _ambient.append(_validate(name))
    try:
        yield
    finally:
        _ambient.pop()


def current_backend_name(explicit: str | None = None) -> str:
    """Resolve the backend: explicit > ambient context > env > reference."""
    if explicit is not None:
        return _validate(explicit)
    if _ambient:
        return _ambient[-1]
    env = os.environ.get(_ENV_VAR)
    if env:
        return _validate(env)
    return "reference"


@dataclass
class ExecCounters:
    """How many analyses each dispatch path served.

    ``*_fast`` accesses were served by the residue-class fast path;
    ``*_fallback`` were eligible-checked but analyzed by the reference
    code.  Under the reference backend everything lands in
    ``*_reference``.
    """

    global_fast: int = 0
    global_fallback: int = 0
    global_reference: int = 0
    shared_fast: int = 0
    shared_fallback: int = 0
    shared_reference: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "global_fast": self.global_fast,
            "global_fallback": self.global_fallback,
            "global_reference": self.global_reference,
            "shared_fast": self.shared_fast,
            "shared_fallback": self.shared_fallback,
            "shared_reference": self.shared_reference,
        }


@dataclass
class ReferenceDispatch:
    """Always analyze through the reference :mod:`repro.mem` oracle."""

    name = "reference"
    counters: ExecCounters = field(default_factory=ExecCounters)

    def analyze_global(
        self,
        addrs,
        mask,
        itemsize: int,
        *,
        warp_size: int,
        transaction_bytes: int,
        sector_bytes: int,
    ) -> AccessSummary:
        self.counters.global_reference += 1
        return analyze_access(
            addrs,
            mask,
            itemsize,
            warp_size=warp_size,
            transaction_bytes=transaction_bytes,
            sector_bytes=sector_bytes,
        )

    def analyze_shared(
        self,
        byte_offsets,
        mask,
        *,
        warp_size: int,
        nbanks: int,
        bank_bytes: int,
    ) -> BankConflictSummary:
        self.counters.shared_reference += 1
        return analyze_shared_access(
            byte_offsets,
            mask,
            warp_size=warp_size,
            nbanks=nbanks,
            bank_bytes=bank_bytes,
        )


@dataclass
class FastDispatch(ReferenceDispatch):
    """Residue-class fast path with per-access reference fallback."""

    name = "fast"

    def analyze_global(
        self,
        addrs,
        mask,
        itemsize: int,
        *,
        warp_size: int,
        transaction_bytes: int,
        sector_bytes: int,
    ) -> AccessSummary:
        summary = analyze_access_fast(
            addrs,
            mask,
            itemsize,
            warp_size=warp_size,
            transaction_bytes=transaction_bytes,
            sector_bytes=sector_bytes,
        )
        if summary is not None:
            self.counters.global_fast += 1
            return summary
        self.counters.global_fallback += 1
        return analyze_access(
            addrs,
            mask,
            itemsize,
            warp_size=warp_size,
            transaction_bytes=transaction_bytes,
            sector_bytes=sector_bytes,
        )

    def analyze_shared(
        self,
        byte_offsets,
        mask,
        *,
        warp_size: int,
        nbanks: int,
        bank_bytes: int,
    ) -> BankConflictSummary:
        summary = analyze_shared_access_fast(
            byte_offsets,
            mask,
            warp_size=warp_size,
            nbanks=nbanks,
            bank_bytes=bank_bytes,
        )
        if summary is not None:
            self.counters.shared_fast += 1
            return summary
        self.counters.shared_fallback += 1
        return analyze_shared_access(
            byte_offsets,
            mask,
            warp_size=warp_size,
            nbanks=nbanks,
            bank_bytes=bank_bytes,
        )


def make_dispatcher(name: str | None = None) -> ReferenceDispatch:
    """Build a dispatcher for the resolved backend name."""
    resolved = current_backend_name(name)
    if resolved == "jit":
        # deferred import: repro.jit subclasses ReferenceDispatch
        from repro.jit.dispatch import JitDispatch

        return JitDispatch()
    return FastDispatch() if resolved == "fast" else ReferenceDispatch()
