"""Execution backends: reference oracle, residue-class fast path, and
the trace-JIT tier of :mod:`repro.jit` (selected as ``"jit"``)."""

from repro.common.errors import BackendDivergenceError
from repro.exec.dispatch import (
    BACKENDS,
    ExecCounters,
    FastDispatch,
    ReferenceDispatch,
    current_backend_name,
    make_dispatcher,
    use_backend,
)
from repro.exec.fastpath import analyze_access_fast, analyze_shared_access_fast

__all__ = [
    "BACKENDS",
    "BackendDivergenceError",
    "ExecCounters",
    "FastDispatch",
    "ReferenceDispatch",
    "current_backend_name",
    "make_dispatcher",
    "use_backend",
    "analyze_access_fast",
    "analyze_shared_access_fast",
]
