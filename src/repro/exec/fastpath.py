"""Residue-class fast paths for the per-warp memory analyses.

The interpreter's dominant cost is not the functional gather/scatter —
NumPy already vectorizes that — but the *per-warp* coalescing and
bank-conflict analysis: every access sorts a ``(warps, warp_size)``
address matrix three times.  For the paper's benchmarks almost every
access is *affine*: each warp is fully convergent and its lanes step by
one common stride (coalesced streams, strided streams, column reads).

For such accesses the per-warp distinct-segment count at granularity
``B`` depends only on the warp's start address *modulo* ``B`` (shifting
a whole row by a multiple of ``B`` shifts every segment id by the same
integer, preserving distinctness).  Grouping warps by their start
address modulo ``M = lcm`` of all granularities therefore collapses the
grid to at most ``M`` *residue classes*; the reference algorithm runs
on one representative row per class and the counts are weighted by
class sizes.  Because the representatives are actual rows of the access
and the reference code path itself produces each class count, the fast
result is bit-identical to the reference result — by construction, not
by approximation.

Both analyzers return ``None`` when an access is not eligible (partial
warps, divergent masks, irregular strides); the dispatcher then falls
back to the reference implementation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mem.banks import BankConflictSummary, shared_pass_degrees
from repro.mem.coalesce import (
    MAX_ANALYZED_WARPS,
    AccessSummary,
    _select_sample,
    lanes_to_warps,
    segment_distinct_counts,
)

__all__ = ["analyze_access_fast", "analyze_shared_access_fast"]


def _affine_rows(a2d: np.ndarray, m2d: np.ndarray) -> np.ndarray | None:
    """Return the fully-active rows if the access is affine, else None.

    Eligibility: every warp row is fully active or fully inactive
    (convergent — no partial masks), and all active rows share one
    intra-warp stride.  These are exactly the accesses whose per-warp
    statistics are determined by ``start % M``.
    """
    row_all = m2d.all(axis=1)
    if not np.array_equal(row_all, m2d.any(axis=1)):
        return None
    act = a2d[row_all]
    if act.shape[0] and act.shape[1] > 1:
        deltas = np.diff(act, axis=1)
        if (deltas != deltas[0, 0]).any():
            return None
    return act


def _class_representatives(
    starts: np.ndarray, modulus: int
) -> tuple[np.ndarray, np.ndarray]:
    """Indices of one representative row per residue class + class sizes."""
    _, rep_idx, class_counts = np.unique(
        starts % modulus, return_index=True, return_counts=True
    )
    return rep_idx, class_counts


def _distinct_union(first: np.ndarray, last: np.ndarray) -> float:
    """Distinct count of ``first ∪ last`` keys over fully-active rows.

    Equals the reference ``np.unique(keys[mask]).size`` for every
    straddle-branch outcome: when no element straddles, ``last`` merely
    duplicates ``first``; when one does, the reference concatenates both
    anyway.  A monotone flattened stream (the common affine case) is
    counted with one diff pass instead of a sort.
    """
    if first.size == 0:
        return 0.0
    flat = first.reshape(-1)
    if np.array_equal(first, last):
        d = np.diff(flat)
        if d.size == 0 or (d >= 0).all():
            return float(1 + int((d > 0).sum()))
        return float(np.unique(flat).size)
    return float(np.unique(np.concatenate([flat, last.reshape(-1)])).size)


def analyze_access_fast(
    addrs: np.ndarray,
    mask: np.ndarray | None,
    itemsize: int,
    *,
    warp_size: int = 32,
    transaction_bytes: int = 128,
    sector_bytes: int = 32,
    max_analyzed_warps: int = MAX_ANALYZED_WARPS,
) -> AccessSummary | None:
    """Fast-path equivalent of :func:`repro.mem.coalesce.analyze_access`.

    Returns ``None`` for ineligible (non-affine) accesses; otherwise an
    :class:`AccessSummary` bit-identical to the reference analyzer's.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    a2d, m2d = lanes_to_warps(addrs, mask, warp_size)
    n_warps_total = int(m2d.any(axis=1).sum())
    n_active = int(m2d.sum())
    if n_warps_total == 0:
        return AccessSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 1.0)

    # Identical deterministic warp sampling to the reference path.
    sel, fraction = _select_sample(a2d.shape[0], max_analyzed_warps)
    act = _affine_rows(a2d[sel], m2d[sel])
    if act is None:
        return None

    burst_bytes = 2 * sector_bytes
    if act.shape[0] == 0:
        transactions = sectors = bursts = 0.0
        unique_sectors = unique_bursts = 0.0
    else:
        modulus = math.lcm(transaction_bytes, sector_bytes, burst_bytes)
        rep_idx, class_counts = _class_representatives(act[:, 0], modulus)
        rep = act[rep_idx]
        full = np.ones(rep.shape, dtype=bool)

        t_counts, _, _ = segment_distinct_counts(rep, full, transaction_bytes, itemsize)
        s_counts, _, _ = segment_distinct_counts(rep, full, sector_bytes, itemsize)
        b_counts, _, _ = segment_distinct_counts(rep, full, burst_bytes, itemsize)
        transactions = float((t_counts * class_counts).sum())
        sectors = float((s_counts * class_counts).sum())
        bursts = float((b_counts * class_counts).sum())

        # Whole-access distinct sectors/bursts are global, not per-class.
        last = act + (itemsize - 1)
        unique_sectors = _distinct_union(act // sector_bytes, last // sector_bytes)
        unique_bursts = _distinct_union(act // burst_bytes, last // burst_bytes)

    scale = 1.0 / fraction
    return AccessSummary(
        n_warps=n_warps_total,
        n_active_lanes=n_active,
        transactions=transactions * scale,
        sectors=sectors * scale,
        bursts=bursts * scale,
        unique_sectors=unique_sectors * scale,
        unique_bursts=unique_bursts * scale,
        bytes_requested=n_active * itemsize,
        sample_fraction=fraction,
    )


def analyze_shared_access_fast(
    byte_offsets: np.ndarray,
    mask: np.ndarray | None,
    *,
    warp_size: int = 32,
    nbanks: int = 32,
    bank_bytes: int = 4,
) -> BankConflictSummary | None:
    """Fast-path equivalent of :func:`repro.mem.banks.analyze_shared_access`.

    Bank ids repeat with period ``nbanks * bank_bytes`` bytes, so an
    affine access's conflict degree depends only on the row's start
    offset modulo that period.  Returns ``None`` when ineligible.
    """
    offsets = np.asarray(byte_offsets, dtype=np.int64)
    o2d, m2d = lanes_to_warps(offsets, mask, warp_size)
    n_warps_total = int(m2d.any(axis=1).sum())
    n_active = int(m2d.sum())
    if n_warps_total == 0:
        return BankConflictSummary(0, 0, 0, 0, 0)

    act = _affine_rows(o2d, m2d)
    if act is None:
        return None

    rep_idx, class_counts = _class_representatives(act[:, 0], nbanks * bank_bytes)
    rep = act[rep_idx]
    full = np.ones(rep.shape, dtype=bool)
    degrees = shared_pass_degrees(rep, full, nbanks=nbanks, bank_bytes=bank_bytes)
    passes = int((degrees * class_counts).sum())
    return BankConflictSummary(
        n_warps=n_warps_total,
        n_active_lanes=n_active,
        passes=passes,
        conflict_extra=passes - n_warps_total,
        max_degree=int(degrees.max(initial=0)),
    )
