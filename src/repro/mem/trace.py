"""Access traces: the bridge between execution and the cache model.

During kernel execution every global/texture access instruction appends
an :class:`AccessRecord` to the launch's :class:`AccessTrace`.  A record
keeps two views of the access:

* an exact (or unbiased, warp-sampled) :class:`~repro.mem.coalesce.AccessSummary`
  with grid-total transaction and sector counts, and
* the raw lane addresses of a small *warp window* — a contiguous run of
  warps from the middle of the grid — in program order, which the
  memory hierarchy later replays through the L1/L2 cache models.

A contiguous window (rather than a scattered sample) is deliberate:
cross-warp spatial sharing, such as neighbouring warps re-touching the
boundary segments of a misaligned access, only shows up between warps
that are adjacent in the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mem.coalesce import AccessSummary, lanes_to_warps

__all__ = ["AccessRecord", "AccessTrace", "CACHE_WINDOW_WARPS"]

#: Number of contiguous warps replayed through the cache models.
CACHE_WINDOW_WARPS = 64


@dataclass
class AccessRecord:
    """One warp-wide memory access instruction, grid-wide."""

    space: str                 #: "global", "texture" or "constant"
    is_store: bool
    itemsize: int
    summary: AccessSummary     #: grid-total coalescing statistics
    window_addrs: np.ndarray   #: (window_warps, warp_size) lane byte addresses
    window_mask: np.ndarray    #: matching activity mask
    label: str = ""            #: optional source annotation for reports


@dataclass
class AccessTrace:
    """Program-ordered access records for one kernel launch."""

    warp_size: int
    total_lanes: int
    window_start_warp: int
    window_warps: int
    records: list[AccessRecord] = field(default_factory=list)

    @classmethod
    def for_grid(
        cls,
        total_lanes: int,
        warp_size: int = 32,
        window_warps: int = CACHE_WINDOW_WARPS,
    ) -> "AccessTrace":
        """Create a trace whose cache window sits mid-grid.

        Mid-grid warps see steady-state cache behaviour; warp 0 would
        over-observe cold-start misses on small grids.
        """
        n_warps = -(-total_lanes // warp_size) if total_lanes else 0
        w = min(window_warps, max(n_warps, 1))
        start = max((n_warps - w) // 2, 0)
        return cls(
            warp_size=warp_size,
            total_lanes=total_lanes,
            window_start_warp=start,
            window_warps=w,
        )

    @property
    def n_grid_warps(self) -> int:
        return -(-self.total_lanes // self.warp_size) if self.total_lanes else 0

    @property
    def window_fraction(self) -> float:
        """Fraction of the grid's warps inside the cache window."""
        n = self.n_grid_warps
        return self.window_warps / n if n else 1.0

    def record(
        self,
        *,
        space: str,
        is_store: bool,
        itemsize: int,
        summary: AccessSummary,
        addrs: np.ndarray,
        mask: np.ndarray | None,
        label: str = "",
    ) -> AccessRecord:
        """Append a record, slicing out the cache window's addresses."""
        a2d, m2d = lanes_to_warps(
            np.asarray(addrs, dtype=np.int64), mask, self.warp_size
        )
        lo = self.window_start_warp
        hi = min(lo + self.window_warps, a2d.shape[0])
        rec = AccessRecord(
            space=space,
            is_store=is_store,
            itemsize=int(itemsize),
            summary=summary,
            window_addrs=a2d[lo:hi].copy(),
            window_mask=m2d[lo:hi].copy(),
            label=label,
        )
        self.records.append(rec)
        return rec

    def space_rollup(self) -> dict[str, dict[str, float]]:
        """Per-space byte/transaction totals across the trace.

        Returns ``{space: {read_bytes, write_bytes, transactions,
        sectors, accesses}}`` — the aggregate view exporters and the
        doctor's read-only-placement rule consume.
        """
        out: dict[str, dict[str, float]] = {}
        for rec in self.records:
            bucket = out.setdefault(
                rec.space,
                {
                    "read_bytes": 0.0,
                    "write_bytes": 0.0,
                    "transactions": 0.0,
                    "sectors": 0.0,
                    "accesses": 0.0,
                },
            )
            key = "write_bytes" if rec.is_store else "read_bytes"
            bucket[key] += rec.summary.bytes_requested
            bucket["transactions"] += rec.summary.transactions
            bucket["sectors"] += rec.summary.sectors
            bucket["accesses"] += 1.0
        return out

    def __len__(self) -> int:
        return len(self.records)
