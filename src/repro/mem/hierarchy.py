"""Memory-hierarchy traffic resolution.

Takes the :class:`~repro.mem.trace.AccessTrace` recorded during a kernel
launch and resolves it against a :class:`~repro.arch.spec.GPUSpec` into
level-by-level traffic: L1 transactions and hits, L2 sector accesses and
hits, and finally DRAM bytes.  The result feeds the roofline timing
model.

Modelling choices (see DESIGN.md §5):

* **L1** is simulated per *window warp*: each warp's program-order line
  stream runs through an LRU cache sized to the warp's fair share of
  the SM's L1 (``l1_size / resident_warps_per_sm``).  Global *stores*
  bypass L1 (NVIDIA L1s are write-through, no-allocate); on
  architectures with ``global_loads_cached_in_l1=False`` (Kepler) loads
  bypass it too, and only the texture path is cached on-SM.
* **L2** is simulated over the interleaved stream of window-warp
  sectors that missed (or bypassed) L1, through an LRU scaled by the
  window fraction so footprint/capacity ratios are preserved.
* **DRAM** traffic is the L2 miss sectors, rescaled from the window to
  the whole grid using each record's exact grid-total sector count.
* **Constant memory** is not resolved here: its cost is serialization
  at issue time and its footprint is assumed resident in the 64 KiB
  constant cache after first touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.spec import GPUSpec
from repro.mem.cache import LRUCache
from repro.mem.trace import AccessTrace

__all__ = ["TrafficReport", "resolve_traffic"]


@dataclass
class TrafficReport:
    """Level-by-level memory traffic for one kernel launch."""

    bytes_requested: float = 0.0   #: useful bytes (active lanes x itemsize)
    transactions: float = 0.0      #: L1-segment transactions, grid total

    l1_lookups: float = 0.0        #: line lookups that went through L1
    l1_hits: float = 0.0

    l2_sectors: float = 0.0        #: sector requests arriving at L2
    l2_hits: float = 0.0

    dram_sectors: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    #: DRAM read bytes that travelled the uncached (L1-bypass) path —
    #: the timing model derates their bandwidth on Kepler-class parts.
    dram_uncached_read_bytes: float = 0.0

    tex_lookups: float = 0.0
    tex_hits: float = 0.0

    #: issue-weighted average load-to-use latency in cycles
    avg_load_latency_cycles: float = 0.0

    per_space: dict[str, float] = field(default_factory=dict)

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_lookups if self.l1_lookups else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_sectors if self.l2_sectors else 0.0

    def as_dict(self) -> dict[str, float | dict[str, float]]:
        """JSON-ready projection for metrics documents."""
        return {
            "bytes_requested": self.bytes_requested,
            "transactions": self.transactions,
            "l1_lookups": self.l1_lookups,
            "l1_hits": self.l1_hits,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_sectors": self.l2_sectors,
            "l2_hits": self.l2_hits,
            "l2_hit_rate": self.l2_hit_rate,
            "dram_sectors": self.dram_sectors,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "dram_bytes": self.dram_bytes,
            "dram_uncached_read_bytes": self.dram_uncached_read_bytes,
            "tex_lookups": self.tex_lookups,
            "tex_hits": self.tex_hits,
            "avg_load_latency_cycles": self.avg_load_latency_cycles,
            "per_space_bytes": dict(self.per_space),
        }


def _warp_line_lists(
    addrs: np.ndarray, mask: np.ndarray, itemsize: int, line_bytes: int
) -> list[np.ndarray]:
    """Per window warp, the distinct line ids it touches (sorted)."""
    out: list[np.ndarray] = []
    for row_a, row_m in zip(addrs, mask):
        if not row_m.any():
            out.append(np.empty(0, dtype=np.int64))
            continue
        a = row_a[row_m]
        first = a // line_bytes
        last = (a + itemsize - 1) // line_bytes
        out.append(np.unique(np.concatenate([first, last])))
    return out


def _warp_sector_lists(
    addrs: np.ndarray, mask: np.ndarray, itemsize: int, sector_bytes: int
) -> list[np.ndarray]:
    return _warp_line_lists(addrs, mask, itemsize, sector_bytes)


def resolve_traffic(
    trace: AccessTrace,
    gpu: GPUSpec,
    *,
    resident_warps_per_sm: int,
) -> TrafficReport:
    """Resolve an access trace into per-level traffic.

    Parameters
    ----------
    trace:
        Program-ordered records from one kernel launch.
    gpu:
        Architecture to resolve against (cache sizes, bypass flags).
    resident_warps_per_sm:
        From the occupancy calculation; sets each warp's fair share of
        the L1 and texture caches.
    """
    report = TrafficReport()
    if not trace.records:
        return report

    line_bytes = gpu.transaction_bytes
    sector_bytes = gpu.sector_bytes
    rw = max(int(resident_warps_per_sm), 1)

    nw = trace.window_warps
    l1_share = max(gpu.l1_size // line_bytes // rw, 1)
    tex_share = max(gpu.texture_cache_size // line_bytes // rw, 1)
    l1_caches = [LRUCache(l1_share, ways=4) for _ in range(nw)]
    tex_caches = (
        [LRUCache(tex_share, ways=4) for _ in range(nw)]
        if gpu.texture_cache_dedicated
        else l1_caches  # unified path: texture shares the L1 model
    )

    # The window competes for L2 with the other *co-resident* warps, not
    # with the whole grid: warps scheduled long after the window's have
    # already evicted each other's lines, so scaling by grid size would
    # starve the window below a single access's footprint on large
    # launches.  Scale capacity by window / resident warps instead.
    resident_total = gpu.sm_count * rw
    effective_warps = max(min(trace.n_grid_warps, resident_total), trace.window_warps)
    frac = trace.window_warps / effective_warps
    l2_capacity = max(int(gpu.l2_size / sector_bytes * frac), 8)
    l2 = LRUCache(l2_capacity, ways=16)

    lat_weight = 0.0
    lat_cycles = 0.0

    for rec in trace.records:
        if rec.space == "constant":
            # Constant traffic is modelled at issue time; assume the
            # (small) constant bank is cache-resident after first touch.
            report.per_space["constant"] = report.per_space.get(
                "constant", 0.0
            ) + rec.summary.bytes_requested
            continue

        report.bytes_requested += rec.summary.bytes_requested
        report.transactions += rec.summary.transactions
        report.per_space[rec.space] = (
            report.per_space.get(rec.space, 0.0) + rec.summary.bytes_requested
        )

        if rec.space == "texture":
            cached_on_sm = True
            caches = tex_caches
        else:
            cached_on_sm = gpu.global_loads_cached_in_l1 and not rec.is_store
            caches = l1_caches

        warp_lines = _warp_line_lists(
            rec.window_addrs, rec.window_mask, rec.itemsize, line_bytes
        )
        warp_sectors = _warp_sector_lists(
            rec.window_addrs, rec.window_mask, rec.itemsize, sector_bytes
        )

        # --- on-SM cache stage ----------------------------------------
        window_l2_sectors: list[np.ndarray] = []
        window_lines = 0
        window_l1_hits = 0
        for w, (lines, sectors) in enumerate(zip(warp_lines, warp_sectors)):
            if lines.size == 0:
                continue
            window_lines += lines.size
            if not cached_on_sm:
                window_l2_sectors.append(sectors)
                continue
            cache = caches[w]
            missed_lines = [lid for lid in lines.tolist() if not cache.access(lid)]
            window_l1_hits += lines.size - len(missed_lines)
            if missed_lines:
                miss_set = np.asarray(missed_lines, dtype=np.int64)
                sec_lines = sectors // (line_bytes // sector_bytes)
                window_l2_sectors.append(sectors[np.isin(sec_lines, miss_set)])

        # Rescale window observations to grid totals using the exact
        # grid-total sector count from the coalescing summary.
        window_sector_total = sum(s.size for s in warp_sectors)
        scale = (
            rec.summary.sectors / window_sector_total
            if window_sector_total
            else 0.0
        )

        if cached_on_sm and window_lines:
            grid_lines = rec.summary.transactions  # line lookups ~ transactions
            hit_frac = window_l1_hits / window_lines
            if rec.space == "texture" and gpu.texture_cache_dedicated:
                report.tex_lookups += grid_lines
                report.tex_hits += grid_lines * hit_frac
            else:
                report.l1_lookups += grid_lines
                report.l1_hits += grid_lines * hit_frac

        # --- L2 stage ----------------------------------------------------
        window_l2 = (
            np.concatenate(window_l2_sectors)
            if window_l2_sectors
            else np.empty(0, dtype=np.int64)
        )
        l2_before_h, l2_before_a = l2.hits, l2.accesses
        l2_before_d = l2.lines_dirtied
        l2.access_many(window_l2, write=rec.is_store)
        w_l2_acc = l2.accesses - l2_before_a
        w_l2_hit = l2.hits - l2_before_h
        w_dirtied = l2.lines_dirtied - l2_before_d
        grid_l2 = w_l2_acc * scale
        grid_l2_hits = w_l2_hit * scale

        report.l2_sectors += grid_l2
        report.l2_hits += grid_l2_hits
        # Scattered sectors waste DRAM burst granularity (64B min burst).
        burst = rec.summary.dram_burst_factor
        if rec.is_store:
            # Stores don't read DRAM (sector writes need no fill); every
            # newly-dirtied sector is one eventual write-back.
            grid_dirtied = w_dirtied * scale
            report.dram_sectors += grid_dirtied
            report.dram_write_bytes += grid_dirtied * sector_bytes * burst
        else:
            grid_dram = (w_l2_acc - w_l2_hit) * scale
            report.dram_sectors += grid_dram
            dram_bytes = grid_dram * sector_bytes * burst
            report.dram_read_bytes += dram_bytes
            if not cached_on_sm:
                report.dram_uncached_read_bytes += dram_bytes

        # --- latency mix -------------------------------------------------
        if not rec.is_store and rec.summary.n_warps:
            n = rec.summary.n_warps
            l1_frac = (
                window_l1_hits / window_lines if cached_on_sm and window_lines else 0.0
            )
            l2_frac = (1.0 - l1_frac) * (w_l2_hit / w_l2_acc if w_l2_acc else 0.0)
            dram_frac = max(1.0 - l1_frac - l2_frac, 0.0)
            lat = (
                l1_frac * gpu.shared_latency_cycles
                + l2_frac * gpu.l2_latency_cycles
                + dram_frac * gpu.dram_latency_cycles
            )
            lat_cycles += lat * n
            lat_weight += n

    report.avg_load_latency_cycles = (
        lat_cycles / lat_weight if lat_weight else float(gpu.l2_latency_cycles)
    )
    return report
