"""Device memory system: allocator, arrays, coalescing, banks, caches."""

from repro.mem.allocator import DEFAULT_ALIGNMENT, Allocation, DeviceAllocator
from repro.mem.banks import BankConflictSummary, analyze_shared_access
from repro.mem.buffer import DeviceArray
from repro.mem.cache import LRUCache, simulate_stream
from repro.mem.coalesce import (
    AccessSummary,
    analyze_access,
    lanes_to_warps,
    warp_distinct_counts,
)
from repro.mem.hierarchy import TrafficReport, resolve_traffic
from repro.mem.trace import CACHE_WINDOW_WARPS, AccessRecord, AccessTrace

__all__ = [
    "DEFAULT_ALIGNMENT",
    "Allocation",
    "DeviceAllocator",
    "BankConflictSummary",
    "analyze_shared_access",
    "DeviceArray",
    "LRUCache",
    "simulate_stream",
    "AccessSummary",
    "analyze_access",
    "lanes_to_warps",
    "warp_distinct_counts",
    "TrafficReport",
    "resolve_traffic",
    "CACHE_WINDOW_WARPS",
    "AccessRecord",
    "AccessTrace",
]
