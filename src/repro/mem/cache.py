"""Set-associative LRU cache model.

The memory hierarchy uses this model in two roles:

* a *representative-warp* L1 simulation — each sampled warp's program-
  order line stream runs through a cache scaled to that warp's fair
  share of the L1, capturing intra-warp temporal reuse (e.g. a matmul
  row line being re-read for 32 consecutive ``k`` iterations);
* a *sampled-stream* L2 simulation — the interleaved line stream of a
  contiguous warp window runs through a cache whose capacity is scaled
  by the sampling fraction, capturing cross-warp spatial sharing and
  sweep-to-sweep reuse while keeping footprint/capacity ratios intact.

The replacement policy is true LRU within each set; sets are selected
by the low line-index bits, as in real L1/L2 slices.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

import numpy as np

__all__ = ["LRUCache", "simulate_stream"]

_MASK64 = (1 << 64) - 1


def _mix(line_id: int) -> int:
    """Cheap deterministic integer hash (splitmix64 finalizer).

    Real L2 slices hash the address bits into the set index so regular
    power-of-two strides do not collapse onto a few sets; plain modulo
    indexing would make the model thrash where hardware does not.
    """
    z = (line_id * 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class LRUCache:
    """A set-associative cache over abstract line identifiers.

    Parameters
    ----------
    capacity_lines:
        Total number of lines the cache can hold.  A capacity of zero
        degenerates to a cache that always misses.
    ways:
        Associativity.  The set count is ``max(capacity_lines // ways, 1)``
        (fully associative when ``capacity_lines <= ways``).
    """

    def __init__(self, capacity_lines: int, ways: int = 8) -> None:
        if capacity_lines < 0:
            raise ValueError("capacity_lines must be non-negative")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.capacity_lines = int(capacity_lines)
        if self.capacity_lines == 0:
            self.n_sets = 0
            self.ways = 0
            self._sets: list[OrderedDict[int, None]] = []
        else:
            self.ways = min(ways, self.capacity_lines)
            self.n_sets = max(self.capacity_lines // self.ways, 1)
            self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: clean->dirty transitions: each implies one eventual write-back
        self.lines_dirtied = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lines_dirtied = 0

    def access(self, line_id: int, *, write: bool = False) -> bool:
        """Touch one line; returns True on hit.

        ``write`` marks the line dirty; the ``lines_dirtied`` counter
        counts clean->dirty transitions, each of which corresponds to
        one eventual write-back to the next level.
        """
        if self.capacity_lines == 0:
            self.misses += 1
            if write:
                self.lines_dirtied += 1
            return False
        s = self._sets[_mix(line_id) % self.n_sets]
        if line_id in s:
            s.move_to_end(line_id)
            self.hits += 1
            if write and not s[line_id]:
                s[line_id] = True
                self.lines_dirtied += 1
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
            self.evictions += 1
        s[line_id] = bool(write)
        if write:
            self.lines_dirtied += 1
        return False

    def access_many(
        self, line_ids: Iterable[int] | np.ndarray, *, write: bool = False
    ) -> int:
        """Touch a sequence of lines in order; returns the hit count."""
        before = self.hits
        if isinstance(line_ids, np.ndarray):
            line_ids = line_ids.tolist()
        for lid in line_ids:
            self.access(int(lid), write=write)
        return self.hits - before

    def snapshot(self) -> dict[str, float]:
        """Counter rollup for observability exports."""
        return {
            "capacity_lines": self.capacity_lines,
            "ways": self.ways,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lines_dirtied": self.lines_dirtied,
            "hit_rate": self.hit_rate,
            "resident_lines": len(self),
        }

    def contains(self, line_id: int) -> bool:
        """Non-mutating presence test (no LRU update, no counters)."""
        if self.capacity_lines == 0:
            return False
        return line_id in self._sets[_mix(line_id) % self.n_sets]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


def simulate_stream(
    stream: np.ndarray | Iterable[int],
    capacity_lines: int,
    ways: int = 8,
) -> tuple[int, int]:
    """Run a line-id stream through a fresh cache; return (hits, misses)."""
    cache = LRUCache(capacity_lines, ways)
    cache.access_many(np.asarray(list(stream), dtype=np.int64))
    return cache.hits, cache.misses
