"""Shared-memory bank-conflict analysis.

Shared memory is organised as ``nbanks`` (32) independent banks, each
``bank_bytes`` (4) wide, with successive words mapped to successive
banks.  A warp's shared access completes in one pass unless two or more
lanes touch *different words in the same bank*, in which case the
hardware replays the access once per extra word — an *n-way bank
conflict* costs ``n`` passes.  Lanes reading the *same* word broadcast
for free.

The analysis is fully vectorized: distinct ``(warp, word)`` pairs are
identified with the same sort-and-diff trick as coalescing, then a
``bincount`` over ``(warp, bank)`` keys yields per-bank multiplicities,
whose per-warp maximum is the conflict degree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mem.coalesce import lanes_to_warps

__all__ = ["BankConflictSummary", "shared_pass_degrees", "analyze_shared_access"]

_SENTINEL = np.iinfo(np.int64).max


@dataclass(frozen=True)
class BankConflictSummary:
    """Bank behaviour of one warp-wide shared-memory access."""

    n_warps: int            #: warps with at least one active lane
    n_active_lanes: int
    passes: int             #: serialized passes summed over warps
    conflict_extra: int     #: passes beyond the conflict-free minimum
    max_degree: int         #: worst conflict degree of any warp

    @property
    def mean_degree(self) -> float:
        return self.passes / self.n_warps if self.n_warps else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready projection for activity payloads and metrics."""
        return {
            "n_warps": self.n_warps,
            "n_active_lanes": self.n_active_lanes,
            "passes": self.passes,
            "conflict_extra": self.conflict_extra,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
        }


def shared_pass_degrees(
    o2d: np.ndarray,
    m2d: np.ndarray,
    *,
    nbanks: int = 32,
    bank_bytes: int = 4,
) -> np.ndarray:
    """Per-warp serialized pass counts for a ``(warps, warp_size)`` access.

    A conflict-free active warp costs one pass; an *n*-way conflict costs
    ``n``; inactive rows cost zero.  Shared by the reference analyzer and
    the fast-path backend, which runs it on residue-class representatives.
    """
    # Dead lanes are pushed to a sentinel so they sort to the row end and
    # can never break up a run of identical live words.
    words = np.where(m2d, o2d // bank_bytes, _SENTINEL)
    words.sort(axis=1)
    live = words != _SENTINEL

    distinct = live.copy()
    if words.shape[1] > 1:
        distinct[:, 1:] &= words[:, 1:] != words[:, :-1]

    banks = np.where(live, words % nbanks, 0)
    n_rows = words.shape[0]
    warp_ids = np.repeat(np.arange(n_rows, dtype=np.int64), words.shape[1])
    keys = warp_ids * nbanks + banks.reshape(-1)
    counts = np.bincount(
        keys,
        weights=distinct.reshape(-1).astype(np.int64),
        minlength=n_rows * nbanks,
    ).reshape(n_rows, nbanks)

    degree = counts.max(axis=1).astype(np.int64)
    active_rows = m2d.any(axis=1)
    return np.where(active_rows, np.maximum(degree, 1), 0)


def analyze_shared_access(
    byte_offsets: np.ndarray,
    mask: np.ndarray | None,
    *,
    warp_size: int = 32,
    nbanks: int = 32,
    bank_bytes: int = 4,
) -> BankConflictSummary:
    """Analyze per-lane byte offsets within a block's shared memory.

    Multi-byte elements are classified by the bank of their first byte,
    matching the common 4-byte-element case the paper studies; 8-byte
    elements on real hardware can enable a 64-bit bank mode, which this
    model conservatively ignores.
    """
    offsets = np.asarray(byte_offsets, dtype=np.int64)
    o2d, m2d = lanes_to_warps(offsets, mask, warp_size)
    n_warps_total = int(m2d.any(axis=1).sum())
    n_active = int(m2d.sum())
    if n_warps_total == 0:
        return BankConflictSummary(0, 0, 0, 0, 0)

    degree = shared_pass_degrees(o2d, m2d, nbanks=nbanks, bank_bytes=bank_bytes)
    passes = int(degree.sum())
    return BankConflictSummary(
        n_warps=n_warps_total,
        n_active_lanes=n_active,
        passes=passes,
        conflict_extra=passes - n_warps_total,
        max_degree=int(degree.max(initial=0)),
    )
