"""Byte-addressed device memory allocator.

Real CUDA allocations matter to performance through their *addresses*:
``cudaMalloc`` returns 256-byte-aligned pointers, so a warp's accesses
line up with 128-byte transaction segments, while pointer arithmetic
(or a deliberately offset allocation) produces the misaligned accesses
the MemAlign microbenchmark studies.  The simulator therefore gives
every allocation a concrete byte address in a flat device address
space, and the coalescing/caching analyses operate on those addresses.

The allocator is a first-fit free-list allocator: simple, deterministic,
and able to exercise fragmentation behaviour in tests.  Each allocation
carries its own backing :class:`numpy.ndarray` of bytes; the address
space is purely a modelling construct, so no giant arena buffer is ever
materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import AllocationError, InvalidAddressError

__all__ = ["Allocation", "DeviceAllocator", "DEFAULT_ALIGNMENT"]

#: cudaMalloc guarantees at least 256-byte alignment.
DEFAULT_ALIGNMENT = 256


@dataclass
class Allocation:
    """A live device allocation.

    Attributes
    ----------
    addr:
        First byte address of the usable region.
    nbytes:
        Usable size in bytes.
    data:
        Backing byte buffer (``uint8`` array of length ``nbytes``).
    managed:
        True for unified-memory allocations (``cudaMallocManaged``),
        which participate in page-migration accounting instead of
        explicit copies.
    init_mask:
        Optional initialized-byte shadow (memcheck's uninitialized-read
        detection): present only when the allocator tracks
        initialization, True for every byte a copy or store has written.
    """

    addr: int
    nbytes: int
    data: np.ndarray
    managed: bool = False
    freed: bool = field(default=False, repr=False)
    init_mask: np.ndarray | None = field(default=None, repr=False)
    #: fast path: set once the whole shadow is True (monotonic)
    _all_init: bool = field(default=False, repr=False)

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.addr + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


class DeviceAllocator:
    """First-fit free-list allocator over a flat device address space.

    Parameters
    ----------
    capacity:
        Total device memory in bytes; allocating past it raises
        :class:`AllocationError`, like ``cudaErrorMemoryAllocation``.
    base:
        Address of the first allocatable byte.  Non-zero by default so
        that address 0 can never be a valid pointer.
    track_init:
        When True, every allocation carries an initialized-byte shadow
        (:attr:`Allocation.init_mask`) for memcheck's uninitialized-read
        detection.  Mutable: the sanitizing runtime flips it on before
        the first allocation.
    """

    def __init__(
        self, capacity: int, *, base: int = 1 << 20, track_init: bool = False
    ) -> None:
        if capacity <= 0:
            raise AllocationError("device capacity must be positive")
        self._base = base
        self.track_init = track_init
        self._capacity = int(capacity)
        # Free list of [start, end) holes, sorted by start.
        self._holes: list[tuple[int, int]] = [(base, base + capacity)]
        self._live: dict[int, Allocation] = {}
        self._bytes_in_use = 0
        self._peak_in_use = 0

    # -- introspection ---------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    @property
    def peak_bytes_in_use(self) -> int:
        return self._peak_in_use

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def iter_live(self) -> list[Allocation]:
        """Snapshot of live allocations, in address order (leakcheck)."""
        return sorted(self._live.values(), key=lambda a: a.addr)

    # -- allocation ------------------------------------------------------
    def malloc(
        self,
        nbytes: int,
        *,
        align: int = DEFAULT_ALIGNMENT,
        offset: int = 0,
        managed: bool = False,
    ) -> Allocation:
        """Allocate ``nbytes`` at an address ``≡ offset (mod align)``.

        ``offset`` deliberately mis-aligns the returned address relative
        to ``align`` — the MemAlign microbenchmark uses ``offset=4`` to
        reproduce the paper's unaligned allocation.
        """
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"alignment must be a power of two, got {align}")
        if not 0 <= offset < align:
            raise AllocationError(
                f"offset must satisfy 0 <= offset < align, got {offset}/{align}"
            )
        for i, (start, end) in enumerate(self._holes):
            addr = _round_up(start - offset, align) + offset
            if addr < start:
                addr += align
            if addr + nbytes <= end:
                self._carve(i, start, end, addr, addr + nbytes)
                alloc = Allocation(
                    addr=addr,
                    nbytes=int(nbytes),
                    data=np.zeros(int(nbytes), dtype=np.uint8),
                    managed=managed,
                    init_mask=(
                        np.zeros(int(nbytes), dtype=bool) if self.track_init else None
                    ),
                )
                self._live[addr] = alloc
                self._bytes_in_use += alloc.nbytes
                self._peak_in_use = max(self._peak_in_use, self._bytes_in_use)
                return alloc
        raise AllocationError(
            f"out of device memory: requested {nbytes} bytes, "
            f"{self._capacity - self._bytes_in_use} free (fragmented)"
        )

    def free(self, alloc: Allocation) -> None:
        """Release an allocation; double frees raise."""
        if alloc.freed or self._live.get(alloc.addr) is not alloc:
            raise InvalidAddressError(
                f"free of unknown or already-freed allocation at {alloc.addr:#x}"
            )
        del self._live[alloc.addr]
        alloc.freed = True
        self._bytes_in_use -= alloc.nbytes
        self._insert_hole(alloc.addr, alloc.end)

    # -- address resolution ----------------------------------------------
    def find(self, addr: int) -> Allocation:
        """Return the live allocation containing ``addr``.

        Raises :class:`InvalidAddressError` for wild pointers, like a
        device-side segfault would surface through ``cuda-memcheck``.
        """
        # Live dict is keyed by base address; do a bisect over sorted keys.
        for alloc in self._live.values():
            if alloc.contains(addr):
                return alloc
        raise InvalidAddressError(f"address {addr:#x} is not in any live allocation")

    def check_range(self, addr: int, nbytes: int) -> Allocation:
        """Validate that ``[addr, addr+nbytes)`` lies in one allocation."""
        alloc = self.find(addr)
        if addr + nbytes > alloc.end:
            raise InvalidAddressError(
                f"range [{addr:#x}, {addr + nbytes:#x}) overruns allocation "
                f"[{alloc.addr:#x}, {alloc.end:#x})"
            )
        return alloc

    # -- internals ---------------------------------------------------------
    def _carve(self, i: int, start: int, end: int, astart: int, aend: int) -> None:
        """Split hole ``i`` around the carved-out range [astart, aend)."""
        new: list[tuple[int, int]] = []
        if astart > start:
            new.append((start, astart))
        if aend < end:
            new.append((aend, end))
        self._holes[i : i + 1] = new

    def _insert_hole(self, start: int, end: int) -> None:
        """Insert a hole, merging with adjacent holes."""
        holes = self._holes
        lo = 0
        while lo < len(holes) and holes[lo][1] < start:
            lo += 1
        hi = lo
        while hi < len(holes) and holes[hi][0] <= end:
            start = min(start, holes[hi][0])
            end = max(end, holes[hi][1])
            hi += 1
        holes[lo:hi] = [(start, end)]


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
