"""Typed views over device allocations.

A :class:`DeviceArray` is the simulator's analogue of a device pointer
plus its element type: it couples a live :class:`Allocation` with a
dtype and shape, exposes NumPy views for functional execution, and maps
element indices to *byte addresses* for the coalescing and cache
analyses.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InvalidAddressError
from repro.mem.allocator import Allocation

__all__ = ["DeviceArray"]


class DeviceArray:
    """A dtype/shape view over (part of) a device allocation.

    Parameters
    ----------
    alloc:
        Backing allocation.
    dtype, shape:
        Element type and logical shape (C order).
    byte_offset:
        Offset of element 0 from ``alloc.addr`` — pointer arithmetic.
    """

    def __init__(
        self,
        alloc: Allocation,
        dtype: np.dtype | type,
        shape: tuple[int, ...] | int,
        *,
        byte_offset: int = 0,
    ) -> None:
        self.alloc = alloc
        self.dtype = np.dtype(dtype)
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise InvalidAddressError(f"negative dimension in shape {self.shape}")
        self.byte_offset = int(byte_offset)
        nbytes = self.size * self.itemsize
        if self.byte_offset < 0 or self.byte_offset + nbytes > alloc.nbytes:
            raise InvalidAddressError(
                f"view of {nbytes} bytes at offset {self.byte_offset} overruns "
                f"allocation of {alloc.nbytes} bytes"
            )
        #: Logical element extent for memcheck's red-zone checking: when
        #: set below ``size``, accesses in ``[logical_size, size)`` are
        #: silently absorbed by the padding (hardware semantics) but
        #: reported by memcheck.  None disables the check.
        self.logical_size: int | None = None

    # -- geometry ----------------------------------------------------------
    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    @property
    def base_addr(self) -> int:
        """Device byte address of element 0."""
        return self.alloc.addr + self.byte_offset

    # -- functional data access --------------------------------------------
    @property
    def view(self) -> np.ndarray:
        """Writable NumPy view of the array contents (simulator side)."""
        start = self.byte_offset
        stop = start + self.nbytes
        return self.alloc.data[start:stop].view(self.dtype).reshape(self.shape)

    def to_host(self) -> np.ndarray:
        """Copy the contents out as a fresh host array."""
        return self.view.copy()

    def fill_from(self, host: np.ndarray) -> None:
        """Copy host data in (functional part of ``cudaMemcpy`` H2D)."""
        host = np.asarray(host, dtype=self.dtype)
        if host.shape != self.shape:
            raise InvalidAddressError(
                f"host shape {host.shape} does not match device shape {self.shape}"
            )
        self.view[...] = host
        self.mark_initialized()

    def mark_initialized(self, flat_idx: np.ndarray | None = None) -> None:
        """Record bytes as written in the allocation's init shadow.

        No-op unless the allocator tracks initialization (memcheck).
        With ``flat_idx`` given, marks only those elements; otherwise
        the whole view.
        """
        im = self.alloc.init_mask
        if im is None:
            return
        if flat_idx is None:
            im[self.byte_offset : self.byte_offset + self.nbytes] = True
            return
        offs = self.byte_offset + np.asarray(flat_idx, dtype=np.int64) * self.itemsize
        im[offs[:, None] + np.arange(self.itemsize)] = True

    # -- address arithmetic ------------------------------------------------
    def addr_of(self, flat_index: np.ndarray | int) -> np.ndarray:
        """Byte address(es) of flat element index(es).

        Out-of-range indices raise — this is the simulator's bounds
        check, catching what ``cuda-memcheck`` would on hardware.
        """
        idx = np.asarray(flat_index, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= max(self.size, 1)):
            bad = idx[(idx < 0) | (idx >= self.size)]
            raise InvalidAddressError(
                f"index {bad.flat[0]} out of range for array of {self.size} elements"
            )
        return self.base_addr + idx * self.itemsize

    def slice(self, start: int, length: int) -> "DeviceArray":
        """A view of elements ``[start, start+length)`` — device pointer
        arithmetic, as used by chunked stream pipelines."""
        if start < 0 or length < 0 or start + length > self.size:
            raise InvalidAddressError(
                f"slice [{start}, {start + length}) outside array of {self.size}"
            )
        return DeviceArray(
            self.alloc,
            self.dtype,
            (length,),
            byte_offset=self.byte_offset + start * self.itemsize,
        )

    def reshape(self, *shape: int) -> "DeviceArray":
        """A new view with a different shape over the same bytes."""
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        new = DeviceArray(self.alloc, self.dtype, tuple(shape), byte_offset=self.byte_offset)
        if new.size != self.size:
            raise InvalidAddressError(
                f"cannot reshape {self.shape} ({self.size} elems) to {shape}"
            )
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceArray(addr={self.base_addr:#x}, dtype={self.dtype}, "
            f"shape={self.shape})"
        )
