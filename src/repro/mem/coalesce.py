"""Vectorized per-warp memory-coalescing analysis.

The GPU memory controller services a warp's global-memory request with
one transaction per distinct *segment* (128 bytes on the L1 path) the
warp's lanes touch, and moves data from DRAM at *sector* (32-byte)
granularity.  Figure 7 of the paper illustrates the three regimes this
module quantifies:

* coalesced — 32 lanes touch one 128-byte segment → 1 transaction;
* strided — each lane touches its own segment → 32 transactions;
* random — somewhere in between.

Everything here is pure address arithmetic on NumPy arrays: lane
addresses are reshaped to ``(warps, warp_size)``, masked lanes are
replaced by a sentinel, rows are sorted, and distinct values per row are
counted with a shifted comparison.  For very large grids a deterministic
warp sample is analyzed and counts are rescaled, keeping cost bounded
while preserving the statistics of regular access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AccessSummary",
    "lanes_to_warps",
    "warp_distinct_counts",
    "segment_distinct_counts",
    "analyze_access",
    "MAX_ANALYZED_WARPS",
]

_SENTINEL = np.iinfo(np.int64).max

#: Above this many warps, transaction analysis samples every k-th warp.
MAX_ANALYZED_WARPS = 1 << 16


@dataclass(frozen=True)
class AccessSummary:
    """Coalescing statistics for one warp-wide access instruction.

    Counts are totals across the whole grid; when warp sampling was
    used they are unbiased rescalings (``sample_fraction`` < 1).
    """

    n_warps: int            #: warps with at least one active lane
    n_active_lanes: int     #: total active lanes
    transactions: float     #: distinct L1 segments summed over warps
    sectors: float          #: distinct 32B sectors summed over warps
    bursts: float           #: distinct 64B DRAM bursts summed over warps
    unique_sectors: float   #: distinct sectors across the whole access
    unique_bursts: float    #: distinct 64B bursts across the whole access
    bytes_requested: int    #: useful bytes (active lanes x itemsize)
    sample_fraction: float  #: fraction of warps actually analyzed

    @property
    def transactions_per_warp(self) -> float:
        return self.transactions / self.n_warps if self.n_warps else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready projection for activity payloads and metrics."""
        return {
            "n_warps": self.n_warps,
            "n_active_lanes": self.n_active_lanes,
            "transactions": self.transactions,
            "sectors": self.sectors,
            "bytes_requested": self.bytes_requested,
            "transactions_per_warp": self.transactions_per_warp,
            "bus_utilization": self.bus_utilization,
            "sample_fraction": self.sample_fraction,
        }

    @property
    def bus_utilization(self) -> float:
        """Useful bytes / bytes moved at sector granularity (≤ 1)."""
        moved = self.sectors * 32
        return self.bytes_requested / moved if moved else 0.0

    @property
    def dram_burst_factor(self) -> float:
        """DRAM overfetch of scattered sectors (1.0 dense .. 2.0 isolated).

        The minimum DRAM burst is 64 bytes on HBM2/GDDR, i.e. two 32-byte
        sectors; a request stream of isolated sectors therefore moves
        twice its sector bytes from DRAM.  Computed over the *distinct*
        sectors/bursts of the whole access, so segment-boundary sharing
        between neighbouring warps (misaligned streams) is not
        over-penalized, while genuinely isolated sectors (strided
        streams) are.
        """
        if not self.unique_sectors:
            return 1.0
        return min(max(2.0 * self.unique_bursts / self.unique_sectors, 1.0), 2.0)


def lanes_to_warps(
    values: np.ndarray,
    mask: np.ndarray | None,
    warp_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Reshape flat per-lane data to ``(warps, warp_size)`` with padding.

    Returns the padded 2-D values and the matching boolean activity
    mask.  Lanes beyond the end of the grid pad out the last warp and
    are marked inactive.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if mask is None:
        mask = np.ones(n, dtype=bool)
    else:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != n:
            raise ValueError(f"mask length {mask.shape[0]} != lanes {n}")
    n_warps = -(-n // warp_size) if n else 0
    pad = n_warps * warp_size - n
    if pad:
        values = np.concatenate([values, np.zeros(pad, dtype=values.dtype)])
        mask = np.concatenate([mask, np.zeros(pad, dtype=bool)])
    return values.reshape(n_warps, warp_size), mask.reshape(n_warps, warp_size)


def warp_distinct_counts(keys2d: np.ndarray, mask2d: np.ndarray) -> np.ndarray:
    """Count distinct key values per row, considering only masked-in lanes.

    The workhorse of both transaction counting and (via composite keys)
    bank-conflict analysis: sort each row with inactive lanes pushed to
    a sentinel, then count positions where the sorted value changes.
    """
    if keys2d.size == 0:
        return np.zeros(keys2d.shape[0], dtype=np.int64)
    work = np.where(mask2d, keys2d, _SENTINEL)
    work.sort(axis=1)
    valid = work != _SENTINEL
    firsts = valid[:, :1].astype(np.int64)
    if work.shape[1] == 1:
        return firsts[:, 0]
    changed = valid[:, 1:] & (work[:, 1:] != work[:, :-1])
    return firsts[:, 0] + changed.sum(axis=1, dtype=np.int64)


def segment_distinct_counts(
    a2d: np.ndarray,
    m2d: np.ndarray,
    granularity: int,
    itemsize: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-warp distinct segment counts at one granularity.

    An element whose last byte lands in a different segment than its
    first counts against both (the misaligned-access inflation of paper
    §IV-C).  Returns ``(per_warp_counts, keys, keys_mask)`` — the keys
    are reused by callers that also need whole-access distinct values.
    """
    first = a2d // granularity
    last = (a2d + (itemsize - 1)) // granularity
    if (first != last).any():
        keys = np.concatenate([first, last], axis=1)
        kmask = np.concatenate([m2d, m2d], axis=1)
    else:
        keys, kmask = first, m2d
    return warp_distinct_counts(keys, kmask), keys, kmask


def _select_sample(
    n_warps: int, limit: int
) -> tuple[slice | np.ndarray, float]:
    """Deterministic warp sample preserving local adjacency.

    Takes contiguous chunks of warps spread evenly across the grid
    (rather than a strided sample): per-warp statistics stay unbiased
    for regular access patterns, while neighbouring warps inside each
    chunk still share segment boundaries, which keeps the distinct-
    sector/burst dedup honest for misaligned streams.
    """
    if n_warps <= limit:
        return slice(None), 1.0
    chunk = min(256, limit)
    n_chunks = max(limit // chunk, 1)
    starts = np.linspace(0, n_warps - chunk, n_chunks).astype(np.int64)
    idx = (starts[:, None] + np.arange(chunk)).reshape(-1)
    idx = np.unique(idx)  # chunks may overlap on small grids
    return idx, idx.size / n_warps


def analyze_access(
    addrs: np.ndarray,
    mask: np.ndarray | None,
    itemsize: int,
    *,
    warp_size: int = 32,
    transaction_bytes: int = 128,
    sector_bytes: int = 32,
    max_analyzed_warps: int = MAX_ANALYZED_WARPS,
) -> AccessSummary:
    """Analyze one access instruction's lane byte-addresses.

    Each active lane reads/writes ``itemsize`` bytes starting at its
    address; an element straddling a segment boundary counts against
    both segments, which is how misaligned accesses inflate the
    transaction count (paper §IV-C).
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    a2d, m2d = lanes_to_warps(addrs, mask, warp_size)
    n_warps_total = int(m2d.any(axis=1).sum())
    n_active = int(m2d.sum())
    if n_warps_total == 0:
        return AccessSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 1.0)

    sel, fraction = _select_sample(a2d.shape[0], max_analyzed_warps)
    a = a2d[sel]
    m = m2d[sel]

    seg_counts, _, _ = segment_distinct_counts(a, m, transaction_bytes, itemsize)
    transactions = float(seg_counts.sum())

    sec_counts, sec_keys, sec_mask = segment_distinct_counts(
        a, m, sector_bytes, itemsize
    )
    sectors = float(sec_counts.sum())

    burst_bytes = 2 * sector_bytes
    b_counts, b_keys, b_mask = segment_distinct_counts(a, m, burst_bytes, itemsize)
    bursts = float(b_counts.sum())

    unique_sectors = float(np.unique(sec_keys[sec_mask]).size)
    unique_bursts = float(np.unique(b_keys[b_mask]).size)

    scale = 1.0 / fraction
    return AccessSummary(
        n_warps=n_warps_total,
        n_active_lanes=n_active,
        transactions=transactions * scale,
        sectors=sectors * scale,
        bursts=bursts * scale,
        unique_sectors=unique_sectors * scale,
        unique_bursts=unique_bursts * scale,
        bytes_requested=n_active * itemsize,
        sample_fraction=fraction,
    )
