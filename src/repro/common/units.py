"""Units, constants and human-readable formatting helpers.

Simulated quantities flow through the code base in SI base units —
seconds, bytes, hertz — and are only converted at the reporting edge.
These helpers centralise the conversions so magic constants do not leak
into the models.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KHZ",
    "MHZ",
    "GHZ",
    "USEC",
    "MSEC",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "fmt_count",
    "parse_size",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

USEC = 1e-6
MSEC = 1e-3

_SIZE_SUFFIXES = [
    ("TiB", GIB * 1024),
    ("GiB", GIB),
    ("MiB", MIB),
    ("KiB", KIB),
]


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``1.50 MiB``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for suffix, factor in _SIZE_SUFFIXES:
        if n >= factor:
            return f"{sign}{n / factor:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration with an appropriate submultiple, e.g. ``12.3 us``."""
    s = float(seconds)
    sign = "-" if s < 0 else ""
    s = abs(s)
    if s >= 1.0:
        return f"{sign}{s:.3f} s"
    if s >= 1e-3:
        return f"{sign}{s * 1e3:.3f} ms"
    if s >= 1e-6:
        return f"{sign}{s * 1e6:.3f} us"
    return f"{sign}{s * 1e9:.1f} ns"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a bandwidth, e.g. ``900.0 GB/s`` (decimal, as vendors do)."""
    r = float(bytes_per_second)
    if r >= 1e9:
        return f"{r / 1e9:.1f} GB/s"
    if r >= 1e6:
        return f"{r / 1e6:.1f} MB/s"
    if r >= 1e3:
        return f"{r / 1e3:.1f} KB/s"
    return f"{r:.1f} B/s"


def fmt_count(n: float) -> str:
    """Format a large count with thousands separators."""
    if float(n) == int(n):
        return f"{int(n):,}"
    return f"{float(n):,.2f}"


def parse_size(text: str) -> int:
    """Parse ``"64KiB"``/``"2 MiB"``/``"128"`` into a byte count.

    Decimal suffixes (``KB``/``MB``/``GB``) are also accepted and treated
    as powers of ten, matching how datasheets quote DRAM sizes.
    """
    t = text.strip()
    suffixes = {
        "TIB": GIB * 1024, "GIB": GIB, "MIB": MIB, "KIB": KIB,
        "TB": 10 ** 12, "GB": 10 ** 9, "MB": 10 ** 6, "KB": 10 ** 3,
        "B": 1,
    }
    upper = t.upper().replace(" ", "")
    for suffix in sorted(suffixes, key=len, reverse=True):
        if upper.endswith(suffix):
            num = upper[: -len(suffix)]
            if not num:
                raise ValueError(f"no numeric part in size {text!r}")
            return int(float(num) * suffixes[suffix])
    return int(float(upper))
