"""Plain-text table rendering for reports and benchmark output.

The benchmark harness prints the same rows/series the paper reports;
this module renders them as aligned ASCII tables so the output is
readable both on a terminal and inside ``pytest -s`` logs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table", "render_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), len(sep)))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    x_name: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x axis.

    This is the "figure" analogue of :func:`render_table`: each paper
    figure becomes a table with the sweep variable in the first column
    and one column per plotted line.
    """
    headers = [x_name, *series.keys()]
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {len(x_values)}"
            )
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)
