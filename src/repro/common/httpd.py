"""Hardened stdlib HTTP serving base shared by ``--metrics-port`` and
``repro serve``.

``http.server`` out of the box is fine for a lab and rude in
production: no per-connection read timeout (a client that connects and
says nothing pins a thread forever), a 64 KiB request-line bound that
is far larger than any legitimate request this project serves, and —
without ``allow_reuse_address`` — an ``EADDRINUSE`` window after every
restart while the old socket drains ``TIME_WAIT``.  Both HTTP surfaces
(the metrics endpoint of :mod:`repro.obs.server` and the
benchmark-as-a-service daemon of :mod:`repro.serve`) build on the two
classes here so the hardening is written once:

* ``HardenedHTTPServer`` — a :class:`~http.server.ThreadingHTTPServer`
  with ``SO_REUSEADDR`` (restarts bind immediately), daemon handler
  threads (a wedged connection cannot block process exit), and a
  ``close()`` that shuts the listening socket down cleanly so a
  SIGTERM'd daemon leaves nothing half-open.
* ``HardenedHandler`` — a :class:`~http.server.BaseHTTPRequestHandler`
  that bounds the request line (414 past
  :data:`MAX_REQUEST_LINE` bytes), bounds the header block (431 past
  :data:`MAX_HEADER_COUNT` headers or :data:`MAX_HEADER_BYTES` bytes),
  arms a per-connection read timeout (a silent client is dropped, not
  collected), and never logs routine requests to stderr.

Handlers subclass ``HardenedHandler`` and implement ``do_GET`` et al.
as usual; the limits are class attributes so a subclass can tighten or
relax them.
"""

from __future__ import annotations

import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "HardenedHTTPServer",
    "HardenedHandler",
    "MAX_REQUEST_LINE",
    "MAX_HEADER_COUNT",
    "MAX_HEADER_BYTES",
    "READ_TIMEOUT_S",
]

#: request-line bound; longest legitimate path here is a 64-hex
#: fingerprint plus a short query string, so 4 KiB is generous
MAX_REQUEST_LINE = 4096

#: header-block bounds (count and total bytes)
MAX_HEADER_COUNT = 64
MAX_HEADER_BYTES = 16384

#: per-connection read timeout: a client that opens a socket and goes
#: silent is dropped after this many seconds instead of pinning a thread
READ_TIMEOUT_S = 10.0


class HardenedHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with restart-safe and leak-safe defaults."""

    allow_reuse_address = True     #: SO_REUSEADDR: no EADDRINUSE on restart
    daemon_threads = True          #: stuck handlers never block exit
    request_queue_size = 32

    _serving = False

    def server_bind(self) -> None:
        # allow_reuse_address already sets SO_REUSEADDR in server_bind;
        # set it explicitly too so the guarantee survives refactors of
        # the attribute above
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        super().server_bind()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def close(self) -> None:
        """Stop accepting and close the listening socket cleanly.

        ``shutdown()`` ends ``serve_forever`` — but only when that loop
        is actually running: calling it on a bound-but-never-served
        socket blocks forever on the stdlib's shut-down event.  Then
        ``server_close`` closes the socket — paired with
        ``SO_REUSEADDR`` this is why an immediate restart on the same
        port always binds.
        """
        if self._serving:
            self.shutdown()
        self.server_close()


class HardenedHandler(BaseHTTPRequestHandler):
    """Request handler enforcing line/header bounds and read timeouts."""

    server_version = "repro-httpd/1"
    max_request_line = MAX_REQUEST_LINE
    max_header_count = MAX_HEADER_COUNT
    max_header_bytes = MAX_HEADER_BYTES
    read_timeout_s = READ_TIMEOUT_S

    def setup(self) -> None:
        # self.connection is only assigned inside super().setup(); the
        # raw socket is already here as self.request
        self.request.settimeout(self.read_timeout_s)
        super().setup()

    def handle_one_request(self) -> None:
        """One request with the line bound enforced *before* parsing.

        Mirrors the stdlib flow but reads at most
        ``max_request_line + 1`` bytes of request line — an oversized
        line is answered with 414 and the connection dropped, instead
        of buffering 64 KiB of attacker-controlled input per the
        stdlib default.  A read timeout or torn connection closes the
        socket silently.
        """
        try:
            self.raw_requestline = self.rfile.readline(
                self.max_request_line + 1
            )
            if len(self.raw_requestline) > self.max_request_line:
                self.requestline = ""
                self.request_version = ""
                self.command = ""
                self.send_error(414)
                self.close_connection = True
                return
            if not self.raw_requestline:
                self.close_connection = True
                return
            if not self.parse_request():
                return  # parse_request already sent the error
            if not self._headers_within_bounds():
                return
            mname = "do_" + self.command
            if not hasattr(self, mname):
                self.send_error(501, f"Unsupported method ({self.command!r})")
                return
            getattr(self, mname)()
            self.wfile.flush()
        except (TimeoutError, socket.timeout):
            # silent or stalled client: drop without a traceback
            self.close_connection = True
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _headers_within_bounds(self) -> bool:
        """431 when the (already parsed) header block exceeds bounds."""
        headers = self.headers
        if headers is None:  # pragma: no cover - parse_request failed first
            return True
        count = len(headers.keys())
        size = sum(
            len(k) + len(str(v)) + 4 for k, v in headers.items()
        )
        if count > self.max_header_count or size > self.max_header_bytes:
            self.send_error(431)
            self.close_connection = True
            return False
        return True

    def log_message(self, fmt: str, *args) -> None:
        # routine requests stay silent; subclasses opt in to logging
        pass
