"""Exception hierarchy for the simulator.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch simulator problems without masking genuine Python bugs.
The sub-classes mirror the CUDA error families a real runtime reports:
configuration problems at launch time, invalid memory operations, and
misuse of the stream/graph APIs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LaunchConfigError",
    "MemoryError_",
    "AllocationError",
    "InvalidAddressError",
    "StreamError",
    "GraphError",
    "KernelRuntimeError",
    "SpecError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SpecError(ReproError):
    """An architecture specification is inconsistent or unknown."""


class LaunchConfigError(ReproError):
    """A kernel launch configuration is invalid.

    Raised for zero/negative dimensions, block sizes over the device
    limit, shared-memory requests over the per-block capacity, and
    similar misconfigurations that a real CUDA runtime would reject with
    ``cudaErrorInvalidConfiguration``.
    """


class MemoryError_(ReproError):
    """Base class for device-memory errors (named to avoid shadowing
    the builtin :class:`MemoryError`)."""


class AllocationError(MemoryError_):
    """Device memory allocation failed (arena exhausted, bad size)."""


class InvalidAddressError(MemoryError_):
    """A kernel or copy touched memory outside any live allocation."""


class StreamError(ReproError):
    """Misuse of streams or events (e.g. waiting on an unrecorded event)."""


class GraphError(ReproError):
    """Misuse of the task-graph API (capture violations, cycles)."""


class KernelRuntimeError(ReproError):
    """A kernel body raised or misused the device context."""
