"""Exception hierarchy for the simulator.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch simulator problems without masking genuine Python bugs.
The sub-classes mirror the CUDA error families a real runtime reports:
configuration problems at launch time, invalid memory operations, and
misuse of the stream/graph APIs.

Each class maps to the ``cudaError_t`` code a real runtime would return
(:func:`cuda_error_name`), and the code is appended to the rendered
message so log lines read like driver output::

    >>> str(LaunchConfigError("block of 2048 threads"))
    'block of 2048 threads [cudaErrorInvalidConfiguration]'
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LaunchConfigError",
    "MemoryError_",
    "AllocationError",
    "InvalidAddressError",
    "StreamError",
    "GraphError",
    "KernelRuntimeError",
    "WatchdogTimeout",
    "SanitizerError",
    "SpecError",
    "BackendDivergenceError",
    "cuda_error_name",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    def __str__(self) -> str:
        base = super().__str__()
        return f"{base} [{cuda_error_name(self)}]" if base else cuda_error_name(self)


class SpecError(ReproError):
    """An architecture specification is inconsistent or unknown."""


class LaunchConfigError(ReproError):
    """A kernel launch configuration is invalid.

    Raised for zero/negative dimensions, block sizes over the device
    limit, shared-memory requests over the per-block capacity, and
    similar misconfigurations that a real CUDA runtime would reject with
    ``cudaErrorInvalidConfiguration``.
    """


class MemoryError_(ReproError):
    """Base class for device-memory errors (named to avoid shadowing
    the builtin :class:`MemoryError`)."""


class AllocationError(MemoryError_):
    """Device memory allocation failed (arena exhausted, bad size)."""


class InvalidAddressError(MemoryError_):
    """A kernel or copy touched memory outside any live allocation."""


class StreamError(ReproError):
    """Misuse of streams or events (e.g. waiting on an unrecorded event)."""


class GraphError(ReproError):
    """Misuse of the task-graph API (capture violations, cycles)."""


class KernelRuntimeError(ReproError):
    """A kernel body raised or misused the device context."""


class WatchdogTimeout(KernelRuntimeError):
    """A kernel exceeded the runtime's step budget and was killed.

    The analog of the WDDM/display watchdog killing a long-running
    kernel (``cudaErrorLaunchTimeout``).  Like a real launch timeout it
    is a *sticky* error: the context stays poisoned until
    :meth:`~repro.host.runtime.CudaLite.reset`.
    """


class SanitizerError(ReproError):
    """A sanitizer tool found errors and the caller asked to fail hard.

    Raised by :meth:`repro.sanitize.SanitizerReport.raise_if_errors`
    and by the ``sanitize`` CLI when a run must gate on correctness.
    """


class BackendDivergenceError(ReproError):
    """An accelerated execution backend disagreed with the reference oracle.

    The differential suite keeps every backend bit-identical, so in
    normal operation this never fires; it exists as the typed signal a
    self-check (or the scheduler chaos plan) raises so the supervised
    scheduler can re-run the job on the reference backend — the
    "degrade to the oracle" rung of the resilience ladder.
    """


#: cudaError_t analog for each error family, most-derived classes first
#: (lookup walks the MRO, so subclasses inherit their family's code
#: unless they have an entry of their own).
_CUDA_ERROR_NAMES: dict[type, str] = {
    WatchdogTimeout: "cudaErrorLaunchTimeout",
    SanitizerError: "cudaErrorAssert",
    BackendDivergenceError: "cudaErrorUnknown",
    LaunchConfigError: "cudaErrorInvalidConfiguration",
    AllocationError: "cudaErrorMemoryAllocation",
    InvalidAddressError: "cudaErrorIllegalAddress",
    MemoryError_: "cudaErrorInvalidValue",
    StreamError: "cudaErrorInvalidResourceHandle",
    GraphError: "cudaErrorStreamCaptureInvalidated",
    KernelRuntimeError: "cudaErrorLaunchFailure",
    SpecError: "cudaErrorInvalidDevice",
    ReproError: "cudaErrorUnknown",
}


def cuda_error_name(error: ReproError | type[ReproError]) -> str:
    """The ``cudaError_t`` enumerator a real runtime would report.

    Accepts an exception instance or class; unknown subclasses resolve
    through their nearest mapped ancestor (ultimately
    ``cudaErrorUnknown``).
    """
    cls = error if isinstance(error, type) else type(error)
    for base in cls.__mro__:
        name = _CUDA_ERROR_NAMES.get(base)
        if name is not None:
            return name
    return "cudaErrorUnknown"
