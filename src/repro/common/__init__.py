"""Shared utilities: errors, units, deterministic RNG, table rendering."""

from repro.common.errors import (
    AllocationError,
    GraphError,
    InvalidAddressError,
    KernelRuntimeError,
    LaunchConfigError,
    MemoryError_,
    ReproError,
    SpecError,
    StreamError,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.common.tables import render_series, render_table
from repro.common.units import (
    GHZ,
    GIB,
    KIB,
    MIB,
    fmt_bytes,
    fmt_count,
    fmt_rate,
    fmt_time,
    parse_size,
)

__all__ = [
    "AllocationError",
    "GraphError",
    "InvalidAddressError",
    "KernelRuntimeError",
    "LaunchConfigError",
    "MemoryError_",
    "ReproError",
    "SpecError",
    "StreamError",
    "DEFAULT_SEED",
    "derive_seed",
    "make_rng",
    "render_series",
    "render_table",
    "GHZ",
    "GIB",
    "KIB",
    "MIB",
    "fmt_bytes",
    "fmt_count",
    "fmt_rate",
    "fmt_time",
    "parse_size",
]
