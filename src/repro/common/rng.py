"""Deterministic random-number helpers.

Workload generators must be reproducible run-to-run so that figure
regeneration is stable.  All randomness in the package goes through
:func:`make_rng`, which derives a :class:`numpy.random.Generator` from an
integer seed and an optional stream label, so independent components get
decorrelated but stable streams.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng", "derive_seed"]

DEFAULT_SEED = 0xC0DA  # stable package-wide default


def derive_seed(seed: int, label: str = "") -> int:
    """Mix a base seed with a stream label into a new 63-bit seed."""
    h = zlib.crc32(label.encode("utf-8"), seed & 0xFFFFFFFF)
    return ((seed << 20) ^ h) & 0x7FFFFFFFFFFFFFFF


def make_rng(seed: int | None = None, label: str = "") -> np.random.Generator:
    """Return a seeded NumPy ``Generator``.

    Parameters
    ----------
    seed:
        Base seed; ``None`` selects :data:`DEFAULT_SEED`.
    label:
        Optional stream name, so e.g. the SpMV workload generator and the
        Mandelbrot sampler draw from unrelated streams under one seed.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(derive_seed(int(seed), label))
