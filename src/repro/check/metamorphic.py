"""Metamorphic relations over the simulator's counter pipeline.

A metamorphic relation transforms a run's *input* in a way whose effect
on the *counters* is known in advance: scaling the problem scales
transaction counts proportionally, permuting the order blocks process
their chunks changes nothing, and changing the warp width moves
divergence in a direction the kernel's branch structure predicts.  The
relations execute real kernel launches through
:class:`~repro.host.runtime.CudaLite` under each execution backend
(``reference`` and ``fast``), so a fast-path shortcut that breaks a
physical proportionality is caught even when the differential suite's
fixed cases still agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.arch.presets import CARINA
from repro.check.report import CheckOutcome
from repro.common.errors import ReproError
from repro.exec import use_backend
from repro.host.runtime import CudaLite
from repro.simt.kernel import kernel
from repro.simt.stats import KernelStats

__all__ = [
    "RELATIONS",
    "relation",
    "run_relations",
    "list_relations",
]

#: relative tolerance for proportionality relations (sampling slack)
SCALE_TOL = 0.05

#: counters that must be preserved exactly under block-order permutation
ORDER_FREE_COUNTERS = (
    "issue_cycles",
    "warp_instructions",
    "thread_instructions",
    "global_requests",
    "transactions",
    "sectors_requested",
    "bytes_requested",
    "branches",
    "divergent_branches",
)

Relation = Callable[[str], list[CheckOutcome]]

RELATIONS: dict[str, Relation] = {}


def relation(name: str) -> Callable[[Relation], Relation]:
    """Register a metamorphic relation under ``name``."""

    def register(fn: Relation) -> Relation:
        if name in RELATIONS:
            raise ReproError(f"duplicate relation {name!r}")
        RELATIONS[name] = fn
        return fn

    return register


def list_relations() -> list[str]:
    return sorted(RELATIONS)


def run_relations(
    names: Sequence[str] | None = None,
    *,
    backends: Sequence[str] = ("reference", "fast"),
) -> list[CheckOutcome]:
    """Execute relations (all by default) under each backend."""
    outcomes: list[CheckOutcome] = []
    for name in names or list_relations():
        try:
            fn = RELATIONS[name]
        except KeyError:
            raise ReproError(
                f"unknown relation {name!r}; available: "
                f"{', '.join(list_relations())}"
            ) from None
        for backend in backends:
            with use_backend(backend):
                outcomes.extend(fn(backend))
    return outcomes


# ----------------------------------------------------------------------
# Probe kernels
# ----------------------------------------------------------------------

@kernel(name="mr_stream")
def _stream_kernel(ctx, x, y):
    """Unit-stride copy-scale: one coalesced load + store per thread."""
    tid = ctx.global_thread_id()
    ctx.store(y, tid, 2.0 * ctx.load(x, tid))


@kernel(name="mr_strided")
def _strided_kernel(ctx, x, y, stride):
    """Strided gather: every request explodes into many transactions."""
    tid = ctx.global_thread_id()
    n = ctx.total_threads()
    ctx.store(y, tid, ctx.load(x, (tid * stride) % n))


@kernel(name="mr_block_mapped")
def _block_mapped_kernel(ctx, order, x, y):
    """Process chunk ``order[blockIdx.x]`` instead of chunk ``blockIdx.x``.

    With ``order`` a permutation, the set of warps and the addresses
    each touches are identical to the identity mapping — only *which*
    block does the work changes, so every counter must be preserved.
    """
    logical = ctx.load(order, ctx.block_idx_x)
    i = logical * ctx.block_dim.x + ctx.thread_idx_x
    ctx.store(y, i, 2.0 * ctx.load(x, i))


@kernel(name="mr_parity_branch")
def _parity_branch_kernel(ctx, x, y):
    """Even/odd lanes branch apart: diverges at any warp width > 1."""
    tid = ctx.global_thread_id()
    ctx.branch(
        (tid % 2) == 0,
        lambda: ctx.store(y, tid, 2.0 * ctx.load(x, tid)),
        lambda: ctx.store(y, tid, 3.0 * ctx.load(x, tid)),
    )


@kernel(name="mr_chunk_branch")
def _chunk_branch_kernel(ctx, x, y):
    """Branch uniform within 32-lane chunks: diverges only for warps > 32."""
    tid = ctx.global_thread_id()
    ctx.branch(
        ((tid // 32) % 2) == 0,
        lambda: ctx.store(y, tid, 2.0 * ctx.load(x, tid)),
        lambda: ctx.store(y, tid, 3.0 * ctx.load(x, tid)),
    )


def _launch(
    kdef, n: int, args_fn, *, system=None, block: int = 256
) -> tuple[KernelStats, np.ndarray]:
    """Run one probe launch of ``n`` threads; returns (stats, output)."""
    system = system or CARINA
    rt = CudaLite(system)
    hx = np.arange(n, dtype=np.float32) % 1024
    x = rt.to_device(hx)
    y = rt.malloc(n)
    stats = rt.launch(kdef, -(-n // block), block, *args_fn(rt, x, y))
    rt.synchronize()
    return stats, y.to_host()


def _outcome(
    name: str, subject: str, backend: str, passed: bool, detail: str
) -> CheckOutcome:
    return CheckOutcome(
        kind="relation",
        subject=subject,
        name=name,
        passed=passed,
        detail=detail,
        backend=backend,
    )


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------

@relation("scale-n-scales-transactions")
def _scale_n(backend: str) -> list[CheckOutcome]:
    """Scaling the grid by k scales memory counters by ~k.

    Runs the coalesced stream and a 32-stride gather at n and 4n; for
    both patterns transactions, requested sectors, and useful bytes are
    extensive quantities and must scale with the grid.
    """
    outcomes = []
    k = 4
    for kdef, args_fn, subject in (
        (_stream_kernel, lambda rt, x, y: (x, y), "mr_stream"),
        (
            _strided_kernel,
            lambda rt, x, y: (x, y, 32),
            "mr_strided",
        ),
    ):
        small, _ = _launch(kdef, 1 << 14, args_fn)
        large, _ = _launch(kdef, k << 14, args_fn)
        details = []
        ok = True
        for counter in ("transactions", "sectors_requested", "bytes_requested"):
            a = getattr(small, counter)
            b = getattr(large, counter)
            ratio = b / a if a else float("inf")
            if abs(ratio - k) > k * SCALE_TOL:
                ok = False
            details.append(f"{counter} x{ratio:.3f}")
        outcomes.append(
            _outcome(
                "scale-n-scales-transactions",
                subject,
                backend,
                ok,
                f"n scaled x{k}: " + ", ".join(details) +
                (f" (expected ~x{k})" if not ok else ""),
            )
        )
    return outcomes


@relation("block-order-permutation-preserves-counters")
def _block_permutation(backend: str) -> list[CheckOutcome]:
    """Permuting which block processes which chunk changes no counter."""
    n, block = 1 << 16, 256
    blocks = n // block
    rng = np.random.default_rng(20260806)
    perm = rng.permutation(blocks).astype(np.int32)
    identity = np.arange(blocks, dtype=np.int32)

    def run(order: np.ndarray) -> tuple[KernelStats, np.ndarray]:
        rt = CudaLite(CARINA)
        hx = (np.arange(n, dtype=np.float32) % 512) + 1.0
        x = rt.to_device(hx)
        y = rt.malloc(n)
        o = rt.to_device(order)
        stats = rt.launch(_block_mapped_kernel, blocks, block, o, x, y)
        rt.synchronize()
        return stats, y.to_host()

    base_stats, base_out = run(identity)
    perm_stats, perm_out = run(perm)
    mismatches = []
    for counter in ORDER_FREE_COUNTERS:
        a = getattr(base_stats, counter)
        b = getattr(perm_stats, counter)
        if a != b:
            mismatches.append(f"{counter}: {a:g} -> {b:g}")
    if not np.array_equal(base_out, perm_out):
        mismatches.append("output array differs")
    return [
        _outcome(
            "block-order-permutation-preserves-counters",
            "mr_block_mapped",
            backend,
            not mismatches,
            "identity vs permuted block order: "
            + ("; ".join(mismatches) if mismatches else
               f"{len(ORDER_FREE_COUNTERS)} counters + output identical"),
        )
    ]


@relation("warp-size-shifts-divergence")
def _warp_size(backend: str) -> list[CheckOutcome]:
    """Warp-width changes move divergence exactly as branch shape predicts.

    The parity branch diverges at every power-of-two warp width > 1;
    the 32-lane chunk branch is warp-uniform for widths dividing 32 and
    diverges only once warps span both chunks (width 64).
    """
    outcomes = []
    n = 1 << 14
    for width in (16, 32, 64):
        system = CARINA.evolve(gpu=CARINA.gpu.evolve(warp_size=width))
        parity, _ = _launch(_parity_branch_kernel, n,
                            lambda rt, x, y: (x, y), system=system)
        chunk, _ = _launch(_chunk_branch_kernel, n,
                           lambda rt, x, y: (x, y), system=system)
        expect_chunk_divergent = width > 32
        ok = (
            parity.divergent_branches > 0
            and parity.branch_efficiency == 0.0
            and (chunk.divergent_branches > 0) == expect_chunk_divergent
            and (
                chunk.warp_execution_efficiency == 1.0
                if not expect_chunk_divergent
                else chunk.warp_execution_efficiency < 1.0
            )
        )
        outcomes.append(
            _outcome(
                "warp-size-shifts-divergence",
                f"warp{width}",
                backend,
                ok,
                f"width {width}: parity divergent_branches="
                f"{parity.divergent_branches} (expected >0), chunk "
                f"divergent_branches={chunk.divergent_branches} (expected "
                f"{'>0' if expect_chunk_divergent else '0'}), chunk warp "
                f"efficiency={chunk.warp_execution_efficiency:.3f}",
            )
        )
    return outcomes
