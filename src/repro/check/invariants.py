"""Physical-invariant registry over exported metrics documents.

The simulator's counters obey conservation laws the real hardware also
obeys: a kernel cannot move fewer transactions than its useful bytes
require, efficiencies and occupancy are fractions, DRAM traffic flows
through L2, bank conflicts only ever *add* passes.  Each invariant here
is a named rule over one kernel entry of a ``repro-prof-metrics/1``
document (or over the result rows of a ``repro-prof-bench/1``
document), so any run, sweep, saved baseline, or cached scheduler
payload can be audited without re-executing it.

Register new rules with :func:`invariant`; ``repro check`` runs the
whole registry via :func:`check_document`.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.check.report import CheckOutcome
from repro.common.errors import ReproError

__all__ = [
    "invariant",
    "KERNEL_INVARIANTS",
    "check_kernel_entry",
    "check_bench_row",
    "check_sweep",
    "check_document",
    "check_cache_dir",
]

#: relative slack for counter comparisons: the analyzers estimate large
#: grids from a deterministic warp sample, so totals are scaled counts.
REL_TOL = 0.02

KernelRule = Callable[[str, Mapping[str, Any], Mapping[str, Any]], list[str]]

#: name -> (rule, docstring) over one kernel entry
KERNEL_INVARIANTS: dict[str, KernelRule] = {}


def invariant(name: str) -> Callable[[KernelRule], KernelRule]:
    """Register a kernel-entry invariant under ``name``."""

    def register(fn: KernelRule) -> KernelRule:
        if name in KERNEL_INVARIANTS:
            raise ReproError(f"duplicate invariant {name!r}")
        KERNEL_INVARIANTS[name] = fn
        return fn

    return register


def _finite(value: Any) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


# ----------------------------------------------------------------------
# Kernel-entry rules.  Each returns a list of violation messages; []
# means the invariant holds.  ``gpu`` is the document's architecture
# block (older documents may miss newer keys — default conservatively).
# ----------------------------------------------------------------------

@invariant("counters-finite-nonnegative")
def _counters_sane(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    bad = []
    for key, value in entry.get("counters", {}).items():
        if not _finite(value):
            bad.append(f"counter {key} = {value!r} is not finite")
        elif value < 0:
            bad.append(f"counter {key} = {value:g} is negative")
    return bad


@invariant("geometry-consistent")
def _geometry(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    c = entry.get("counters", {})
    grid = entry.get("grid", [1, 1, 1])
    block = entry.get("block", [1, 1, 1])
    blocks = grid[0] * grid[1] * grid[2]
    threads = blocks * block[0] * block[1] * block[2]
    warp = int(gpu.get("warp_size", 32))
    bad = []
    if c.get("blocks") != blocks:
        bad.append(f"counters.blocks {c.get('blocks')} != grid size {blocks}")
    if c.get("threads") != threads:
        bad.append(
            f"counters.threads {c.get('threads')} != grid*block {threads}"
        )
    warps = c.get("warps", 0)
    min_warps = blocks * math.ceil((block[0] * block[1] * block[2]) / warp)
    if warps < min_warps:
        bad.append(
            f"counters.warps {warps} below block-padded minimum {min_warps}"
        )
    return bad


@invariant("transactions-lower-bound")
def _txn_lower_bound(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    c = entry.get("counters", {})
    txn_bytes = float(gpu.get("transaction_bytes", 128))
    transactions = float(c.get("transactions", 0.0))
    bytes_requested = float(c.get("bytes_requested", 0.0))
    requests = float(c.get("global_requests", 0.0))
    bad = []
    ideal = bytes_requested / txn_bytes
    if transactions < ideal * (1.0 - REL_TOL) - 1.0:
        bad.append(
            f"transactions {transactions:g} below the perfectly-coalesced "
            f"lower bound {ideal:g} ({bytes_requested:g} useful bytes / "
            f"{txn_bytes:g}B segments)"
        )
    if bytes_requested > 0 and transactions <= 0:
        bad.append(
            f"moved {bytes_requested:g} useful bytes with zero transactions"
        )
    if requests > 0 and transactions < requests * (1.0 - REL_TOL):
        bad.append(
            f"transactions {transactions:g} below one per warp request "
            f"({requests:g} requests)"
        )
    return bad


@invariant("sectors-cover-bytes")
def _sector_cover(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    c = entry.get("counters", {})
    sector_bytes = float(gpu.get("sector_bytes", 32))
    warp = float(gpu.get("warp_size", 32))
    sectors = float(c.get("sectors_requested", 0.0))
    bytes_requested = float(c.get("bytes_requested", 0.0))
    bad = []
    if bytes_requested > 0 and sectors <= 0:
        bad.append(
            f"moved {bytes_requested:g} useful bytes with zero sectors"
        )
    # A broadcast access serves every active lane from one sector, so
    # useful bytes can exceed sector capacity — but never by more than
    # the warp width (each sector feeds at most one warp per access).
    elif bytes_requested > sectors * sector_bytes * warp * (1.0 + REL_TOL):
        bad.append(
            f"useful bytes {bytes_requested:g} exceed broadcast-limited "
            f"sector capacity {sectors:g} x {sector_bytes:g}B x {warp:g}"
        )
    return bad


@invariant("efficiencies-are-fractions")
def _efficiency_ranges(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    bad = []
    for key in (
        "warp_execution_efficiency",
        "branch_efficiency",
        "shared_efficiency",
        "achieved_occupancy",
    ):
        value = entry.get("metrics", {}).get(key)
        if value is None:
            continue
        if not _finite(value) or value < 0.0 or value > 1.0 + 1e-9:
            bad.append(f"{key} = {value!r} outside [0, 1]")
    # Broadcast reuse can push load efficiency past 1, but never past
    # the warp width (every active lane served from one sector).
    warp = float(gpu.get("warp_size", 32))
    gld = entry.get("metrics", {}).get("gld_efficiency")
    if gld is not None and (not _finite(gld) or gld < 0.0 or gld > warp):
        bad.append(f"gld_efficiency = {gld!r} outside [0, warp_size={warp:g}]")
    return bad


@invariant("divergence-within-branches")
def _divergence(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    c = entry.get("counters", {})
    branches = float(c.get("branches", 0.0))
    divergent = float(c.get("divergent_branches", 0.0))
    if divergent > branches:
        return [
            f"divergent_branches {divergent:g} exceed total branches "
            f"{branches:g}"
        ]
    return []


@invariant("bank-conflicts-only-add")
def _bank_conflicts(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    c = entry.get("counters", {})
    requests = float(c.get("shared_requests", 0.0))
    passes = float(c.get("shared_passes", 0.0))
    extra = float(c.get("bank_conflict_extra", 0.0))
    bad = []
    if passes < requests * (1.0 - 1e-9):
        bad.append(
            f"shared_passes {passes:g} below shared_requests {requests:g} "
            "(a conflict-free access still takes one pass)"
        )
    if abs((passes - requests) - extra) > max(1e-6, REL_TOL * passes):
        bad.append(
            f"bank_conflict_extra {extra:g} inconsistent with passes-"
            f"requests {passes - requests:g}"
        )
    return bad


@invariant("traffic-conservation")
def _traffic(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    t = entry.get("traffic")
    if not isinstance(t, Mapping):
        return []
    bad = []
    for key in ("l1_hit_rate", "l2_hit_rate"):
        v = t.get(key)
        if v is not None and (not _finite(v) or v < 0 or v > 1 + 1e-9):
            bad.append(f"traffic.{key} = {v!r} outside [0, 1]")
    if float(t.get("l1_hits", 0)) > float(t.get("l1_lookups", 0)) * (1 + 1e-9):
        bad.append("traffic.l1_hits exceed l1_lookups")
    if float(t.get("l2_hits", 0)) > float(t.get("l2_sectors", 0)) * (1 + 1e-9):
        bad.append("traffic.l2_hits exceed l2_sectors")
    l2 = float(t.get("l2_sectors", 0.0))
    dram = float(t.get("dram_sectors", 0.0))
    if dram > l2 * (1.0 + REL_TOL):
        bad.append(
            f"traffic.dram_sectors {dram:g} exceed l2_sectors {l2:g} "
            "(DRAM traffic must traverse L2)"
        )
    reads = float(t.get("dram_read_bytes", 0.0))
    writes = float(t.get("dram_write_bytes", 0.0))
    total = float(t.get("dram_bytes", reads + writes))
    if abs(total - (reads + writes)) > max(1.0, REL_TOL * total):
        bad.append(
            f"traffic.dram_bytes {total:g} != read {reads:g} + write "
            f"{writes:g} (bytes-moved conservation)"
        )
    if float(t.get("dram_uncached_read_bytes", 0.0)) > reads * (1 + 1e-9):
        bad.append("traffic.dram_uncached_read_bytes exceed dram_read_bytes")
    return bad


@invariant("times-physical")
def _times(
    name: str, entry: Mapping[str, Any], gpu: Mapping[str, Any]
) -> list[str]:
    bad = []
    for key in ("time_total_s", "time_avg_s"):
        v = entry.get(key)
        if v is not None and (not _finite(v) or v < 0):
            bad.append(f"{key} = {v!r} is not a nonnegative finite time")
    for bound, v in entry.get("bounds_s", {}).items():
        if not _finite(v) or v < 0:
            bad.append(f"bounds_s.{bound} = {v!r} is not physical")
    return bad


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def check_kernel_entry(
    kernel: str,
    entry: Mapping[str, Any],
    gpu: Mapping[str, Any] | None = None,
    *,
    subject: str = "",
    backend: str = "",
) -> list[CheckOutcome]:
    """Run every registered invariant over one kernel's metrics block."""
    gpu = gpu or {}
    where = f"{subject}/{kernel}" if subject else kernel
    outcomes = []
    for name, rule in KERNEL_INVARIANTS.items():
        violations = rule(kernel, entry, gpu)
        outcomes.append(
            CheckOutcome(
                kind="invariant",
                subject=where,
                name=name,
                passed=not violations,
                detail="; ".join(violations),
                backend=backend,
            )
        )
    return outcomes


def check_bench_row(
    row: Mapping[str, Any], *, subject: str = "", backend: str = ""
) -> list[CheckOutcome]:
    """Sanity-check one benchmark result row (times, speedup algebra)."""
    name = subject or str(row.get("benchmark", "?"))
    bad: list[str] = []
    b = row.get("baseline_time_s")
    o = row.get("optimized_time_s")
    s = row.get("speedup")
    for key, v in (("baseline_time_s", b), ("optimized_time_s", o)):
        if not _finite(v) or v < 0:
            bad.append(f"{key} = {v!r} is not a nonnegative finite time")
    if _finite(b) and _finite(o) and o and _finite(s):
        expect = b / o
        if expect and abs(s - expect) > REL_TOL * expect:
            bad.append(
                f"speedup {s:g} inconsistent with times ratio {expect:g}"
            )
    if not isinstance(row.get("verified"), bool):
        bad.append(f"verified = {row.get('verified')!r} is not a bool")
    return [
        CheckOutcome(
            kind="invariant",
            subject=name,
            name="result-sanity",
            passed=not bad,
            detail="; ".join(bad),
            backend=backend,
        )
    ]


def check_sweep(
    sweep: Mapping[str, Any], *, subject: str = "", backend: str = ""
) -> list[CheckOutcome]:
    """Sanity-check a sweep block: finite positive times, aligned series."""
    name = subject or str(sweep.get("benchmark", "?"))
    bad: list[str] = []
    xs = sweep.get("x_values", [])
    for series, points in sweep.get("series", {}).items():
        if len(points) != len(xs):
            bad.append(
                f"series {series!r} has {len(points)} points for "
                f"{len(xs)} x-values"
            )
        for x, t in zip(xs, points):
            if not _finite(t) or t < 0:
                bad.append(f"series {series!r} at {x}: {t!r} is not physical")
                break
    return [
        CheckOutcome(
            kind="invariant",
            subject=name,
            name="sweep-sanity",
            passed=not bad,
            detail="; ".join(bad),
            backend=backend,
        )
    ]


def check_document(
    doc: Mapping[str, Any], *, subject: str = "", backend: str = ""
) -> list[CheckOutcome]:
    """Audit any exported document: structure first, then invariants.

    Dispatches on the document's schema: per-kernel invariants for
    ``repro-prof-metrics/1``, per-result and sweep sanity for
    ``repro-prof-bench/1``.  Structural problems reported by
    :func:`repro.prof.metrics.validate_document` become ``structure``
    outcomes so a malformed document fails loudly rather than passing
    vacuously.
    """
    from repro.prof.metrics import validate_document

    outcomes: list[CheckOutcome] = []
    problems = validate_document(doc)
    label = subject or str(doc.get("benchmark") or doc.get("schema") or "?")
    outcomes.append(
        CheckOutcome(
            kind="structure",
            subject=label,
            name="schema",
            passed=not problems,
            detail="; ".join(problems),
            backend=backend,
        )
    )
    if problems:
        return outcomes
    gpu = doc.get("gpu", {})
    for kernel, entry in doc.get("kernels", {}).items():
        outcomes.extend(
            check_kernel_entry(
                kernel, entry, gpu, subject=label, backend=backend
            )
        )
    for row in doc.get("results", []):
        if isinstance(row, Mapping):
            outcomes.extend(check_bench_row(row, backend=backend))
    sweep = doc.get("sweep")
    if isinstance(sweep, Mapping):
        outcomes.extend(check_sweep(sweep, subject=label, backend=backend))
    return outcomes


def check_cache_dir(cache_dir: str | Path) -> list[CheckOutcome]:
    """Audit every payload of a scheduler result cache.

    Cached payloads replay byte-identically into results, so a corrupt
    or physically-impossible entry would silently poison future warm
    runs; this walks the content-addressed store and applies the same
    result/sweep invariants a live run gets.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        raise ReproError(f"cache directory not found: {root}")
    outcomes: list[CheckOutcome] = []
    for path in sorted(root.glob("*/*.json")):
        if path.parent.name == "quarantine":
            # already detected, moved aside, and recomputed by the
            # cache itself — not a live entry
            continue
        label = f"cache:{path.name[:12]}"
        try:
            entry = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            outcomes.append(
                CheckOutcome(
                    kind="structure",
                    subject=label,
                    name="cache-entry",
                    passed=False,
                    detail=f"{path}: not valid JSON ({exc})",
                )
            )
            continue
        stored = entry.get("sha256")
        if stored is not None:
            from repro.sched.cache import _payload_checksum

            actual = _payload_checksum(entry.get("payload"))
            outcomes.append(
                CheckOutcome(
                    kind="structure",
                    subject=label,
                    name="cache-checksum",
                    passed=actual == stored,
                    detail=""
                    if actual == stored
                    else f"{path}: payload checksum mismatch",
                )
            )
            if actual != stored:
                continue
        payload = entry.get("payload", {})
        result = payload.get("result")
        if isinstance(result, Mapping):
            outcomes.extend(check_bench_row(result, subject=label))
        sweep = payload.get("sweep")
        if isinstance(sweep, Mapping):
            outcomes.extend(check_sweep(sweep, subject=label))
    return outcomes
