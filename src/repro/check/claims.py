"""Declarative paper-claim specifications (``benchmarks/claims/*.toml``).

EXPERIMENTS.md asserts *relative* agreement with the paper — who wins,
by roughly what factor, where a crossover falls.  A claim file encodes
those assertions per benchmark so ``repro check`` can re-verify them on
every change.  The format (schema ``repro-claims/1``)::

    schema = "repro-claims/1"
    benchmark = "CoMem"
    source = "Table I / Fig. 9"

    [run]                 # parameters of the checked comparison run
    n = 4194304

    [[claims]]
    kind = "speedup"      # BenchResult.speedup within [min, max]
    min = 8.0
    max = 25.0
    paper = "18 (average)"

    [[claims]]
    kind = "verified"     # optimized kernel matches the naive output

    [[claims]]
    kind = "metric"       # result.metrics[key] within [min, max]
    key = "cyclic_transactions_per_request"
    max = 1.05

    [[claims]]
    kind = "metric_ratio" # metrics[numerator] / metrics[denominator]
    numerator = "block_transactions_per_request"
    denominator = "cyclic_transactions_per_request"
    min = 8.0

    [[claims]]
    kind = "sweep_monotonic"   # speedup trend over a figure sweep
    values = [524288, 1048576, 4194304]
    baseline = "BLOCK"         # series names in the SweepResult
    optimized = "CYCLIC"
    direction = "increasing"   # or "decreasing" / "flat"
    tolerance = 0.02

    [[claims]]
    kind = "sweep_crossover"   # speedup crosses `threshold` within the sweep
    values = [512, 1024]
    baseline = "escape time"
    optimized = "Mariani-Silver (dyn. parallelism)"
    threshold = 1.0
    slow = true                # skipped under `repro check --quick`

Result-level claims (``speedup`` / ``verified`` / ``metric`` /
``metric_ratio``) can also be evaluated offline against the rows of a
saved ``repro-prof-bench/1`` document — that is how
``repro prof diff --claims`` turns a claim file into regression
thresholds and how ``repro check --doc`` audits committed baselines.
"""

from __future__ import annotations

import math

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10: stdlib tomllib is 3.11+
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.common.errors import ReproError
from repro.check.report import CheckOutcome

__all__ = [
    "CLAIMS_SCHEMA",
    "DEFAULT_CLAIMS_DIR",
    "Claim",
    "ClaimSpec",
    "load_claim_file",
    "load_claims_dir",
    "load_claims",
    "evaluate_result_claim",
    "evaluate_sweep_claim",
    "evaluate_claims_on_document",
]

CLAIMS_SCHEMA = "repro-claims/1"
DEFAULT_CLAIMS_DIR = Path("benchmarks/claims")

#: claim kinds evaluated on one BenchResult row
RESULT_KINDS = ("speedup", "verified", "metric", "metric_ratio")
#: claim kinds that need a figure sweep
SWEEP_KINDS = ("sweep_monotonic", "sweep_crossover")
DIRECTIONS = ("increasing", "decreasing", "flat")


def _fmt_range(lo: float | None, hi: float | None) -> str:
    if lo is not None and hi is not None:
        return f"[{lo:g}, {hi:g}]"
    if lo is not None:
        return f">= {lo:g}"
    if hi is not None:
        return f"<= {hi:g}"
    return "(unbounded)"


@dataclass(frozen=True)
class Claim:
    """One executable assertion from a claim file."""

    kind: str
    min: float | None = None
    max: float | None = None
    key: str = ""
    numerator: str = ""
    denominator: str = ""
    values: tuple[Any, ...] = ()
    baseline: str = ""
    optimized: str = ""
    direction: str = "increasing"
    threshold: float = 1.0
    tolerance: float = 0.0
    paper: str = ""
    note: str = ""
    slow: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        if self.kind == "metric":
            return f"metric:{self.key}"
        if self.kind == "metric_ratio":
            return f"ratio:{self.numerator}/{self.denominator}"
        if self.kind in SWEEP_KINDS:
            return f"{self.kind}:{self.direction}" if (
                self.kind == "sweep_monotonic"
            ) else f"{self.kind}@{self.threshold:g}"
        return self.kind


@dataclass(frozen=True)
class ClaimSpec:
    """All claims for one benchmark, plus the run they apply to."""

    benchmark: str
    source: str = ""
    run_params: Mapping[str, Any] = field(default_factory=dict)
    system: str | None = None
    claims: tuple[Claim, ...] = ()
    path: str = ""

    def result_claims(self, *, quick: bool = False) -> list[Claim]:
        return [
            c for c in self.claims
            if c.kind in RESULT_KINDS and not (quick and c.slow)
        ]

    def sweep_claims(self, *, quick: bool = False) -> list[Claim]:
        return [
            c for c in self.claims
            if c.kind in SWEEP_KINDS and not (quick and c.slow)
        ]


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def _parse_claim(raw: Mapping[str, Any], where: str) -> Claim:
    kind = raw.get("kind")
    if kind not in RESULT_KINDS + SWEEP_KINDS:
        raise ReproError(
            f"{where}: unknown claim kind {kind!r}; expected one of "
            f"{', '.join(RESULT_KINDS + SWEEP_KINDS)}"
        )
    known = {
        "kind", "min", "max", "key", "numerator", "denominator", "values",
        "baseline", "optimized", "direction", "threshold", "tolerance",
        "paper", "note", "slow", "params",
    }
    unknown = set(raw) - known
    if unknown:
        raise ReproError(f"{where}: unknown claim field(s) {sorted(unknown)}")
    if kind == "metric" and not raw.get("key"):
        raise ReproError(f"{where}: metric claim needs a 'key'")
    if kind == "metric_ratio" and not (
        raw.get("numerator") and raw.get("denominator")
    ):
        raise ReproError(
            f"{where}: metric_ratio claim needs 'numerator' and 'denominator'"
        )
    if kind in ("speedup", "metric", "metric_ratio") and (
        raw.get("min") is None and raw.get("max") is None
    ):
        raise ReproError(f"{where}: {kind} claim needs 'min' and/or 'max'")
    if kind in SWEEP_KINDS and not raw.get("values"):
        raise ReproError(f"{where}: {kind} claim needs sweep 'values'")
    direction = raw.get("direction", "increasing")
    if direction not in DIRECTIONS:
        raise ReproError(
            f"{where}: direction {direction!r} not in {DIRECTIONS}"
        )
    return Claim(
        kind=kind,
        min=None if raw.get("min") is None else float(raw["min"]),
        max=None if raw.get("max") is None else float(raw["max"]),
        key=str(raw.get("key", "")),
        numerator=str(raw.get("numerator", "")),
        denominator=str(raw.get("denominator", "")),
        values=tuple(raw.get("values", ())),
        baseline=str(raw.get("baseline", "")),
        optimized=str(raw.get("optimized", "")),
        direction=direction,
        threshold=float(raw.get("threshold", 1.0)),
        tolerance=float(raw.get("tolerance", 0.0)),
        paper=str(raw.get("paper", "")),
        note=str(raw.get("note", "")),
        slow=bool(raw.get("slow", False)),
        params=dict(raw.get("params", {})),
    )


def load_claim_file(path: str | Path) -> ClaimSpec:
    """Parse one TOML claim file into a :class:`ClaimSpec`."""
    if tomllib is None:
        raise ReproError(
            "claim files need a TOML parser: Python 3.11+ (stdlib tomllib) "
            "or the tomli package"
        )
    path = Path(path)
    try:
        raw = tomllib.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(f"claim file not found: {path}") from None
    except tomllib.TOMLDecodeError as exc:
        raise ReproError(f"{path} is not valid TOML: {exc}") from None
    if raw.get("schema") != CLAIMS_SCHEMA:
        raise ReproError(
            f"{path}: schema {raw.get('schema')!r} is not {CLAIMS_SCHEMA!r}"
        )
    benchmark = raw.get("benchmark")
    if not benchmark or not isinstance(benchmark, str):
        raise ReproError(f"{path}: missing 'benchmark' name")
    claims_raw = raw.get("claims", [])
    if not claims_raw:
        raise ReproError(f"{path}: no [[claims]] entries")
    claims = tuple(
        _parse_claim(c, f"{path} claims[{i}]") for i, c in enumerate(claims_raw)
    )
    return ClaimSpec(
        benchmark=benchmark,
        source=str(raw.get("source", "")),
        run_params=dict(raw.get("run", {})),
        system=raw.get("system"),
        claims=claims,
        path=str(path),
    )


def load_claims_dir(claims_dir: str | Path | None = None) -> dict[str, ClaimSpec]:
    """Load every ``*.toml`` claim file of a directory, keyed by benchmark."""
    root = Path(claims_dir) if claims_dir else DEFAULT_CLAIMS_DIR
    if not root.is_dir():
        raise ReproError(f"claims directory not found: {root}")
    specs: dict[str, ClaimSpec] = {}
    for path in sorted(root.glob("*.toml")):
        spec = load_claim_file(path)
        if spec.benchmark in specs:
            raise ReproError(
                f"{path}: duplicate claims for {spec.benchmark!r} "
                f"(also in {specs[spec.benchmark].path})"
            )
        specs[spec.benchmark] = spec
    if not specs:
        raise ReproError(f"no claim files (*.toml) under {root}")
    return specs


def load_claims(path: str | Path) -> list[ClaimSpec]:
    """Load a claim file or every claim file of a directory."""
    p = Path(path)
    if p.is_dir():
        return list(load_claims_dir(p).values())
    return [load_claim_file(p)]


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def _in_range(value: float, lo: float | None, hi: float | None) -> bool:
    if not math.isfinite(value):
        return False
    if lo is not None and value < lo:
        return False
    if hi is not None and value > hi:
        return False
    return True


def evaluate_result_claim(
    claim: Claim, result: Mapping[str, Any], *, benchmark: str, backend: str = ""
) -> CheckOutcome:
    """Evaluate one result-level claim against a ``BenchResult`` row.

    ``result`` is the dict shape of :meth:`BenchResult.as_dict` (the
    same rows a ``repro-prof-bench/1`` document stores).
    """
    paper = f" (paper: {claim.paper})" if claim.paper else ""

    def outcome(passed: bool, detail: str) -> CheckOutcome:
        return CheckOutcome(
            kind="claim",
            subject=benchmark,
            name=claim.label,
            passed=passed,
            detail=detail + paper,
            backend=backend,
        )

    if claim.kind == "verified":
        ok = bool(result.get("verified"))
        return outcome(
            ok,
            "optimized output matches naive"
            if ok
            else "optimized and naive kernels DISAGREE "
            f"({result.get('optimized_name', 'optimized')} vs "
            f"{result.get('baseline_name', 'baseline')})",
        )
    if claim.kind == "speedup":
        value = float(result.get("speedup", float("nan")))
        ok = _in_range(value, claim.min, claim.max)
        return outcome(
            ok,
            f"speedup {value:.3g} vs expected "
            f"{_fmt_range(claim.min, claim.max)}",
        )
    metrics = result.get("metrics", {})
    if claim.kind == "metric":
        if claim.key not in metrics:
            return outcome(
                False, f"metric {claim.key!r} missing from result"
            )
        value = float(metrics[claim.key])
        ok = _in_range(value, claim.min, claim.max)
        return outcome(
            ok,
            f"{claim.key} = {value:.4g} vs expected "
            f"{_fmt_range(claim.min, claim.max)}",
        )
    if claim.kind == "metric_ratio":
        for k in (claim.numerator, claim.denominator):
            if k not in metrics:
                return outcome(False, f"metric {k!r} missing from result")
        den = float(metrics[claim.denominator])
        value = float(metrics[claim.numerator]) / den if den else float("inf")
        ok = _in_range(value, claim.min, claim.max)
        return outcome(
            ok,
            f"{claim.numerator}/{claim.denominator} = {value:.4g} vs "
            f"expected {_fmt_range(claim.min, claim.max)}",
        )
    raise ReproError(f"{claim.kind!r} is not a result-level claim")


def _speedup_series(
    claim: Claim, sweep: Mapping[str, Any]
) -> tuple[list[float], list[Any]]:
    series = sweep.get("series", {})
    xs = list(sweep.get("x_values", []))
    names = list(series)
    baseline = claim.baseline or (names[0] if names else "")
    optimized = claim.optimized or (names[1] if len(names) > 1 else "")
    for name in (baseline, optimized):
        if name not in series:
            raise ReproError(
                f"sweep claim references series {name!r}; sweep has "
                f"{names}"
            )
    speedups = [
        b / o if o else float("inf")
        for b, o in zip(series[baseline], series[optimized])
    ]
    return speedups, xs


def evaluate_sweep_claim(
    claim: Claim, sweep: Mapping[str, Any], *, benchmark: str, backend: str = ""
) -> CheckOutcome:
    """Evaluate a trend claim against a sweep (``SweepResult.as_dict``)."""
    paper = f" (paper: {claim.paper})" if claim.paper else ""

    def outcome(passed: bool, detail: str) -> CheckOutcome:
        return CheckOutcome(
            kind="claim",
            subject=benchmark,
            name=claim.label,
            passed=passed,
            detail=detail + paper,
            backend=backend,
        )

    try:
        speedups, xs = _speedup_series(claim, sweep)
    except ReproError as exc:
        return outcome(False, str(exc))
    shown = ", ".join(f"{x}:{s:.3g}" for x, s in zip(xs, speedups))

    if claim.kind == "sweep_monotonic":
        tol = claim.tolerance
        pairs = list(zip(speedups, speedups[1:]))
        if claim.direction == "increasing":
            ok = all(b >= a * (1.0 - tol) for a, b in pairs)
        elif claim.direction == "decreasing":
            ok = all(b <= a * (1.0 + tol) for a, b in pairs)
        else:  # flat
            lo, hi = min(speedups), max(speedups)
            ok = lo > 0 and (hi - lo) / hi <= tol
        return outcome(
            ok,
            f"speedup over {sweep.get('x_name', 'x')} expected "
            f"{claim.direction} (tol {tol:g}): {shown}",
        )

    if claim.kind == "sweep_crossover":
        th = claim.threshold
        below = [x for x, s in zip(xs, speedups) if s < th]
        above = [x for x, s in zip(xs, speedups) if s >= th]
        ok = (
            bool(below)
            and bool(above)
            and speedups[0] < th <= speedups[-1]
        )
        return outcome(
            ok,
            f"speedup crosses {th:g} within the sweep "
            f"(below at {below or 'none'}, at/above at {above or 'none'}): "
            f"{shown}",
        )
    raise ReproError(f"{claim.kind!r} is not a sweep claim")


def evaluate_claims_on_document(
    specs: Iterable[ClaimSpec],
    doc: Mapping[str, Any],
    *,
    quick: bool = False,
) -> list[CheckOutcome]:
    """Evaluate result-level claims against a saved bench document.

    Benchmarks without a row in ``doc`` are skipped (a sweep document
    or a partial suite simply has nothing to check); so are rows whose
    recorded run parameters conflict with the claim file's ``[run]``
    table (a claim is only meaningful at the problem size it encodes);
    sweep claims are skipped too — they need live runs.  Used by
    ``repro check --doc`` and by ``repro prof diff --claims``.
    """
    rows = {
        str(r.get("benchmark")): r
        for r in doc.get("results", [])
        if isinstance(r, dict)
    }
    outcomes: list[CheckOutcome] = []
    for spec in specs:
        row = rows.get(spec.benchmark)
        if row is None:
            continue
        recorded = row.get("params", {})
        if any(
            k in recorded and recorded[k] != v
            for k, v in spec.run_params.items()
        ):
            continue
        for claim in spec.result_claims(quick=quick):
            outcomes.append(
                evaluate_result_claim(claim, row, benchmark=spec.benchmark)
            )
    return outcomes
