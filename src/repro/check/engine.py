"""The conformance engine behind ``repro check``.

Orchestrates one pass over the paper's executable claims: for each
benchmark with a claim file, run the comparison under the profiler,
evaluate the claim spec against the :class:`BenchResult`, run any
figure sweeps the trend claims need, and audit the exported metrics
document against the physical-invariant registry.  ``check_all`` adds
the metamorphic relations and repeats the whole pass per execution
backend, which is how CI asserts both the reference oracle and the
fast path still reproduce the paper.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.arch.presets import get_system
from repro.check.claims import (
    ClaimSpec,
    evaluate_result_claim,
    evaluate_sweep_claim,
    load_claims_dir,
)
from repro.check.invariants import check_bench_row, check_document
from repro.check.metamorphic import run_relations
from repro.check.report import CheckOutcome, ConformanceReport
from repro.common.errors import ReproError
from repro.core.registry import get_benchmark
from repro.exec import use_backend

__all__ = ["check_benchmark", "check_all", "DEFAULT_BACKENDS"]

DEFAULT_BACKENDS = ("reference", "fast")


def _resolve_backends(backend: str | None) -> tuple[str, ...]:
    if backend in (None, "both"):
        return DEFAULT_BACKENDS
    return (backend,)


def check_benchmark(
    spec: ClaimSpec,
    *,
    backend: str = "reference",
    quick: bool = False,
    system: str | None = None,
) -> list[CheckOutcome]:
    """Run one benchmark's claim spec under one backend.

    The comparison runs under a profiling session so the same execution
    yields both the claim verdicts (from the :class:`BenchResult`) and
    the invariant audit (from the exported metrics documents).  Trend
    claims run their sweeps afterwards, deduplicated by (values,
    params) so several claims over the same figure share one sweep.
    """
    from repro.prof import collect_metrics, profile_session

    result_claims = spec.result_claims(quick=quick)
    sweep_claims = spec.sweep_claims(quick=quick)
    if not result_claims and not sweep_claims:
        return []

    sysname = system or spec.system
    sys_spec = get_system(sysname) if sysname else None
    outcomes: list[CheckOutcome] = []

    with use_backend(backend):
        bench = get_benchmark(spec.benchmark, sys_spec)
        if result_claims:
            with profile_session() as prof:
                result = bench.run(**dict(spec.run_params))
            row = result.as_dict()
            for claim in result_claims:
                outcomes.append(
                    evaluate_result_claim(
                        claim, row, benchmark=spec.benchmark, backend=backend
                    )
                )
            outcomes.extend(check_bench_row(row, backend=backend))
            for rt in prof.runtimes:
                if not rt.kernel_log:
                    continue
                doc = collect_metrics(rt, benchmark=spec.benchmark)
                outcomes.extend(
                    check_document(
                        doc, subject=spec.benchmark, backend=backend
                    )
                )
        sweeps: dict[tuple, Mapping[str, Any]] = {}
        for claim in sweep_claims:
            key = (claim.values, tuple(sorted(claim.params.items())))
            if key not in sweeps:
                sweep = bench.sweep(list(claim.values), **dict(claim.params))
                sweeps[key] = sweep.as_dict()
            outcomes.append(
                evaluate_sweep_claim(
                    claim,
                    sweeps[key],
                    benchmark=spec.benchmark,
                    backend=backend,
                )
            )
    return outcomes


def check_all(
    *,
    benchmarks: Sequence[str] | None = None,
    claims_dir: str | None = None,
    backend: str | None = None,
    quick: bool = False,
    relations: bool = True,
    system: str | None = None,
) -> ConformanceReport:
    """Run the full conformance pass and return the report.

    ``benchmarks`` restricts the pass to named Table I entries (all
    entries with claim files otherwise); ``backend`` is ``reference``,
    ``fast``, or ``None``/``both`` for the two-backend matrix.
    """
    specs = load_claims_dir(claims_dir)
    if benchmarks:
        missing = [b for b in benchmarks if b not in specs]
        if missing:
            raise ReproError(
                f"no claim file for: {', '.join(missing)}; have "
                f"{', '.join(sorted(specs))}"
            )
        selected = [specs[b] for b in benchmarks]
    else:
        selected = list(specs.values())

    backends = _resolve_backends(backend)
    report = ConformanceReport(
        title=f"paper-claims conformance ({', '.join(backends)})"
    )
    for be in backends:
        for spec in selected:
            report.extend(
                check_benchmark(spec, backend=be, quick=quick, system=system)
            )
    if relations:
        report.extend(run_relations(backends=backends))
    return report
