"""The conformance engine behind ``repro check``.

Orchestrates one pass over the paper's executable claims: for each
benchmark with a claim file, run the comparison under the profiler,
evaluate the claim spec against the :class:`BenchResult`, run any
figure sweeps the trend claims need, and audit the exported metrics
document against the physical-invariant registry.  ``check_all`` adds
the metamorphic relations and repeats the whole pass per execution
backend, which is how CI asserts both the reference oracle and the
fast path still reproduce the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.arch.presets import get_system
from repro.check.claims import (
    ClaimSpec,
    evaluate_result_claim,
    evaluate_sweep_claim,
    load_claims_dir,
)
from repro.check.invariants import check_bench_row, check_document
from repro.check.metamorphic import run_relations
from repro.check.report import CheckOutcome, ConformanceReport
from repro.common.errors import ReproError
from repro.core.registry import get_benchmark
from repro.exec import use_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.supervisor import ResilienceConfig

__all__ = ["check_benchmark", "check_all", "DEFAULT_BACKENDS"]

DEFAULT_BACKENDS = ("reference", "fast")

#: ``--backend all``: every registered backend, jit included
ALL_BACKENDS = ("reference", "fast", "jit")


def _resolve_backends(backend: str | None) -> tuple[str, ...]:
    if backend in (None, "both"):
        return DEFAULT_BACKENDS
    if backend == "all":
        return ALL_BACKENDS
    return (backend,)


def check_benchmark(
    spec: ClaimSpec,
    *,
    backend: str = "reference",
    quick: bool = False,
    system: str | None = None,
) -> list[CheckOutcome]:
    """Run one benchmark's claim spec under one backend.

    The comparison runs under a profiling session so the same execution
    yields both the claim verdicts (from the :class:`BenchResult`) and
    the invariant audit (from the exported metrics documents).  Trend
    claims run their sweeps afterwards, deduplicated by (values,
    params) so several claims over the same figure share one sweep.
    """
    from repro.prof import collect_metrics, profile_session

    result_claims = spec.result_claims(quick=quick)
    sweep_claims = spec.sweep_claims(quick=quick)
    if not result_claims and not sweep_claims:
        return []

    sysname = system or spec.system
    sys_spec = get_system(sysname) if sysname else None
    outcomes: list[CheckOutcome] = []

    with use_backend(backend):
        bench = get_benchmark(spec.benchmark, sys_spec)
        if result_claims:
            with profile_session() as prof:
                result = bench.run(**dict(spec.run_params))
            row = result.as_dict()
            for claim in result_claims:
                outcomes.append(
                    evaluate_result_claim(
                        claim, row, benchmark=spec.benchmark, backend=backend
                    )
                )
            outcomes.extend(check_bench_row(row, backend=backend))
            for rt in prof.runtimes:
                if not rt.kernel_log:
                    continue
                doc = collect_metrics(rt, benchmark=spec.benchmark)
                outcomes.extend(
                    check_document(
                        doc, subject=spec.benchmark, backend=backend
                    )
                )
        sweeps: dict[tuple, Mapping[str, Any]] = {}
        for claim in sweep_claims:
            key = (claim.values, tuple(sorted(claim.params.items())))
            if key not in sweeps:
                sweep = bench.sweep(list(claim.values), **dict(claim.params))
                sweeps[key] = sweep.as_dict()
            outcomes.append(
                evaluate_sweep_claim(
                    claim,
                    sweeps[key],
                    benchmark=spec.benchmark,
                    backend=backend,
                )
            )
    return outcomes


def _unit_fingerprint(
    spec: ClaimSpec, *, backend: str, quick: bool, system: str | None
) -> str:
    """Stable identity of one (claim file × backend) conformance unit.

    Hashes the benchmark's source fingerprint alongside the unit's
    switches, so a ``--resume`` never replays outcomes across a code,
    backend, or configuration change.
    """
    import hashlib

    from repro.sched.cache import _canonical, source_fingerprint

    sysname = system or spec.system
    bench = get_benchmark(
        spec.benchmark, get_system(sysname) if sysname else None
    )
    material = {
        "domain": "repro-check-unit",
        "benchmark": spec.benchmark,
        "sources": source_fingerprint(type(bench)),
        "backend": backend,
        "quick": quick,
        "system": sysname,
    }
    return hashlib.sha256(_canonical(material).encode()).hexdigest()


def _check_supervised(
    report: ConformanceReport,
    selected: Sequence[ClaimSpec],
    backends: Sequence[str],
    *,
    quick: bool,
    system: str | None,
    config: "ResilienceConfig",
) -> None:
    """Run the (backend × claim file) units under the resilience policy.

    Conformance outcomes are built in-process, so the worker pool cannot
    isolate them; supervision here is serial-grade — the shared retry/
    backoff policy, :func:`wall_clock_limit` for the per-unit timeout,
    journal checkpoints (one outcome list per unit) for ``--resume``,
    and simulated chaos keyed on the unit ordinal.
    """
    import time

    from repro.check.report import CheckOutcome
    from repro.resilience.supervisor import (
        _MAX_REAL_BACKOFF_S,
        JobTimeout,
        QuarantineError,
        WorkerCrash,
        _emit,
        wall_clock_limit,
    )

    tele = config.telemetry
    tele.mode = "serial"
    chaos = config.chaos
    journal = config.journal
    hub = config.hub
    if journal is not None:
        tele.journal_run_id = journal.run_id

    units = [(be, spec) for be in backends for spec in selected]
    for ordinal, (be, spec) in enumerate(units):
        fp = (
            _unit_fingerprint(spec, backend=be, quick=quick, system=system)
            if journal is not None
            else None
        )
        if fp is not None and fp in journal.completed:
            tele.resume_skips += 1
            _emit(hub, "resume-skip", benchmark=spec.benchmark, job=ordinal)
            report.extend(
                CheckOutcome.from_dict(d) for d in journal.completed[fp]
            )
            continue
        subject = f"check {spec.benchmark} [{be}]"
        outcomes: list[CheckOutcome] | None = None
        attempts = 0
        while True:
            try:
                action = (
                    chaos.worker_outcome(ordinal, attempts)
                    if chaos is not None
                    else "ok"
                )
                if action == "crash":
                    raise WorkerCrash(
                        f"injected crash (check unit {ordinal})"
                    )
                if action == "hang":
                    raise JobTimeout(f"injected hang (check unit {ordinal})")
                with wall_clock_limit(config.job_timeout_s, subject):
                    outcomes = check_benchmark(
                        spec, backend=be, quick=quick, system=system
                    )
                break
            except ReproError as exc:
                what = dict(benchmark=spec.benchmark, job=ordinal)
                if isinstance(exc, JobTimeout):
                    tele.timeouts += 1
                    _emit(hub, "timeout", **what, error=str(exc))
                elif isinstance(exc, WorkerCrash):
                    tele.crashes += 1
                    _emit(hub, "worker-crash", **what, error=str(exc))
                else:
                    tele.job_errors += 1
                    _emit(hub, "job-error", **what, error=str(exc))
                attempts += 1
                if attempts > config.max_retries:
                    tele.quarantined.append(
                        {**what, "attempts": attempts, "error": str(exc)}
                    )
                    _emit(hub, "quarantine", **what, attempts=attempts)
                    break
                retry = attempts - 1
                u = (
                    chaos.retry_jitter(ordinal, retry)
                    if chaos is not None
                    else 0.0
                )
                delay = config.retry_policy.backoff(retry, u)
                tele.retries += 1
                _emit(hub, "retry", **what, attempt=attempts, backoff_s=delay)
                time.sleep(min(delay, _MAX_REAL_BACKOFF_S))
        if outcomes is None:
            continue
        report.extend(outcomes)
        if journal is not None:
            journal.record(
                fp,
                [o.as_dict() for o in outcomes],
                meta={"benchmark": spec.benchmark, "backend": be},
            )
        tele.completed += 1
        if chaos is not None and chaos.interrupts_after(tele.completed):
            raise KeyboardInterrupt
    if tele.quarantined:
        names = ", ".join(
            f"{q['benchmark']}#{q['job']}" for q in tele.quarantined
        )
        hint = (
            f"; completed units are journaled as run {journal.run_id}"
            if journal is not None
            else ""
        )
        raise QuarantineError(
            f"{len(tele.quarantined)} check unit(s) quarantined after "
            f"retry exhaustion: {names}{hint}"
        )


def check_all(
    *,
    benchmarks: Sequence[str] | None = None,
    claims_dir: str | None = None,
    backend: str | None = None,
    quick: bool = False,
    relations: bool = True,
    system: str | None = None,
    resilience: "ResilienceConfig | None" = None,
) -> ConformanceReport:
    """Run the full conformance pass and return the report.

    ``benchmarks`` restricts the pass to named Table I entries (all
    entries with claim files otherwise); ``backend`` is ``reference``,
    ``fast``, or ``None``/``both`` for the two-backend matrix.
    ``resilience`` supervises the per-(backend × claim file) units:
    retries with backoff, per-unit wall-clock timeouts, and journal
    checkpoints so an interrupted pass resumes without re-running
    completed units.
    """
    specs = load_claims_dir(claims_dir)
    if benchmarks:
        missing = [b for b in benchmarks if b not in specs]
        if missing:
            raise ReproError(
                f"no claim file for: {', '.join(missing)}; have "
                f"{', '.join(sorted(specs))}"
            )
        selected = [specs[b] for b in benchmarks]
    else:
        selected = list(specs.values())

    backends = _resolve_backends(backend)
    report = ConformanceReport(
        title=f"paper-claims conformance ({', '.join(backends)})"
    )
    if resilience is not None:
        _check_supervised(
            report, selected, backends,
            quick=quick, system=system, config=resilience,
        )
    else:
        for be in backends:
            for spec in selected:
                report.extend(
                    check_benchmark(
                        spec, backend=be, quick=quick, system=system
                    )
                )
    if relations:
        report.extend(run_relations(backends=backends))
    return report
