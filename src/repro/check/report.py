"""Conformance report: the typed outcome stream of ``repro check``.

Every check the engine performs — a paper claim, a physical invariant,
a metamorphic relation, a structural validation — produces one
:class:`CheckOutcome`.  A :class:`ConformanceReport` collects them,
renders the pass/fail summary the CLI prints, and serializes to the
``repro-conformance/1`` JSON document the CI job archives.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.common.tables import render_table

__all__ = ["CONFORMANCE_SCHEMA", "CheckOutcome", "ConformanceReport"]

CONFORMANCE_SCHEMA = "repro-conformance/1"

#: outcome kinds, in the order the summary groups them
KINDS = ("claim", "invariant", "relation", "structure")


@dataclass(frozen=True)
class CheckOutcome:
    """One evaluated check.

    ``subject`` names what was checked (a benchmark, a kernel as
    ``benchmark/kernel``, a relation subject, a document path);
    ``name`` is the claim kind / invariant / relation identifier; and
    ``detail`` is the pointed observed-vs-expected message shown for
    failures.
    """

    kind: str
    subject: str
    name: str
    passed: bool
    detail: str = ""
    backend: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown outcome kind {self.kind!r}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckOutcome":
        """Rebuild an outcome from its :meth:`as_dict` form.

        The run journal checkpoints completed ``repro check`` units as
        outcome lists; ``--resume`` replays them through here.
        """
        return cls(
            kind=data["kind"],
            subject=data["subject"],
            name=data["name"],
            passed=bool(data["passed"]),
            detail=data.get("detail", ""),
            backend=data.get("backend", ""),
        )

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        where = f"{self.subject}" + (f" [{self.backend}]" if self.backend else "")
        msg = f" — {self.detail}" if self.detail else ""
        return f"{mark} {self.kind} {where}: {self.name}{msg}"


@dataclass
class ConformanceReport:
    """Every outcome of one ``repro check`` invocation."""

    title: str = "conformance"
    outcomes: list[CheckOutcome] = field(default_factory=list)

    def add(self, outcome: CheckOutcome) -> None:
        self.outcomes.append(outcome)

    def extend(self, outcomes: Iterable[CheckOutcome]) -> None:
        self.outcomes.extend(outcomes)

    # ------------------------------------------------------------------
    @property
    def failures(self) -> list[CheckOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_subject(self) -> dict[str, list[CheckOutcome]]:
        groups: dict[str, list[CheckOutcome]] = {}
        for o in self.outcomes:
            groups.setdefault(o.subject.split("/")[0], []).append(o)
        return groups

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        counts = {k: 0 for k in KINDS}
        failed = {k: 0 for k in KINDS}
        for o in self.outcomes:
            counts[o.kind] += 1
            if not o.passed:
                failed[o.kind] += 1
        return {
            "schema": CONFORMANCE_SCHEMA,
            "title": self.title,
            "ok": self.ok,
            "total": len(self.outcomes),
            "failed": len(self.failures),
            "by_kind": {
                k: {"total": counts[k], "failed": failed[k]}
                for k in KINDS
                if counts[k]
            },
            "outcomes": [o.as_dict() for o in self.outcomes],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    # ------------------------------------------------------------------
    def render(self) -> str:
        rows = []
        for subject, outs in sorted(self.by_subject().items()):
            per_kind = []
            for kind in KINDS:
                ks = [o for o in outs if o.kind == kind]
                if not ks:
                    continue
                bad = sum(1 for o in ks if not o.passed)
                per_kind.append(
                    f"{len(ks) - bad}/{len(ks)} {kind}s"
                    + (f" ({bad} FAILED)" if bad else "")
                )
            verdict = "ok" if all(o.passed for o in outs) else "FAIL"
            rows.append([subject, ", ".join(per_kind), verdict])
        lines = [render_table(["subject", "checks", "verdict"], rows,
                              title=self.title)]
        if self.failures:
            lines.append("")
            lines.append(f"{len(self.failures)} failing check(s):")
            for o in self.failures:
                lines.append(f"  {o}")
        lines.append("")
        n = len(self.outcomes)
        lines.append(
            f"conformance: OK ({n} checks)"
            if self.ok
            else f"conformance: {len(self.failures)} of {n} checks FAILED"
        )
        return "\n".join(lines)
