"""Paper-claims conformance: claim specs, invariants, metamorphic runner."""

from repro.check.claims import (
    CLAIMS_SCHEMA,
    DEFAULT_CLAIMS_DIR,
    Claim,
    ClaimSpec,
    evaluate_claims_on_document,
    evaluate_result_claim,
    evaluate_sweep_claim,
    load_claim_file,
    load_claims,
    load_claims_dir,
)
from repro.check.engine import check_all, check_benchmark
from repro.check.invariants import (
    KERNEL_INVARIANTS,
    check_cache_dir,
    check_document,
    check_kernel_entry,
    invariant,
)
from repro.check.metamorphic import (
    RELATIONS,
    list_relations,
    relation,
    run_relations,
)
from repro.check.report import CONFORMANCE_SCHEMA, CheckOutcome, ConformanceReport

__all__ = [
    "CLAIMS_SCHEMA",
    "CONFORMANCE_SCHEMA",
    "DEFAULT_CLAIMS_DIR",
    "Claim",
    "ClaimSpec",
    "CheckOutcome",
    "ConformanceReport",
    "KERNEL_INVARIANTS",
    "RELATIONS",
    "check_all",
    "check_benchmark",
    "check_cache_dir",
    "check_document",
    "check_kernel_entry",
    "evaluate_claims_on_document",
    "evaluate_result_claim",
    "evaluate_sweep_claim",
    "invariant",
    "list_relations",
    "load_claim_file",
    "load_claims",
    "load_claims_dir",
    "relation",
    "run_relations",
]
