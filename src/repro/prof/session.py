"""Profiling sessions: collect activity across every runtime in a block.

A :class:`Profiler` owns an :class:`~repro.prof.activity.ActivityHub`
and a collecting subscriber; :func:`profile_session` makes the hub
ambient the same way :func:`~repro.sanitize.session.sanitize_session`
makes a sanitizer ambient, so benchmarks that construct their own
:class:`~repro.host.runtime.CudaLite` internally are profiled without
threading parameters through::

    with profile_session() as prof:
        get_benchmark("WarpDivRedux").run(n=1 << 20)
    prof.write_chrome_trace("trace.json")
    doc = prof.metrics(benchmark="WarpDivRedux")

After the block, ``prof.runtimes`` holds every runtime the session saw
and ``prof.records`` every activity record emitted.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.prof.activity import ActivityHub, ActivityLog
from repro.prof.chrome import write_chrome_trace
from repro.prof.metrics import collect_metrics, merge_metrics
from repro.prof.ndjson import write_ndjson

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.runtime import CudaLite

__all__ = ["Profiler", "profile_session"]


class Profiler:
    """Collects activity records and snapshots metrics for a run."""

    def __init__(self, hub: ActivityHub | None = None) -> None:
        self.hub = hub or ActivityHub()
        self.log = ActivityLog()
        self._sub = self.hub.subscribe(self.log)
        #: runtimes observed (populated by profile_session or attach)
        self.runtimes: list["CudaLite"] = []

    # ------------------------------------------------------------------
    @property
    def records(self) -> list:
        return self.log.records

    def attach(self, rt: "CudaLite") -> "CudaLite":
        """Wire an existing runtime into this profiler's hub."""
        rt.attach_hub(self.hub)
        if rt not in self.runtimes:
            self.runtimes.append(rt)
        return rt

    def close(self) -> None:
        """Stop collecting (detach the internal subscriber)."""
        self.hub.unsubscribe(self._sub)

    # ------------------------------------------------------------------
    def metrics(
        self,
        *,
        benchmark: str | None = None,
        params: dict[str, Any] | None = None,
        runtimes: list["CudaLite"] | None = None,
    ) -> dict[str, Any]:
        """Merged metrics document over the observed runtimes."""
        rts = runtimes if runtimes is not None else self.runtimes
        docs = [
            collect_metrics(rt, benchmark=benchmark, params=params) for rt in rts
        ]
        if not docs:
            from repro.prof.metrics import METRICS_SCHEMA

            return {
                "schema": METRICS_SCHEMA,
                "benchmark": benchmark,
                "params": dict(params or {}),
                "kernels": {},
            }
        return merge_metrics(docs)

    def write_chrome_trace(self, path: str | Path) -> Path:
        device = self.runtimes[0].gpu.name if self.runtimes else "device"
        return write_chrome_trace(path, self.records, device_name=device)

    def write_ndjson(self, path: str | Path) -> Path:
        return write_ndjson(path, self.records)


@contextmanager
def profile_session(
    profiler: Profiler | None = None,
    *,
    sanitizer=None,
    faults=None,
    watchdog_cycles: float | None = None,
) -> Iterator[Profiler]:
    """Profile every runtime constructed inside the block.

    Builds on the ambient-session machinery: the profiler's hub becomes
    the session default, so nested :class:`CudaLite` instances attach it
    on construction.  Optional sanitizer/fault parameters forward to the
    underlying sanitize session, letting one block collect performance
    activity and correctness findings together.
    """
    from repro.sanitize.session import sanitize_session

    prof = profiler or Profiler()
    with sanitize_session(
        sanitizer, faults=faults, watchdog_cycles=watchdog_cycles, hub=prof.hub
    ) as session:
        try:
            yield prof
        finally:
            prof.runtimes.extend(
                rt for rt in session.runtimes if rt not in prof.runtimes
            )
