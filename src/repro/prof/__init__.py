"""repro.prof — the CUPTI-analog observability subsystem.

Activity records and the subscriber hub (:mod:`repro.prof.activity`),
exporters (Chrome trace, NDJSON, metrics JSON), analysis passes
(roofline classification, run-to-run diffing), and the ambient
:func:`profile_session` that wires a whole benchmark run together.
"""

from repro.prof.activity import KINDS, ActivityHub, ActivityLog, ActivityRecord
from repro.prof.chrome import chrome_trace, write_chrome_trace
from repro.prof.diff import (
    DEFAULT_METRIC_TOLERANCE,
    DEFAULT_TIME_TOLERANCE,
    DiffEntry,
    DiffReport,
    diff_metrics,
    document_backend,
)
from repro.prof.metrics import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    collect_metrics,
    gpu_info,
    kernel_entry,
    load_metrics,
    merge_metrics,
    validate_document,
    render_metrics,
    write_metrics,
)
from repro.prof.ndjson import read_ndjson, record_from_json, record_to_json, write_ndjson
from repro.prof.roofline import RooflinePoint, classify_kernel, peak_lane_ops, render_roofline
from repro.prof.session import Profiler, profile_session

__all__ = [
    "KINDS",
    "ActivityHub",
    "ActivityLog",
    "ActivityRecord",
    "chrome_trace",
    "write_chrome_trace",
    "DEFAULT_METRIC_TOLERANCE",
    "DEFAULT_TIME_TOLERANCE",
    "DiffEntry",
    "DiffReport",
    "diff_metrics",
    "document_backend",
    "BENCH_SCHEMA",
    "METRICS_SCHEMA",
    "collect_metrics",
    "gpu_info",
    "kernel_entry",
    "load_metrics",
    "merge_metrics",
    "validate_document",
    "render_metrics",
    "write_metrics",
    "read_ndjson",
    "record_from_json",
    "record_to_json",
    "write_ndjson",
    "RooflinePoint",
    "classify_kernel",
    "peak_lane_ops",
    "render_roofline",
    "Profiler",
    "profile_session",
]
