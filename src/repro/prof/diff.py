"""Run-to-run performance diffing of metrics documents.

``repro prof diff before.json after.json`` loads two documents produced
by :mod:`repro.prof.metrics` and reports per-kernel deltas.  Two
threshold families decide what counts as a regression:

* **time** — a kernel's average time growing by more than
  ``time_tolerance`` (relative, default 10%);
* **metric** — a higher-is-better metric (the efficiency/occupancy
  set) dropping by more than ``metric_tolerance`` (absolute, default
  0.05), or transactions-per-request growing by more than the relative
  time tolerance.

Benchmark-result documents (``repro-prof-bench/1``) diff by benchmark
instead of by kernel: speedups falling by more than the relative time
tolerance regress, and benchmarks present in only one document are
reported as added/removed rather than silently intersected away.

Both documents' execution backends are reported, and documents produced
by *different* backends refuse to diff unless
``allow_backend_mismatch`` is set: backends are byte-identical on
results but wildly different on wall-clock and execution counters, so a
jit-vs-reference comparison is a backend change, not a performance
delta, and must not silently pass as one.

``repro prof diff --claims <file-or-dir>`` additionally evaluates the
paper-claim specs (:mod:`repro.check.claims`) against the *after*
document, turning absolute claims (Table I speedup ranges, metric
bounds, verification) into regression thresholds alongside the
relative before/after ones.

The report's :attr:`DiffReport.ok` drives the CLI exit code, making the
diff usable as a CI perf gate over committed baseline JSONs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ReproError
from repro.common.tables import render_table

__all__ = [
    "DiffEntry",
    "DiffReport",
    "diff_metrics",
    "document_backend",
    "DEFAULT_TIME_TOLERANCE",
    "DEFAULT_METRIC_TOLERANCE",
]

DEFAULT_TIME_TOLERANCE = 0.10
DEFAULT_METRIC_TOLERANCE = 0.05

#: metric keys where bigger is better (absolute-drop thresholding)
HIGHER_IS_BETTER = (
    "warp_execution_efficiency",
    "branch_efficiency",
    "gld_efficiency",
    "shared_efficiency",
    "achieved_occupancy",
)
#: metric keys where smaller is better (relative-growth thresholding)
LOWER_IS_BETTER = ("transactions_per_request",)


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity of one kernel."""

    kernel: str
    quantity: str
    before: float
    after: float
    regressed: bool

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def rel_delta(self) -> float:
        return self.delta / self.before if self.before else float("inf")

    def __str__(self) -> str:
        flag = "  << REGRESSED" if self.regressed else ""
        return (
            f"{self.kernel}.{self.quantity}: {self.before:.6g} -> "
            f"{self.after:.6g} ({self.delta:+.6g}){flag}"
        )


@dataclass
class DiffReport:
    """Every comparison between two metrics documents."""

    before_label: str
    after_label: str
    time_tolerance: float
    metric_tolerance: float
    #: execution backends the compared documents declare (None: unknown)
    before_backend: str | None = None
    after_backend: str | None = None
    entries: list[DiffEntry] = field(default_factory=list)
    added_kernels: list[str] = field(default_factory=list)
    removed_kernels: list[str] = field(default_factory=list)
    added_benchmarks: list[str] = field(default_factory=list)
    removed_benchmarks: list[str] = field(default_factory=list)
    #: CheckOutcome list from evaluating claim specs on the after doc
    claim_outcomes: list[Any] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def failed_claims(self) -> list[Any]:
        return [o for o in self.claim_outcomes if not o.passed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.failed_claims

    def changed(self, eps: float = 1e-12) -> list[DiffEntry]:
        return [e for e in self.entries if abs(e.delta) > eps]

    def render(self) -> str:
        rows = []
        for e in sorted(
            self.changed(), key=lambda e: (not e.regressed, e.kernel, e.quantity)
        ):
            rows.append(
                [
                    e.kernel,
                    e.quantity,
                    f"{e.before:.6g}",
                    f"{e.after:.6g}",
                    f"{e.rel_delta:+.1%}" if e.before else "new",
                    "REGRESSED" if e.regressed else "",
                ]
            )
        lines = [
            render_table(
                ["kernel", "quantity", "before", "after", "delta", ""],
                rows,
                title=(
                    f"prof diff: {self.before_label} -> {self.after_label} "
                    f"(time tol {self.time_tolerance:.0%}, "
                    f"metric tol {self.metric_tolerance:.2f})"
                ),
            )
        ]
        if self.before_backend or self.after_backend:
            b0 = self.before_backend or "unknown"
            b1 = self.after_backend or "unknown"
            marker = "" if b0 == b1 else "  (MISMATCH allowed by flag)"
            lines.insert(1, f"backend: {b0} -> {b1}{marker}")
        if not rows:
            lines.append("no per-kernel changes")
        if self.added_kernels:
            lines.append(f"kernels only in after: {', '.join(self.added_kernels)}")
        if self.removed_kernels:
            lines.append(f"kernels only in before: {', '.join(self.removed_kernels)}")
        if self.added_benchmarks:
            lines.append(
                f"benchmarks only in after: {', '.join(self.added_benchmarks)}"
            )
        if self.removed_benchmarks:
            lines.append(
                f"benchmarks only in before: {', '.join(self.removed_benchmarks)}"
            )
        if self.claim_outcomes:
            n_claims = len(self.claim_outcomes)
            lines.append(
                f"paper claims on {self.after_label}: "
                f"{n_claims - len(self.failed_claims)}/{n_claims} pass"
            )
            for o in self.failed_claims:
                lines.append(f"  {o}")
        n = len(self.regressions) + len(self.failed_claims)
        lines.append(
            "verdict: OK" if self.ok else f"verdict: {n} regression(s) beyond threshold"
        )
        return "\n".join(lines)


def document_backend(doc: dict[str, Any]) -> str | None:
    """The execution backend a document declares, if any.

    Metrics documents carry it in the ``execution`` section; bench
    documents (and the harness's figure JSONs) stamp it at top level.
    Older documents predate the stamp and read as ``None``.
    """
    execution = doc.get("execution")
    if isinstance(execution, dict):
        backend = execution.get("backend")
        if backend is not None:
            return str(backend)
    backend = doc.get("backend")
    return None if backend is None else str(backend)


def _section(doc: dict[str, Any], key: str, label: str) -> dict[str, Any]:
    """A document's *optional* mapping section.

    Absent or ``null`` sections read as empty — a results-only document
    diffs fine against a kernels-only one — but a section of the wrong
    shape is a pointed error naming the document and the section, not a
    ``KeyError``/``AttributeError`` three frames deep.
    """
    value = doc.get(key)
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise ReproError(
            f"{label}: section {key!r} must be a JSON object, "
            f"got {type(value).__name__}"
        )
    return value


def _entry(kernels: dict[str, Any], name: str, label: str) -> dict[str, Any]:
    entry = kernels[name]
    if not isinstance(entry, dict):
        raise ReproError(
            f"{label}: kernel {name!r} entry must be a JSON object, "
            f"got {type(entry).__name__}"
        )
    return entry


def _num(value: Any, *, label: str, where: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ReproError(
            f"{label}: {where} must be a number, got {value!r}"
        ) from None


def _kernel_diffs(
    name: str,
    before: dict[str, Any],
    after: dict[str, Any],
    time_tol: float,
    metric_tol: float,
    *,
    before_label: str = "before",
    after_label: str = "after",
) -> list[DiffEntry]:
    out: list[DiffEntry] = []

    t0 = _num(
        before.get("time_avg_s", 0.0),
        label=before_label, where=f"kernel {name!r} time_avg_s",
    )
    t1 = _num(
        after.get("time_avg_s", 0.0),
        label=after_label, where=f"kernel {name!r} time_avg_s",
    )
    regressed = t0 > 0 and t1 > t0 * (1.0 + time_tol)
    out.append(DiffEntry(name, "time_avg_s", t0, t1, regressed))

    m0 = _section(before, "metrics", f"{before_label} kernel {name!r}")
    m1 = _section(after, "metrics", f"{after_label} kernel {name!r}")
    for key in sorted(set(m0) & set(m1)):
        v0 = _num(
            m0[key], label=before_label, where=f"kernel {name!r} metric {key}"
        )
        v1 = _num(
            m1[key], label=after_label, where=f"kernel {name!r} metric {key}"
        )
        if key in HIGHER_IS_BETTER:
            regressed = v1 < v0 - metric_tol
        elif key in LOWER_IS_BETTER:
            regressed = v0 > 0 and v1 > v0 * (1.0 + time_tol)
        else:
            regressed = False
        out.append(DiffEntry(name, key, v0, v1, regressed))
    return out


def _bench_results(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Per-benchmark result rows of a bench document, keyed by name."""
    results = doc.get("results")
    if not isinstance(results, list):
        return {}
    return {
        str(r["benchmark"]): r
        for r in results
        if isinstance(r, dict) and "benchmark" in r
    }


def _bench_diffs(
    name: str,
    before: dict[str, Any],
    after: dict[str, Any],
    time_tol: float,
    *,
    before_label: str = "before",
    after_label: str = "after",
) -> list[DiffEntry]:
    out: list[DiffEntry] = []
    s0 = _num(
        before.get("speedup", 0.0),
        label=before_label, where=f"benchmark {name!r} speedup",
    )
    s1 = _num(
        after.get("speedup", 0.0),
        label=after_label, where=f"benchmark {name!r} speedup",
    )
    regressed = s0 > 0 and s1 < s0 * (1.0 - time_tol)
    out.append(DiffEntry(name, "speedup", s0, s1, regressed))
    for key in ("baseline_time_s", "optimized_time_s"):
        if key in before and key in after:
            t0 = _num(
                before[key], label=before_label,
                where=f"benchmark {name!r} {key}",
            )
            t1 = _num(
                after[key], label=after_label,
                where=f"benchmark {name!r} {key}",
            )
            regressed = t0 > 0 and t1 > t0 * (1.0 + time_tol)
            out.append(DiffEntry(name, key, t0, t1, regressed))
    return out


def diff_metrics(
    before: dict[str, Any],
    after: dict[str, Any],
    *,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    metric_tolerance: float = DEFAULT_METRIC_TOLERANCE,
    before_label: str = "before",
    after_label: str = "after",
    claim_specs: Any = None,
    allow_backend_mismatch: bool = False,
) -> DiffReport:
    """Compare two documents kernel by kernel and benchmark by benchmark.

    ``claim_specs`` is an optional iterable of
    :class:`repro.check.claims.ClaimSpec`; when given, their
    result-level claims are evaluated against ``after`` and failures
    count as regressions.

    Documents declaring *different* execution backends raise a
    :class:`ReproError` unless ``allow_backend_mismatch`` is true; a
    document without a backend stamp (pre-backend layouts) compares
    against anything.
    """
    for label, doc in ((before_label, before), (after_label, after)):
        if not isinstance(doc, dict):
            raise ReproError(
                f"{label}: metrics document must be a JSON object, "
                f"got {type(doc).__name__}"
            )
    backend0 = document_backend(before)
    backend1 = document_backend(after)
    if (
        backend0 is not None
        and backend1 is not None
        and backend0 != backend1
        and not allow_backend_mismatch
    ):
        raise ReproError(
            f"refusing to diff across execution backends: {before_label} "
            f"was produced by {backend0!r} but {after_label} by "
            f"{backend1!r}; a backend change is not a performance delta "
            "(pass --allow-backend-mismatch to compare anyway)"
        )
    report = DiffReport(
        before_label=before_label,
        after_label=after_label,
        time_tolerance=time_tolerance,
        metric_tolerance=metric_tolerance,
        before_backend=backend0,
        after_backend=backend1,
    )
    k0 = _section(before, "kernels", before_label)
    k1 = _section(after, "kernels", after_label)
    report.removed_kernels = sorted(set(k0) - set(k1))
    report.added_kernels = sorted(set(k1) - set(k0))
    for name in sorted(set(k0) & set(k1)):
        report.entries.extend(
            _kernel_diffs(
                name,
                _entry(k0, name, before_label),
                _entry(k1, name, after_label),
                time_tolerance,
                metric_tolerance,
                before_label=before_label,
                after_label=after_label,
            )
        )
    b0 = _bench_results(before)
    b1 = _bench_results(after)
    report.removed_benchmarks = sorted(set(b0) - set(b1))
    report.added_benchmarks = sorted(set(b1) - set(b0))
    for name in sorted(set(b0) & set(b1)):
        report.entries.extend(
            _bench_diffs(
                name, b0[name], b1[name], time_tolerance,
                before_label=before_label, after_label=after_label,
            )
        )
    if claim_specs is not None:
        from repro.check.claims import evaluate_claims_on_document

        report.claim_outcomes = evaluate_claims_on_document(claim_specs, after)
    return report
