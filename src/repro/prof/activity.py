"""The activity API: structured records + a subscriber registry.

The CUPTI analog of the simulator.  Execution layers (the discrete-
event engine, the executor, the host runtime, the fault injector, the
sanitizer) *emit* :class:`ActivityRecord` s into an :class:`ActivityHub`;
tools (the profiler session, exporters, tests) *subscribe* to the kinds
they care about.  Like CUPTI, the instrumentation is strictly opt-in:

* a producer that has no hub attached pays one ``is None`` check;
* a hub with no subscriber interested in a kind refuses the emission at
  :meth:`ActivityHub.wants` before any record object is built.

Nothing on the simulator's hot path (per-lane NumPy work) ever calls
into the hub — emission happens at operation granularity (one record
per kernel/copy/migration/finding), mirroring CUPTI's activity-buffer
design rather than its callback-per-API-call mode.

Record kinds
------------

=============  ======================================================
``kernel``     a kernel (or graph dispatch) completed on the device
``memcpy``     an explicit H2D/D2H/D2D copy completed
``migrate``    a unified-memory page-migration batch completed
``delay``      an injected stall / retry backoff occupied a stream
``event``      a CUDA event was recorded or waited on
``launch``     driver phase: a kernel body finished functional
               execution (device time unknown yet; ordered by ``seq``)
``counter``    per-kernel metric sample (occupancy, efficiencies)
``fault``      the fault injector fired or recovered
``sanitizer``  a compute-sanitizer analog finding was raised
``sched``      the supervised scheduler acted: a retry, a job timeout,
               a worker crash, a degradation fallback, a resume skip,
               or a quarantine.  Fleet runs re-emit their coordination
               history here at merge time as ``fleet-*`` names on the
               ``"fleet"`` track — ``fleet-lease-acquire``,
               ``fleet-lease-steal``, ``fleet-lease-lost``,
               ``fleet-heartbeat``, ``fleet-job-complete``,
               ``fleet-worker-exit``, and the final ``fleet-merge``
=============  ======================================================

Timed kinds carry device-clock ``start``/``end`` seconds; driver-phase
kinds (``launch``, ``fault``, ``sanitizer``, ``sched``) carry ``None``
and rely on ``seq``, the global emission ordinal, for ordering.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceContext

__all__ = ["ActivityRecord", "ActivityHub", "ActivityLog", "KINDS"]

#: Every activity kind an execution layer may emit.
KINDS = (
    "kernel",
    "memcpy",
    "migrate",
    "delay",
    "event",
    "launch",
    "counter",
    "fault",
    "sanitizer",
    "sched",
)


@dataclass(frozen=True)
class ActivityRecord:
    """One structured observability event.

    ``track`` is the display lane (a stream name, a copy engine, or a
    logical track like ``"driver"``); exporters map it to a Chrome
    trace ``tid``.  ``args`` is an open key/value payload; exporters
    serialize it verbatim.
    """

    kind: str
    name: str
    track: str = ""
    start: float | None = None    #: device seconds; None for driver phase
    end: float | None = None
    seq: int = 0                  #: global emission ordinal (hub-assigned)
    args: Mapping[str, Any] = field(default_factory=dict)
    # distributed-trace identity (repro.obs.trace); None when the hub
    # had no span current at emission — exporters omit the fields then
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None

    @property
    def timed(self) -> bool:
        return self.start is not None and self.end is not None

    @property
    def duration(self) -> float:
        """Seconds on the device clock; 0.0 for driver-phase records."""
        if not self.timed:
            return 0.0
        return self.end - self.start  # type: ignore[operator]


class ActivityHub:
    """Routes emitted records to the subscribers that asked for them.

    Subscribing with ``kinds=None`` receives everything.  ``wants`` is
    the producer-side gate: emission sites call it *before* building a
    record so an un-observed kind costs a set lookup, nothing more.
    """

    def __init__(self) -> None:
        #: (callback, frozenset of kinds or None) per subscription id
        self._subs: dict[int, tuple[Callable[[ActivityRecord], None], frozenset | None]] = {}
        self._next_id = 0
        self._seq = 0
        self._wanted: frozenset | None = frozenset()  # None = wants all
        #: ambient span stamped onto every emission (see :meth:`span`)
        self.trace: "TraceContext | None" = None

    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[ActivityRecord], None],
        kinds: Iterable[str] | None = None,
    ) -> int:
        """Register ``callback`` for ``kinds`` (all when None); returns a
        subscription id usable with :meth:`unsubscribe`."""
        ks: frozenset | None
        if kinds is None:
            ks = None
        else:
            ks = frozenset(kinds)
            unknown = ks - set(KINDS)
            if unknown:
                raise ValueError(
                    f"unknown activity kind(s) {sorted(unknown)}; "
                    f"known: {', '.join(KINDS)}"
                )
        sid = self._next_id
        self._next_id += 1
        self._subs[sid] = (callback, ks)
        self._rebuild_wanted()
        return sid

    def unsubscribe(self, sid: int) -> None:
        self._subs.pop(sid, None)
        self._rebuild_wanted()

    def _rebuild_wanted(self) -> None:
        if any(ks is None for _, ks in self._subs.values()):
            self._wanted = None
        else:
            wanted: set[str] = set()
            for _, ks in self._subs.values():
                wanted |= ks  # type: ignore[arg-type]
            self._wanted = frozenset(wanted)

    # ------------------------------------------------------------------
    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    def wants(self, kind: str) -> bool:
        """True when at least one subscriber would receive ``kind``."""
        w = self._wanted
        return True if w is None else kind in w

    def emit(
        self,
        kind: str,
        name: str,
        *,
        track: str = "",
        start: float | None = None,
        end: float | None = None,
        **args: Any,
    ) -> ActivityRecord | None:
        """Build and dispatch one record; returns it, or None when no
        subscriber wanted the kind."""
        if not self.wants(kind):
            return None
        self._seq += 1
        ctx = self.trace
        rec = ActivityRecord(
            kind=kind,
            name=name,
            track=track,
            start=start,
            end=end,
            seq=self._seq,
            args=args,
            trace_id=ctx.trace_id if ctx is not None else None,
            span_id=ctx.span_id if ctx is not None else None,
            parent_span_id=ctx.parent_span_id if ctx is not None else None,
        )
        self.dispatch(rec)
        return rec

    @contextmanager
    def span(self, ctx: "TraceContext | None"):
        """Make ``ctx`` the ambient span for emissions inside the block.

        Nests: the previous span is restored on exit, so a job span
        pushed around one job leaves the run's root span current for
        scheduler-level records emitted between jobs.
        """
        prev = self.trace
        self.trace = ctx
        try:
            yield ctx
        finally:
            self.trace = prev

    def dispatch(self, rec: ActivityRecord) -> None:
        """Deliver an already-built record to interested subscribers."""
        for callback, ks in self._subs.values():
            if ks is None or rec.kind in ks:
                callback(rec)


class ActivityLog:
    """The simplest subscriber: an append-only list of records.

    Usable directly as a hub callback::

        log = ActivityLog()
        hub.subscribe(log, kinds=("kernel", "memcpy"))
    """

    def __init__(self) -> None:
        self.records: list[ActivityRecord] = []

    def __call__(self, rec: ActivityRecord) -> None:
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self, kind: str) -> list[ActivityRecord]:
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        self.records.clear()
