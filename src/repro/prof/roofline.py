"""Roofline classification: compute- vs memory-bound per kernel.

The classic roofline model plots attained throughput against arithmetic
intensity (work per DRAM byte) under two ceilings: the device's peak
execution rate and the bandwidth-scaled diagonal.  A kernel left of the
*ridge point* (``peak_ops / peak_bandwidth``) cannot exceed the memory
roof no matter how it is optimized — CoMem/MemAlign territory — while a
kernel right of it is bounded by the execution pipes, WarpDivRedux
territory.

"Work" here is *lane operations* (``KernelStats.thread_instructions``):
the simulator charges every warp-wide instruction per active lane, so
lane-ops measure useful issue work the same way FLOPs do for FP-heavy
kernels, while staying meaningful for integer/branch-heavy ones.  The
matching peak is ``sm_count * fp32_lanes_per_cycle * clock``, derived
from the same :class:`~repro.arch.spec.GPUSpec` throughput table the
timing model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import GPUSpec
from repro.common.tables import render_table
from repro.simt.stats import KernelStats

__all__ = ["RooflinePoint", "classify_kernel", "render_roofline", "peak_lane_ops"]

#: Kernels whose memory and compute bounds are within this factor of
#: each other are classified "balanced" rather than forced to a side.
_BALANCED_BAND = 1.15


def peak_lane_ops(gpu: GPUSpec) -> float:
    """Peak lane-operations per second (FP32-pipe issue ceiling)."""
    return gpu.sm_count * gpu.op_throughput["fp32"] * gpu.clock_hz


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position under the roofline."""

    kernel: str
    ops: float                 #: lane operations executed (grid total)
    dram_bytes: float          #: post-cache DRAM traffic
    intensity: float           #: ops per DRAM byte (inf when no traffic)
    ridge: float               #: ops/byte where the roofs intersect
    peak_ops: float            #: lane-ops/s ceiling
    peak_bandwidth: float      #: DRAM bytes/s ceiling
    attained_ops: float        #: ops / exec seconds
    roof_ops: float            #: min(peak, intensity * bandwidth)
    bound: str                 #: "compute" | "memory" | "balanced"

    @property
    def efficiency(self) -> float:
        """Attained fraction of the applicable roof (0..1-ish)."""
        return self.attained_ops / self.roof_ops if self.roof_ops else 0.0

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "dram_bytes": self.dram_bytes,
            "intensity_ops_per_byte": self.intensity,
            "ridge_ops_per_byte": self.ridge,
            "peak_ops_per_s": self.peak_ops,
            "peak_bandwidth_bytes_per_s": self.peak_bandwidth,
            "attained_ops_per_s": self.attained_ops,
            "roof_ops_per_s": self.roof_ops,
            "roof_efficiency": self.efficiency,
            "bound": self.bound,
        }


def classify_kernel(
    stats: KernelStats,
    gpu: GPUSpec,
    *,
    exec_s: float,
    dram_bytes: float | None = None,
) -> RooflinePoint:
    """Place one launch on the roofline.

    ``dram_bytes`` should come from the memory hierarchy's resolved
    :class:`~repro.mem.hierarchy.TrafficReport` when available; the
    fallback is the pre-cache sector traffic, which overstates DRAM
    bytes for cache-friendly kernels and therefore *understates*
    intensity (a conservative classification).
    """
    ops = float(stats.thread_instructions)
    if dram_bytes is None:
        dram_bytes = float(stats.sectors_requested) * gpu.sector_bytes
    peak = peak_lane_ops(gpu)
    bw = gpu.dram_bandwidth
    ridge = peak / bw
    intensity = ops / dram_bytes if dram_bytes else float("inf")
    roof = peak if intensity == float("inf") else min(peak, intensity * bw)
    attained = ops / exec_s if exec_s > 0 else 0.0

    compute_bound_roof = peak
    memory_bound_roof = intensity * bw if dram_bytes else float("inf")
    if memory_bound_roof > compute_bound_roof * _BALANCED_BAND:
        bound = "compute"
    elif compute_bound_roof > memory_bound_roof * _BALANCED_BAND:
        bound = "memory"
    else:
        bound = "balanced"

    return RooflinePoint(
        kernel=stats.name,
        ops=ops,
        dram_bytes=float(dram_bytes),
        intensity=intensity,
        ridge=ridge,
        peak_ops=peak,
        peak_bandwidth=bw,
        attained_ops=attained,
        roof_ops=roof,
        bound=bound,
    )


def render_roofline(points: list[RooflinePoint], *, title: str = "roofline") -> str:
    """A per-kernel roofline summary table."""
    rows = []
    for p in sorted(points, key=lambda p: p.kernel):
        inten = "inf" if p.intensity == float("inf") else f"{p.intensity:.3f}"
        rows.append(
            [
                p.kernel,
                inten,
                f"{p.ridge:.3f}",
                p.bound,
                f"{p.attained_ops / 1e9:.2f}",
                f"{p.roof_ops / 1e9:.2f}",
                f"{p.efficiency:.0%}",
            ]
        )
    return render_table(
        ["kernel", "ops/byte", "ridge", "bound", "Gops/s", "roof", "of roof"],
        rows,
        title=title,
    )
