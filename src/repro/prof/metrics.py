"""Machine-readable per-benchmark metrics: build, write, load, merge.

The exporter behind ``repro profile`` and the benchmark harness: one
JSON document per run, with a schema marker, the architecture the run
was resolved against, and a per-kernel block combining

* the nvprof-style metric set (:func:`repro.host.profiler.kernel_metrics`),
* the raw microarchitectural counters (:meth:`KernelStats.counters`),
* the resolved memory-hierarchy traffic and timing-model bounds, and
* the roofline classification.

``repro prof diff`` consumes two of these documents; the performance
doctor consumes the per-kernel entries directly instead of re-deriving
metrics from raw stats.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.arch.spec import GPUSpec
from repro.common.errors import ReproError
from repro.host.profiler import kernel_metrics
from repro.prof.roofline import classify_kernel, peak_lane_ops
from repro.simt.stats import KernelStats
from repro.timing.model import estimate_kernel_time
from repro.timing.occupancy import compute_occupancy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.runtime import CudaLite

__all__ = [
    "METRICS_SCHEMA",
    "BENCH_SCHEMA",
    "gpu_info",
    "kernel_entry",
    "collect_metrics",
    "merge_metrics",
    "render_metrics",
    "write_metrics",
    "load_metrics",
    "validate_document",
]

METRICS_SCHEMA = "repro-prof-metrics/1"
BENCH_SCHEMA = "repro-prof-bench/1"


def gpu_info(gpu: GPUSpec) -> dict[str, Any]:
    """The architecture context a metrics document is resolved against."""
    return {
        "name": gpu.name,
        "compute_capability": list(gpu.compute_capability),
        "sm_count": gpu.sm_count,
        "warp_size": gpu.warp_size,
        "transaction_bytes": gpu.transaction_bytes,
        "sector_bytes": gpu.sector_bytes,
        "clock_hz": gpu.clock_hz,
        "dram_bandwidth_bytes_per_s": gpu.dram_bandwidth,
        "peak_fp32_flops": gpu.peak_fp32_flops,
        "peak_lane_ops_per_s": peak_lane_ops(gpu),
        "global_loads_cached_in_l1": gpu.global_loads_cached_in_l1,
        "l1_size": gpu.l1_size,
        "l2_size": gpu.l2_size,
    }


def kernel_entry(
    entries: Sequence[tuple[KernelStats, Any]],
    gpu: GPUSpec,
    *,
    include_timing: bool = True,
) -> dict[str, Any]:
    """Build one kernel's metrics block from its launch-log entries.

    ``entries`` is a non-empty list of ``(stats, op)`` pairs as logged
    by :class:`~repro.host.runtime.CudaLite`; ``op`` may be None when a
    caller only has statistics (the doctor's path).  Metrics are taken
    from the first launch, times aggregated over all of them.
    """
    if not entries:
        raise ReproError("kernel_entry needs at least one launch")
    stats = entries[0][0]
    times = [
        op.duration
        for _, op in entries
        if op is not None and op.duration is not None
    ]
    occ = compute_occupancy(
        gpu,
        stats.block.size,
        shared_mem_per_block=stats.shared_mem_per_block,
        registers_per_thread=stats.registers_per_thread,
        n_blocks=stats.blocks,
    )
    entry: dict[str, Any] = {
        "calls": len(entries),
        "time_total_s": float(sum(times)),
        "time_avg_s": float(sum(times) / len(times)) if times else 0.0,
        "grid": [stats.grid.x, stats.grid.y, stats.grid.z],
        "block": [stats.block.x, stats.block.y, stats.block.z],
        "metrics": kernel_metrics(stats, gpu),
        "counters": stats.counters(),
        "occupancy_limiter": occ.limiter,
    }
    if include_timing:
        timing = estimate_kernel_time(stats, gpu, launch_kind="none")
        entry["bounds_s"] = {k: float(v) for k, v in timing.bounds.items()}
        entry["limiter"] = timing.limiter
        if timing.traffic is not None:
            entry["traffic"] = timing.traffic.as_dict()
        roof = classify_kernel(
            stats,
            gpu,
            exec_s=timing.exec_s,
            dram_bytes=timing.traffic.dram_bytes if timing.traffic else None,
        )
        entry["roofline"] = roof.as_dict()
    return entry


def collect_metrics(
    rt: "CudaLite",
    *,
    benchmark: str | None = None,
    params: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Snapshot one runtime's launch log into a metrics document."""
    groups: dict[str, list] = {}
    for stats, op in rt.kernel_log:
        groups.setdefault(stats.name, []).append((stats, op))
    tl = rt.timeline
    t0, t1 = tl.span
    return {
        "schema": METRICS_SCHEMA,
        "benchmark": benchmark,
        "params": dict(params or {}),
        "system": rt.system.name,
        "gpu": gpu_info(rt.gpu),
        "device_time_s": rt.engine.now,
        "timeline": {
            "span_s": t1 - t0,
            "events": len(tl.events),
            "busy_s_by_lane": {lane: tl.busy_time(lane) for lane in tl.lanes()},
        },
        "kernels": {
            name: kernel_entry(entries, rt.gpu)
            for name, entries in sorted(groups.items())
        },
        # Backend provenance lives OUTSIDE the kernel counters: the
        # differential suite asserts counter equality across backends,
        # and these dispatch statistics legitimately differ.
        "execution": {
            "backend": rt.backend,
            **rt.dispatch.counters.as_dict(),
        },
    }


def merge_metrics(docs: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-runtime documents from one logical run.

    Benchmarks construct several runtimes internally (one per variant);
    a merged document keeps the first document's context and unions the
    kernel blocks, summing call counts and times for kernels that
    appear in more than one runtime.
    """
    if not docs:
        raise ReproError("merge_metrics needs at least one document")
    merged = dict(docs[0])
    kernels: dict[str, Any] = {}
    device_time = 0.0
    events = 0
    execution: dict[str, Any] = {}
    for doc in docs:
        device_time = max(device_time, doc.get("device_time_s", 0.0))
        events += doc.get("timeline", {}).get("events", 0)
        for key, value in doc.get("execution", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                execution[key] = execution.get(key, 0) + value
            else:
                execution.setdefault(key, value)
        for name, entry in doc.get("kernels", {}).items():
            if name not in kernels:
                kernels[name] = dict(entry)
            else:
                k = kernels[name]
                calls = k["calls"] + entry["calls"]
                k["time_total_s"] = k["time_total_s"] + entry["time_total_s"]
                k["calls"] = calls
                k["time_avg_s"] = k["time_total_s"] / calls if calls else 0.0
    merged["kernels"] = dict(sorted(kernels.items()))
    merged["device_time_s"] = device_time
    merged.setdefault("timeline", {})["events"] = events
    if execution:
        merged["execution"] = execution
    return merged


def render_metrics(doc: dict[str, Any]) -> str:
    """The canonical serialized form of a metrics document.

    One definition of the bytes, shared by :func:`write_metrics` (the
    CLI ``--out``/``--json`` files) and the ``repro serve`` result
    store — which is what makes a served result ``cmp``-identical to
    the same work exported by the command line.
    """
    doc = {"schema": METRICS_SCHEMA, **doc}
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def write_metrics(path: str | Path, doc: dict[str, Any]) -> Path:
    """Serialize a metrics document (schema stamped if missing)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_metrics(doc))
    return path


def validate_document(doc: Any) -> list[str]:
    """Structural validation of an exported document; [] means valid.

    Knows the two document families: per-kernel metrics
    (``repro-prof-metrics/1``) and benchmark/suite/sweep results
    (``repro-prof-bench/1``).  The golden-baseline tests run every
    committed ``benchmarks/results/*.json`` through this.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, not an object"]
    schema = doc.get("schema")
    if schema == METRICS_SCHEMA:
        kernels = doc.get("kernels")
        if not isinstance(kernels, dict):
            problems.append("metrics document has no 'kernels' object")
        else:
            for name, entry in kernels.items():
                for req in ("calls", "metrics", "counters"):
                    if req not in entry:
                        problems.append(f"kernel {name!r} missing {req!r}")
                counters = entry.get("counters")
                if isinstance(counters, dict):
                    for key, value in counters.items():
                        if not isinstance(value, (int, float)):
                            problems.append(
                                f"kernel {name!r} counter {key!r} is not numeric"
                            )
        if "gpu" in doc and not isinstance(doc["gpu"], dict):
            problems.append("'gpu' is not an object")
        execution = doc.get("execution")
        if execution is not None:
            if not isinstance(execution, dict) or "backend" not in execution:
                problems.append("'execution' section missing 'backend'")
    elif schema == BENCH_SCHEMA:
        results = doc.get("results")
        sweep = doc.get("sweep")
        if results is None and sweep is None:
            problems.append("bench document has neither 'results' nor 'sweep'")
        if results is not None:
            if not isinstance(results, list):
                problems.append("'results' is not a list")
            else:
                for i, r in enumerate(results):
                    for req in (
                        "benchmark",
                        "baseline_time_s",
                        "optimized_time_s",
                        "speedup",
                        "verified",
                    ):
                        if req not in r:
                            problems.append(f"results[{i}] missing {req!r}")
        if sweep is not None:
            if not isinstance(sweep, dict):
                problems.append("'sweep' is not an object")
            else:
                for req in ("x_name", "x_values", "series"):
                    if req not in sweep:
                        problems.append(f"'sweep' missing {req!r}")
                series = sweep.get("series")
                xs = sweep.get("x_values")
                if isinstance(series, dict) and isinstance(xs, list):
                    for name, points in series.items():
                        if len(points) != len(xs):
                            problems.append(
                                f"series {name!r} has {len(points)} points "
                                f"for {len(xs)} x-values"
                            )
    elif isinstance(schema, str) and schema.startswith("repro-prof-"):
        pass  # other families (e.g. scheduler stats) are free-form
    else:
        problems.append(f"unknown schema {schema!r}")
    return problems


def load_metrics(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a metrics document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(f"metrics file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or not str(doc.get("schema", "")).startswith(
        "repro-prof-"
    ):
        raise ReproError(
            f"{path} is not a repro.prof metrics document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    return doc
