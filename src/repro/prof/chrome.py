"""Chrome trace-event exporter.

Serializes collected :class:`~repro.prof.activity.ActivityRecord` s into
the Trace Event Format JSON that ``chrome://tracing`` and Perfetto load
— the simulator's nvvp/Nsight-Systems timeline, but in a standard
container.  Layout:

* **pid 1, "device"** — timed records.  Each activity ``track`` (stream
  name, copy engine) becomes one ``tid`` with a ``thread_name``
  metadata event, so streams render as separate rows; records become
  complete (``ph: "X"``) duration events.
* **pid 1, counters** — ``counter`` records expand into one ``ph: "C"``
  event per metric so occupancy/efficiency series plot under the
  timeline.
* **pid 2, "driver"** — driver-phase records (``launch``, ``fault``,
  ``sanitizer``) have no device timestamp; they render as instant
  (``ph: "i"``) events ordered by their emission sequence number.

Timestamps are microseconds (the format's unit); the simulated device
clock starts at 0.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.prof.activity import ActivityRecord

__all__ = ["chrome_trace", "write_chrome_trace", "DEVICE_PID", "DRIVER_PID"]

DEVICE_PID = 1
DRIVER_PID = 2

#: driver-phase records are spaced this many microseconds apart so the
#: instant events stay readable when zoomed out
_DRIVER_TICK_US = 1.0

_S_TO_US = 1e6


def _jsonable(args: dict) -> dict:
    """Round-trip the args payload into JSON-safe plain values."""
    out = {}
    for k, v in args.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        elif isinstance(v, (list, tuple)):
            out[k] = [x if isinstance(x, (str, int, float, bool)) else str(x) for x in v]
        else:
            out[k] = str(v)
    return out


def _args_with_trace(rec: ActivityRecord) -> dict:
    """The event args payload, with span identity appended when carried."""
    args = _jsonable(dict(rec.args))
    if rec.trace_id is not None:
        args["trace_id"] = rec.trace_id
        args["span_id"] = rec.span_id
        if rec.parent_span_id is not None:
            args["parent_span_id"] = rec.parent_span_id
    return args


def chrome_trace(
    records: Sequence[ActivityRecord] | Iterable[ActivityRecord],
    *,
    device_name: str = "device",
) -> dict:
    """Build a Trace Event Format document from activity records.

    Every emitted event carries the required ``name``/``ph``/``ts``/
    ``pid``/``tid`` keys (metadata events included), and events are
    sorted by timestamp so each track is monotonic.
    """
    records = list(records)
    events: list[dict] = []

    # --- pid/tid naming metadata --------------------------------------
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": DEVICE_PID,
            "tid": 0,
            "args": {"name": device_name},
        }
    )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": DRIVER_PID,
            "tid": 0,
            "args": {"name": "driver"},
        }
    )

    # Track (lane) -> tid, in order of first appearance by start time so
    # tid numbering is deterministic for a given record set.
    timed = sorted(
        (r for r in records if r.timed and r.kind != "counter"),
        key=lambda r: (r.start, r.seq),
    )
    tids: dict[str, int] = {}
    for rec in timed:
        track = rec.track or "device"
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": DEVICE_PID,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )

    # --- timed duration events ----------------------------------------
    for rec in timed:
        events.append(
            {
                "name": rec.name,
                "cat": rec.kind,
                "ph": "X",
                "ts": rec.start * _S_TO_US,
                "dur": rec.duration * _S_TO_US,
                "pid": DEVICE_PID,
                "tid": tids[rec.track or "device"],
                "args": _args_with_trace(rec),
            }
        )

    # --- counter series -----------------------------------------------
    for rec in records:
        if rec.kind != "counter":
            continue
        ts = (rec.end if rec.end is not None else 0.0) * _S_TO_US
        for metric, value in rec.args.items():
            if not isinstance(value, (int, float)):
                continue
            events.append(
                {
                    "name": metric,
                    "cat": "counter",
                    "ph": "C",
                    "ts": ts,
                    "pid": DEVICE_PID,
                    "tid": 0,
                    "args": {rec.name: round(float(value), 6)},
                }
            )

    # --- driver-phase instants ----------------------------------------
    # counters are always exported as "C" series above, even when a
    # caller stamped only `end`; everything else untimed is driver phase
    driver_tids: dict[str, int] = {}
    untimed = (r for r in records if not r.timed and r.kind != "counter")
    for rec in sorted(untimed, key=lambda r: r.seq):
        track = rec.track or "driver"
        if track not in driver_tids:
            driver_tids[track] = len(driver_tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": DRIVER_PID,
                    "tid": driver_tids[track],
                    "args": {"name": track},
                }
            )
        events.append(
            {
                "name": rec.name,
                "cat": rec.kind,
                "ph": "i",
                "s": "t",
                "ts": rec.seq * _DRIVER_TICK_US,
                "pid": DRIVER_PID,
                "tid": driver_tids[track],
                "args": _args_with_trace(rec),
            }
        )

    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.prof", "device": device_name},
    }


def write_chrome_trace(
    path: str | Path,
    records: Sequence[ActivityRecord],
    *,
    device_name: str = "device",
) -> Path:
    """Serialize records to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(records, device_name=device_name)))
    return path
