"""NDJSON structured-log exporter.

One JSON object per line, one line per activity record — the format
log pipelines (jq, DuckDB, Loki, BigQuery) ingest without a schema
registry.  Field order is stable so diffs of two logs line up.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.prof.activity import ActivityRecord

__all__ = [
    "record_to_json",
    "record_from_json",
    "iter_ndjson",
    "write_ndjson",
    "read_ndjson",
]


def record_to_json(rec: ActivityRecord) -> dict:
    """The stable NDJSON projection of one record.

    Trace identity is appended only when the record carries it, so logs
    produced without the observability plane stay byte-stable.
    """
    doc = {
        "seq": rec.seq,
        "kind": rec.kind,
        "name": rec.name,
        "track": rec.track,
        "start_s": rec.start,
        "end_s": rec.end,
        "dur_s": rec.duration if rec.timed else None,
        "args": {k: v if isinstance(v, (str, int, float, bool)) or v is None else str(v)
                 for k, v in rec.args.items()},
    }
    if rec.trace_id is not None:
        doc["trace_id"] = rec.trace_id
        doc["span_id"] = rec.span_id
        doc["parent_span_id"] = rec.parent_span_id
    return doc


def record_from_json(obj: dict) -> ActivityRecord:
    """Rebuild a record from its NDJSON projection (stitching/tests)."""
    return ActivityRecord(
        kind=obj["kind"],
        name=obj["name"],
        track=obj.get("track", ""),
        start=obj.get("start_s"),
        end=obj.get("end_s"),
        seq=int(obj.get("seq", 0)),
        args=dict(obj.get("args") or {}),
        trace_id=obj.get("trace_id"),
        span_id=obj.get("span_id"),
        parent_span_id=obj.get("parent_span_id"),
    )


def iter_ndjson(records: Iterable[ActivityRecord]) -> Iterator[str]:
    for rec in records:
        yield json.dumps(record_to_json(rec), sort_keys=False)


def write_ndjson(path: str | Path, records: Iterable[ActivityRecord]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for line in iter_ndjson(records):
            fh.write(line + "\n")
    return path


def read_ndjson(path: str | Path) -> list[dict]:
    """Parse an NDJSON log back into plain dicts (for tooling/tests)."""
    out = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
