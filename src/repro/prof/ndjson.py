"""NDJSON structured-log exporter.

One JSON object per line, one line per activity record — the format
log pipelines (jq, DuckDB, Loki, BigQuery) ingest without a schema
registry.  Field order is stable so diffs of two logs line up.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.prof.activity import ActivityRecord

__all__ = ["record_to_json", "iter_ndjson", "write_ndjson", "read_ndjson"]


def record_to_json(rec: ActivityRecord) -> dict:
    """The stable NDJSON projection of one record."""
    return {
        "seq": rec.seq,
        "kind": rec.kind,
        "name": rec.name,
        "track": rec.track,
        "start_s": rec.start,
        "end_s": rec.end,
        "dur_s": rec.duration if rec.timed else None,
        "args": {k: v if isinstance(v, (str, int, float, bool)) or v is None else str(v)
                 for k, v in rec.args.items()},
    }


def iter_ndjson(records: Iterable[ActivityRecord]) -> Iterator[str]:
    for rec in records:
        yield json.dumps(record_to_json(rec), sort_keys=False)


def write_ndjson(path: str | Path, records: Iterable[ActivityRecord]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for line in iter_ndjson(records):
            fh.write(line + "\n")
    return path


def read_ndjson(path: str | Path) -> list[dict]:
    """Parse an NDJSON log back into plain dicts (for tooling/tests)."""
    out = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
