"""The discrete-event scheduler for device-level concurrency.

Kernels and copies have their durations computed by the analytic models;
*when* they run is decided here, following CUDA's engine model:

* operations within a stream execute in order;
* H2D and D2H copies use separate DMA engines when the device has two
  copy engines and the link is full duplex, so opposite-direction
  copies overlap (the HDOverlap pipeline, paper §V-A);
* kernels from different streams run concurrently while SMs are
  available: each kernel is granted ``min(demand, free SMs)`` SMs at
  start and its duration is evaluated for that grant (the Conkernels
  behaviour, paper §III-C).  Grants are not renegotiated mid-flight —
  a documented simplification.

The engine is deterministic: ready operations start in stream-id order,
and completions are processed earliest-first.
"""

from __future__ import annotations

from repro.arch.spec import SystemSpec
from repro.common.errors import StreamError
from repro.host.stream import Event, Op, Stream
from repro.host.timeline import Timeline

__all__ = ["DeviceEngine"]

_COPY_KINDS = {"h2d": "copy H2D", "d2h": "copy D2H", "d2d": "copy H2D", "migrate": None}

#: Op kind -> activity-record kind for the observability hub.
_ACTIVITY_KINDS = {
    "kernel": "kernel",
    "graph": "kernel",
    "h2d": "memcpy",
    "d2h": "memcpy",
    "d2d": "memcpy",
    "migrate": "migrate",
    "delay": "delay",
}


class DeviceEngine:
    """Schedules submitted operations onto the simulated device."""

    def __init__(self, system: SystemSpec, timeline: Timeline) -> None:
        self.system = system
        self.gpu = system.gpu
        self.link = system.link
        self.timeline = timeline
        self.now = 0.0
        self.streams: list[Stream] = []
        self.free_sms = self.gpu.sm_count
        self.running: list[Op] = []
        self.running_kernels = 0
        self.dual_copy = self.gpu.copy_engines >= 2 and self.link.duplex
        self._copy_busy: dict[str, Op | None] = {"h2d": None, "d2h": None}
        #: optional activity hub; completed ops emit activity records
        self.hub = None
        #: execution-backend tag of the owning runtime (observability)
        self.backend = "reference"

    # ------------------------------------------------------------------
    def register_stream(self, stream: Stream) -> None:
        self.streams.append(stream)

    def submit(self, op: Op) -> None:
        """Enqueue an operation at the tail of its stream."""
        if op.stream not in self.streams:
            self.register_stream(op.stream)
        op.stream.queue.append(op)

    # ------------------------------------------------------------------
    def _copy_engine_for(self, op: Op) -> str:
        if op.kind == "d2h" or (op.kind == "migrate" and op.name.endswith("->host")):
            direction = "d2h"
        else:
            direction = "h2d"
        return direction if self.dual_copy else "h2d"

    def _try_start(self, op: Op) -> bool:
        """Start ``op`` now if resources allow; returns True on start."""
        if op.kind in ("event_record", "event_wait"):
            if op.kind == "event_wait":
                ev = op.event
                assert ev is not None
                if ev.recorded and ev.done_time is None:
                    return False  # recorded but not yet reached
                if ev.done_time is not None and ev.done_time > self.now:
                    return False
            op.start_time = op.end_time = self.now
            op.done = True
            if op.kind == "event_record":
                assert op.event is not None
                op.event.done_time = self.now
            hub = self.hub
            if hub is not None and hub.wants("event"):
                hub.emit(
                    "event",
                    op.name,
                    track=op.stream.name,
                    start=self.now,
                    end=self.now,
                    op=op.kind,
                )
            if op.on_complete:
                op.on_complete(op)
            return True

        if op.kind in _COPY_KINDS:
            engine = self._copy_engine_for(op)
            if self._copy_busy[engine] is not None:
                return False
            assert op.duration is not None
            op.start_time = self.now
            op.end_time = self.now + op.duration
            self._copy_busy[engine] = op
            self.running.append(op)
            return True

        if op.kind == "delay":
            # stalls and retry backoffs: occupy the stream, no resources
            assert op.duration is not None
            op.start_time = self.now
            op.end_time = self.now + op.duration
            self.running.append(op)
            return True

        if op.kind in ("kernel", "graph"):
            if self.running_kernels >= self.gpu.max_concurrent_kernels:
                return False
            if self.free_sms < 1:
                return False
            grant = max(1, min(op.sm_demand or self.gpu.sm_count, self.free_sms))
            if op.timing_fn is not None:
                op.duration = op.timing_fn(grant)
            assert op.duration is not None
            op.granted_sms = grant
            self.free_sms -= grant
            self.running_kernels += 1
            op.start_time = self.now
            op.end_time = self.now + op.duration
            self.running.append(op)
            return True

        raise StreamError(f"unknown op kind {op.kind!r}")

    def _start_ready(self) -> bool:
        started = False
        for stream in sorted(self.streams, key=lambda s: s.id):
            while True:
                op = stream.head()
                if op is None or not self._try_start(op):
                    break
                started = True
        return started

    def _complete_earliest(self) -> None:
        op = min(self.running, key=lambda o: o.end_time)  # type: ignore[arg-type]
        self.running.remove(op)
        assert op.end_time is not None and op.start_time is not None
        self.now = max(self.now, op.end_time)
        if op.kind in _COPY_KINDS:
            engine = self._copy_engine_for(op)
            self._copy_busy[engine] = None
            lane = _COPY_KINDS[op.kind] or (
                "copy D2H" if engine == "d2h" else "copy H2D"
            )
        elif op.kind == "delay":
            lane = op.stream.name
        else:
            self.free_sms += op.granted_sms
            self.running_kernels -= 1
            lane = op.stream.name
        op.done = True
        self.timeline.add(op.name, op.kind, lane, op.start_time, op.end_time)
        hub = self.hub
        if hub is not None:
            akind = _ACTIVITY_KINDS.get(op.kind)
            if akind is not None and hub.wants(akind):
                args: dict = {"stream": op.stream.name}
                if op.nbytes:
                    args["nbytes"] = op.nbytes
                if akind == "kernel":
                    args["granted_sms"] = op.granted_sms
                hub.emit(
                    akind,
                    op.name,
                    track=lane,
                    start=op.start_time,
                    end=op.end_time,
                    **args,
                )
        if op.on_complete:
            op.on_complete(op)

    # ------------------------------------------------------------------
    def run_until_idle(self) -> float:
        """Drain all streams; returns the device time afterwards."""
        while True:
            if self._start_ready():
                continue
            if self.running:
                self._complete_earliest()
                continue
            stuck = [s for s in self.streams if s.pending()]
            if stuck:
                names = ", ".join(s.name for s in stuck)
                raise StreamError(
                    f"deadlock: streams [{names}] have pending work but "
                    "nothing can start (circular event waits?)"
                )
            return self.now

    def drop_completed(self) -> None:
        """Garbage-collect finished ops from stream queues."""
        for s in self.streams:
            s.queue = [op for op in s.queue if not op.done]
