"""CUDA task graphs: capture once, launch many times cheaply.

CUDA 10 graphs (paper §III-D) let an application define a DAG of
operations separately from executing it; launching an instantiated
graph submits every node with far lower per-node overhead than
individual API calls, which pays off for short, repeatedly-executed
work.

The simulator supports stream-capture-style construction: operations
issued between :meth:`~repro.host.runtime.CudaLite.graph_capture_begin`
and ``graph_capture_end`` are recorded as :class:`GraphNode` recipes
instead of being executed.  ``instantiate()`` freezes the graph;
``graph_launch`` replays the recipes with graph-node overheads.

By default a replay reuses the statistics captured at record time
(the common CUDA-graphs use case of re-running identical work); pass
``functional=True`` to re-execute kernels and copies against current
device data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import GraphError

__all__ = ["GraphNode", "TaskGraph", "ExecGraph"]


@dataclass
class GraphNode:
    """One captured operation.

    ``submit`` re-enqueues the op on a stream with graph overheads;
    ``refresh`` (optional) re-runs the functional work and returns an
    updated submit closure, for ``functional=True`` replays.
    """

    kind: str
    name: str
    submit: Callable[[Any], None]          #: (stream) -> None
    refresh: Callable[[], Callable[[Any], None]] | None = None


@dataclass
class TaskGraph:
    """A graph under construction (mutable until instantiated)."""

    nodes: list[GraphNode] = field(default_factory=list)
    _frozen: bool = False

    def add(self, node: GraphNode) -> None:
        if self._frozen:
            raise GraphError("cannot add nodes after instantiate()")
        self.nodes.append(node)

    def instantiate(self) -> "ExecGraph":
        """Freeze into an executable graph (``cudaGraphInstantiate``)."""
        if not self.nodes:
            raise GraphError("cannot instantiate an empty graph")
        self._frozen = True
        return ExecGraph(nodes=tuple(self.nodes))

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class ExecGraph:
    """An instantiated, immutable graph ready for launching."""

    nodes: tuple[GraphNode, ...]

    def __len__(self) -> int:
        return len(self.nodes)
