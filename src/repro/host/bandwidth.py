"""bandwidthTest: the classic CUDA-Samples measurement utility.

Measures H2D, D2H and D2D throughput on a simulated system over a range
of transfer sizes, for pinned and pageable host memory.  Useful for
sanity-checking a :class:`~repro.arch.spec.SystemSpec` (the asymptotic
numbers must approach the spec's bandwidths while small transfers are
latency-bound) and as the canonical "is this system configured sanely"
smoke test, exactly like its namesake.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.tables import render_table
from repro.host.runtime import CudaLite

__all__ = ["BandwidthReport", "measure_bandwidth"]


@dataclass
class BandwidthReport:
    """Measured throughput in bytes/second, by direction and size."""

    system: str
    sizes: list[int]
    h2d_pinned: list[float]
    h2d_pageable: list[float]
    d2h_pinned: list[float]
    d2d: list[float]

    def render(self) -> str:
        rows = [
            [
                f"{size // 1024} KiB" if size < 1 << 20 else f"{size >> 20} MiB",
                f"{h2dp / 1e9:.2f}",
                f"{h2dg / 1e9:.2f}",
                f"{d2hp / 1e9:.2f}",
                f"{d2d / 1e9:.2f}",
            ]
            for size, h2dp, h2dg, d2hp, d2d in zip(
                self.sizes, self.h2d_pinned, self.h2d_pageable,
                self.d2h_pinned, self.d2d,
            )
        ]
        return render_table(
            ["size", "H2D pinned", "H2D pageable", "D2H pinned", "D2D"],
            rows,
            title=f"bandwidthTest on {self.system} (GB/s)",
        )


def _timed(rt: CudaLite, fn) -> float:
    with rt.timer() as t:
        fn()
    return t.elapsed


def measure_bandwidth(
    rt: CudaLite,
    sizes: list[int] | None = None,
) -> BandwidthReport:
    """Run the bandwidth sweep on ``rt``'s system."""
    sizes = sizes or [1 << k for k in range(16, 27, 2)]
    h2d_pinned: list[float] = []
    h2d_pageable: list[float] = []
    d2h_pinned: list[float] = []
    d2d: list[float] = []
    for size in sizes:
        n = size // 4
        host = np.zeros(n, dtype=np.float32)
        src = rt.malloc(n)
        dst = rt.malloc(n)
        h2d_pinned.append(size / _timed(rt, lambda: rt.memcpy_h2d(src, host, pinned=True)))
        h2d_pageable.append(size / _timed(rt, lambda: rt.memcpy_h2d(src, host, pinned=False)))
        d2h_pinned.append(size / _timed(rt, lambda: rt.memcpy_d2h(src, pinned=True)))
        d2d.append(size / _timed(rt, lambda: rt.memcpy_d2d(dst, src)))
        rt.free(src)
        rt.free(dst)
    return BandwidthReport(
        system=rt.system.name,
        sizes=sizes,
        h2d_pinned=h2d_pinned,
        h2d_pageable=h2d_pageable,
        d2h_pinned=d2h_pinned,
        d2d=d2d,
    )
