"""Unified (managed) memory: page-granularity on-demand migration.

``cudaMallocManaged`` memory is accessible from both processors; the
driver migrates data at page granularity when it is touched.  The
performance consequence the paper studies (§V-C, Fig. 16) is *access
density*: an explicit ``cudaMemcpy`` always moves whole buffers, while
unified memory moves only the touched pages — a large win when a
kernel strides sparsely through a big array, a small loss when it
touches everything (page-fault machinery costs on top of the same
bytes).

Model
-----
Each managed allocation tracks per-page residency and dirtiness.  When
a kernel launch touches non-resident pages, a migration operation is
scheduled before the kernel:

``time = ceil(groups / FAULT_CONCURRENCY) * fault_overhead
       + bytes / (link_bandwidth * BANDWIDTH_EFFICIENCY)``

where *groups* are maximal runs of contiguous pages (the driver
services a fault by migrating a contiguous extent) and
``FAULT_CONCURRENCY`` models the GPU's many simultaneous outstanding
fault requests.  Host access after a kernel migrates written pages
back the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.spec import GPUSpec, LinkSpec
from repro.common.errors import MemoryError_
from repro.mem.allocator import Allocation

__all__ = [
    "ManagedState",
    "MigrationPlan",
    "contiguous_groups",
    "migration_time",
    "UM_FAULT_CONCURRENCY",
    "UM_BANDWIDTH_EFFICIENCY",
]

#: Outstanding page-fault groups the device/driver services in parallel.
UM_FAULT_CONCURRENCY = 16
#: Fraction of link bandwidth the paging machinery sustains (calibration).
UM_BANDWIDTH_EFFICIENCY = 0.7


def contiguous_groups(pages: np.ndarray) -> int:
    """Number of maximal runs of consecutive page indices."""
    if pages.size == 0:
        return 0
    p = np.sort(np.asarray(pages, dtype=np.int64))
    return int(1 + (np.diff(p) > 1).sum())


def migration_time(
    n_pages: int,
    n_groups: int,
    page_bytes: int,
    link: LinkSpec,
    gpu: GPUSpec,
) -> float:
    """Simulated duration of migrating ``n_pages`` in ``n_groups`` runs."""
    if n_pages == 0:
        return 0.0
    fault_rounds = -(-n_groups // UM_FAULT_CONCURRENCY)
    xfer = n_pages * page_bytes / (link.pinned_bandwidth * UM_BANDWIDTH_EFFICIENCY)
    return fault_rounds * gpu.um_fault_overhead_s + xfer


@dataclass
class MigrationPlan:
    """Pages to move for one fault episode."""

    direction: str            #: "h2d" or "d2h"
    n_pages: int
    n_groups: int
    nbytes: int
    duration: float

    @property
    def empty(self) -> bool:
        return self.n_pages == 0


@dataclass
class ManagedState:
    """Residency/dirtiness bookkeeping for one managed allocation.

    ``read_mostly`` models ``cudaMemAdviseSetReadMostly`` (the paper's
    stated future-work optimization): read-duplicated pages stay valid
    on *both* processors, so a host read does not invalidate the device
    copy and alternating host/device reads stop re-migrating.  Device
    writes to advised pages collapse the duplication for those pages
    (they behave like ordinary dirty pages).
    """

    alloc: Allocation
    page_bytes: int
    read_mostly: bool = False
    on_device: np.ndarray = field(init=False)   #: bool per page
    device_dirty: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if not self.alloc.managed:
            raise MemoryError_("ManagedState over a non-managed allocation")
        n = self.n_pages
        self.on_device = np.zeros(n, dtype=bool)
        self.device_dirty = np.zeros(n, dtype=bool)

    @property
    def n_pages(self) -> int:
        return -(-self.alloc.nbytes // self.page_bytes)

    def _check(self, pages: np.ndarray) -> np.ndarray:
        p = np.asarray(pages, dtype=np.int64)
        if p.size and (p.min() < 0 or p.max() >= self.n_pages):
            raise MemoryError_(
                f"page index out of range (allocation has {self.n_pages} pages)"
            )
        return p

    def plan_device_access(
        self, read_pages: np.ndarray, write_pages: np.ndarray,
        link: LinkSpec, gpu: GPUSpec,
    ) -> MigrationPlan:
        """Migration needed before a kernel touches these pages.

        Write-touched pages become device-dirty; pages already resident
        move nothing.
        """
        rp = self._check(read_pages)
        wp = self._check(write_pages)
        touched = np.union1d(rp, wp)
        missing = touched[~self.on_device[touched]]
        n_groups = contiguous_groups(missing)
        nbytes = int(missing.size) * self.page_bytes
        self.on_device[touched] = True
        self.device_dirty[wp] = True
        return MigrationPlan(
            direction="h2d",
            n_pages=int(missing.size),
            n_groups=n_groups,
            nbytes=nbytes,
            duration=migration_time(missing.size, n_groups, self.page_bytes, link, gpu),
        )

    def plan_host_access(self, link: LinkSpec, gpu: GPUSpec) -> MigrationPlan:
        """Migration needed for the host to read the allocation.

        Device-dirty pages come back; clean device-resident pages are
        downgraded — unless the allocation is advised read-mostly, in
        which case clean pages stay duplicated on the device and the
        next launch faults nothing back over.
        """
        dirty = np.flatnonzero(self.device_dirty)
        n_groups = contiguous_groups(dirty)
        nbytes = int(dirty.size) * self.page_bytes
        self.device_dirty[:] = False
        if self.read_mostly:
            self.on_device[dirty] = False  # written pages lose duplication
        else:
            self.on_device[:] = False
        return MigrationPlan(
            direction="d2h",
            n_pages=int(dirty.size),
            n_groups=n_groups,
            nbytes=nbytes,
            duration=migration_time(dirty.size, n_groups, self.page_bytes, link, gpu),
        )

    def prefetch_all(self, link: LinkSpec, gpu: GPUSpec) -> MigrationPlan:
        """``cudaMemPrefetchAsync`` of the whole allocation to the device:
        one contiguous group, bulk bandwidth."""
        missing = np.flatnonzero(~self.on_device)
        self.on_device[:] = True
        nbytes = int(missing.size) * self.page_bytes
        return MigrationPlan(
            direction="h2d",
            n_pages=int(missing.size),
            n_groups=1 if missing.size else 0,
            nbytes=nbytes,
            duration=migration_time(missing.size, min(1, missing.size), self.page_bytes, link, gpu),
        )
